package repro_test

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro"
)

func TestForEachCoversRange(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	const n = 20000
	hits := make([]atomic.Int32, n)
	err := repro.ForEach(rt, 0, n, func(_ *repro.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestForEachWithGrain(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	const n, grain = 1000, 50
	var covered atomic.Int64
	err := repro.ForEach(rt, 0, n, func(_ *repro.Ctx, lo, hi int) {
		if hi-lo > grain {
			t.Errorf("chunk [%d,%d) exceeds grain %d", lo, hi, grain)
		}
		covered.Add(int64(hi - lo))
	}, repro.WithGrain(grain))
	if err != nil {
		t.Fatal(err)
	}
	if covered.Load() != n {
		t.Fatalf("covered %d of %d iterations", covered.Load(), n)
	}
}

// TestForEachAccessesOrderLoops chains two loops and a reader through
// WithAccesses: the second loop must observe every write of the first,
// and the final Submit every write of the second.
func TestForEachAccessesOrderLoops(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	const n = 10000
	data := make([]float64, n)
	if err := repro.ForEach(rt, 0, n, func(_ *repro.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = 1
		}
	}, repro.WithAccesses(repro.Out(&data[0]))); err != nil {
		t.Fatal(err)
	}
	if err := repro.ForEach(rt, 0, n, func(_ *repro.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] += 2
		}
	}, repro.WithAccesses(repro.InOut(&data[0]))); err != nil {
		t.Fatal(err)
	}
	f := repro.Submit(rt, func(*repro.Ctx) (float64, error) {
		s := 0.0
		for i := range data {
			s += data[i]
		}
		return s, nil
	}, repro.In(&data[0]))
	sum, err := f.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3*n {
		t.Fatalf("sum = %v, want %v", sum, 3*n)
	}
}

// TestForReduceMatchesSerial is the differential check of the satellite
// list: ForReduce against a serial reduction over the same random data
// (integer values keep int64 addition exact), across worker counts and
// grains.
func TestForReduceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 30000
	data := make([]int64, n)
	var want int64
	for i := range data {
		data[i] = int64(rng.Intn(1000))
		want += data[i]
	}
	for _, workers := range []int{1, 4} {
		for _, grain := range []int{0, 7, 4096} {
			rt := repro.New(repro.WithWorkers(workers))
			got, err := repro.ForReduce(rt, 0, n, int64(0),
				func(a, b int64) int64 { return a + b },
				func(_ *repro.Ctx, lo, hi int, acc *int64) {
					for i := lo; i < hi; i++ {
						*acc += data[i]
					}
				}, repro.WithGrain(grain))
			rt.Close()
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			if got != want {
				t.Fatalf("workers=%d grain=%d: ForReduce = %d, serial = %d", workers, grain, got, want)
			}
		}
	}
}

func TestForReduceNonCommutativeTypes(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	// Max-reduction with a struct accumulator: identity must be neutral.
	type peak struct {
		v   int
		idx int
	}
	const n = 5000
	data := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for i := range data {
		data[i] = rng.Intn(1 << 20)
	}
	data[n/3] = 1 << 21 // the unique maximum
	got, err := repro.ForReduce(rt, 0, n, peak{v: -1, idx: -1},
		func(a, b peak) peak {
			if b.v > a.v {
				return b
			}
			return a
		},
		func(_ *repro.Ctx, lo, hi int, acc *peak) {
			for i := lo; i < hi; i++ {
				if data[i] > acc.v {
					*acc = peak{v: data[i], idx: i}
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if got.idx != n/3 || got.v != 1<<21 {
		t.Fatalf("ForReduce found peak %+v, want {v:%d idx:%d}", got, 1<<21, n/3)
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	const n = 200000
	err := repro.ForEachCtx(ctx, rt, 0, n, func(_ *repro.Ctx, lo, hi int) {
		if executed.Add(int64(hi-lo)) > n/20 {
			cancel()
		}
	}, repro.WithGrain(16))
	if !errors.Is(err, repro.ErrTaskSkipped) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrTaskSkipped wrapping context.Canceled", err)
	}
	if executed.Load() >= n {
		t.Fatal("every iteration ran despite cancellation")
	}
}

// TestGraphLoopNode runs a producer → loop → consumer DAG through the
// graph builder's AddLoop node.
func TestGraphLoopNode(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	const n = 8000
	data := make([]float64, n)
	res, err := repro.NewGraph().
		Add("init", nil, func(*repro.Ctx, map[string]any) (any, error) {
			for i := range data {
				data[i] = 1
			}
			return nil, nil
		}).
		AddLoop("scale", []string{"init"}, 0, n, func(_ *repro.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] *= 3
			}
		}).
		Add("sum", []string{"scale"}, func(*repro.Ctx, map[string]any) (any, error) {
			s := 0.0
			for i := range data {
				s += data[i]
			}
			return s, nil
		}).
		Run(context.Background(), rt)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := repro.Value[float64](res, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3*n {
		t.Fatalf("sum = %v, want %v (loop node ordered wrongly)", sum, 3*n)
	}
}

// TestGraphLoopNodeSkippedOnDependencyFailure: a failed dependency must
// skip the loop entirely.
func TestGraphLoopNodeSkippedOnDependencyFailure(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()
	boom := errors.New("boom")
	var ran atomic.Bool
	res, err := repro.NewGraph().
		Add("bad", nil, func(*repro.Ctx, map[string]any) (any, error) { return nil, boom }).
		AddLoop("loop", []string{"bad"}, 0, 100, func(_ *repro.Ctx, lo, hi int) {
			ran.Store(true)
		}).
		Run(context.Background(), rt)
	if !errors.Is(err, boom) {
		t.Fatalf("aggregate err = %v, want boom", err)
	}
	if ran.Load() {
		t.Fatal("loop chunks ran despite a failed dependency")
	}
	if res["loop"].Err == nil {
		t.Fatal("loop node reports no error despite its dependency failing")
	}
}
