package repro

import "repro/internal/core"

// EventCounter defers a task's dependency release and completion until
// every registered external completion has fired; see
// core.EventCounter. Obtain one inside a task body with Ctx.Events (or
// let WithEvents hand it to you), Add before the body returns, Done
// from any goroutine when the external work finishes.
type EventCounter = core.EventCounter

// ErrRuntimeDraining is reported by root submissions rejected because
// Runtime.Drain has sealed the runtime.
var ErrRuntimeDraining = core.ErrRuntimeDraining

// WithEvents adapts an event-using body to the plain Submit/Go shape:
// the wrapper obtains the task's EventCounter and passes it alongside
// the Ctx, so call sites keep the typed-future signatures.
//
//	f := repro.Submit(rt, repro.WithEvents(func(c *repro.Ctx, ev *repro.EventCounter) (int, error) {
//		ev.Add(1)
//		conn.OnReply(func(n int) { reply = n; ev.Done() })
//		return 0, send(conn, req) // returns immediately; f resolves at Done
//	}))
//
// The returned value and error are captured at body return as usual,
// but the Future resolves — and successors release — only once the
// counter drains.
func WithEvents[T any](fn func(*Ctx, *EventCounter) (T, error)) func(*Ctx) (T, error) {
	return func(c *Ctx) (T, error) { return fn(c, c.Events()) }
}

// Await blocks the running task until f resolves and returns its typed
// result, executing other ready tasks on this worker meanwhile — the
// in-task join for futures, including futures whose tasks are parked
// on external events. Awaiting a future whose completion depends on
// the calling task deadlocks, exactly like a misplaced Taskwait.
func Await[T any](c *Ctx, f *Future[T]) (T, error) {
	v, err := c.Await(f.h)
	if err != nil || v == nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
