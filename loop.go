package repro

import (
	"context"

	"repro/internal/deps"
)

// LoopOption tunes one work-sharing loop (ForEach, ForReduce,
// Graph.AddLoop).
type LoopOption func(*loopCfg)

type loopCfg struct {
	grain int
	accs  []AccessSpec
}

// WithGrain sets the loop's chunk size: workers claim iterations from
// the loop's remaining span in multiples of the grain, and cancellation
// is observed between chunks. n <= 0 (the default) selects an adaptive
// grain of roughly eight chunks per worker.
func WithGrain(n int) LoopOption {
	return func(c *loopCfg) { c.grain = n }
}

// WithAccesses declares data accesses on the loop task, ordering the
// whole loop — one logical task, however many workers execute it —
// against other tasks and loops through the usual dependency chains.
// A WithPriority clause in the list sets the loop's scheduling level;
// every chunk, wherever it is stolen to, runs at that level.
func WithAccesses(accs ...AccessSpec) LoopOption {
	return func(c *loopCfg) { c.accs = append(c.accs, accs...) }
}

func buildLoopCfg(opts []LoopOption) loopCfg {
	var c loopCfg
	for _, o := range opts {
		o(&c)
	}
	return c
}

// ForEach executes body over every chunk of [lo, hi) as one
// work-sharing loop task (OmpSs-2 taskloop/taskfor): the loop's
// iteration span is claimed in chunks by however many workers are idle,
// its dependencies (WithAccesses) are declared and released once for
// the whole range, and ForEach returns only when every chunk has
// completed. body may run concurrently on disjoint chunks; it must not
// share mutable state across iterations without its own
// synchronization.
func ForEach(rt *Runtime, lo, hi int, body func(c *Ctx, lo, hi int), opts ...LoopOption) error {
	return ForEachCtx(context.Background(), rt, lo, hi, body, opts...)
}

// ForEachCtx is ForEach honoring a caller context: when ctx fires
// mid-loop, chunks that have not started are skipped (the loop still
// completes and unwinds normally) and the returned error matches both
// ErrTaskSkipped and the cancellation cause.
func ForEachCtx(ctx context.Context, rt *Runtime, lo, hi int, body func(c *Ctx, lo, hi int), opts ...LoopOption) error {
	cfg := buildLoopCfg(opts)
	h := rt.SubmitLoop(ctx, lo, hi, cfg.grain, body, cfg.accs...)
	_, err := h.Wait(nil)
	return err
}

// ForReduce executes body over every chunk of [lo, hi) and reduces the
// per-chunk partials into a single T. Each worker accumulates into a
// private, cache-line-padded slot (initialized to identity, which must
// be the identity element of combine: 0 for sums, +Inf for mins, ...);
// the partials are combined exactly once, after the last chunk
// completed — no atomic traffic per iteration or per chunk.
//
// For float64 reductions that other tasks depend on through the
// dependency system, declare a reduction access instead (RedSum et al.
// with Ctx.ReductionBuffer inside the body); ForReduce is the typed,
// self-contained variant for results the caller consumes directly.
func ForReduce[T any](rt *Runtime, lo, hi int, identity T, combine func(T, T) T, body func(c *Ctx, lo, hi int, acc *T), opts ...LoopOption) (T, error) {
	return ForReduceCtx(context.Background(), rt, lo, hi, identity, combine, body, opts...)
}

// ForReduceCtx is ForReduce honoring a caller context. On error
// (including cancellation skips, matching ErrTaskSkipped) the identity
// value is returned.
func ForReduceCtx[T any](ctx context.Context, rt *Runtime, lo, hi int, identity T, combine func(T, T) T, body func(c *Ctx, lo, hi int, acc *T), opts ...LoopOption) (T, error) {
	cfg := buildLoopCfg(opts)
	priv := deps.NewPrivate(rt.Config().Workers, identity)
	h := rt.SubmitLoop(ctx, lo, hi, cfg.grain, func(c *Ctx, lo, hi int) {
		body(c, lo, hi, priv.Slot(c.Worker()))
	}, cfg.accs...)
	if _, err := h.Wait(nil); err != nil {
		return identity, err
	}
	return priv.Combine(identity, combine), nil
}

// AddLoop declares graph task name as a work-sharing loop over [lo, hi)
// depending on the named tasks in depNames: the loop starts once every
// dependency succeeded (a failed dependency skips it like any other
// node) and dependents start only after its last chunk completed. The
// node's result value is nil.
func (g *Graph) AddLoop(name string, depNames []string, lo, hi int, body func(c *Ctx, lo, hi int), opts ...LoopOption) *Graph {
	cfg := buildLoopCfg(opts)
	return g.Add(name, depNames, func(c *Ctx, _ map[string]any) (any, error) {
		c.Loop(lo, hi, cfg.grain, body, cfg.accs...)
		c.Taskwait()
		return nil, nil
	})
}
