package repro_test

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// TestWithDeadlineOrdersEDF pins the EDF contract on a single worker:
// while the worker is busy, top-priority roots are queued with
// deadlines in non-sorted order plus one deadline-less straggler; on a
// WithEDF runtime they must run earliest-deadline-first, with the
// deadline-less task last.
func TestWithDeadlineOrdersEDF(t *testing.T) {
	rt := repro.New(repro.WithWorkers(1), repro.WithEDF())
	defer rt.Close()

	running := make(chan struct{})
	release := make(chan struct{})
	gate := repro.Submit(rt, func(*repro.Ctx) (int, error) {
		close(running)
		<-release
		return 0, nil
	})
	<-running

	var order []string
	var mu atomic.Int32
	record := func(s string) func(*repro.Ctx) (int, error) {
		return func(*repro.Ctx) (int, error) {
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, s)
			mu.Store(0)
			return 0, nil
		}
	}
	var futs []*repro.Future[int]
	submit := func(s string, accs ...repro.AccessSpec) {
		futs = append(futs, repro.Submit(rt, record(s), accs...))
	}
	submit("late", repro.WithPriority(repro.MaxPriority), repro.WithDeadline(3*time.Second))
	submit("early", repro.WithPriority(repro.MaxPriority), repro.WithDeadline(time.Second))
	submit("mid", repro.WithPriority(repro.MaxPriority), repro.WithDeadline(2*time.Second))
	submit("none", repro.WithPriority(repro.MaxPriority))
	close(release)
	for _, f := range futs {
		if _, err := f.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gate.Wait(nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"early", "mid", "late", "none"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("EDF completion order %v, want %v", order, want)
	}
}

// TestPriorityInversionInheritance is the deterministic inversion
// regression: on one busy worker, a level-0 holder H owns the resource
// a MaxPriority waiter W needs, and a mid-priority flood is queued
// between them. With the inheritance clause on W, registering W
// promotes the queued H to W's level, so H then W run before any flood
// task. The companion subtest drops only the clause and shows the
// flood overtaking — the inversion the clause exists to fix — proving
// the assertion would fail with inheritance compiled out.
func TestPriorityInversionInheritance(t *testing.T) {
	const floods = 4
	run := func(t *testing.T, inherit bool) []string {
		rt := repro.New(repro.WithWorkers(1))
		defer rt.Close()

		running := make(chan struct{})
		release := make(chan struct{})
		gate := repro.Submit(rt, func(*repro.Ctx) (int, error) {
			close(running)
			<-release
			return 0, nil
		})
		<-running

		var order []string
		var mu atomic.Int32
		record := func(s string) func(*repro.Ctx) (int, error) {
			return func(*repro.Ctx) (int, error) {
				for !mu.CompareAndSwap(0, 1) {
				}
				order = append(order, s)
				mu.Store(0)
				return 0, nil
			}
		}
		var x byte
		var futs []*repro.Future[int]
		// Holder: level 0, owns x. Queued, not yet executing.
		futs = append(futs, repro.Submit(rt, record("holder"), repro.Out(&x)))
		// Mid-priority flood between the holder and the waiter.
		for i := 0; i < floods; i++ {
			futs = append(futs, repro.Submit(rt, record("flood"),
				repro.WithPriority(repro.MaxPriority-1)))
		}
		// Waiter: MaxPriority, needs x; registration promotes the holder
		// when the inheritance clause is present.
		waccs := []repro.AccessSpec{repro.In(&x), repro.WithPriority(repro.MaxPriority)}
		if inherit {
			waccs = append(waccs, repro.WithInheritance())
		}
		futs = append(futs, repro.Submit(rt, record("waiter"), waccs...))
		close(release)
		for _, f := range futs {
			if _, err := f.Wait(nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := gate.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return order
	}
	pos := func(order []string, s string) int {
		for i, v := range order {
			if v == s {
				return i
			}
		}
		return -1
	}

	t.Run("inherit", func(t *testing.T) {
		order := run(t, true)
		if w := pos(order, "waiter"); w != 1 || order[0] != "holder" {
			t.Fatalf("with inheritance: order %v, want holder then waiter before the flood", order)
		}
	})
	t.Run("blind", func(t *testing.T) {
		// Sensitivity companion: without the clause the flood overtakes
		// the level-0 holder, so the waiter finishes last — the inversion
		// itself. This is what the run above would look like with
		// inheritance compiled out.
		order := run(t, false)
		if w := pos(order, "waiter"); w != len(order)-1 {
			t.Fatalf("without inheritance: order %v, want the waiter last (inverted)", order)
		}
	})
}

// TestCtxDeadline: the deadline clause is visible to the task body via
// Ctx.Deadline, children inherit it, and an explicit clause overrides
// the inherited one.
func TestCtxDeadline(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()
	abs := repro.NowNS() + int64(time.Hour)
	var got, child, override atomic.Int64
	err := rt.Run(func(c *repro.Ctx) {
		got.Store(c.Deadline())
		c.Spawn(func(cc *repro.Ctx) { child.Store(cc.Deadline()) })
		c.Spawn(func(cc *repro.Ctx) { override.Store(cc.Deadline()) }, repro.WithDeadlineAt(abs+1))
		c.Taskwait()
	}, repro.WithDeadlineAt(abs))
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != abs {
		t.Fatalf("Ctx.Deadline = %d, want %d", got.Load(), abs)
	}
	if child.Load() != abs {
		t.Fatalf("child deadline = %d, want inherited %d", child.Load(), abs)
	}
	if override.Load() != abs+1 {
		t.Fatalf("override deadline = %d, want %d", override.Load(), abs+1)
	}
}

// TestGraphSetDeadline: the named-graph layer stamps per-request
// absolute deadlines on both execution paths — deadlined nodes observe
// "request start + offset", deadline-less nodes observe none (the
// compiled template must not leak a sibling's clause or a stale
// request's stamp) — and unknown names are construction errors.
func TestGraphSetDeadline(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	var withDL, withoutDL atomic.Int64
	g := repro.NewGraph().
		Add("a", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			withDL.Store(c.Deadline())
			return 1, nil
		}).
		Add("b", []string{"a"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			withoutDL.Store(c.Deadline())
			return deps["a"].(int) + 1, nil
		}).
		SetDeadline("a", time.Hour)

	check := func(t *testing.T, res map[string]repro.Result, err error, lo int64) {
		if err != nil {
			t.Fatal(err)
		}
		if v, err := repro.Value[int](res, "b"); err != nil || v != 2 {
			t.Fatalf("b = %v, %v", v, err)
		}
		dl := withDL.Load()
		if dl <= lo || dl > repro.NowNS()+int64(time.Hour) {
			t.Fatalf("node deadline = %d, want in (request start, now+1h]", dl)
		}
		if withoutDL.Load() != 0 {
			t.Fatalf("deadline-less node observed deadline %d, want 0", withoutDL.Load())
		}
	}

	lo := repro.NowNS()
	res, err := g.Run(nil, rt)
	check(t, res, err, lo)

	// A second compiled request must restamp (strictly later base).
	first := withDL.Load()
	res, err = g.Run(nil, rt)
	check(t, res, err, lo)
	if withDL.Load() < first {
		t.Fatalf("second request deadline %d earlier than first %d", withDL.Load(), first)
	}

	lo = repro.NowNS()
	res, err = g.RunInterpreted(nil, rt)
	check(t, res, err, lo)

	if _, err := repro.NewGraph().SetDeadline("nope", time.Second).Run(nil, rt); err == nil {
		t.Fatal("SetDeadline on unknown task did not error")
	}
}
