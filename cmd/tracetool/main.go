// Command tracetool reproduces the paper's trace studies with the
// CTF-inspired instrumentation backend (§5):
//
//	tracetool -compare   Figure 10: miniAMR under the DTLock scheduler
//	                     vs the PTLock scheduler — serve activity,
//	                     starvation, and ASCII timelines.
//	tracetool -noise     Figure 11: an injected kernel interrupt stalls
//	                     the DTLock owner mid-service; the serve-gap
//	                     pattern changes around it.
//	tracetool -dump f    Decode and summarize a binary trace file.
//
// Traces can be saved with -save for later inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		compare = flag.Bool("compare", false, "figure 10: DTLock vs PTLock scheduler traces")
		noise   = flag.Bool("noise", false, "figure 11: OS-noise injection on the lock owner")
		dump    = flag.String("dump", "", "decode and summarize a saved trace file")
		save    = flag.String("save", "", "save the (first) captured trace to this file")
		workers = flag.Int("workers", 16, "simulated cores")
		n       = flag.Int("n", 1<<15, "miniAMR cells")
		steps   = flag.Int("steps", 6, "miniAMR steps")
		block   = flag.Int("block", 1<<8, "miniAMR block size")
	)
	flag.Parse()

	machine := platform.Machine{Name: "traced", Cores: *workers, NUMANodes: 2}
	size := workloads.Size{N: *n, Steps: *steps}

	switch {
	case *dump != "":
		f, err := os.Open(*dump)
		fatal(err)
		tr, err := trace.Read(f)
		fatal(err)
		fatal(f.Close())
		fmt.Print(trace.Analyze(tr).String())
		fmt.Print(trace.Timeline(tr, 100))

	case *compare:
		dt, err := harness.RunTraced("DTLock", core.SchedSyncDTLock, machine, 0,
			size, *block, core.NoiseConfig{})
		fatal(err)
		pt, err := harness.RunTraced("PTLock", core.SchedCentralPTLock, machine, 0,
			size, *block, core.NoiseConfig{})
		fatal(err)
		for _, r := range []harness.TraceResult{dt, pt} {
			tot := r.Summary.Totals()
			fmt.Printf("== %s scheduler ==\n", r.Label)
			fmt.Printf("tasks %d, serves %d, drains %d (moving %d tasks), starvation %.1f%%\n",
				tot.TaskCount, tot.Serves, tot.Drains, tot.DrainedTasks,
				r.Summary.StarvationPct())
			fmt.Print(r.Timeline)
			fmt.Println()
		}
		fmt.Printf("starvation: DTLock %.1f%% vs PTLock %.1f%% (paper Fig. 10: the PTLock\n"+
			"version starves most cores because adding and getting a ready task\n"+
			"contend on the same lock)\n",
			dt.Summary.StarvationPct(), pt.Summary.StarvationPct())
		maybeSave(*save, dt.Trace)

	case *noise:
		res, err := harness.RunTraced("DTLock+noise", core.SchedSyncDTLock, machine, 0,
			size, *block, core.NoiseConfig{AfterServes: 50, Duration: 2 * time.Millisecond})
		fatal(err)
		tot := res.Summary.Totals()
		fmt.Printf("== %s ==\n", res.Label)
		fmt.Printf("tasks %d, serves %d, interrupts %d (%.3f ms stolen)\n",
			tot.TaskCount, tot.Serves, tot.Interrupts, float64(tot.InterruptNS)/1e6)
		gaps := trace.ServeGaps(res.Trace)
		if len(gaps) > 0 {
			var maxGap int64
			for _, g := range gaps {
				if g > maxGap {
					maxGap = g
				}
			}
			fmt.Printf("serve gaps: %d, largest %.3f ms (the interrupt shows up as the\n"+
				"outlier gap; afterwards the accumulated task surplus feeds all cores,\n"+
				"paper Fig. 11)\n", len(gaps), float64(maxGap)/1e6)
		}
		fmt.Print(res.Timeline)
		maybeSave(*save, res.Trace)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func maybeSave(path string, tr *trace.Trace) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fatal(err)
	fatal(tr.Write(f))
	fatal(f.Close())
	fmt.Printf("trace saved to %s\n", path)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}
