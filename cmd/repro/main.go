// Command repro regenerates the evaluation figures of "Advanced
// Synchronization Techniques for Task-based Runtime Systems" (PPoPP'21)
// on simulated platforms, printing the efficiency-vs-granularity series
// the paper plots (Figures 4-9).
//
// Usage:
//
//	repro -figure figure4            # one figure, quick scale
//	repro -all -scale full           # the whole evaluation, paper scale
//	repro -figure figure7 -workers 8 # cap simulated cores
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/platform"
)

func main() {
	var (
		figure  = flag.String("figure", "", "figure to regenerate (figure4..figure9)")
		all     = flag.Bool("all", false, "regenerate every figure")
		scale   = flag.String("scale", "quick", "problem scale: quick or full")
		workers = flag.Int("workers", platform.DefaultLimit(), "cap on simulated cores (0 = full machine)")
		repeats = flag.Int("repeats", 1, "timing repetitions per cell (best kept)")
		verify  = flag.Bool("verify", false, "verify numerical results of every measured run")
	)
	flag.Parse()

	sc := harness.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	var defs []harness.FigureDef
	switch {
	case *all:
		defs = harness.Figures()
	case *figure != "":
		def, ok := harness.FigureByName(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; have figure4..figure9\n", *figure)
			os.Exit(2)
		}
		defs = []harness.FigureDef{def}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, def := range defs {
		fmt.Printf("== %s: %s (%d workers simulated", def.Name, def.Machine.Name,
			def.Machine.Workers(*workers))
		fmt.Printf(", variants: %v)\n\n", def.Labels)
		if _, err := harness.RunFigure(def, sc, *workers, *repeats, *verify, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}
}
