// Command lockbench runs the lock microbenchmarks behind the paper's §3
// design choices: throughput of TicketLock, PTLock, TWA, MCS and DTLock
// under contention, and the §3.4 scheduler-operation comparison (DTLock
// vs PTLock scheduling, buffered vs serialized insertion).
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/locks"
)

// benchLock hammers a lock from p goroutines for the given duration and
// returns critical sections per second.
func benchLock(l locks.Locker, p int, d time.Duration) float64 {
	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	var shared int64
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for !stop.Load() {
				l.Lock()
				shared++
				l.Unlock()
				local++
			}
			ops.Add(local)
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	_ = shared
	return float64(ops.Load()) / d.Seconds()
}

// benchDTLockServing measures the delegation path: one owner serves
// items to p-1 delegating threads.
func benchDTLockServing(p int, d time.Duration) float64 {
	l := locks.NewDTLock[int](p)
	var stop atomic.Bool
	var served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for !stop.Load() {
				var v int
				if l.LockOrDelegate(id, &v) {
					for !l.Empty() {
						w := l.Front()
						l.SetItem(w, 1)
						l.PopFront()
						served.Add(1)
					}
					l.Unlock()
				} else {
					served.Add(1)
				}
			}
		}(uint64(g))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return float64(served.Load()) / d.Seconds()
}

func main() {
	var (
		threads = flag.Int("threads", 8, "contending threads")
		dur     = flag.Duration("d", 300*time.Millisecond, "duration per lock")
		tasks   = flag.Int("tasks", 50000, "tasks for the §3.4 scheduler comparison")
	)
	flag.Parse()

	fmt.Printf("lock throughput, %d threads, %v each (critical sections/s):\n", *threads, *dur)
	impls := []struct {
		name string
		l    locks.Locker
	}{
		{"TicketLock", new(locks.TicketLock)},
		{"PTLock", locks.NewPTLock(*threads + 1)},
		{"TWALock", locks.NewTWALock()},
		{"MCSLock", locks.NewMCSLocker()},
		{"DTLock(plain)", locks.NewDTLock[int](*threads + 1)},
	}
	for _, im := range impls {
		fmt.Printf("  %-14s %12.0f ops/s\n", im.name, benchLock(im.l, *threads, *dur))
	}
	fmt.Printf("  %-14s %12.0f ops/s (delegated service path)\n",
		"DTLock(serve)", benchDTLockServing(*threads, *dur))

	fmt.Printf("\n§3.4 scheduler comparison (%d empty tasks, %d workers):\n", *tasks, *threads)
	r, err := harness.RunSection34(*threads, *tasks)
	if err != nil {
		fmt.Println("FAILED:", err)
		return
	}
	fmt.Printf("  DTLock scheduler:      %12.0f tasks/s\n", r.DTLockOpsPerSec)
	fmt.Printf("  PTLock scheduler:      %12.0f tasks/s\n", r.PTLockOpsPerSec)
	fmt.Printf("  -> scheduling speedup: %.2fx (paper reports ~4x on 48 cores)\n", r.SchedulingSpeedup)
	fmt.Printf("  blocking scheduler:    %12.0f tasks/s\n", r.SerialAddsPerSec)
	fmt.Printf("  -> insertion speedup:  %.2fx (paper reports ~12x vs serial insertion)\n", r.InsertionSpeedup)
}
