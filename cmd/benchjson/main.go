// Command benchjson runs the tier-2 microbenchmark set (internal/bench)
// and records the results — ns/op, allocs/op, B/op per benchmark — as a
// labelled snapshot in a JSON file, so every PR leaves a comparable
// perf-trajectory point behind (BENCH_PR2.json, BENCH_PR3.json, ...).
//
// The output file maps label -> benchmark -> metrics. Running the tool
// again with a different -label merges into the existing file, which is
// how a single BENCH_*.json carries both the pre-change baseline and
// the post-change numbers:
//
//	go run ./cmd/benchjson -out BENCH_PR2.json -label baseline
//	... apply the optimization ...
//	go run ./cmd/benchjson -out BENCH_PR2.json -label optimized
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
)

// entry is one benchmark's snapshot.
type entry struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"b_op"`
	N           int     `json:"n"`
}

// snapshot is one labelled run of the whole tier-2 set.
type snapshot struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output JSON file (merged if it exists)")
	label := flag.String("label", "optimized", "snapshot label within the output file")
	flag.Parse()

	file := map[string]snapshot{}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}

	snap := snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]entry{},
	}
	for _, bm := range bench.Tier2 {
		r := testing.Benchmark(bm.F)
		snap.Benchmarks[bm.Name] = entry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op (n=%d)\n",
			bm.Name, snap.Benchmarks[bm.Name].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp(), r.N)
	}
	file[*label] = snap

	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [%s]\n", *out, *label)
}
