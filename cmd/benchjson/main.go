// Command benchjson runs the tier-2 microbenchmark set (internal/bench)
// and records the results — ns/op, allocs/op, B/op per benchmark — as a
// labelled snapshot in a JSON file, so every PR leaves a comparable
// perf-trajectory point behind (BENCH_PR2.json, BENCH_PR3.json, ...).
//
// The output file maps label -> benchmark -> metrics. Running the tool
// again with a different -label merges into the existing file, which is
// how a single BENCH_*.json carries both the pre-change baseline and
// the post-change numbers:
//
//	go run ./cmd/benchjson -out BENCH_PR3.json -label regmu-baseline -rootshards 1
//	go run ./cmd/benchjson -out BENCH_PR3.json -label optimized
//
// -count repeats the whole set and keeps each benchmark's best (minimum
// ns/op) run, the usual defense against scheduler noise; -benchtime
// forwards to the testing package ("2s", "10000x"); -rootshards forces
// the root-domain shard count of the concurrent-submission benchmarks
// (1 reproduces the serialized regMu-era baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
)

// entry is one benchmark's snapshot.
type entry struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"b_op"`
	N           int     `json:"n"`
}

// snapshot is one labelled run of the whole tier-2 set.
type snapshot struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Count      int              `json:"count,omitempty"`
	RootShards int              `json:"rootshards,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	// testing.Init registers the test.* flags (benchtime among them) on
	// the default FlagSet so a non-test binary can drive
	// testing.Benchmark with a caller-chosen budget.
	testing.Init()
	out := flag.String("out", "BENCH_PR3.json", "output JSON file (merged if it exists)")
	label := flag.String("label", "optimized", "snapshot label within the output file")
	count := flag.Int("count", 1, "runs per benchmark; the best (min ns/op) is recorded")
	benchtime := flag.String("benchtime", "", "per-run budget, e.g. 2s or 10000x (default: the testing package's 1s)")
	rootShards := flag.Int("rootshards", 0, "force Config.RootShards in the concurrent-submission benchmarks (0: runtime default, 1: serialized regMu-equivalent baseline)")
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -benchtime:", err)
			os.Exit(1)
		}
	}
	if *count < 1 {
		*count = 1
	}
	bench.RootShards = *rootShards

	file := map[string]snapshot{}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}

	snap := snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      *count,
		RootShards: *rootShards,
		Benchmarks: map[string]entry{},
	}
	for _, bm := range bench.Tier2 {
		best := entry{}
		for c := 0; c < *count; c++ {
			r := testing.Benchmark(bm.F)
			e := entry{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				N:           r.N,
			}
			if c == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
		}
		snap.Benchmarks[bm.Name] = best
		fmt.Printf("%-32s %12.1f ns/op %8d B/op %6d allocs/op (n=%d)\n",
			bm.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, best.N)
	}
	file[*label] = snap

	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s [%s]\n", *out, *label)
}
