// Command benchjson runs the tier-2 microbenchmark set (internal/bench)
// and records the results — ns/op, allocs/op, B/op per benchmark — as a
// labelled snapshot in a JSON file, so every PR leaves a comparable
// perf-trajectory point behind (BENCH_PR2.json, BENCH_PR3.json, ...).
//
// The output file maps label -> benchmark -> metrics. Running the tool
// again with a different -label merges into the existing file, which is
// how a single BENCH_*.json carries both the pre-change baseline and
// the post-change numbers:
//
//	go run ./cmd/benchjson -out BENCH_PR3.json -label regmu-baseline -rootshards 1
//	go run ./cmd/benchjson -out BENCH_PR3.json -label optimized
//
// Benchmarks may attach custom metrics through testing.B.ReportMetric;
// they are snapshotted under "extra". Metrics whose unit ends in "-ns"
// (the QoS latency percentiles p50/p95/p99-int-ns, batch-ns) are
// wall-clock quantities: with -count they take the per-metric best
// across runs, and -compare gates them like ns/op. The QoS
// deadline-miss-rate rides the same rules (it is a queueing outcome,
// host-shape-dependent like wall clock) with an absolute floor of 5
// percentage points. Benchmarks marked Scenario in bench.Tier2 (the
// QoS server and echo serving scenarios) fold across -count by
// element-wise MEDIAN instead of best-of — their per-op wall clock has
// tail-latency-class spread, and a best-of baseline records a lucky
// mode later runs cannot match — and their ns/op gates at
// -latency-threshold. See cmd/benchjson/README.md for the full flag
// and gate-rule reference.
//
// With -compare the tool is a perf-regression gate: after running the
// set it compares against the named snapshot file and exits non-zero
// when any benchmark regressed — ns/op beyond -threshold, a "-ns"
// custom metric beyond -latency-threshold (wider by default: tail
// quantiles are far noisier run-to-run than per-op means, and the
// regression this arm of the gate exists to catch — the priority
// machinery going dark — is an order of magnitude), each ignoring
// sub--floor-ns absolute deltas, or allocs/op beyond -threshold, where
// any growth from 0 allocs/op always fails (the zero-allocation hot
// paths are exact invariants, not measurements). Wall-clock metrics
// are only gated when the baseline was recorded at the current
// GOMAXPROCS — wall-clock ratios across host shapes are meaningless —
// while allocs/op, being deterministic per code path, gates on every
// host (except open-loop benchmarks marked DynamicAllocs, whose
// allocation count scales with background traffic). A benchmark
// present in the baseline but missing from the current set fails, so
// coverage cannot be dropped silently; a benchmark or metric measured
// but absent from the baseline warns on every run until the baseline
// is refreshed, so new benchmarks cannot dodge the gate by never being
// baselined. This is what CI runs against BENCH_BASELINE.json (count=5
// on the gate side vs count=3 when recording, so the deeper best-of
// search suppresses false failures):
//
//	go run ./cmd/benchjson -count=5 -compare BENCH_BASELINE.json -threshold 1.25
//
// -count repeats the whole set and keeps each benchmark's best (minimum
// ns/op) run — median for Scenario benchmarks, as above — the usual
// defense against scheduler noise; -benchtime
// forwards to the testing package ("2s", "10000x"); -rootshards forces
// the root-domain shard count of the concurrent-submission benchmarks
// (1 reproduces the serialized regMu-era baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// entry is one benchmark's snapshot. Extra carries the benchmark's
// custom metrics (testing.B.ReportMetric), e.g. the QoS latency
// percentiles p99-int-ns; metrics whose unit ends in "-ns" are
// wall-clock quantities and are gated by -compare under the same
// threshold/noise-floor/GOMAXPROCS rules as ns/op.
type entry struct {
	NsPerOp     float64            `json:"ns_op"`
	AllocsPerOp int64              `json:"allocs_op"`
	BytesPerOp  int64              `json:"b_op"`
	N           int                `json:"n"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// snapshot is one labelled run of the whole tier-2 set.
type snapshot struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Count      int              `json:"count,omitempty"`
	RootShards int              `json:"rootshards,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	// testing.Init registers the test.* flags (benchtime among them) on
	// the default FlagSet so a non-test binary can drive
	// testing.Benchmark with a caller-chosen budget.
	testing.Init()
	out := flag.String("out", "", "output JSON file, merged if it exists (empty: no file written)")
	label := flag.String("label", "optimized", "snapshot label within the output file")
	count := flag.Int("count", 1, "runs per benchmark; the best (min ns/op) run is recorded (median for Scenario benchmarks)")
	benchtime := flag.String("benchtime", "", "per-run budget, e.g. 2s or 10000x (default: the testing package's 1s)")
	rootShards := flag.Int("rootshards", 0, "force Config.RootShards in the concurrent-submission benchmarks (0: runtime default, 1: serialized regMu-equivalent baseline)")
	compare := flag.String("compare", "", "baseline JSON file to gate against; exit non-zero on regressions")
	baselineLabel := flag.String("baseline-label", "baseline", "snapshot label inside the -compare file")
	threshold := flag.Float64("threshold", 1.25, "regression ratio: fail when new/old exceeds this")
	latThreshold := flag.Float64("latency-threshold", 6.0,
		"regression ratio for custom latency metrics and Scenario ns/op (tail quantiles "+
			"spread up to ~4x between median-folded runs on a loaded host; the regression "+
			"mode this gate exists for — the priority machinery going dark — is 10-40x, "+
			"so 6x stays fully sensitive without coin-flipping on host noise)")
	floorNs := flag.Float64("floor-ns", 50, "ignore ns/op regressions whose absolute delta is below this (noise floor)")
	echoLatency := flag.Duration("echo-latency", bench.EchoBackendLatency,
		"simulated backend round trip of the Echo benchmarks (longer = more in-flight capacity headroom, slower runs)")
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -benchtime:", err)
			os.Exit(1)
		}
	}
	if *count < 1 {
		*count = 1
	}
	bench.RootShards = *rootShards
	bench.EchoBackendLatency = *echoLatency

	snap := snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      *count,
		RootShards: *rootShards,
		Benchmarks: map[string]entry{},
	}
	for _, bm := range bench.Tier2 {
		runs := make([]entry, 0, *count)
		for c := 0; c < *count; c++ {
			r := testing.Benchmark(bm.F)
			e := entry{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				N:           r.N,
			}
			if len(r.Extra) > 0 {
				e.Extra = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					e.Extra[k] = v
				}
			}
			runs = append(runs, e)
		}
		best := foldRuns(runs, bm.Scenario)
		snap.Benchmarks[bm.Name] = best
		fmt.Printf("%-32s %12.1f ns/op %8d B/op %6d allocs/op (n=%d)\n",
			bm.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, best.N)
		for _, k := range sortedKeys(best.Extra) {
			fmt.Printf("%32s %12.1f %s\n", "", best.Extra[k], k)
		}
	}

	if *out != "" {
		file := map[string]snapshot{}
		if raw, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(raw, &file); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
				os.Exit(1)
			}
		}
		file[*label] = snap
		raw, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s [%s]\n", *out, *label)
	}

	if *compare != "" {
		old, err := loadSnapshot(*compare, *baselineLabel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regressions, warnings := compareSnapshots(old, snap, *threshold, *latThreshold, *floorNs)
		regressions = append(regressions, echoCapacityCheck(snap)...)
		regressions = append(regressions, graphServeCheck(snap)...)
		regressions = append(regressions, idleBurnCheck(snap)...)
		regressions = append(regressions, qosDeadlineCheck(snap)...)
		regressions = append(regressions, localityCheck(snap)...)
		for _, w := range warnings {
			fmt.Println("warning: " + w)
			if os.Getenv("GITHUB_ACTIONS") == "true" {
				fmt.Printf("::warning title=perf gate::%s\n", w)
			}
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "\nPERF GATE FAILED against %s [%s] (threshold %.2fx):\n",
				*compare, *baselineLabel, *threshold)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("perf gate passed against %s [%s] (threshold %.2fx)\n",
			*compare, *baselineLabel, *threshold)
	}
}

// echoCapacityCheck enforces the external-events capacity invariant on
// the current run, independent of any baseline: the events-mode echo
// benchmark must sustain at least 10× the worker-blocking baseline's
// in-flight request graphs per worker (the blocking mode is pinned at
// 1.0 by construction — a request waiting on the backend is a sleeping
// worker), at equal or better p99 request latency. This is a same-host
// same-run ratio, so unlike the wall-clock gates it holds on every
// host shape.
func echoCapacityCheck(cur snapshot) []string {
	ev, okEv := cur.Benchmarks["EchoEvents"]
	bl, okBl := cur.Benchmarks["EchoBlocking"]
	if !okEv || !okBl {
		return nil
	}
	var out []string
	evIn, blIn := ev.Extra["inflight-per-worker"], bl.Extra["inflight-per-worker"]
	if blIn <= 0 || evIn < 10*blIn {
		out = append(out, fmt.Sprintf(
			"EchoEvents: %.1f inflight-per-worker vs blocking %.1f — events mode must sustain >= 10x",
			evIn, blIn))
	}
	evP, blP := ev.Extra["p99-echo-ns"], bl.Extra["p99-echo-ns"]
	if evP > blP {
		out = append(out, fmt.Sprintf(
			"EchoEvents: p99 %.0f ns worse than blocking baseline %.0f ns — freeing workers must not cost the tail",
			evP, blP))
	}
	return out
}

// graphServeCheck enforces the compiled-template serving invariants on
// the current run, independent of any baseline: compiling the DAG once
// must buy at least 5× the request throughput of the per-request
// interpreted path on the symphony fan-in template, and the compiled
// fast path must stay allocation-free at steady state. Like the echo
// capacity check these are same-host same-run ratios (and an exact
// counter), so they hold on every host shape.
func graphServeCheck(cur snapshot) []string {
	cp, okC := cur.Benchmarks["GraphServeCompiled"]
	ip, okI := cur.Benchmarks["GraphServeInterpreted"]
	if !okC || !okI {
		return nil
	}
	var out []string
	cr, ir := cp.Extra["req/s"], ip.Extra["req/s"]
	if ir <= 0 || cr < 5*ir {
		out = append(out, fmt.Sprintf(
			"GraphServeCompiled: %.0f req/s vs interpreted %.0f — compilation must buy >= 5x",
			cr, ir))
	}
	if cp.AllocsPerOp != 0 {
		out = append(out, fmt.Sprintf(
			"GraphServeCompiled: %d allocs/op — the compiled serving path must not allocate",
			cp.AllocsPerOp))
	}
	return out
}

// idleBurnCheck enforces the elastic worker pool's idle-cost invariant
// on the current run: an idle pool must actually park its workers, and
// once parked must burn at most 10% of the CPU the pure-spin baseline
// (IdleSpin=-1) burns over the same idle window. Like the other
// same-run checks this is a same-host ratio and holds on every host
// shape. The CPU half stands down when the host cannot report process
// CPU time (the benchmark then omits the idle-mcores metrics) or when
// the spin baseline itself measured below a noise floor — a pool of
// spinning workers that registers under a tenth of a core means the
// runner is too oversubscribed for the ratio to mean anything.
func idleBurnCheck(cur snapshot) []string {
	ib, ok := cur.Benchmarks["IdleBurn"]
	if !ok {
		return nil
	}
	var out []string
	if ib.Extra["parked-workers"] < 1 {
		out = append(out, "IdleBurn: no worker ever parked — the elastic spin→park ladder is dead")
	}
	spin, okSpin := ib.Extra["idle-mcores-spin"]
	elastic, okElastic := ib.Extra["idle-mcores-elastic"]
	if !okSpin || !okElastic || spin < 100 {
		return out
	}
	if elastic > 0.10*spin {
		out = append(out, fmt.Sprintf(
			"IdleBurn: parked pool burns %.0f of the spin baseline's %.0f idle millicores (%.0f%%) — must stay <= 10%%",
			elastic, spin, 100*elastic/spin))
	}
	return out
}

// qosDeadlineCheck enforces the deadline-scheduling acceptance ratio on
// the current run, independent of any baseline: under identical
// deadline accounting, the EDF+inheritance run's interactive miss rate
// must stay strictly below the priority-blind run's, at no more than a
// 20% batch-throughput cost. The miss-rate half stands down when the
// blind baseline itself barely misses (under 5% of requests) — on an
// unloaded or huge host there is no inversion for the scheduler to fix,
// and a strict ordering of two near-zero rates would gate on noise.
func qosDeadlineCheck(cur snapshot) []string {
	edf, okE := cur.Benchmarks["ServerQoSDeadlineEDF"]
	bl, okB := cur.Benchmarks["ServerQoSDeadlineBlind"]
	if !okE || !okB {
		return nil
	}
	var out []string
	em, bm := edf.Extra["deadline-miss-rate"], bl.Extra["deadline-miss-rate"]
	if bm >= 0.05 && em >= bm {
		out = append(out, fmt.Sprintf(
			"ServerQoSDeadlineEDF: %.3f deadline-miss-rate vs priority-blind %.3f — EDF+inheritance must miss strictly less",
			em, bm))
	}
	eb, bb := edf.Extra["batch-ns"], bl.Extra["batch-ns"]
	if bb > 0 && eb > 1.20*bb {
		out = append(out, fmt.Sprintf(
			"ServerQoSDeadlineEDF: %.0f batch-ns vs blind %.0f (%.2fx) — deadline scheduling must cost <= 20%% batch throughput",
			eb, bb, eb/bb))
	}
	return out
}

// localityCheck enforces the NUMA-domain sharding acceptance ratios on
// the current run, independent of any baseline: at two domains the
// runtime must keep at least 90% of executed tasks on their home
// domain under the two-class priority mix (affinity-retention, read
// from the runtime's per-domain Executed/ExecutedHome counters), and
// sharding must not cost the interactive tail — the multi-domain run's
// interactive p99 must stay within 1.25x of the single-domain run's
// (the cross-domain elevated-work path is what keeps this true even on
// oversubscribed hosts). Like the other same-run checks these are
// same-host ratios and hold on every host shape. The p99 half stands
// down when the single-domain anchor itself measured 0 (a degenerate
// run with no interactive samples).
func localityCheck(cur snapshot) []string {
	multi, okM := cur.Benchmarks["LocalityPriorityMulti"]
	single, okS := cur.Benchmarks["LocalityPrioritySingle"]
	if !okM || !okS {
		return nil
	}
	var out []string
	if ret := multi.Extra["affinity-retention"]; ret < 0.90 {
		out = append(out, fmt.Sprintf(
			"LocalityPriorityMulti: %.3f affinity-retention — >= 90%% of tasks must execute on their home domain",
			ret))
	}
	mp, sp := multi.Extra["p99-int-ns"], single.Extra["p99-int-ns"]
	if sp > 0 && mp > 1.25*sp {
		out = append(out, fmt.Sprintf(
			"LocalityPriorityMulti: p99 %.0f ns vs single-domain %.0f ns (%.2fx) — domain sharding must cost <= 1.25x the interactive tail",
			mp, sp, mp/sp))
	}
	return out
}

// foldRuns collapses the -count runs of one benchmark into the
// recorded entry. Code-path benchmarks keep the whole best (min ns/op)
// run with element-wise-min extras — repeated runs can only converge on
// the true cost from above. Scenario benchmarks take the element-wise
// MEDIAN instead: their ns/op and latency metrics are queueing
// outcomes with several-x run-to-run spread, and a best-of baseline
// records a lucky mode later runs cannot reproduce, turning the gate
// into a coin flip. Median-vs-median is stable on both sides of the
// comparison.
func foldRuns(runs []entry, scenario bool) entry {
	if !scenario {
		best := runs[0]
		for _, e := range runs[1:] {
			extra := minExtras(best.Extra, e.Extra)
			if e.NsPerOp < best.NsPerOp {
				best = e
			}
			best.Extra = extra
		}
		return best
	}
	byNs := make([]entry, len(runs))
	copy(byNs, runs)
	sort.Slice(byNs, func(i, j int) bool { return byNs[i].NsPerOp < byNs[j].NsPerOp })
	out := byNs[len(byNs)/2]
	keys := map[string]struct{}{}
	for _, e := range runs {
		for k := range e.Extra {
			keys[k] = struct{}{}
		}
	}
	if len(keys) > 0 {
		extra := make(map[string]float64, len(keys))
		vals := make([]float64, 0, len(runs))
		for k := range keys {
			vals = vals[:0]
			for _, e := range runs {
				if v, ok := e.Extra[k]; ok {
					vals = append(vals, v)
				}
			}
			sort.Float64s(vals)
			extra[k] = vals[len(vals)/2]
		}
		out.Extra = extra
	}
	return out
}

// minExtras merges two custom-metric maps, keeping the per-key minimum
// (for wall-clock latencies lower is better; for the echo
// inflight-per-worker capacity the minimum is the conservative —
// worst-run — value, which is what the capacity gate should see).
// Either argument may be nil.
func minExtras(a, b map[string]float64) map[string]float64 {
	if a == nil {
		return b
	}
	out := make(map[string]float64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if o, ok := out[k]; !ok || v < o {
			out[k] = v
		}
	}
	return out
}

// gatedMetric reports whether a custom metric is baseline-gated: the
// wall-clock "-ns" family plus the QoS deadline-miss-rate (which varies
// with host shape exactly like wall clock). Throughput-style extras
// (req/s, inflight-per-worker, idle-mcores-*) are covered by the
// same-run invariant checks instead.
func gatedMetric(k string) bool {
	return strings.HasSuffix(k, "-ns") || k == "deadline-miss-rate"
}

// sortedKeys returns m's keys in stable order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// loadSnapshot reads one labelled snapshot out of a BENCH_*.json file.
func loadSnapshot(path, label string) (snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	file := map[string]snapshot{}
	if err := json.Unmarshal(raw, &file); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	old, ok := file[label]
	if !ok {
		labels := make([]string, 0, len(file))
		for l := range file {
			labels = append(labels, l)
		}
		return snapshot{}, fmt.Errorf("%s has no %q snapshot (have %v)", path, label, labels)
	}
	return old, nil
}

// compareSnapshots returns one human-readable line per regression of
// new against old, plus non-fatal warnings. Baseline benchmarks
// missing from the current set are regressions (coverage loss);
// benchmarks (or custom metrics) present in the current set but absent
// from the baseline are warnings — they cannot fail this run, but left
// unbaselined they would dodge the gate forever, so they are surfaced
// on every run until the baseline is refreshed.
//
// ns/op — and every custom wall-clock metric (unit suffix "-ns", e.g.
// the QoS latency percentiles, gated at the wider latThreshold) — is
// only compared when both snapshots
// were taken at the same GOMAXPROCS: wall-clock ratios between
// differently-shaped hosts (a 1-core laptop baseline vs a 4-vCPU CI
// runner) routinely exceed any sane threshold in either direction and
// would make the gate both flaky and blind. allocs/op is deterministic
// per code path and gates on every host — in particular the
// growth-from-0 invariant — except for benchmarks marked
// bench.DynamicAllocsByName, whose open-loop background traffic makes
// allocs/op host-dependent too.
func compareSnapshots(old, cur snapshot, threshold, latThreshold, floorNs float64) (regressions, warnings []string) {
	compareNs := old.GOMAXPROCS == cur.GOMAXPROCS
	if !compareNs {
		warnings = append(warnings, fmt.Sprintf(
			"baseline GOMAXPROCS=%d != current %d; wall-clock metrics not gated "+
				"(allocs/op still is) — refresh BENCH_BASELINE.json on this host shape",
			old.GOMAXPROCS, cur.GOMAXPROCS))
	}
	for _, name := range bench.Names() {
		o, inOld := old.Benchmarks[name]
		n, inNew := cur.Benchmarks[name]
		if !inOld {
			if inNew {
				warnings = append(warnings, fmt.Sprintf(
					"%s: measured but not in the baseline — refresh BENCH_BASELINE.json or it never gates", name))
			}
			continue
		}
		if !inNew {
			regressions = append(regressions,
				fmt.Sprintf("%s: in baseline but not measured anymore", name))
			continue
		}
		// Scenario benchmarks' ns/op is a serving-window wall clock with
		// tail-latency-class spread, so it rides the wider latency
		// threshold; code-path benchmarks use the tight one.
		nsThreshold := threshold
		if bench.ScenarioByName(name) {
			nsThreshold = latThreshold
		}
		if compareNs && n.NsPerOp > o.NsPerOp*nsThreshold && n.NsPerOp-o.NsPerOp > floorNs {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.2fx)",
					name, n.NsPerOp, o.NsPerOp, n.NsPerOp/o.NsPerOp))
		}
		// Custom wall-clock metrics (latency percentiles) and the QoS
		// deadline-miss-rate: same rules as ns/op, keyed per metric. The
		// miss rate is a queueing outcome, as host-shape-dependent as any
		// wall clock, so it rides the same GOMAXPROCS guard and the wider
		// latThreshold — with an absolute floor of 5 percentage points in
		// place of floorNs (its unit is a fraction, not nanoseconds).
		for _, k := range sortedKeys(o.Extra) {
			if !gatedMetric(k) {
				continue
			}
			nv, ok := n.Extra[k]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s: metric %s in baseline but not reported anymore", name, k))
				continue
			}
			ov := o.Extra[k]
			floor := floorNs
			if k == "deadline-miss-rate" {
				floor = 0.05
			}
			if compareNs && nv > ov*latThreshold && nv-ov > floor {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.3g %s vs baseline %.3g (%.2fx)",
						name, nv, k, ov, nv/ov))
			}
		}
		for _, k := range sortedKeys(n.Extra) {
			if _, ok := o.Extra[k]; !ok && gatedMetric(k) {
				warnings = append(warnings, fmt.Sprintf(
					"%s: metric %s reported but not in the baseline — refresh BENCH_BASELINE.json", name, k))
			}
		}
		if bench.DynamicAllocsByName(name) {
			continue
		}
		switch {
		case o.AllocsPerOp == 0 && n.AllocsPerOp > 0:
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline 0 (zero-allocation invariant broken)",
					name, n.AllocsPerOp))
		case o.AllocsPerOp > 0 && float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*threshold:
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (%.2fx)",
					name, n.AllocsPerOp, o.AllocsPerOp,
					float64(n.AllocsPerOp)/float64(o.AllocsPerOp)))
		}
	}
	// Baseline entries outside the shared name list (e.g. a renamed
	// benchmark) also count as coverage loss.
	for name := range old.Benchmarks {
		if _, ok := bench.ByName(name); !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: in baseline but no longer a tier-2 benchmark", name))
		}
	}
	return regressions, warnings
}
