// Command verify is the artifact check, in the spirit of the paper
// artifact's run-small-suite.sh: it runs every benchmark of §6.1 on
// every runtime variant at small problem sizes and verifies each
// parallel result against its serial reference. A clean exit means the
// full matrix (8 benchmarks × 7 variants) computes correct results on
// this host.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	workers := flag.Int("workers", 4, "worker threads per runtime")
	numa := flag.Int("numa", 2, "simulated NUMA nodes")
	flag.Parse()

	sizes := map[string]struct {
		size  workloads.Size
		block int
	}{
		"dotproduct": {workloads.Size{N: 1 << 14}, 1 << 8},
		"heat":       {workloads.Size{N: 64, Steps: 4}, 16},
		"matmul":     {workloads.Size{N: 64}, 16},
		"cholesky":   {workloads.Size{N: 64}, 16},
		"hpccg":      {workloads.Size{N: 1 << 11, Steps: 25}, 1 << 8},
		"nbody":      {workloads.Size{N: 256, Steps: 2}, 64},
		"lulesh":     {workloads.Size{N: 1 << 12, Steps: 4}, 1 << 7},
		"miniamr":    {workloads.Size{N: 1 << 12, Steps: 5}, 1 << 7},
	}

	variants := append(core.Variants(), core.ComparisonVariants()[1:]...)
	failures := 0
	for _, v := range variants {
		rt := core.New(core.ConfigFor(v, *workers, *numa))
		fmt.Printf("%-28s", v)
		for name, tc := range sizes {
			w, err := workloads.Build(name, tc.size, tc.block)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\nverify: %v\n", err)
				os.Exit(2)
			}
			start := time.Now()
			w.Reset()
			if err := w.Run(rt); err != nil {
				fmt.Printf(" %s:FAIL", name)
				fmt.Fprintf(os.Stderr, "\nverify: %s on %s: run: %v\n", name, v, err)
				failures++
				continue
			}
			if err := w.Verify(); err != nil {
				fmt.Printf(" %s:FAIL", name)
				fmt.Fprintf(os.Stderr, "\nverify: %s on %s: %v\n", name, v, err)
				failures++
				continue
			}
			_ = start
			fmt.Printf(" %s:ok", name)
		}
		rt.Close()
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d verification failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("all benchmarks verified on all variants")
}
