// Package event provides the building blocks of the runtime's external
// event subsystem (the Nanos6 "external events" API): the mechanism
// that lets a task's dependency release and completion be deferred past
// its body's return until out-of-band completions — network callbacks,
// timers, channel readers — fire from arbitrary goroutines, while the
// worker that ran the body goes straight back to the scheduler.
//
// The package is deliberately core-agnostic (it knows nothing about
// tasks); it contributes three primitives the core wires together:
//
//   - Wheel: a hashed timing wheel with one shared, lazily started
//     goroutine, so timer-deferred completions (Ctx.After) cost no
//     worker and no per-timer goroutine.
//   - Slots: a small pool of exclusive thread indices that non-worker
//     goroutines borrow to run the release path, which requires a
//     thread index that is unique among concurrent callers (dependency
//     mailboxes, allocator free lists, scheduler insertion).
//   - Gate: a sharded drain gate in the style of gvisor's sync.Gate,
//     the shutdown story Runtime.Drain builds on.
package event

import (
	"sync"
	"time"
)

// defaultTick is the wheel granularity when the caller passes none:
// fine enough that millisecond-scale simulated I/O keeps sub-10%
// quantization, coarse enough that the ticker goroutine stays cold.
const defaultTick = 100 * time.Microsecond

// defaultBuckets is the wheel size (a power of two); timers beyond one
// revolution carry a remaining-rounds count, so the size only affects
// how many are rescanned per tick, not how far ahead After can look.
const defaultBuckets = 256

// timer is one scheduled callback: fn fires when its bucket comes up
// with rounds at zero.
type timer struct {
	rounds int32
	fn     func()
}

// Wheel is a hashed timing wheel: After hashes each callback into the
// bucket tick-count slots ahead of the cursor, and a single goroutine
// — started lazily on the first timer, stopped by Stop — advances the
// cursor once per tick and fires the due bucket entries. Callbacks run
// on that goroutine, so they must be brief or hand off; firing is
// never early (a partial current tick rounds up) but can be late under
// scheduling pressure, which is the usual timer contract.
type Wheel struct {
	tick time.Duration

	mu      sync.Mutex
	buckets [][]timer
	cur     int
	started bool
	stopped bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewWheel returns a wheel with the given tick granularity and bucket
// count (0 selects the defaults; buckets are rounded up to a power of
// two). The ticker goroutine starts on the first After call.
func NewWheel(tick time.Duration, buckets int) *Wheel {
	if tick <= 0 {
		tick = defaultTick
	}
	if buckets <= 0 {
		buckets = defaultBuckets
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Wheel{tick: tick, buckets: make([][]timer, n)}
}

// Tick returns the wheel's granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// After schedules fn to run on the wheel goroutine no earlier than d
// from now (rounded up to the next tick boundary). If the wheel has
// already been stopped, fn runs on a fresh goroutine instead — the
// runtime only stops the wheel after quiescence, so this path exists
// for shutdown races, not for steady state.
func (w *Wheel) After(d time.Duration, fn func()) {
	ticks := 1
	if d > 0 {
		// +1 covers the partially elapsed current tick: a timer must
		// never fire early, even when scheduled just before a tick edge.
		ticks = int(d/w.tick) + 1
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		go fn()
		return
	}
	if !w.started {
		w.started = true
		w.stop = make(chan struct{})
		w.wg.Add(1)
		go w.run()
	}
	w.schedule(ticks, fn)
	w.mu.Unlock()
}

// schedule places fn ticks cursor-advances from now (ticks >= 1). The
// caller holds w.mu.
func (w *Wheel) schedule(ticks int, fn func()) {
	slot := (w.cur + ticks) & (len(w.buckets) - 1)
	// rounds counts how many times the cursor must *pass over* the slot
	// before the entry is due, i.e. completed extra revolutions beyond
	// the first arrival. A delay that is an exact revolution multiple
	// (ticks == k·buckets) wraps to the cursor's own slot, which the
	// cursor reaches after exactly `buckets` advances — so the boundary
	// belongs to the lower revolution: (ticks-1)/buckets, not
	// ticks/buckets, which fired those timers one full revolution late.
	w.buckets[slot] = append(w.buckets[slot], timer{
		rounds: int32((ticks - 1) / len(w.buckets)),
		fn:     fn,
	})
}

// advance moves the cursor one tick and appends the now-due timers of
// the new current bucket to due, decrementing the round counts of the
// entries that stay. The caller holds w.mu.
func (w *Wheel) advance(due []timer) []timer {
	w.cur = (w.cur + 1) & (len(w.buckets) - 1)
	b := w.buckets[w.cur]
	keep := b[:0]
	for _, t := range b {
		if t.rounds > 0 {
			t.rounds--
			keep = append(keep, t)
		} else {
			due = append(due, t)
		}
	}
	w.buckets[w.cur] = keep
	return due
}

// run is the wheel goroutine: advance the cursor each tick, collect the
// due entries of the new current bucket under the lock, fire them
// outside it (a callback may call After and re-enter the lock).
func (w *Wheel) run() {
	defer w.wg.Done()
	tk := time.NewTicker(w.tick)
	defer tk.Stop()
	var due []timer
	for {
		select {
		case <-w.stop:
			return
		case <-tk.C:
			w.mu.Lock()
			due = w.advance(due)
			w.mu.Unlock()
			for i := range due {
				due[i].fn()
				due[i].fn = nil
			}
			due = due[:0]
		}
	}
}

// Stop terminates the wheel goroutine and waits for it to exit. Timers
// still scheduled are dropped — the runtime calls Stop only after every
// task (and therefore every pending event) has drained. Stop is
// idempotent.
func (w *Wheel) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	started := w.started
	w.mu.Unlock()
	if started {
		close(w.stop)
		w.wg.Wait()
	}
}
