package event

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Slots is a pool of exclusive thread indices for goroutines that are
// neither workers nor root submitters but must run thread-indexed
// runtime code — the final event decrement runs the whole dependency
// release and completion path, and every per-thread structure it
// touches (dependency mailbox, allocator free list, scheduler
// insertion, trace buffer) requires an index unique among concurrent
// callers. The pool hands out indices [base, base+n) guarded by one
// mutex each; Acquire round-robins a cursor over the slots and takes
// the first free one, spinning (with yields) when all n are busy.
// Release paths are short and never block on user code, so a small n
// bounds completer parallelism without risking deadlock.
type Slots struct {
	base int
	next atomic.Uint32
	mus  []paddedMutex
}

// paddedMutex keeps neighbouring slot locks off one cache line.
type paddedMutex struct {
	mu sync.Mutex
	_  [56]byte
}

// NewSlots returns a pool of n exclusive indices starting at base.
func NewSlots(base, n int) *Slots {
	if n < 1 {
		n = 1
	}
	return &Slots{base: base, mus: make([]paddedMutex, n)}
}

// Acquire returns an exclusive thread index; the caller must Release it
// from the same goroutine.
func (s *Slots) Acquire() int {
	k := int(s.next.Add(1))
	n := len(s.mus)
	for i := 0; ; i++ {
		idx := (k + i) % n
		if s.mus[idx].mu.TryLock() {
			return s.base + idx
		}
		if (i+1)%n == 0 {
			runtime.Gosched()
		}
	}
}

// Release returns a slot obtained from Acquire.
func (s *Slots) Release(slot int) {
	s.mus[slot-s.base].mu.Unlock()
}

// Base returns the first index of the pool's range.
func (s *Slots) Base() int { return s.base }

// Len returns the number of slots in the pool.
func (s *Slots) Len() int { return len(s.mus) }
