package event

import (
	"testing"
	"time"
)

// fireStep schedules a timer `ticks` advances ahead on a stopped-clock
// wheel and returns the advance count at which it fired, driving the
// cursor by hand (no ticker goroutine, fully deterministic).
func fireStep(t *testing.T, w *Wheel, ticks int) int {
	t.Helper()
	fired := false
	w.mu.Lock()
	w.schedule(ticks, func() { fired = true })
	w.mu.Unlock()
	var due []timer
	for step := 1; step <= 8*len(w.buckets); step++ {
		w.mu.Lock()
		due = w.advance(due[:0])
		w.mu.Unlock()
		for i := range due {
			due[i].fn()
		}
		if fired {
			return step
		}
	}
	t.Fatalf("timer at %d ticks never fired within %d advances", ticks, 8*len(w.buckets))
	return -1
}

// TestWheelRoundsBoundary pins the revolution-boundary regression: a
// delay that is an exact multiple of tick·buckets used to carry one
// round too many (rounds = ticks/buckets instead of (ticks-1)/buckets)
// and fired a full revolution (~tick·buckets) late. A timer scheduled
// `ticks` advances ahead must fire on exactly the ticks-th advance —
// never early, and at a revolution multiple not one revolution late.
func TestWheelRoundsBoundary(t *testing.T) {
	const buckets = 8
	w := NewWheel(time.Millisecond, buckets)
	defer w.Stop()
	for _, ticks := range []int{1, 2, buckets - 1, buckets, buckets + 1, 2 * buckets, 2*buckets + 1, 3 * buckets} {
		if got := fireStep(t, w, ticks); got != ticks {
			t.Errorf("timer scheduled %d ticks ahead fired on advance %d", ticks, got)
		}
	}
}

// TestWheelAfterExactRevolution is the wall-clock face of the same
// regression: an After whose tick count equals the bucket count (one
// exact revolution) must fire after ~one revolution, not two. Margins
// are generous — late firing under scheduler pressure is allowed by the
// timer contract, but a full extra revolution is the bug.
func TestWheelAfterExactRevolution(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timer test; covered deterministically by TestWheelRoundsBoundary")
	}
	const (
		tick    = 20 * time.Millisecond
		buckets = 4
	)
	// d/tick + 1 == buckets, the exact-revolution placement.
	d := (buckets - 1) * tick
	w := NewWheel(tick, buckets)
	defer w.Stop()
	start := time.Now()
	done := make(chan time.Duration, 1)
	w.After(d, func() { done <- time.Since(start) })
	select {
	case got := <-done:
		if got < d {
			t.Fatalf("timer fired after %v, before the requested %v", got, d)
		}
		// Correct firing is ~tick·buckets (80ms); the regression fired at
		// ~2·tick·buckets (160ms). Split the difference with slack.
		if limit := tick*buckets + tick*buckets/2; got > limit {
			t.Fatalf("timer fired after %v, a revolution late (want ~%v, limit %v)",
				got, tick*buckets, limit)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}
