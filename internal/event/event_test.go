package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWheelFiresNoEarlierThanDelay(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	defer w.Stop()
	const d = 10 * time.Millisecond
	start := time.Now()
	done := make(chan time.Duration, 1)
	w.After(d, func() { done <- time.Since(start) })
	select {
	case got := <-done:
		if got < d {
			t.Fatalf("timer fired after %v, before the requested %v", got, d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestWheelManyTimersAcrossRounds(t *testing.T) {
	// A tiny wheel forces multi-round timers (rounds > 0) and bucket
	// sharing; every callback must still fire exactly once.
	w := NewWheel(200*time.Microsecond, 4)
	defer w.Stop()
	const n = 500
	var fired atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := time.Duration(i%13) * 300 * time.Microsecond
		w.After(d, func() { fired.Add(1); wg.Done() })
	}
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d timers fired", fired.Load(), n)
	}
	if fired.Load() != n {
		t.Fatalf("fired %d callbacks, want %d", fired.Load(), n)
	}
}

func TestWheelAfterFromCallback(t *testing.T) {
	// Callbacks may schedule further timers (the lock is not held while
	// firing).
	w := NewWheel(200*time.Microsecond, 8)
	defer w.Stop()
	done := make(chan struct{})
	w.After(time.Millisecond, func() {
		w.After(time.Millisecond, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("chained timer never fired")
	}
}

func TestWheelAfterOnStoppedWheelStillRuns(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	w.Stop()
	w.Stop() // idempotent
	done := make(chan struct{})
	w.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callback on stopped wheel never ran")
	}
}

func TestSlotsExclusiveAndInRange(t *testing.T) {
	const base, n = 10, 3
	s := NewSlots(base, n)
	if s.Base() != base || s.Len() != n {
		t.Fatalf("Base/Len = %d/%d, want %d/%d", s.Base(), s.Len(), base, n)
	}
	var held [n]atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				slot := s.Acquire()
				if slot < base || slot >= base+n {
					t.Errorf("slot %d out of range [%d, %d)", slot, base, base+n)
				}
				if !held[slot-base].CompareAndSwap(false, true) {
					t.Errorf("slot %d handed out twice concurrently", slot)
				}
				held[slot-base].Store(false)
				s.Release(slot)
			}
		}()
	}
	wg.Wait()
}

func TestGateCloseExcludesNewEntrants(t *testing.T) {
	g := NewGate(4)
	if g.Closed() {
		t.Fatal("new gate reports closed")
	}
	if !g.Enter(1) {
		t.Fatal("Enter on open gate failed")
	}
	closed := make(chan struct{})
	go func() { g.Close(); close(closed) }()
	// Close must wait for the current entrant.
	select {
	case <-closed:
		t.Fatal("Close returned while an entrant was inside")
	case <-time.After(20 * time.Millisecond):
	}
	g.Leave(1)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the entrant left")
	}
	if g.Enter(0) {
		t.Fatal("Enter succeeded on a closed gate")
	}
	if !g.Closed() {
		t.Fatal("Closed() false after Close")
	}
	g.Close() // idempotent
}

func TestGateConcurrentEnterLeaveClose(t *testing.T) {
	g := NewGate(8)
	var inside atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !g.Enter(shard) {
					return
				}
				inside.Add(1)
				inside.Add(-1)
				g.Leave(shard)
			}
		}(s)
	}
	time.Sleep(5 * time.Millisecond)
	g.Close()
	// After Close returns, no goroutine can be inside: every racer has
	// either left or been refused.
	if n := inside.Load(); n != 0 {
		t.Fatalf("%d entrants inside after Close returned", n)
	}
	close(stop)
	wg.Wait()
}
