package event

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Gate is a drain gate in the style of gvisor's sync.Gate: concurrent
// operations Enter and Leave it, and Close seals it and waits for the
// operations currently inside to finish — after which Enter always
// fails, so the protected resource can shut down knowing no operation
// is in flight.
//
// Unlike gvisor's single-counter gate, the count is sharded: callers
// that already hold a natural shard index (the runtime's root
// submitters enter under their registration shard's lock) stay on
// their own cache line, so the gate adds no cross-submitter traffic to
// the hot submit path.
//
// Memory ordering: Enter increments its shard *before* loading the
// closed flag, and Close stores the flag *before* summing the shards
// (Go atomics are sequentially consistent). So either Enter observes
// the close and backs out, or Close's sum observes the increment and
// waits for the matching Leave — an entrant can never slip through a
// closing gate unseen.
type Gate struct {
	closed atomic.Bool
	shards []gateShard
}

// gateShard is one cache-line-isolated entrant count.
type gateShard struct {
	n atomic.Int64
	_ [56]byte
}

// NewGate returns an open gate with n count shards (minimum 1).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{shards: make([]gateShard, n)}
}

// Enter tries to enter the gate on the given shard. It returns false if
// the gate is closed; on true the caller must Leave on the same shard
// when its operation completes.
func (g *Gate) Enter(shard int) bool {
	s := &g.shards[shard]
	s.n.Add(1)
	if g.closed.Load() {
		s.n.Add(-1)
		return false
	}
	return true
}

// Leave exits the gate on the shard passed to the matching Enter.
func (g *Gate) Leave(shard int) {
	g.shards[shard].n.Add(-1)
}

// Close seals the gate — every subsequent Enter fails — and waits for
// all current entrants to Leave. Entrants are short (a root
// registration), so the wait yields rather than parks. Close is
// idempotent and safe to call concurrently.
func (g *Gate) Close() {
	g.closed.Store(true)
	for i := 0; ; i++ {
		sum := int64(0)
		for s := range g.shards {
			sum += g.shards[s].n.Load()
		}
		if sum == 0 {
			return
		}
		if i < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Closed reports whether Close has been called.
func (g *Gate) Closed() bool { return g.closed.Load() }
