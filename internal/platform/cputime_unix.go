//go:build unix

package platform

import (
	"syscall"
	"time"
)

// ProcessCPUTime returns the process's cumulative CPU time (user +
// system, all threads) and whether the host can report it. The IdleBurn
// benchmark differences two readings around an idle window to measure
// what the worker pool burns while parked versus spinning — wall-clock
// time cannot see that, a sleeping and a spinning pool idle for the
// same duration.
func ProcessCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano()+ru.Stime.Nano()) * time.Nanosecond, true
}
