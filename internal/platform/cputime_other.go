//go:build !unix

package platform

import "time"

// ProcessCPUTime reports false on platforms without rusage; the
// IdleBurn benchmark then records wall-clock activity only and its
// CPU-ratio gate stands down.
func ProcessCPUTime() (time.Duration, bool) {
	return 0, false
}
