// Package platform describes the three HPC machines of the paper's
// evaluation (§6.1) as simulated platform descriptors. The benchmarks
// size their worker pools and NUMA-node queue counts from these; on
// hosts with fewer physical cores the workers multiplex (with bounded
// spin + yield), which preserves the contention structure — who fights
// for which lock — even though absolute throughput differs. See
// DESIGN.md's substitution table.
package platform

import "runtime"

// Machine is one evaluation platform.
type Machine struct {
	// Name as used in the paper's figures.
	Name string
	// Cores is the hardware thread count used in the evaluation.
	Cores int
	// NUMANodes drives the number of SPSC insertion queues (§3.1: "one
	// SPSC queue and lock per NUMA node").
	NUMANodes int
}

// The paper's three platforms.
var (
	// IntelXeon: 2× Xeon Platinum 8160, 48 cores, 2 sockets.
	IntelXeon = Machine{Name: "Intel Xeon", Cores: 48, NUMANodes: 2}
	// AMDRome: 2× EPYC 7H12, 128 cores (256 HW threads), 8 NUMA nodes.
	AMDRome = Machine{Name: "AMD Rome", Cores: 128, NUMANodes: 8}
	// Graviton2: 64 Neoverse N1 cores, single NUMA domain.
	Graviton2 = Machine{Name: "ARM Graviton2", Cores: 64, NUMANodes: 1}
)

// ByName returns a machine descriptor by paper name.
func ByName(name string) (Machine, bool) {
	for _, m := range []Machine{IntelXeon, AMDRome, Graviton2} {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}

// Workers returns the worker count to simulate this machine, capped at
// limit when limit > 0. A limit of 4×NumCPU is a practical ceiling for
// oversubscribed hosts; pass 0 to simulate the full machine.
func (m Machine) Workers(limit int) int {
	w := m.Cores
	if limit > 0 && w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultLimit is a reasonable worker cap for the current host: enough
// oversubscription to exhibit contention, not enough to drown in
// scheduling overhead.
func DefaultLimit() int {
	return 8 * runtime.NumCPU()
}
