// Package core is the task-based runtime itself: the Nanos6-style worker
// pool, task lifecycle, nesting and taskwait semantics, wired to the
// dependency systems (internal/deps), schedulers (internal/sched),
// allocators (internal/alloc) and tracer (internal/trace) that the paper
// evaluates individually and in combination.
package core

import (
	"runtime"
	"time"

	"repro/internal/deps"
)

// SchedulerKind selects a scheduler design (paper §3 and baselines).
type SchedulerKind uint8

const (
	// SchedSyncDTLock is the paper's synchronized scheduler: SPSC buffer
	// queues + Delegation Ticket Lock (Listing 5).
	SchedSyncDTLock SchedulerKind = iota
	// SchedCentralPTLock is the "w/o DTLock" variant: one PTLock guards
	// the central queue for both insertion and retrieval.
	SchedCentralPTLock
	// SchedBlocking is a GOMP-style mutex+condvar central queue.
	SchedBlocking
	// SchedWorkStealing is an LLVM-OpenMP-style per-worker deque design.
	SchedWorkStealing
)

// DepsKind selects a dependency system implementation (paper §2).
type DepsKind uint8

const (
	// DepsWaitFree is the paper's ASM-based wait-free system.
	DepsWaitFree DepsKind = iota
	// DepsLocked is the fine-grained-locking baseline ("w/o wait-free
	// dependencies").
	DepsLocked
)

// AllocKind selects the task-memory allocator (paper §4).
type AllocKind uint8

const (
	// AllocPooled emulates jemalloc's per-thread caches.
	AllocPooled AllocKind = iota
	// AllocSerial emulates a serializing system allocator ("w/o
	// jemalloc").
	AllocSerial
)

// PolicyKind selects the unsynchronized scheduling policy.
type PolicyKind uint8

const (
	// PolicyFIFO runs tasks in readiness order (Nanos6 default).
	PolicyFIFO PolicyKind = iota
	// PolicyLIFO runs the most recently readied task first.
	PolicyLIFO
	// PolicyLocality keeps tasks on the NUMA node whose insertion queue
	// produced them (only meaningful with SchedSyncDTLock).
	PolicyLocality
)

// NoiseConfig simulates OS noise for the Figure 11 experiment: after the
// DTLock owner has performed AfterServes service operations (delegation
// serves or SPSC drains), it is stalled for Duration as if a kernel
// interrupt had preempted it, and the interval is logged as a kernel
// event in the trace.
type NoiseConfig struct {
	AfterServes int
	Duration    time.Duration
}

// Config assembles a runtime variant.
type Config struct {
	// Workers is the number of worker threads (simulated cores). 0
	// selects runtime.NumCPU().
	Workers int
	// NUMANodes controls the number of SPSC insertion queues of the
	// sync scheduler. 0 selects 1.
	NUMANodes int
	// SPSCCap is the capacity of each insertion queue (0: 256).
	SPSCCap int

	// Domains is the number of NUMA runtime domains the runtime is
	// sharded into: each domain owns its own scheduler stack, allocator
	// free lists, pending counters and park/wake state, with producers
	// enqueueing into their home domain and work crossing domains only
	// through the bounded shedding protocol (see topology.go for the
	// slot→domain partition and DESIGN.md for the protocol). 0 selects
	// 1 (the unsharded runtime — no behavior change). Clamped to
	// Workers; the blocking scheduler forces 1 (its workers sleep
	// inside a single condvar-guarded queue).
	Domains int

	// ShedBatch bounds the work-shedding protocol: after a worker's
	// home domain comes up empty on two consecutive polls, it may steal
	// at most ShedBatch tasks from one remote domain before it must
	// re-earn the right with another empty-recheck cycle. 0 selects 4.
	ShedBatch int

	// RootShards is the number of shards of the root dependency domain:
	// concurrent Submit/Run callers whose accesses hash to different
	// shards register in parallel, each shard's registration staying
	// single-writer behind its own lock. Rounded up to a power of two
	// and clamped to deps.MaxRootShards. 0 selects a default scaled to
	// the worker count; 1 reproduces the former fully-serialized
	// (regMu-style) root registration.
	RootShards int

	// EventSlots is the number of exclusive completer slots that
	// external event decrements (EventCounter.Done from non-worker
	// goroutines, timer-wheel firings) borrow to run the deferred
	// release path. It bounds how many external completions can release
	// concurrently — never correctness; excess completers wait for a
	// slot. 0 selects 4.
	EventSlots int
	// EventTick is the granularity of the shared timer wheel behind
	// Ctx.After/AfterFunc (0: 100µs). Timers never fire early; they
	// round up to the next tick.
	EventTick time.Duration

	// ServeSlots is the number of exclusive inline-serving slots for
	// SubmitReq: when one is free, the submitting goroutine executes
	// the request's tasks itself (becoming a temporary worker) instead
	// of dispatching the root through the scheduler and sleeping on the
	// completion latch — the two cross-goroutine hand-offs that
	// dominate small-request serving latency. Excess concurrent
	// submitters fall back to the dispatch path, so the count bounds
	// inline parallelism, never correctness. 0 selects 2; negative
	// disables inline serving entirely.
	ServeSlots int

	// MinWorkers is the number of workers the elastic pool keeps out of
	// the parking ladder: workers with index below it idle by
	// spin-yielding forever (the pre-elastic behaviour), trading idle CPU
	// for immunity to wake-up latency. The remaining workers park after
	// their idle spin budget runs out and are woken on demand. 0 (the
	// default) lets every worker park; values above Workers clamp.
	MinWorkers int

	// IdleSpin is the per-worker idle spin budget: how many consecutive
	// empty scheduler polls a worker tolerates before parking on its
	// wake channel. 0 selects the default (1024); negative disables
	// parking entirely — every worker spins, the pure-spin baseline the
	// IdleBurn benchmark compares against. The blocking scheduler
	// ignores both knobs: its workers already sleep in the scheduler's
	// own condvar.
	IdleSpin int

	Scheduler SchedulerKind
	Deps      DepsKind
	Alloc     AllocKind
	Policy    PolicyKind

	// EDF makes the top priority level deadline-aware: the highest
	// class pops earliest-deadline-first (sched.EDF) instead of in the
	// configured Policy order, using the absolute deadlines tasks carry
	// via the Deadline clause (deadline-less tasks sort last, FIFO among
	// themselves). Lower levels keep the configured policy. With the
	// work-stealing scheduler the ordering is per-deque only — see
	// sched.WorkStealing.
	EDF bool

	// PinWorkers locks each worker goroutine to an OS thread, the
	// closest Go equivalent of the paper's one-thread-per-core binding.
	PinWorkers bool

	// OnError selects how task errors propagate through a submission
	// scope: FailFast (default) cancels the scope on the first error so
	// unstarted tasks drain without executing; CollectAll runs every
	// task and joins the errors at the root.
	OnError ErrorPolicy

	// TraceCapacity, when non-zero, enables the instrumentation backend
	// with that many events per core.
	TraceCapacity int

	// Noise optionally injects simulated OS noise (Figure 11).
	Noise NoiseConfig
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.NUMANodes <= 0 {
		c.NUMANodes = 1
	}
	if c.SPSCCap <= 0 {
		c.SPSCCap = 256
	}
	if c.Domains <= 0 {
		c.Domains = 1
	}
	if c.Domains > c.Workers {
		c.Domains = c.Workers
	}
	if c.Domains > 64 {
		// The queue-state word encodes the entry's domain in 8 bits and
		// real hosts top out far below this; 64 matches MaxRootShards.
		c.Domains = 64
	}
	if c.Scheduler == SchedBlocking {
		// Blocking workers sleep inside Get on one shared condvar; they
		// can neither poll a home domain nor run the shed protocol.
		c.Domains = 1
	}
	if c.ShedBatch <= 0 {
		c.ShedBatch = 4
	}
	if c.RootShards <= 0 {
		// Enough shards that submitter counts well above the worker
		// count still mostly avoid lock collisions, capped by the
		// lease bitmask width.
		c.RootShards = 4 * c.Workers
		if c.RootShards < 16 {
			c.RootShards = 16
		}
	}
	// One shared normalization with NewRootDomain, so introspection and
	// worker-slot sizing always match the domain actually built.
	c.RootShards = deps.NormalizeShards(c.RootShards)
	if c.EventSlots <= 0 {
		c.EventSlots = 4
	}
	if c.ServeSlots == 0 {
		c.ServeSlots = 2
	} else if c.ServeSlots < 0 {
		c.ServeSlots = 0
	}
	if c.IdleSpin == 0 {
		c.IdleSpin = 1024
	}
	if c.MinWorkers < 0 {
		c.MinWorkers = 0
	}
	if c.MinWorkers > c.Workers {
		c.MinWorkers = c.Workers
	}
	return c
}

// Variant names a preset runtime configuration used throughout the
// paper's evaluation (§6).
type Variant string

// The ablation variants of Figures 4-6 and the runtime-comparison
// stand-ins of Figures 7-9. GOMPLike and LLVMLike are *design* stand-ins
// built from this repository's own baselines (blocking central queue,
// work-stealing deques), not bindings to the external runtimes; see
// DESIGN.md for the substitution rationale.
const (
	VariantOptimized      Variant = "optimized"
	VariantNoJemalloc     Variant = "w/o jemalloc"
	VariantNoWaitFreeDeps Variant = "w/o wait-free dependencies"
	VariantNoDTLock       Variant = "w/o DTLock"
	VariantGOMPLike       Variant = "GOMP-like"
	VariantLLVMLike       Variant = "LLVM-like"
	VariantIntelLike      Variant = "Intel-like"
)

// Variants returns the ablation set of Figures 4-6 in plot order.
func Variants() []Variant {
	return []Variant{VariantOptimized, VariantNoJemalloc, VariantNoWaitFreeDeps, VariantNoDTLock}
}

// ComparisonVariants returns the runtime-comparison set of Figures 7-9.
func ComparisonVariants() []Variant {
	return []Variant{VariantOptimized, VariantGOMPLike, VariantLLVMLike, VariantIntelLike}
}

// ConfigFor returns the Config preset of a variant with the given worker
// and NUMA-node counts.
func ConfigFor(v Variant, workers, numaNodes int) Config {
	c := Config{Workers: workers, NUMANodes: numaNodes, PinWorkers: true}
	switch v {
	case VariantOptimized:
		// Sync scheduler + wait-free deps + pooled allocator.
	case VariantNoJemalloc:
		c.Alloc = AllocSerial
	case VariantNoWaitFreeDeps:
		c.Deps = DepsLocked
	case VariantNoDTLock:
		c.Scheduler = SchedCentralPTLock
	case VariantGOMPLike:
		c.Scheduler = SchedBlocking
		c.Deps = DepsLocked
		c.Alloc = AllocSerial
	case VariantLLVMLike:
		c.Scheduler = SchedWorkStealing
		c.Deps = DepsLocked
	case VariantIntelLike:
		c.Scheduler = SchedWorkStealing
		c.Deps = DepsLocked
		c.Policy = PolicyLIFO
	default:
		panic("core: unknown variant " + string(v))
	}
	return c
}
