package core

import (
	"math/rand"
	"os"
	"testing"
)

// TestEventDifferentialStress is the external-events dimension of the
// differential suite: the same randomized dependency graphs as
// TestPriorityDifferentialStress, but with every second task deferring
// its oracle unwind — the version bump and exclusivity exit — into an
// event completion (a raw goroutine for half of those, the shared
// timer wheel for the rest). If the runtime released a parked task's
// dependencies at body return instead of at the final decrement, a
// successor would run while the predecessor's writer count is still
// raised or its version not yet bumped, and the oracle reports it.
// The evented run is also priority-tagged, so the dimension composes
// with priority reordering; both runs must be oracle-clean and agree
// on the final per-address versions.
//
// Rounds scale like the other stress dimensions: REPRO_STRESS_EVENTS
// ("on", the CI stress-matrix cell) deepens the search, -short trims
// it for the quick loop.
func TestEventDifferentialStress(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 5
	}
	if os.Getenv("REPRO_STRESS_EVENTS") == "on" {
		rounds = 40
	}
	baseSeed := int64(0x6e71) // bump to re-roll the whole suite
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				seed := baseSeed + int64(round)
				spec := genPriSpec(rand.New(rand.NewSource(seed)))
				plain := runPriSpec(t, sk, spec, false, false, false, 1)
				for _, nd := range domainsUnderStress() {
					if nd > 1 && sk == SchedBlocking {
						continue // blocking forces Domains=1; skip the duplicate
					}
					evented := runPriSpec(t, sk, spec, true, true, false, nd)
					for a := range evented {
						if evented[a] != plain[a] {
							t.Fatalf("seed %d domains %d: final version of cell %d differs: evented %d vs plain %d",
								seed, nd, a, evented[a], plain[a])
						}
					}
				}
			}
		})
	}
}
