package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/counter"
	"repro/internal/deps"
	"repro/internal/event"
	"repro/internal/locks"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Trace kind aliases keep task.go free of a second import block.
const (
	traceTaskwaitStart = trace.KTaskwaitStart
	traceTaskwaitEnd   = trace.KTaskwaitEnd
)

// epoch anchors the runtime's monotonic deadline clock: absolute
// deadlines are nanoseconds since this process-wide instant, so they
// fit an int64 with centuries of headroom and compare with plain
// integer order inside the EDF heap.
var epoch = time.Now()

// NowNS returns the current time on the runtime's monotonic deadline
// clock: nanoseconds since the package epoch. Deadline clauses carry
// absolute values on this clock; WithDeadline-style helpers resolve
// relative durations by adding them to NowNS().
func NowNS() int64 { return int64(time.Since(epoch)) }

// bypassSlot is one worker's immediate-successor hand-off: while the
// worker is inside deps.Unregister (armed), the first task its release
// cascade readies is parked here instead of round-tripping through the
// scheduler, and execute returns it as the worker's next task. The
// slot is strictly worker-local — armed and next are only ever touched
// by the owning worker's goroutine — and padded so neighbouring slots
// never false-share.
type bypassSlot struct {
	armed bool
	next  *Task
	_     [48]byte
}

// ctxSlot is one worker's reusable execution context, padded to its
// own cache line (Ctx is three words; see the size pin in core_test).
// Reusing it keeps the per-execute Ctx from escaping to the heap;
// bodies only observe the Ctx while they run (an API guarantee), and
// nested execution (taskwait helping) saves and restores the task
// field around the inner body.
type ctxSlot struct {
	ctx Ctx
	_   [40]byte
}

// Runtime is a Nanos6-style task-based runtime instance: a pool of
// worker goroutines (one per simulated core, optionally OS-thread
// pinned), a dependency system, a scheduler and a task allocator, wired
// according to Config.
type Runtime struct {
	cfg    Config
	deps   deps.System
	tracer *trace.Tracer

	// domains are the per-NUMA-domain runtime shards: each owns its own
	// scheduler policy stack, allocator free lists, pending counters and
	// shed/retention accounting. ndomains == len(domains) (cached for
	// the hot paths); slotDom materializes the slot→domain partition of
	// topology.go for every thread index. With Domains = 1 there is
	// exactly one shard and every formula collapses to the pre-sharding
	// behaviour.
	domains  []domain
	ndomains int
	slotDom  []int32

	// elevated counts queued-but-unclaimed tasks above priority level 0
	// across ALL domains. Priority, deadline and inheritance ordering
	// are runtime-wide promises, not per-domain ones: a worker whose
	// home domain holds no elevated work grabs a remote domain's
	// elevated task *eagerly* (takeElevated), outside the bounded
	// batch-shedding protocol, so QoS work is never stranded behind a
	// domain boundary while only batch work pays the locality
	// discipline. One shared counter keeps the common case (no elevated
	// work anywhere) a single read of a read-mostly line per poll.
	elevated paddedCount

	// global is the completion parent of every root task submitted
	// through Run/Submit: it counts live roots and never completes.
	// Root dependency chains do not live under it — they live in the
	// sharded rootDom, so unrelated submissions register in parallel.
	global Task

	// rootDom is the sharded root dependency domain. A submission
	// leases the shards its access addresses hash to (ascending order,
	// so cross-shard submissions cannot deadlock); the lease's lowest
	// shard doubles as the submitter slot, the worker index
	// Workers+shard whose thread-local structures (dependency mailbox,
	// allocator free list, scheduler insertion, trace buffer) the
	// lease holder uses exclusively.
	rootDom *deps.RootDomain

	// live counts created-but-not-fully-completed tasks, sharded per
	// worker so the two hottest lifecycle events (create, complete)
	// never ping-pong a shared cache line. The sum is exact at
	// quiescence, which is the only time anyone reads it (LiveTasks
	// diagnostics, the worker stop check).
	live     *counter.Sharded
	stopping atomic.Bool
	wg       sync.WaitGroup

	// Elastic worker pool state. parker holds the per-worker parking
	// channels and per-domain state words; each domain's pending count
	// (raised in schedAdd, lowered in schedTook) is the pre-park
	// recheck's primary signal; parkRecheck is the recheck closure,
	// built once at New so the park path never allocates — it sweeps
	// every domain's pending count so a worker never parks while any
	// domain holds shed-reachable work; elastic gates the whole
	// mechanism — false for the blocking scheduler (its workers sleep
	// in the scheduler's own condvar) and for IdleSpin<0 (the pure-spin
	// baseline).
	parker      *sched.Parker
	parkRecheck func() bool
	elastic     bool

	// bypass and wctx are per-worker hot-path state (successor bypass
	// slots and reusable execution contexts), indexed by worker; bypass
	// has extra slots for the submitter and event-completer indices so
	// the ready callback can index it unconditionally (the extra slots
	// are never armed).
	bypass []bypassSlot
	wctx   []ctxSlot

	// share is the chunk-aware hand-off lane for taskloop steal
	// descriptors (see loop.go): loop recruitment bypasses the policy
	// queues. loopsActive counts loop tasks created but not fully
	// completed and gates the lane polls, so runs without loops never
	// touch it. shareEnabled is false for the blocking scheduler, whose
	// workers park in a condvar inside Get and would never observe the
	// lane — descriptors then route through the scheduler (whose Add
	// wakes a sleeper) like any other task.
	share        *sched.WorkShare[Task]
	shareEnabled bool
	loopsActive  atomic.Int64

	// External-event machinery (see event.go): evSlots pools the
	// exclusive thread indices non-worker goroutines borrow to run the
	// deferred release path, wheel is the shared timer backing
	// Ctx.After/AfterFunc, and gate seals root submission for Drain
	// (entered under the registration lease's shard lock, so it adds no
	// cross-submitter cache traffic). eventsHeld counts tasks parked
	// between body return and final event decrement; together with the
	// live counter it defines Drain's quiescence.
	evSlots    *event.Slots
	wheel      *event.Wheel
	gate       *event.Gate
	eventsHeld paddedCount

	// Inline-serving slots (see SubmitReq): serveMu[i] guards the
	// exclusive use of thread index serveBase+i by one inline-serving
	// submitter at a time. Acquisition is TryLock-only — a busy pool
	// falls back to the dispatch path — so holding a slot while
	// executing arbitrary task bodies can never deadlock another
	// goroutine on it.
	serveMu   []serveSlot
	serveBase int

	// noise state for the Figure 11 experiment. serves is sharded for
	// the same reason as live; it is only touched while the experiment
	// is armed (noise configured and not yet fired).
	serves    *counter.Sharded
	noiseDone atomic.Bool
}

// serveSlot pads each inline-serving mutex onto its own cache line.
type serveSlot struct {
	mu sync.Mutex
	_  [56]byte
}

// acquireServe claims a free inline-serving thread index, or returns -1
// when the pool is exhausted (or disabled). Never blocks.
func (rt *Runtime) acquireServe() int {
	for i := range rt.serveMu {
		if rt.serveMu[i].mu.TryLock() {
			return rt.serveBase + i
		}
	}
	return -1
}

// releaseServe returns a slot claimed by acquireServe.
func (rt *Runtime) releaseServe(slot int) {
	rt.serveMu[slot-rt.serveBase].mu.Unlock()
}

// paddedCount is one cache-line-isolated atomic counter (the per-level
// pending counts below; too few and too structured for counter.Sharded).
type paddedCount struct {
	v atomic.Int64
	_ [56]byte
}

// domain is one NUMA-domain shard of the runtime: its own scheduler
// instance (the full per-level policy stack, EDF included), its own
// allocator free lists, its own pending counters, and the shed- and
// affinity-accounting the multi-domain stats report. Every per-domain
// scheduler and allocator is sized for the FULL slot space
// (topology.go), so any thread index is valid against any domain —
// cross-domain stealing needs no index translation.
type domain struct {
	sched sched.Scheduler[*Task]
	alloc alloc.Allocator[Task]

	// pending counts this domain's scheduler-queued tasks (raised in
	// schedAdd/promote, lowered in schedTook). It is the domain's half
	// of the Dekker no-lost-wakeup argument and the shed protocol's
	// victim signal.
	pending paddedCount

	// priPending counts this domain's scheduler-queued tasks per
	// elevated priority level (level 0 is never counted — there is no
	// lower class to protect from it). The successor-bypass gate reads
	// the levels above a candidate's own before parking it, so a
	// low-priority immediate successor cannot jump a queued
	// high-priority task of its own domain. Counting covers exactly the
	// tasks routed through sched.Add/Get — the work-share lane's steal
	// descriptors are a bounded-size fast path outside it (see
	// DESIGN.md). Each level sits on its own cache line; runs that
	// never set a priority only ever *read* these (always-zero) lines
	// on the bypass path, which stays cached and contention-free.
	priPending [sched.PriorityLevels]paddedCount

	// shedIn/shedOut count tasks this domain stole from others /
	// surrendered to thieves; executed/executedHome count tasks
	// executed by this domain's slots and the subset whose home domain
	// this is (the affinity-retention numerator). All four are only
	// touched on multi-domain runtimes.
	shedIn       atomic.Uint64
	shedOut      atomic.Uint64
	executed     atomic.Uint64
	executedHome atomic.Uint64
	_            [32]byte
}

// qstate encoding: a queued task's qstate word is dom<<8 | (level+1) —
// the domain whose scheduler holds the entry (all live entries of one
// task stay in one domain; promote re-ranks in place) and the priority
// level the pending counts were charged to. 0 means not queued.
const qstateDomShift = 8

// schedAdd routes a task to the producing slot's home domain,
// maintaining the domain's per-level pending counts for elevated tasks
// and its elastic pending count. Every scheduler insertion must go
// through it (ready callback, commutative re-enqueue, shed re-homing)
// so the counts match what Get can return. The queue level is the
// task's *effective* priority, and level and domain are recorded in
// qstate before the insertion so a concurrent promotion (promote) can
// re-rank the entry and move the right domain's pending counts with
// it. The order against wakeWorker is the lost-wakeup argument's
// producer half: pending is raised (sequentially consistent) before
// the parked count is read, so a worker concurrently publishing itself
// as parked either sees pending > 0 in its recheck or is seen here.
func (rt *Runtime) schedAdd(t *Task, worker int) {
	dom := int(rt.slotDom[worker])
	d := &rt.domains[dom]
	lvl := sched.ClampPriority(int(t.epri.Load()))
	t.qstate.Store(int32(dom<<qstateDomShift | (lvl + 1)))
	if lvl > 0 {
		d.priPending[lvl].v.Add(1)
		rt.elevated.v.Add(1)
	}
	d.pending.v.Add(1)
	d.sched.Add(t, worker)
	rt.wakeWorker(dom)
}

// schedTook books a task obtained from domain from's sched.Get/TryGet
// out of the pending counts and claims it for execution: the Swap on
// qstate is what makes a promotion's duplicate queue entry
// exactly-once — the first entry to pop wins the task, later (stale)
// entries observe qstate 0 and dissolve into a nil return. The
// per-level pending decrement uses the queue level and domain the
// winning Swap observed, which is where the increments were moved to,
// so the counts stay exact under concurrent promotion (a task's live
// entries all sit in one domain, so for a genuine claim the encoded
// domain and from agree). A recycled-shell entry (the task completed
// and the shell was re-queued for a new incarnation) is
// indistinguishable from a genuine one and harmlessly claims the new
// incarnation — it is ready and queued either way.
func (rt *Runtime) schedTook(t *Task, from int) *Task {
	if t == nil {
		return nil
	}
	rt.domains[from].pending.v.Add(-1)
	s := t.qstate.Swap(0)
	if s == 0 {
		return nil // stale duplicate left behind by a promotion re-push
	}
	if lvl := int(s) & (1<<qstateDomShift - 1); lvl > 1 {
		rt.domains[s>>qstateDomShift].priPending[lvl-1].v.Add(-1)
		rt.elevated.v.Add(-1)
	}
	return t
}

// promote raises t's effective priority to at least lvl and, when t is
// currently queued below lvl, re-ranks it: the queue entry cannot be
// removed from the policy lanes, so a *duplicate* entry is pushed at
// the new level and qstate's Swap-claim in schedTook makes whichever
// entry pops first the unique executor. Returns whether the effective
// priority was actually raised — the transitive inheritance walk stops
// at tasks already at or above the target level (which also bounds the
// walk: epri is monotone per incarnation, so any task is raised to a
// given level at most once).
//
// One narrow window is accepted as best-effort: a task between its
// ready callback and schedAdd's qstate store observes the epri raise
// (schedAdd reads epri after) but a task *executing* or already claimed
// keeps running at its old level — promotion cannot preempt.
func (rt *Runtime) promote(t *Task, lvl, worker int) bool {
	for {
		cur := t.epri.Load()
		if int(cur) >= lvl {
			return false
		}
		if t.epri.CompareAndSwap(cur, int32(lvl)) {
			break
		}
	}
	for {
		s := t.qstate.Load()
		cur := int(s) & (1<<qstateDomShift - 1)
		if s == 0 || cur >= lvl+1 {
			// Not queued (the raise alone suffices: a later schedAdd
			// reads epri) or already ranked at/above the target.
			return true
		}
		dom := int(s) >> qstateDomShift
		if t.qstate.CompareAndSwap(s, int32(dom<<qstateDomShift|(lvl+1))) {
			// Move the owning domain's pending counts to the new level
			// and push the duplicate into that same domain (all live
			// entries of a task stay in one domain, which is what lets
			// schedTook charge the encoded domain); counts before Add,
			// Add before wake, as in schedAdd.
			d := &rt.domains[dom]
			if cur > 1 {
				d.priPending[cur-1].v.Add(-1)
			} else {
				// Promoted out of level 0: newly elevated (a move between
				// elevated levels leaves the global count unchanged).
				rt.elevated.v.Add(1)
			}
			d.priPending[lvl].v.Add(1)
			d.pending.v.Add(1)
			d.sched.Add(t, worker)
			rt.wakeWorker(dom)
			return true
		}
	}
}

// promotePreds is the priority-inheritance walk: promote every
// recorded immediate predecessor of n to at least lvl, recursing into
// the predecessors of any task the promotion actually raised. The
// recorded slots are revalidated by generation (deps.VisitPreds), and
// a predecessor that already completed — or whose shell was recycled
// mid-walk — is skipped; every mutation on a stale shell is a CAS on
// monotone state, so the worst case is a bounded scheduling anomaly
// (an unrelated task rides one level high), never double execution.
func (rt *Runtime) promotePreds(n *deps.Node, lvl, worker int) {
	n.VisitPreds(func(p *deps.Node) {
		pt, ok := p.Payload.(*Task)
		if !ok || pt == nil || pt.alive.Load() <= 0 {
			return
		}
		if rt.promote(pt, lvl, worker) {
			rt.promotePreds(p, lvl, worker)
		}
	})
}

// wakeWorker wakes at most one parked worker on behalf of domain dom's
// queue; producers call it after making work visible (scheduler
// insertion). With no worker parked — or elastic parking disabled — it
// is a single atomic load. The domain's pending count is re-read here,
// after the insertion, and handed to the parker's wake-throttle: when
// enough woken-but-not-yet-polling workers already cover the backlog,
// the redundant claim scan is skipped (burst producers would otherwise
// pay one scan per enqueue).
func (rt *Runtime) wakeWorker(dom int) {
	if rt.elastic {
		rt.parker.WakeOne(dom, rt.domains[dom].pending.v.Load())
	}
}

// wakeWorkerLane is wakeWorker for producers whose work sits outside
// the domain pending counts (the taskloop work-share lane): the
// throttle is disabled, so a parked worker is always claimed if one
// exists.
func (rt *Runtime) wakeWorkerLane(dom int) {
	if rt.elastic {
		rt.parker.WakeOne(dom, -1)
	}
}

// higherPriPending reports whether any task with a priority level above
// pri is currently queued in domain dom's scheduler. It is a
// conservative best-effort read (concurrent Adds and Gets move the
// counts), used to keep the successor bypass from starving queued
// higher-priority work of its own domain — remote domains' backlogs
// are their own workers' (and the shed protocol's) business.
func (rt *Runtime) higherPriPending(pri int8, dom int) bool {
	d := &rt.domains[dom]
	for l := int(pri) + 1; l < sched.PriorityLevels; l++ {
		if d.priPending[l].v.Load() > 0 {
			return true
		}
	}
	return false
}

// New builds and starts a runtime. The caller must Close it.
func New(cfg Config) *Runtime {
	rt := build(cfg)
	rt.start()
	return rt
}

// build constructs a fully wired runtime without starting its worker
// pool; start launches it. The split exists for the deterministic
// shed-protocol tests, which enqueue into a quiescent runtime and
// drive shedTake by hand.
func build(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{cfg: cfg, ndomains: cfg.Domains}
	rt.rootDom = deps.NewRootDomain(cfg.RootShards)
	// The thread-index space every per-"worker" structure is sized for
	// and its partition into NUMA domains are defined ONCE, in
	// topology.go; slotDom materializes the slot→domain formula.
	// Constructors below that take a worker count and add one slot
	// themselves receive slots-1.
	slots := cfg.Workers + cfg.RootShards + cfg.EventSlots + cfg.ServeSlots
	rt.slotDom = make([]int32, slots)
	for s := range rt.slotDom {
		rt.slotDom[s] = int32(slotDomain(s, cfg.Workers, cfg.Domains))
	}
	rt.evSlots = event.NewSlots(cfg.Workers+cfg.RootShards, cfg.EventSlots)
	rt.wheel = event.NewWheel(cfg.EventTick, 0)
	rt.gate = event.NewGate(cfg.RootShards)
	rt.live = counter.NewSharded(slots)
	rt.serves = counter.NewSharded(slots)
	rt.bypass = make([]bypassSlot, slots)
	rt.serveMu = make([]serveSlot, cfg.ServeSlots)
	rt.serveBase = cfg.Workers + cfg.RootShards + cfg.EventSlots
	// Every slot gets a reusable execution context, not just the
	// workers: inline-serving submitters execute task bodies on their
	// own index.
	rt.wctx = make([]ctxSlot, slots)
	shareSlots := cfg.Workers
	if shareSlots > 16 {
		shareSlots = 16
	}
	rt.share = sched.NewWorkShare[Task](shareSlots)
	rt.shareEnabled = cfg.Scheduler != SchedBlocking
	// Elastic parking is off for the blocking scheduler (its workers
	// already sleep inside Get) and for the pure-spin baseline. The
	// recheck closure is built once here: Park calls it after the worker
	// is visible as parked, and it must observe every signal a producer
	// publishes before waking — the scheduler pending count, the
	// work-share lane, and the stop flag (Close never strands a worker
	// that parked between the flag store and WakeAll).
	rt.elastic = cfg.Scheduler != SchedBlocking && cfg.IdleSpin >= 0
	rt.parker = sched.NewParker(cfg.Workers, cfg.Domains,
		func(id int) int { return int(rt.slotDom[id]) })
	rt.parkRecheck = func() bool {
		if rt.stopping.Load() {
			return true
		}
		// Every domain's pending count, not just the parker's own: a
		// worker whose home is idle must stay awake while any domain
		// holds work it could reach through the shed protocol (the
		// cross-domain half of the no-lost-wakeup argument).
		for d := range rt.domains {
			if rt.domains[d].pending.v.Load() > 0 {
				return true
			}
		}
		return rt.loopsActive.Load() > 0 && rt.share.Any()
	}
	for i := range rt.wctx {
		rt.wctx[i].ctx = Ctx{rt: rt, worker: i}
	}
	if cfg.TraceCapacity > 0 {
		rt.tracer = trace.New(slots-1, cfg.TraceCapacity)
	}

	// ready routes a now-runnable task to the scheduler — unless the
	// calling worker is inside deps.Unregister with a free bypass slot,
	// in which case the first eligible successor is handed straight
	// back to that worker's execute loop (Nanos6's immediate-successor
	// optimization). ReadyFn fires exactly once per task, so parking
	// the task in the slot instead of the scheduler preserves
	// exactly-once scheduling; commutative tasks (which may have to be
	// re-enqueued after losing the token race) and tasks of cancelled
	// scopes always take the scheduler path. The bypass also yields to
	// the priority dimension: if a task of a *higher* level than the
	// candidate successor is queued, the successor goes through the
	// scheduler — where the priority policy orders the two — instead of
	// jumping the queue on this worker.
	ready := func(n *deps.Node, worker int) {
		t := n.Payload.(*Task)
		dom := int(rt.slotDom[worker])
		// The readying slot's domain is the task's home for the
		// affinity-retention accounting, whichever routing wins below
		// (a bypassed or lane-claimed task executes on this domain by
		// construction).
		t.home = int8(dom)
		if bs := &rt.bypass[worker]; bs.armed && bs.next == nil &&
			!n.HasCommutative() && t.sc.abortCause() == nil &&
			!rt.higherPriPending(int8(t.epri.Load()), dom) {
			bs.next = t
			return
		}
		// Taskloop steal descriptors prefer the work-share hand-off lane
		// over the policy queues; a full (or disabled) lane falls
		// through to the ordinary scheduler (the lane is a fast path,
		// never required).
		if l := t.loop; l != nil && l.owner != t && rt.shareEnabled && rt.share.Offer(t) {
			// The Offer's CAS made the descriptor visible; wake a parked
			// worker to claim it (the lane sits outside the scheduler's
			// pending count, but Park's recheck sweeps it via share.Any).
			rt.wakeWorkerLane(dom)
			return
		}
		rt.schedAdd(t, worker)
	}
	switch cfg.Deps {
	case DepsWaitFree:
		wf := deps.NewWaitFree(ready, slots-1)
		// Recycle task shells whose access storage quiesced only after
		// the task had fully completed (e.g. early-forwarded readers
		// that finish before their predecessor releases to them).
		wf.OnQuiescent(func(n *deps.Node, worker int) {
			t := n.Payload.(*Task)
			t.reset()
			rt.allocPut(worker, t)
		})
		rt.deps = wf
	case DepsLocked:
		rt.deps = deps.NewLocked(ready, slots-1)
	default:
		panic(fmt.Sprintf("core: unknown deps kind %d", cfg.Deps))
	}

	// The configured policy becomes one *level* of the bounded-levels
	// priority policy (paper §3.2: new scheduling policies are policy
	// wrappers, not scheduler rework). Priority-free runs stay on the
	// level-0 fast path, so the wrapper costs one predictable branch.
	// Lane selection reads the *effective* priority so a
	// priority-inheritance promotion re-ranks where the task queues.
	priOf := func(t *Task) int { return int(t.epri.Load()) }
	// In deadline-aware mode (Config.EDF) the top level orders by
	// absolute deadline instead of the configured policy.
	var dlOf func(t *Task) int64
	if cfg.EDF {
		dlOf = func(t *Task) int64 { return t.deadline }
	}
	mkInner := func() sched.Policy[*Task] {
		switch cfg.Policy {
		case PolicyLIFO:
			return sched.NewLIFO[*Task]()
		case PolicyLocality:
			return sched.NewLocality[*Task](cfg.Workers, cfg.NUMANodes)
		default:
			return sched.NewFIFO[*Task]()
		}
	}
	mkPolicy := func() sched.Policy[*Task] {
		return sched.NewPriorityLevels(func(level int) sched.Policy[*Task] {
			if dlOf != nil && level == sched.PriorityLevels-1 {
				return sched.NewEDF(dlOf)
			}
			return mkInner()
		}, priOf)
	}

	hooks := sched.Hooks{
		OnServe: func(owner, served int) {
			rt.tracer.Emit(owner, trace.KServe, uint64(served))
			rt.maybeInjectNoise(owner)
		},
		OnDrain: func(owner, n int) {
			rt.tracer.Emit(owner, trace.KDrain, uint64(n))
			// Drains count as service activity for the noise trigger:
			// on hosts with few physical cores delegation serves are
			// rare (the lock is never observed busy), but the owner is
			// just as vulnerable to an interrupt while draining.
			rt.maybeInjectNoise(owner)
		},
	}
	// One full scheduler stack and allocator per domain, each sized for
	// the complete slot space: any thread index may Add to (or TryGet
	// from) any domain, which is what makes cross-domain stealing and
	// promotion re-pushes index-translation-free. Workers only Get from
	// their home domain; remote domains are reached through shedTake's
	// bounded TryGet.
	rt.domains = make([]domain, cfg.Domains)
	for i := range rt.domains {
		d := &rt.domains[i]
		switch cfg.Scheduler {
		case SchedSyncDTLock:
			d.sched = sched.NewSync(mkPolicy(), cfg.Workers, slots-cfg.Workers, cfg.NUMANodes, cfg.SPSCCap, hooks)
		case SchedCentralPTLock:
			d.sched = sched.NewCentral(mkPolicy(), slots-1)
		case SchedBlocking:
			d.sched = sched.NewBlocking(mkPolicy())
		case SchedWorkStealing:
			d.sched = sched.NewWorkStealing(slots-1, priOf, dlOf)
		default:
			panic(fmt.Sprintf("core: unknown scheduler kind %d", cfg.Scheduler))
		}
		switch cfg.Alloc {
		case AllocPooled:
			d.alloc = alloc.NewPooled[Task](slots-1, 64)
		case AllocSerial:
			d.alloc = alloc.NewSerial[Task]()
		default:
			panic(fmt.Sprintf("core: unknown alloc kind %d", cfg.Alloc))
		}
	}

	rt.global.rt = rt
	rt.global.alive.Store(1) // never completes
	return rt
}

// start launches the worker pool of a built runtime.
func (rt *Runtime) start() {
	rt.wg.Add(rt.cfg.Workers)
	for id := 0; id < rt.cfg.Workers; id++ {
		go rt.workerLoop(id)
	}
}

// allocGet and allocPut route task-shell allocation through the
// slot's home domain's allocator (per-domain free lists and fallback
// arenas; see topology.go for the partition).
func (rt *Runtime) allocGet(worker int) *Task {
	return rt.domains[rt.slotDom[worker]].alloc.Get(worker)
}

func (rt *Runtime) allocPut(worker int, t *Task) {
	rt.domains[rt.slotDom[worker]].alloc.Put(worker, t)
}

// Config returns the runtime's effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Slots returns the size of the runtime's thread-index space: workers,
// root-submitter shards, event-completer slots and inline-serving
// slots. Ctx.Worker reports an index in [0, Slots()) — task bodies
// execute on non-worker indices when an inline-serving submitter runs
// or helps them — so per-thread structures indexed by Ctx.Worker (for
// example histogram recorder shards) must be sized by Slots, not by
// Config().Workers.
func (rt *Runtime) Slots() int {
	return rt.cfg.Workers + rt.cfg.RootShards + rt.cfg.EventSlots + rt.cfg.ServeSlots
}

// Tracer returns the instrumentation backend, or nil when tracing is
// disabled.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// SchedulerName and DepsName identify the wired implementations.
func (rt *Runtime) SchedulerName() string { return rt.domains[0].sched.Name() }

// DepsName returns the dependency system's name.
func (rt *Runtime) DepsName() string { return rt.deps.Name() }

// Run submits a root task and blocks until it and all its descendants
// have fully completed. It returns the scope's aggregate error: task
// errors (from GoFn bodies or recovered panics) joined per the
// configured ErrorPolicy, or nil when every task succeeded. Run may be
// called repeatedly, from multiple goroutines; submissions whose
// accesses hash to different root-domain shards register in parallel,
// and same-shard registrations serialize only on that shard's lock.
func (rt *Runtime) Run(body func(*Ctx), accs ...deps.AccessSpec) error {
	return rt.RunCtx(context.Background(), body, accs...)
}

// RunCtx is Run honoring a caller context: when ctx is cancelled (or
// its deadline passes), tasks of this submission that have not started
// are drained without executing — the dependency graph and live-task
// accounting still unwind normally, so RunCtx returns only after the
// scope has fully drained, with the cancellation cause. Tasks whose
// bodies already started run to completion; they can poll Ctx.Err to
// stop early.
func (rt *Runtime) RunCtx(ctx context.Context, body func(*Ctx), accs ...deps.AccessSpec) error {
	h := rt.submitRoot(ctx, body, nil, accs)
	// The root's completion folded the scope's aggregate error into the
	// handle (completeOne); read that snapshot rather than recomputing,
	// so Run's return and the Handle always agree.
	<-h.done
	return h.err
}

// Submit submits a root task whose body returns a result and an error,
// without waiting: the returned Handle delivers them at the task's full
// completion. Submissions participate in root-level dependency chains
// exactly like Run roots (matching accesses order them). The typed
// façade wrapper is repro.Submit.
func (rt *Runtime) Submit(fn func(*Ctx) (any, error), accs ...deps.AccessSpec) *Handle {
	return rt.SubmitCtx(context.Background(), fn, accs...)
}

// SubmitCtx is Submit with a caller context; cancellation drains the
// task (and any descendants) as in RunCtx, and the Handle reports the
// cause.
func (rt *Runtime) SubmitCtx(ctx context.Context, fn func(*Ctx) (any, error), accs ...deps.AccessSpec) *Handle {
	return rt.submitRoot(ctx, nil, fn, accs)
}

// submitRoot creates one root task with a fresh (pooled)
// error/cancellation scope and registers it into the sharded root
// domain. The lease taken here locks every shard the access addresses
// hash to, in ascending order; its lowest shard selects the submitter
// slot whose thread-local structures (allocator free list, dependency
// mailbox, scheduler insertion index, trace buffer) this registration
// uses exclusively. Submissions on disjoint shard sets run this whole
// path in parallel.
func (rt *Runtime) submitRoot(ctx context.Context, body func(*Ctx), fn func(*Ctx) (any, error), accs []deps.AccessSpec) *Handle {
	sc := newScope(ctx, rt.cfg.OnError)
	h := newHandle()
	lease := rt.rootDom.Acquire(accs)
	// The drain gate is entered under the lease (the shard lock makes
	// the per-shard count uncontended) and left once registration has
	// raised the live count, which hands Drain's quiescence wait the
	// task. A sealed runtime resolves the handle immediately.
	if !rt.gate.Enter(lease.Slot()) {
		lease.Release()
		sc.release()
		h.err = ErrRuntimeDraining
		close(h.done)
		return h
	}
	slot := rt.cfg.Workers + lease.Slot()
	t := rt.newTask(&rt.global, body, accs, slot)
	t.fn = fn
	t.sc = sc
	t.handle = h
	t.ownsScope = true
	rt.registerWith(&rt.global, rt.rootDom, t, slot)
	rt.gate.Leave(lease.Slot())
	lease.Release()
	return h
}

// newTask allocates and initializes a task without registering it. The
// task inherits the parent's scope; root submitters override it.
// Access sets up to deps.InlineAccessCap live in the shell's inline
// array — no allocation on the spawn path; larger sets overflow to a
// heap slice exactly as before. The shell pin taken here is the
// completion guard of the storage-quiescence protocol: it is dropped in
// completeOne, and the shell is recycled by whoever drops the node's
// last pin (usually completeOne itself, on the fast path).
func (rt *Runtime) newTask(parent *Task, body func(*Ctx), accs []deps.AccessSpec, worker int) *Task {
	t := rt.allocGet(worker)
	t.rt = rt
	t.body = body
	t.parent = parent
	t.sc = parent.sc
	t.pri = parent.pri
	t.inherit = parent.inherit
	t.deadline = parent.deadline
	t.alive.Store(1)
	t.node.Payload = t
	t.node.Pin()
	// Pseudo accesses (priority, deadline, inheritance clauses) are
	// stripped here: they set the task's scheduling attributes (last
	// clause of a kind wins, overriding the inherited value) and never
	// reach the dependency system.
	nacc := len(accs)
	for i := range accs {
		switch accs[i].Type {
		case deps.PriorityClause:
			t.pri = int8(sched.ClampPriority(accs[i].Len))
			nacc--
		case deps.DeadlineClause:
			t.deadline = int64(accs[i].Len)
			nacc--
		case deps.InheritClause:
			t.inherit = true
			nacc--
		}
	}
	t.epri.Store(int32(t.pri))
	if nacc > 0 {
		dst := t.node.InitAccesses(nacc)
		if nacc == len(accs) {
			for i := range accs {
				dst[i].Init(&t.node, accs[i])
			}
		} else {
			j := 0
			for i := range accs {
				switch accs[i].Type {
				case deps.PriorityClause, deps.DeadlineClause, deps.InheritClause:
				default:
					dst[j].Init(&t.node, accs[i])
					j++
				}
			}
		}
	}
	return t
}

// register links the task into the dependency graph; the task becomes
// ready (and is scheduled) as soon as its accesses allow.
func (rt *Runtime) register(parent *Task, t *Task, worker int) {
	rt.registerWith(parent, nil, t, worker)
}

// registerWith is the shared registration accounting: parent liveness,
// the sharded live counter, trace emission and the dependency-system
// call — against parent's own domain for nested tasks, or the sharded
// root domain when d is non-nil (mirroring deps' register shape).
func (rt *Runtime) registerWith(parent *Task, d *deps.RootDomain, t *Task, worker int) {
	parent.alive.Add(1)
	rt.live.Add(worker, 1)
	// The tracer is nil-receiver-safe (a nil *trace.Tracer no-ops every
	// method), so emission sites call it unconditionally.
	rt.tracer.Emit(worker, trace.KTaskCreate, 0)
	// The inheritance clause and donor level are captured before the
	// dependency-system call: the moment registration publishes the
	// task it may be executed and fully completed by a worker, whose
	// resetBody concurrently wipes the shell's plain fields.
	inherit, lvl := t.inherit, int(t.epri.Load())
	t0 := rt.tracer.Now()
	if d != nil {
		rt.deps.RegisterRoot(d, &t.node, worker)
	} else {
		rt.deps.Register(&parent.node, &t.node, worker)
	}
	rt.tracer.EmitTS(worker, trace.KDepRegister, uint64(rt.tracer.Now()-t0), t0)
	// Priority inheritance: registration just recorded this task's
	// immediate chain predecessors, so an elevated inheritance-tagged
	// task now promotes the unsatisfied ones (transitively) to its own
	// effective level, closing the inversion window before any
	// mid-priority work can overtake the holder. (If the task already
	// completed, the walk sees generation-revalidated slots and
	// alive-guarded payloads; the worst case is a bounded anomaly, as
	// documented on promotePreds.)
	if inherit && lvl > 0 {
		rt.promotePreds(&t.node, lvl, worker)
	}
}

// spawn implements Ctx.Spawn.
func (rt *Runtime) spawn(parent *Task, body func(*Ctx), accs []deps.AccessSpec, worker int) {
	t := rt.newTask(parent, body, accs, worker)
	rt.register(parent, t, worker)
}

// workerLoop is the per-core scheduling loop: ask the home domain's
// scheduler for work, run it, and while idle climb the spin→park
// ladder — a bounded spin-yield phase (Config.IdleSpin empty polls)
// followed by parking on the worker's wake channel until a producer's
// enqueue claims it. The first Config.MinWorkers workers never park;
// neither does anyone once the runtime is stopping (the stop condition
// below must stay polled). The loop exits once the runtime is stopping
// and no live tasks remain; each exiting worker wakes all parked peers
// so the exit cascades.
//
// On multi-domain runtimes the loop additionally runs the bounded
// work-shedding protocol: only after the home domain's poll comes up
// empty twice in a row may the worker steal — at most Config.ShedBatch
// tasks from one remote domain (shedTake) — before the cycle resets
// and the right must be re-earned. Stealing is the ONLY path a queued
// task crosses domains on, which is what keeps the per-domain Dekker
// argument intact: every producer still wakes against the domain it
// enqueued into.
func (rt *Runtime) workerLoop(id int) {
	defer rt.wg.Done()
	if rt.cfg.PinWorkers {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	home := int(rt.slotDom[id])
	canPark := rt.elastic && id >= rt.cfg.MinWorkers
	spinning := false
	empties := 0   // consecutive empty home polls (shed-cycle trigger)
	victim := home // round-robin shed victim cursor
	for i := 0; ; i++ {
		// Taskloop steal descriptors come first, so a loop recruits this
		// worker before it commits to single-task work; the loopsActive
		// gate keeps loop-free runs off the lane entirely. The lane
		// yields to the priority dimension like the bypass slot does: a
		// descriptor taken while a higher-level task is queued re-routes
		// through the scheduler at its own level instead of capturing
		// this worker for the loop's remaining span.
		if rt.loopsActive.Load() > 0 {
			if t := rt.share.Take(id); t != nil {
				if rt.higherPriPending(int8(t.epri.Load()), home) {
					rt.schedAdd(t, id)
				} else {
					if spinning {
						rt.parker.MarkRunning(id)
						spinning = false
					}
					for t != nil {
						t = rt.execute(t, id)
					}
					i = 0
					continue
				}
			}
		}
		t0 := rt.tracer.Now()
		var t *Task
		if rt.ndomains > 1 && rt.elevated.v.Load() > 0 && !rt.higherPriPending(0, home) {
			// Elevated work exists somewhere and none of it is home:
			// grab it eagerly across the domain boundary — priority and
			// deadline ordering are runtime-wide promises, and only
			// batch work pays the bounded-shedding locality discipline.
			t = rt.takeElevated(id, home)
		}
		if t == nil {
			t = rt.schedTook(rt.domains[home].sched.Get(id), home)
		}
		if t == nil && rt.ndomains > 1 {
			empties++
			if empties >= 2 {
				empties = 0
				t = rt.shedTake(id, home, &victim)
			}
		} else {
			empties = 0
		}
		if t != nil {
			if spinning {
				rt.parker.MarkRunning(id)
				spinning = false
			}
			rt.tracer.EmitTS(id, trace.KSchedEnter, 0, t0)
			rt.tracer.Emit(id, trace.KSchedLeave, 0)
			// Run the task and then any chain of bypassed successors it
			// releases, without returning to the scheduler in between.
			for t != nil {
				t = rt.execute(t, id)
			}
			i = 0
			continue
		}
		if rt.stopping.Load() && rt.live.Sum() == 0 {
			// Parked peers cannot poll this condition; each exiting
			// worker releases them all so the shutdown cascades.
			rt.parker.WakeAll()
			return
		}
		if rt.elastic && !spinning {
			rt.parker.MarkSpinning(id)
			spinning = true
		}
		if canPark && i >= rt.cfg.IdleSpin && !rt.stopping.Load() {
			// Spin budget exhausted: park until a producer's enqueue
			// claims this worker. Park publishes the parked state before
			// running the recheck, so an enqueue that lands between the
			// last empty poll above and the sleep is never lost — either
			// the recheck sees its pending count, or the producer's
			// WakeOne sees this worker parked.
			rt.parker.Park(id, rt.parkRecheck)
			spinning = false
			i = -1 // restart the ladder: poll eagerly after a wake
			continue
		}
		spinOrYield(i)
	}
}

// shedTake is one work-shedding cycle for worker id of domain home: it
// scans the remote domains round-robin from *victim and takes at most
// Config.ShedBatch tasks from the first one that yields any. The first
// stolen task is returned for immediate execution; the rest are
// re-homed into the thief's own domain (schedAdd with the thief's
// index), so a batch migrates as a unit and the thief's domain-mates
// help drain it. Callers gate the cycle on two consecutive empty home
// polls; within a cycle no second victim is opened once one has paid
// out, so a cycle moves tasks from exactly one remote domain and never
// more than ShedBatch of them — the bound the deterministic shed unit
// pins.
func (rt *Runtime) shedTake(id, home int, victim *int) *Task {
	// Offsets 1..ndomains relative to the cursor cover every domain:
	// the previous victim sorts last (freshly milked), but stays
	// reachable — with two domains it is the only candidate.
	for off := 1; off <= rt.ndomains; off++ {
		v := (*victim + off) % rt.ndomains
		if v == home {
			continue
		}
		d := &rt.domains[v]
		if d.pending.v.Load() <= 0 {
			continue
		}
		var first *Task
		taken := 0
		for taken < rt.cfg.ShedBatch {
			raw := d.sched.TryGet(id)
			if raw == nil {
				break
			}
			t := rt.schedTook(raw, v)
			if t == nil {
				continue // stale promotion duplicate: consumed, not stolen
			}
			taken++
			if first == nil {
				first = t
			} else {
				rt.schedAdd(t, id)
			}
		}
		if first != nil {
			d.shedOut.Add(uint64(taken))
			rt.domains[home].shedIn.Add(uint64(taken))
			*victim = v
			return first
		}
	}
	return nil
}

// takeElevated claims one elevated (priority level > 0) task from a
// remote domain. Unlike shedTake it needs no empty-recheck earnings —
// callers gate it on the global elevated count and on their home
// domain holding no elevated work of its own, so it fires only when
// QoS work would otherwise wait for a remote domain's workers. The
// claim is one TryGet of the first remote domain whose per-level
// pending counts show elevated work; the priority policy orders that
// domain's queue, so the popped task is its best elevated candidate (a
// losing race may hand back a batch task instead — a bounded,
// one-task migration, charged to the shed counters like any other
// cross-domain move).
func (rt *Runtime) takeElevated(id, home int) *Task {
	for off := 1; off <= rt.ndomains; off++ {
		v := (home + off) % rt.ndomains
		if v == home || !rt.higherPriPending(0, v) {
			continue
		}
		if t := rt.schedTook(rt.domains[v].sched.TryGet(id), v); t != nil {
			rt.domains[v].shedOut.Add(1)
			rt.domains[home].shedIn.Add(1)
			return t
		}
	}
	return nil
}

// takeWork is the non-blocking work source of the helping loops
// (Taskwait, loop-owner completion wait): the work-share lane first
// (when any loop is live), then the caller's home domain, then — on
// multi-domain runtimes — every remote domain in turn. A helper is
// already blocked on a condition only other tasks can satisfy, so
// unlike workerLoop it scans remotes unboundedly: a waited-on subgraph
// whose tasks were shed to another domain must stay reachable or the
// help loop could spin forever. Like workerLoop, a lane descriptor
// yields to a queued higher-priority task (of the helper's domain) by
// re-routing through the scheduler.
func (rt *Runtime) takeWork(id int) *Task {
	home := int(rt.slotDom[id])
	if rt.loopsActive.Load() > 0 {
		if t := rt.share.Take(id); t != nil {
			if !rt.higherPriPending(int8(t.epri.Load()), home) {
				return t
			}
			rt.schedAdd(t, id)
		}
	}
	if t := rt.schedTook(rt.domains[home].sched.TryGet(id), home); t != nil {
		return t
	}
	for off := 1; off < rt.ndomains; off++ {
		v := (home + off) % rt.ndomains
		d := &rt.domains[v]
		if d.pending.v.Load() <= 0 {
			continue
		}
		if t := rt.schedTook(d.sched.TryGet(id), v); t != nil {
			d.shedOut.Add(1)
			rt.domains[home].shedIn.Add(1)
			return t
		}
	}
	return nil
}

// helpUntil is the runtime's one blocking-help loop: execute ready
// tasks on worker id until done() reports true, spin-yielding only
// when no work is available. Every in-task wait routes through it —
// Taskwait and the loop owner's final-chunk barrier (helpWhileChildren)
// and the handle wait of Ctx.Await — so "waiting means helping" is
// implemented (and tuned) in exactly one place. done must be cheap; it
// is polled between tasks. The func value is only called, never
// stored, so closure arguments stay on the caller's stack.
func (rt *Runtime) helpUntil(id int, done func() bool) {
	for i := 0; !done(); i++ {
		if other := rt.takeWork(id); other != nil {
			// Execute the task and any bypassed successor chain it
			// releases; helping with ready work is the point of the loop.
			for other != nil {
				other = rt.execute(other, id)
			}
			i = 0
			continue
		}
		spinOrYield(i)
	}
}

// helpWhileChildren executes ready tasks on worker id until every child
// of t (and their descendants) has fully completed. It is the waiting
// half of Taskwait and of a loop owner's final-chunk barrier.
func (rt *Runtime) helpWhileChildren(t *Task, id int) {
	rt.helpUntil(id, func() bool { return t.alive.Load() <= 1 })
}

// execute runs one ready task to completion on worker id: commutative
// token acquisition, body, dependency release, completion cascade. It
// returns the bypassed immediate successor, if the dependency release
// readied exactly one eligible task on this worker: the caller's loop
// executes it next without a scheduler round-trip.
//
// A body that registered external events (Ctx.Events) may return with
// completions still pending; the task then *parks* — everything after
// the body (commutative release, unregister, completeOne) is deferred
// to the final event decrement (releaseDeferred) — and execute returns
// nil so the worker is immediately available for other work.
//
// If the task's scope has been cancelled (caller context done, or an
// earlier error under FailFast), the body is skipped entirely — but the
// dependency release and the completion cascade still run, so successor
// tasks are released (and drained in turn), live-task accounting
// reaches zero, and the task shell is recycled. This is what lets a
// cancelled submission unwind an arbitrarily deep ready graph without
// executing it.
func (rt *Runtime) execute(t *Task, id int) *Task {
	if rt.ndomains > 1 {
		// Affinity-retention accounting (multi-domain only, so the
		// single-domain hot path pays one predictable branch): charge
		// the executing slot's domain, and the home-hit counter when
		// the task runs where its ready callback homed it.
		d := &rt.domains[rt.slotDom[id]]
		d.executed.Add(1)
		if int(t.home) == int(rt.slotDom[id]) {
			d.executedHome.Add(1)
		}
	}
	cause := t.sc.abortCause()
	if cause == nil && t.node.HasCommutative() && !t.node.TryAcquireCommutative() {
		// Lost the token race: re-enqueue and let the worker move on.
		rt.schedAdd(t, id)
		runtime.Gosched()
		return nil
	}
	if cause != nil {
		// Drained: record the skip on the task's handle, if it has one.
		// Skips are not scope errors — only their cause is.
		rt.tracer.Emit(id, trace.KTaskCancel, 0)
		if t.handle != nil && t.handle.err == nil {
			t.handle.err = &skipError{cause: cause}
		}
		if t.req != nil && t.req.err == nil {
			t.req.err = &skipError{cause: cause}
		}
	} else {
		rt.tracer.Emit(id, trace.KTaskStart, 0)
		rt.runBody(t, id)
		rt.tracer.Emit(id, trace.KTaskEnd, 0)
		if ec := t.events; ec != nil {
			// The body obtained an event counter: drop its guard. If
			// external completions are still pending the task parks —
			// dependency release and completion are deferred to the
			// final decrement (releaseDeferred) — and this worker goes
			// straight back for more work. Pin-protocol note: the
			// creation pin and the alive guard both survive the park
			// (completeOne has not run), so the shell cannot be
			// recycled under the pending events. eventsHeld is raised
			// before the guard drop so Drain can never observe live==0
			// with a release still in flight. After a losing guard
			// drop, t belongs to the final decrementer and must not be
			// touched here.
			rt.eventsHeld.v.Add(1)
			if ec.n.Add(-1) > 0 {
				rt.tracer.Emit(id, trace.KEventHold, 0)
				return nil
			}
			ec.n.Store(eventsDrained) // spent: late Add/Done must panic
			rt.eventsHeld.v.Add(-1)
		}
		t.node.ReleaseCommutative()
	}

	// Arm the bypass slot for the duration of the dependency release:
	// the ready callback parks the first eligible successor here. The
	// slot is consumed before completeOne so a recycled shell can never
	// alias the parked task.
	bs := &rt.bypass[id]
	bs.armed = true
	t0 := rt.tracer.Now()
	rt.deps.Unregister(&t.node, id)
	rt.tracer.EmitTS(id, trace.KDepUnregister, uint64(rt.tracer.Now()-t0), t0)
	bs.armed = false
	next := bs.next
	bs.next = nil
	rt.completeOne(t, id)
	return next
}

// runBody invokes the task body with panic recovery: a panicking body
// fails the task with a *PanicError instead of killing the worker, and
// execution (commutative release, dependency release, completion)
// continues as if the body had returned that error.
//
// The Ctx is the worker's reusable instance, so it never escapes to the
// heap; bodies only observe it while they run (an API guarantee). The
// task field is saved and restored around the body because taskwait
// helping nests execute — the inner body borrows the slot and the
// outer body must see its own task again afterwards.
func (rt *Runtime) runBody(t *Task, id int) {
	c := &rt.wctx[id].ctx
	prev := c.task
	c.task = t
	defer func() {
		c.task = prev
		if r := recover(); r != nil {
			t.fail(&PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	switch {
	case t.loop != nil:
		rt.runLoopBody(c, t)
	case t.fn != nil:
		v, err := t.fn(c)
		if t.handle != nil {
			t.handle.val = v
		}
		if err != nil {
			t.fail(err)
		}
	case t.body != nil:
		t.body(c)
	}
}

// completeOne releases the body guard of t and cascades full completions
// up the ancestor chain. Handles are closed here — full completion is
// when a Future's result becomes observable — and scope-owning roots
// fold their scope's aggregate error into the handle and release the
// scope's context registration.
//
// Shell recycling is gated by the node's pin count: dropping the
// completion guard recycles immediately when the dependency system
// holds no further references to the task's access storage (the fast
// path — exclusive-access chains release during their own Unregister).
// Otherwise the shell stays out of the pool until the wait-free
// system's quiescence callback fires (early-forwarded readers, chain
// tails still registered in a live domain), which is what makes reusing
// the inline access array safe; see DESIGN.md.
func (rt *Runtime) completeOne(t *Task, id int) {
	for t != nil && t != &rt.global && t.alive.Add(-1) == 0 {
		parent := t.parent
		rt.live.Add(id, -1)
		req := t.req
		if r := req; r != nil {
			// Claim the fold: wait out a waiter-side deadline cancel
			// (tryCancel holds reqCancelling only around the scope
			// cancel), after which the waiter can no longer touch the
			// scope and the aggregate is final.
			for i := 0; !r.state.CompareAndSwap(reqIdle, reqDone); i++ {
				spinOrYield(i)
			}
			if agg := t.sc.err(); agg != nil {
				if sk, ok := r.err.(*skipError); ok {
					// The root itself was drained: keep the
					// ErrTaskSkipped marker, carry the aggregate (which
					// wraps the cancellation cause) as its cause.
					sk.cause = agg
				} else {
					r.err = agg
				}
			}
			r.sc = nil
		}
		if t.handle != nil {
			if t.ownsScope {
				if agg := t.sc.err(); agg != nil {
					if sk, ok := t.handle.err.(*skipError); ok {
						// The root itself was drained: keep the
						// ErrTaskSkipped marker and carry the scope's
						// aggregate (which wraps the cancellation
						// cause) as its cause.
						sk.cause = agg
					} else {
						t.handle.err = agg
					}
				}
			}
			close(t.handle.done)
		}
		if t.ownsScope {
			// The root completes last in its scope: every descendant
			// already dropped its scope reference on completion, so the
			// scope can be recycled for a future submission.
			t.sc.release()
		}
		if l := t.loop; l != nil {
			t.loop = nil
			if l.owner == t {
				// The owner completes strictly after every steal
				// descriptor (they are its children), so nothing can
				// reference the loop state anymore.
				rt.loopsActive.Add(-1)
				putLoopState(l)
			}
		}
		t.resetBody()
		if t.node.Unpin() == 0 {
			t.node.Reset()
			rt.allocPut(id, t)
		}
		if req != nil {
			// Signal last, strictly after the scope release and shell
			// recycle above: when Wait returns, the waiter may reuse the
			// Req (and its frame) for the next request immediately.
			req.done <- struct{}{}
		}
		t = parent
	}
}

// maybeInjectNoise stalls the serving worker once, after the configured
// number of serves, emulating a kernel interrupt preempting the DTLock
// owner (Figure 11). The stall interval is logged as a kernel event.
//
// The guards come before any counting so the common cases pay nothing:
// runs without noise configured return on the config check, and once
// the one-shot has fired every subsequent serve returns on the
// noiseDone load instead of bumping a counter forever. While armed,
// the serve count is sharded per worker; the threshold is a >= test on
// the sum (concurrent serves may overshoot the exact value by a few)
// with the CAS keeping the stall exactly-once. Serve/drain events only
// ever fire on the current DTLock owner, so Add and Sum here are
// owner-serialized — the Sum walk is not a concurrent hot-line scan.
func (rt *Runtime) maybeInjectNoise(owner int) {
	n := rt.cfg.Noise
	if n.AfterServes <= 0 || n.Duration <= 0 || rt.noiseDone.Load() {
		return
	}
	rt.serves.Add(owner, 1)
	if rt.serves.Sum() < int64(n.AfterServes) || !rt.noiseDone.CompareAndSwap(false, true) {
		return
	}
	start := rt.tracer.Now()
	deadline := time.Now().Add(n.Duration)
	for time.Now().Before(deadline) {
		// Busy stall: the owner holds the DTLock throughout, exactly the
		// situation the paper's Figure 11 trace captures.
	}
	rt.tracer.EmitTS(owner, trace.KInterrupt, uint64(n.Duration.Nanoseconds()), start)
}

// Close shuts the runtime down after all submitted work has finished.
// It must not be called concurrently with Run. (Use Drain first to
// quiesce a runtime that still has submissions or pending events in
// flight.) The timer wheel stops after the workers: a worker exits
// only at live==0, which a pending timer's task prevents, so stopping
// the wheel earlier could strand the pool.
func (rt *Runtime) Close() {
	rt.stopping.Store(true)
	for d := range rt.domains {
		rt.domains[d].sched.Stop()
	}
	// Release parked workers after the stop flag is visible: a worker
	// that parked concurrently either saw the flag in its pre-sleep
	// recheck (it never parks while stopping) or is seen parked here.
	rt.parker.WakeAll()
	rt.wg.Wait()
	rt.wheel.Stop()
}

// LiveTasks returns the number of tasks created but not yet fully
// completed (diagnostics and tests). The underlying counter is sharded:
// the value is exact once submitters and workers are quiescent, which
// is when the tests that assert on it read it.
func (rt *Runtime) LiveTasks() int64 { return rt.live.Sum() }

// DomainStats is one NUMA domain's slice of a Stats snapshot: its
// share of the worker pool and park/wake activity, its scheduler
// backlog, the work-shedding flow through it, and the affinity
// accounting behind the locality benchmarks. Instantaneous fields
// (Workers aside) are racy snapshots like the flat ones.
type DomainStats struct {
	// Workers is the number of worker goroutines homed in this domain.
	Workers int
	// Parked is the number of this domain's workers currently asleep.
	Parked int
	// Parks and Wakes are the domain's cumulative blocking parks and
	// delivered wake tokens.
	Parks uint64
	Wakes uint64
	// Pending is the number of tasks currently queued in this domain's
	// scheduler (added and not yet taken).
	Pending int64
	// ShedIn and ShedOut count tasks this domain's workers stole from
	// remote domains, and tasks remote thieves took from this one.
	ShedIn  uint64
	ShedOut uint64
	// Executed counts tasks executed by this domain's slots, and
	// ExecutedHome the subset whose home domain this was — their ratio
	// is the domain's affinity retention. Only maintained on
	// multi-domain runtimes (zero otherwise).
	Executed     uint64
	ExecutedHome uint64
}

// Stats is a snapshot of the worker pool (Runtime.Stats): the current
// worker states, the cumulative park/wake counters, and one
// DomainStats per NUMA domain. The flat fields are computed totals
// across the domains, so single-domain callers (and the pre-domain
// gates) read them unchanged. Instantaneous fields (Parked, Spinning,
// Pending) are racy snapshots, exact only at quiescence; the
// cumulative counters are monotone.
type Stats struct {
	// Workers is the pool size (Config.Workers).
	Workers int
	// Parked is the number of workers currently asleep on their wake
	// channel.
	Parked int
	// Spinning is the number of workers currently in the bounded idle
	// spin phase of the park ladder.
	Spinning int
	// Parks counts blocking parks over the runtime's lifetime
	// (cancelled parks — recheck found work — are not counted).
	Parks uint64
	// Wakes counts wake tokens delivered to parked workers.
	Wakes uint64
	// Pending is the number of tasks currently queued across every
	// domain's scheduler (added and not yet taken).
	Pending int64
	// Domains holds the per-domain breakdown (always at least one
	// entry; exactly one on an unsharded runtime).
	Domains []DomainStats
}

// Stats returns a pool snapshot. With parking disabled (blocking
// scheduler, or IdleSpin < 0) the park/wake fields stay zero and
// Pending still tracks the scheduler queues.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		Workers:  rt.cfg.Workers,
		Parked:   rt.parker.Parked(),
		Spinning: rt.parker.Spinning(),
		Domains:  make([]DomainStats, rt.ndomains),
	}
	for i := range s.Domains {
		d := &rt.domains[i]
		ds := &s.Domains[i]
		ds.Parked = rt.parker.ParkedIn(i)
		ds.Parks = rt.parker.ParksIn(i)
		ds.Wakes = rt.parker.WakesIn(i)
		ds.Pending = d.pending.v.Load()
		ds.ShedIn = d.shedIn.Load()
		ds.ShedOut = d.shedOut.Load()
		ds.Executed = d.executed.Load()
		ds.ExecutedHome = d.executedHome.Load()
		s.Parks += ds.Parks
		s.Wakes += ds.Wakes
		s.Pending += ds.Pending
	}
	for id := 0; id < rt.cfg.Workers; id++ {
		s.Domains[rt.slotDom[id]].Workers++
	}
	return s
}

// spinOrYield performs bounded busy-waiting before yielding to the Go
// scheduler, keeping oversubscribed worker counts live on small hosts.
func spinOrYield(i int) { locks.Spin(i) }
