package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/deps"
	"repro/internal/trace"
)

// testConfig returns a small runtime config suited to the test host.
func testConfig(v Variant) Config {
	c := ConfigFor(v, 4, 2)
	c.PinWorkers = false // keep the race detector fast on small hosts
	return c
}

func TestRunIndependentTasks(t *testing.T) {
	for _, v := range append(Variants(), ComparisonVariants()[1:]...) {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			var count atomic.Int64
			rt.Run(func(c *Ctx) {
				for i := 0; i < 200; i++ {
					c.Spawn(func(*Ctx) { count.Add(1) })
				}
				c.Taskwait()
				if got := count.Load(); got != 200 {
					t.Errorf("taskwait returned with %d/200 tasks done", got)
				}
			})
			if count.Load() != 200 {
				t.Fatalf("ran %d tasks, want 200", count.Load())
			}
			if rt.LiveTasks() != 0 {
				t.Fatalf("%d live tasks after Run", rt.LiveTasks())
			}
		})
	}
}

func TestDependencyChainOrder(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			var x float64
			const steps = 100
			rt.Run(func(c *Ctx) {
				for i := 0; i < steps; i++ {
					c.Spawn(func(*Ctx) { x++ }, InOut(&x))
				}
			})
			if x != steps {
				t.Fatalf("x = %v, want %d (chain order violated)", x, steps)
			}
		})
	}
}

func TestProducerConsumerGraph(t *testing.T) {
	// A diamond: two producers write separate cells; a consumer reads
	// both and writes a result; repeated over many blocks.
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	const blocks = 50
	a := make([]float64, blocks)
	b := make([]float64, blocks)
	sum := make([]float64, blocks)
	rt.Run(func(c *Ctx) {
		for i := 0; i < blocks; i++ {
			i := i
			c.Spawn(func(*Ctx) { a[i] = float64(i) }, Out(&a[i]))
			c.Spawn(func(*Ctx) { b[i] = 2 * float64(i) }, Out(&b[i]))
			c.Spawn(func(*Ctx) { sum[i] = a[i] + b[i] },
				In(&a[i]), In(&b[i]), Out(&sum[i]))
		}
	})
	for i := 0; i < blocks; i++ {
		if sum[i] != 3*float64(i) {
			t.Fatalf("sum[%d] = %v, want %v", i, sum[i], 3*float64(i))
		}
	}
}

func TestReductionDotProduct(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			const n = 1 << 12
			const block = 1 << 8
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = 1
				y[i] = 2
			}
			var result float64
			rt.Run(func(c *Ctx) {
				for b := 0; b < n; b += block {
					b := b
					c.Spawn(func(cc *Ctx) {
						acc := cc.ReductionBuffer(&result)
						s := 0.0
						for i := b; i < b+block; i++ {
							s += x[i] * y[i]
						}
						acc[0] += s
					}, RedSpec(&result, 1, deps.OpSum))
				}
				c.Taskwait()
			})
			if result != 2*n {
				t.Fatalf("dot = %v, want %v", result, 2*n)
			}
		})
	}
}

func TestReductionFollowedByReaderTask(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var acc float64
	var seen float64 = -1
	rt.Run(func(c *Ctx) {
		for i := 0; i < 16; i++ {
			c.Spawn(func(cc *Ctx) {
				cc.ReductionBuffer(&acc)[0]++
			}, RedSpec(&acc, 1, deps.OpSum))
		}
		c.Spawn(func(*Ctx) { seen = acc }, In(&acc))
	})
	if seen != 16 {
		t.Fatalf("reader saw %v, want 16", seen)
	}
}

func TestNestedTasksAndCrossNestingDeps(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			var x float64
			var order []string
			rt.Run(func(c *Ctx) {
				c.Spawn(func(cc *Ctx) {
					order = append(order, "parent")
					cc.Spawn(func(*Ctx) {
						time.Sleep(time.Millisecond)
						order = append(order, "child")
						x = 1
					}, InOut(&x))
				}, InOut(&x))
				c.Spawn(func(*Ctx) {
					order = append(order, "successor")
					x *= 10
				}, InOut(&x))
			})
			if x != 10 {
				t.Fatalf("x = %v, want 10 (successor ran before child)", x)
			}
			want := []string{"parent", "child", "successor"}
			for i := range want {
				if order[i] != want[i] {
					t.Fatalf("order = %v", order)
				}
			}
		})
	}
}

func TestTaskwaitWaitsForGrandchildren(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var done atomic.Int64
	rt.Run(func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.Spawn(func(cc *Ctx) {
				for j := 0; j < 5; j++ {
					cc.Spawn(func(*Ctx) {
						time.Sleep(100 * time.Microsecond)
						done.Add(1)
					})
				}
			})
		}
		c.Taskwait()
		if done.Load() != 50 {
			t.Errorf("taskwait returned with %d/50 grandchildren done", done.Load())
		}
	})
}

func TestCommutativeTasks(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			var shared int64 // non-atomic: relies on commutative exclusion
			var token float64
			rt.Run(func(c *Ctx) {
				for i := 0; i < 40; i++ {
					c.Spawn(func(*Ctx) { shared++ }, Commutative(&token))
				}
			})
			if shared != 40 {
				t.Fatalf("shared = %d, want 40 (mutual exclusion violated)", shared)
			}
		})
	}
}

func TestMultipleRuns(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var total atomic.Int64
	for r := 0; r < 5; r++ {
		rt.Run(func(c *Ctx) {
			for i := 0; i < 20; i++ {
				c.Spawn(func(*Ctx) { total.Add(1) })
			}
		})
	}
	if total.Load() != 100 {
		t.Fatalf("total = %d, want 100", total.Load())
	}
}

func TestRunWithRootAccesses(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var x float64
	rt.Run(func(*Ctx) { x = 5 }, Out(&x))
	rt.Run(func(*Ctx) { x *= 3 }, InOut(&x))
	if x != 15 {
		t.Fatalf("x = %v, want 15", x)
	}
}

func TestTracerCollectsEvents(t *testing.T) {
	cfg := testConfig(VariantOptimized)
	cfg.TraceCapacity = 1 << 12
	rt := New(cfg)
	defer rt.Close()
	rt.Run(func(c *Ctx) {
		for i := 0; i < 30; i++ {
			c.Spawn(func(*Ctx) { time.Sleep(50 * time.Microsecond) })
		}
		c.Taskwait()
	})
	sum := trace.Analyze(rt.Tracer().Snapshot())
	tot := sum.Totals()
	if tot.TaskCount != 31 { // 30 children + root
		t.Fatalf("trace counted %d tasks, want 31", tot.TaskCount)
	}
	if tot.TaskTime <= 0 {
		t.Fatal("no task time recorded")
	}
}

func TestNoiseInjection(t *testing.T) {
	cfg := testConfig(VariantOptimized)
	cfg.TraceCapacity = 1 << 12
	cfg.Noise = NoiseConfig{AfterServes: 1, Duration: 200 * time.Microsecond}
	rt := New(cfg)
	defer rt.Close()
	rt.Run(func(c *Ctx) {
		for i := 0; i < 500; i++ {
			c.Spawn(func(*Ctx) {})
		}
		c.Taskwait()
	})
	tot := trace.Analyze(rt.Tracer().Snapshot()).Totals()
	// Serving is opportunistic: with 500 fine tasks over 4 workers a
	// delegation serve is overwhelmingly likely, but tolerate zero to
	// avoid flakiness; when a serve happened, the interrupt must too.
	if tot.Serves > 0 && tot.Interrupts != 1 {
		t.Fatalf("serves=%d interrupts=%d, want exactly one interrupt", tot.Serves, tot.Interrupts)
	}
}

func TestConfigForPresets(t *testing.T) {
	cases := map[Variant]struct {
		sched SchedulerKind
		deps  DepsKind
		alloc AllocKind
	}{
		VariantOptimized:      {SchedSyncDTLock, DepsWaitFree, AllocPooled},
		VariantNoJemalloc:     {SchedSyncDTLock, DepsWaitFree, AllocSerial},
		VariantNoWaitFreeDeps: {SchedSyncDTLock, DepsLocked, AllocPooled},
		VariantNoDTLock:       {SchedCentralPTLock, DepsWaitFree, AllocPooled},
		VariantGOMPLike:       {SchedBlocking, DepsLocked, AllocSerial},
		VariantLLVMLike:       {SchedWorkStealing, DepsLocked, AllocPooled},
	}
	for v, want := range cases {
		c := ConfigFor(v, 8, 2)
		if c.Scheduler != want.sched || c.Deps != want.deps || c.Alloc != want.alloc {
			t.Errorf("%s: got %+v", v, c)
		}
	}
}

func TestHeavyChurnRecycling(t *testing.T) {
	// Many short-lived tasks exercise the allocator recycling path; the
	// final state must still be exact.
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	cells := make([]float64, 16)
	const rounds = 200
	rt.Run(func(c *Ctx) {
		for r := 0; r < rounds; r++ {
			for i := range cells {
				i := i
				c.Spawn(func(*Ctx) { cells[i]++ }, InOut(&cells[i]))
			}
		}
	})
	for i, v := range cells {
		if v != rounds {
			t.Fatalf("cells[%d] = %v, want %d", i, v, rounds)
		}
	}
}
