package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrorPolicy selects how task errors propagate through a submission
// scope (one Run/RunCtx/Submit call and every task spawned under it).
type ErrorPolicy uint8

const (
	// FailFast cancels the scope on the first task error: tasks that
	// have not started yet are drained without executing their bodies
	// (they complete immediately with a *SkipError*), and the root
	// returns the originating error. This is the default.
	FailFast ErrorPolicy = iota
	// CollectAll lets every task run regardless of earlier failures;
	// the root returns the accumulated errors joined with errors.Join.
	CollectAll
)

// String names the policy for diagnostics.
func (p ErrorPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case CollectAll:
		return "collect-all"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ErrTaskSkipped marks tasks that were drained without executing
// because their scope was cancelled (by a caller's context or, under
// FailFast, by an earlier task error). Test with errors.Is; the
// cancellation cause is also reachable through errors.Is/As.
var ErrTaskSkipped = errors.New("task skipped")

// skipError is the error recorded on a drained task's handle: it
// unwraps to both ErrTaskSkipped and the cancellation cause.
type skipError struct{ cause error }

func (e *skipError) Error() string {
	return "task skipped: " + e.cause.Error()
}

func (e *skipError) Unwrap() []error { return []error{ErrTaskSkipped, e.cause} }

// PanicError wraps a panic recovered from a task body. The runtime
// converts body panics into errors rather than crashing the worker
// pool; the panic value and the goroutine stack at recovery time are
// preserved for debugging.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted stack of the panicking goroutine.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v", e.Value)
}

// scope is the error/cancellation domain of one root submission: the
// root task of a Run, RunCtx or Submit call and all of its descendants
// share one scope. It records task failures, applies the error policy,
// and mirrors the caller's context cancellation into the runtime (the
// execute path consults abortCause before running each body).
type scope struct {
	ctx    context.Context // caller context; nil for plain Run/Submit
	policy ErrorPolicy

	// done caches ctx.Done() so the per-task abort check is a channel
	// poll rather than a context-tree walk; nil for non-cancellable
	// contexts (Background), which skips the poll entirely.
	done <-chan struct{}

	// aborted flips once; cause holds the first cancellation cause.
	// ctxAborted additionally marks that the abort came from the
	// caller's context (observed during execution), as opposed to a
	// FailFast task error already recorded in errs. extAborted marks an
	// out-of-band cancellation (cancelExternal — a Req deadline from the
	// timer wheel): like a context cancellation, its cause joins the
	// aggregate error only once a task actually observes the abort.
	aborted    atomic.Bool
	ctxAborted atomic.Bool
	extAborted atomic.Bool
	cause      atomic.Pointer[error]

	mu   sync.Mutex
	errs []error
}

// scopePool recycles scopes across root submissions: a scope's
// lifetime ends strictly before its root task's full completion
// releases it (every descendant dropped its reference when it
// completed, and the root completes last), so submitRoot can reuse
// shells without any pin protocol. This keeps a root submit
// allocation-light together with the pooled task shell.
var scopePool = sync.Pool{New: func() any { return new(scope) }}

// newScope builds (or recycles) the scope for one root submission.
// Context cancellation is observed synchronously by abortCause — the
// context package closes Done before a CancelFunc returns, so every
// task executed after cancellation drains deterministically.
func newScope(ctx context.Context, policy ErrorPolicy) *scope {
	sc := scopePool.Get().(*scope)
	sc.ctx = ctx
	sc.policy = policy
	if ctx != nil {
		sc.done = ctx.Done()
	}
	return sc
}

// release returns the scope to the pool. It must only be called once no
// task of the submission can touch the scope again: completeOne calls
// it at the scope-owning root's full completion, after folding the
// aggregate error into the handle.
func (sc *scope) release() {
	sc.ctx = nil
	sc.done = nil
	sc.policy = FailFast
	sc.aborted.Store(false)
	sc.ctxAborted.Store(false)
	sc.extAborted.Store(false)
	sc.cause.Store(nil)
	sc.mu.Lock()
	clear(sc.errs) // drop the error references, keep the capacity
	sc.errs = sc.errs[:0]
	sc.mu.Unlock()
	scopePool.Put(sc)
}

// fail records one task failure and, under FailFast, cancels the scope
// so not-yet-started tasks are drained.
func (sc *scope) fail(err error) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.errs = append(sc.errs, err)
	sc.mu.Unlock()
	if sc.policy == FailFast {
		sc.cancel(err)
	}
}

// cancel aborts the scope with cause; the first caller wins.
func (sc *scope) cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	sc.cause.CompareAndSwap(nil, &cause)
	sc.aborted.Store(true)
}

// cancelExternal aborts the scope like a caller-context cancellation
// that arrives out of band — a Req deadline fired by the timer wheel
// rather than a context. The cause joins the aggregate error only if a
// task observes the abort while the scope is still executing (the
// extAborted check in abortCause), exactly as with context
// cancellation: a deadline that fires after every task already
// completed does not fail a successful run.
func (sc *scope) cancelExternal(cause error) {
	sc.extAborted.Store(true)
	sc.cancel(cause)
}

// abortCause returns the cancellation cause, or nil while the scope is
// live. It is the per-task hot-path check — one atomic load, plus a
// poll of the caller context's Done channel for cancellable
// submissions — and is safe on a nil scope (tasks of the global
// domain).
func (sc *scope) abortCause() error {
	if sc == nil {
		return nil
	}
	if sc.aborted.Load() {
		if sc.extAborted.Load() {
			// An out-of-band cancel was observed during execution:
			// promote its cause into the aggregate, like the context
			// branch below does.
			sc.ctxAborted.Store(true)
		}
		return *sc.cause.Load()
	}
	if sc.done != nil {
		select {
		case <-sc.done:
			sc.cancel(context.Cause(sc.ctx))
			sc.ctxAborted.Store(true)
			return *sc.cause.Load()
		default:
		}
	}
	return nil
}

// err returns the scope's aggregate error: the context cancellation
// cause — only if the cancellation was actually observed during
// execution (something drained or a body saw Ctx.Err), so a deadline
// firing after every task already completed does not fail a successful
// run — joined with every recorded task error. Skipped tasks are not
// errors of the scope; only the failure (or cancellation) that caused
// the skipping is reported.
func (sc *scope) err() error {
	sc.mu.Lock()
	errs := sc.errs
	sc.mu.Unlock()
	if sc.ctxAborted.Load() {
		return errors.Join(append([]error{*sc.cause.Load()}, errs...)...)
	}
	return errors.Join(errs...)
}

// Handle is the untyped completion handle of a submitted task: it
// carries the task's result value and error and is closed at the task's
// *full* completion (body finished and every descendant complete). The
// typed repro.Future[T] wraps a Handle.
type Handle struct {
	done chan struct{}
	val  any
	err  error
}

func newHandle() *Handle { return &Handle{done: make(chan struct{})} }

// Done returns a channel closed when the task has fully completed.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the task fully completes or ctx is cancelled, and
// returns the task's result and error. A nil ctx waits unconditionally.
// If ctx is cancelled first, Wait returns the cancellation cause; the
// task itself keeps running (cancel its submission context to stop it).
func (h *Handle) Wait(ctx context.Context) (any, error) {
	if ctx == nil {
		<-h.done
		return h.val, h.err
	}
	// A completed task wins over a cancelled context.
	select {
	case <-h.done:
		return h.val, h.err
	default:
	}
	select {
	case <-h.done:
		return h.val, h.err
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}
