package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/deps"
)

// TestSlotDomainPartition pins the properties of the slot→domain
// formula (topology.go) that the rest of the runtime builds on: total
// coverage, worker-block contiguity and balance, round-robin spread of
// the non-worker slots, and agreement with deps.ShardDomain over the
// root-submitter range.
func TestSlotDomainPartition(t *testing.T) {
	cases := []struct{ workers, domains int }{
		{1, 1}, {4, 1}, {4, 2}, {8, 2}, {8, 3}, {7, 4}, {16, 4}, {5, 5},
	}
	for _, tc := range cases {
		const extra = 24 // stand-in for rootShards+eventSlots+serveSlots
		counts := make([]int, tc.domains)
		last := 0
		for w := 0; w < tc.workers; w++ {
			d := slotDomain(w, tc.workers, tc.domains)
			if d < 0 || d >= tc.domains {
				t.Fatalf("w=%d workers=%d domains=%d: domain %d out of range", w, tc.workers, tc.domains, d)
			}
			if d < last {
				t.Fatalf("workers=%d domains=%d: domain not monotone at worker %d (%d after %d)",
					tc.workers, tc.domains, w, d, last)
			}
			last = d
			counts[d]++
		}
		for d, n := range counts {
			if n == 0 {
				t.Fatalf("workers=%d domains=%d: domain %d owns no worker", tc.workers, tc.domains, d)
			}
			// Contiguous blocks of w*D/W differ in size by at most one.
			if min, max := tc.workers/tc.domains, (tc.workers+tc.domains-1)/tc.domains; n < min || n > max {
				t.Fatalf("workers=%d domains=%d: domain %d owns %d workers, want in [%d,%d]",
					tc.workers, tc.domains, d, n, min, max)
			}
		}
		for s := tc.workers; s < tc.workers+extra; s++ {
			got := slotDomain(s, tc.workers, tc.domains)
			if want := (s - tc.workers) % tc.domains; got != want {
				t.Fatalf("workers=%d domains=%d: non-worker slot %d in domain %d, want %d",
					tc.workers, tc.domains, s, got, want)
			}
			// The root range must agree with the deps-level formula.
			if want := deps.ShardDomain(s-tc.workers, tc.domains); got != want {
				t.Fatalf("workers=%d domains=%d: slot %d disagrees with deps.ShardDomain (%d vs %d)",
					tc.workers, tc.domains, s, got, want)
			}
		}
	}
}

// TestShedTakeBound drives the work-shedding protocol deterministically
// on a built-but-not-started runtime (no workers racing the test): a
// shed cycle takes at most ShedBatch tasks, from exactly one victim
// domain, returns the first for immediate execution and re-homes the
// rest into the thief's domain.
func TestShedTakeBound(t *testing.T) {
	rt := build(Config{
		Workers: 4, Domains: 2, ShedBatch: 3,
		Scheduler: SchedCentralPTLock, IdleSpin: -1,
	})
	defer rt.Close()

	// Workers 0,1 are domain 0; workers 2,3 are domain 1 (topology.go).
	if rt.slotDom[0] != 0 || rt.slotDom[3] != 1 {
		t.Fatalf("unexpected worker partition: %v", rt.slotDom[:4])
	}
	const backlog = 10
	tasks := make([]Task, backlog)
	for i := range tasks {
		tasks[i].alive.Store(1)
		rt.schedAdd(&tasks[i], 3) // slot 3 → domain 1
	}
	if got := rt.domains[1].pending.v.Load(); got != backlog {
		t.Fatalf("domain 1 pending = %d after enqueue, want %d", got, backlog)
	}

	victim := 0
	first := rt.shedTake(0, 0, &victim) // worker 0, home domain 0
	if first == nil {
		t.Fatal("shedTake found nothing with a full remote backlog")
	}
	if first.qstate.Load() != 0 {
		t.Fatalf("stolen task still queued: qstate=%d", first.qstate.Load())
	}
	if got := rt.domains[1].shedOut.Load(); got != 3 {
		t.Fatalf("victim shedOut = %d, want ShedBatch (3)", got)
	}
	if got := rt.domains[0].shedIn.Load(); got != 3 {
		t.Fatalf("thief shedIn = %d, want 3", got)
	}
	// First task is in hand; the other two re-homed into domain 0's
	// scheduler, where the thief's domain-mates can claim them.
	if got := rt.domains[0].pending.v.Load(); got != 2 {
		t.Fatalf("thief domain pending = %d after re-home, want 2", got)
	}
	if got := rt.domains[1].pending.v.Load(); got != backlog-3 {
		t.Fatalf("victim pending = %d, want %d", got, backlog-3)
	}

	// A second cycle takes at most another batch — the bound is per
	// empty-recheck cycle, never cumulative slack.
	before := rt.domains[1].pending.v.Load()
	if rt.shedTake(0, 0, &victim) == nil {
		t.Fatal("second shed cycle found nothing")
	}
	if moved := before - rt.domains[1].pending.v.Load(); moved > 3 {
		t.Fatalf("second cycle moved %d tasks, want <= 3", moved)
	}
}

// TestShedTakeSingleVictim: one cycle never opens a second victim once
// the first has paid out, even when another remote domain also holds a
// larger backlog.
func TestShedTakeSingleVictim(t *testing.T) {
	rt := build(Config{
		Workers: 6, Domains: 3, ShedBatch: 4,
		Scheduler: SchedCentralPTLock, IdleSpin: -1,
	})
	defer rt.Close()

	// Workers 0,1→dom0; 2,3→dom1; 4,5→dom2.
	tasks := make([]Task, 7)
	for i := 0; i < 2; i++ {
		tasks[i].alive.Store(1)
		rt.schedAdd(&tasks[i], 2) // domain 1: small backlog
	}
	for i := 2; i < 7; i++ {
		tasks[i].alive.Store(1)
		rt.schedAdd(&tasks[i], 4) // domain 2: larger backlog
	}

	victim := 0
	if rt.shedTake(0, 0, &victim) == nil {
		t.Fatal("shedTake found nothing")
	}
	// The round-robin scan hit domain 1 first; its 2 tasks are the
	// whole payout — domain 2 must be untouched this cycle.
	if got := rt.domains[1].shedOut.Load(); got != 2 {
		t.Fatalf("domain 1 shedOut = %d, want 2", got)
	}
	if got := rt.domains[2].shedOut.Load(); got != 0 {
		t.Fatalf("domain 2 shedOut = %d, want 0 (single victim per cycle)", got)
	}
	if victim != 1 {
		t.Fatalf("victim cursor = %d, want 1", victim)
	}
	// Next cycle resumes round-robin after the last victim.
	if rt.shedTake(0, 0, &victim) == nil {
		t.Fatal("second cycle found nothing")
	}
	if got := rt.domains[2].shedOut.Load(); got != 4 {
		t.Fatalf("domain 2 shedOut = %d after second cycle, want 4", got)
	}
}

// TestShedTakeStaleDuplicate: a stale promotion duplicate consumed
// during a shed cycle is not counted against the batch bound and is
// not returned as stolen work.
func TestShedTakeStaleDuplicate(t *testing.T) {
	rt := build(Config{
		Workers: 4, Domains: 2, ShedBatch: 2,
		Scheduler: SchedCentralPTLock, IdleSpin: -1,
	})
	defer rt.Close()

	tasks := make([]Task, 3)
	for i := range tasks {
		tasks[i].alive.Store(1)
		rt.schedAdd(&tasks[i], 3) // domain 1
	}
	// Simulate the stale-duplicate state a promotion re-push leaves
	// behind: the first queue entry's task was already claimed
	// (qstate 0), so schedTook dissolves it into a nil.
	tasks[0].qstate.Store(0)

	victim := 0
	first := rt.shedTake(0, 0, &victim)
	if first == nil {
		t.Fatal("shedTake found nothing")
	}
	if first == &tasks[0] {
		t.Fatal("shedTake returned a stale duplicate as work")
	}
	if got := rt.domains[1].shedOut.Load(); got != 2 {
		t.Fatalf("shedOut = %d, want 2 (stale entry must not count)", got)
	}
}

// TestStatsDomains checks the Stats per-domain breakdown on a live
// multi-domain runtime: flat fields equal the totals over domains, the
// domain worker counts partition the pool, and the retention counters
// account every executed task.
func TestStatsDomains(t *testing.T) {
	rt := New(Config{Workers: 4, Domains: 2})
	defer rt.Close()

	var n atomic.Int64
	err := rt.Run(func(c *Ctx) {
		for i := 0; i < 256; i++ {
			c.Spawn(func(*Ctx) { n.Add(1) })
		}
		c.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 256 {
		t.Fatalf("ran %d tasks, want 256", n.Load())
	}

	s := rt.Stats()
	if len(s.Domains) != 2 {
		t.Fatalf("len(Domains) = %d, want 2", len(s.Domains))
	}
	var workers int
	var parks, wakes, executed, executedHome uint64
	var pending int64
	for _, d := range s.Domains {
		workers += d.Workers
		parks += d.Parks
		wakes += d.Wakes
		pending += d.Pending
		executed += d.Executed
		executedHome += d.ExecutedHome
		if d.ExecutedHome > d.Executed {
			t.Fatalf("domain retention over 100%%: home %d > executed %d", d.ExecutedHome, d.Executed)
		}
	}
	if workers != s.Workers || s.Workers != 4 {
		t.Fatalf("domain workers sum to %d, flat %d, want 4", workers, s.Workers)
	}
	if parks != s.Parks || wakes != s.Wakes || pending != s.Pending {
		t.Fatalf("flat totals diverge from domain sums: parks %d/%d wakes %d/%d pending %d/%d",
			s.Parks, parks, s.Wakes, wakes, s.Pending, pending)
	}
	// Every spawned task (and the root) executed on some domain; the
	// home subset can never exceed the total. Inline-served or helped
	// executions also charge the executing slot's domain, so the total
	// is at least the spawn count.
	if executed < 256 {
		t.Fatalf("executed = %d across domains, want >= 256", executed)
	}
	if executedHome > executed {
		t.Fatalf("executedHome %d > executed %d", executedHome, executed)
	}
}
