package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Req is a reusable completion latch for root submissions on the
// serving fast path (repro.CompiledGraph.Do). Where Submit allocates a
// fresh Handle and done channel per call, a Req is allocated once by
// the caller and carries one submission at a time: together with the
// pooled scope and task shell, a steady-state SubmitReq/Wait cycle
// allocates nothing.
//
// A Req is strictly sequential: one SubmitReq, then one Wait, then it
// may be reused. Exactly one goroutine may drive a cycle, and the next
// SubmitReq must not start before the previous Wait returned. It is
// not a broadcast handle — Wait consumes the completion.
type Req struct {
	// done is a one-slot latch, not a closed channel: completion sends
	// exactly one token per submission, Wait consumes it, and the
	// channel is ready for the next cycle without reallocation.
	done chan struct{}

	// gen invalidates deadline timers of earlier cycles: every
	// SubmitReq bumps it under mu before any other cycle state is
	// touched, and a wheel callback re-checks the generation it
	// captured at arm time under the same mu, so a stale timer firing
	// into a later cycle is a no-op.
	mu  sync.Mutex
	gen uint64

	// state serializes a deadline cancel against the completion fold:
	// tryCancel holds reqCancelling only around the scope cancel, and
	// completeOne spins state into reqDone before folding and releasing
	// the scope, so the cancel path can never touch a scope that
	// completion already recycled.
	state atomic.Int32
	sc    *scope
	err   error
}

const (
	reqIdle       int32 = iota // no cancel in flight; completion may claim
	reqCancelling              // a canceller holds the scope for a cancel call
	reqDone                    // completion claimed the fold; cancel is a no-op
)

// NewReq returns an empty latch, ready for SubmitReq.
func NewReq() *Req {
	return &Req{done: make(chan struct{}, 1)}
}

// SubmitReq submits a root task like SubmitCtx, resolving the
// caller-pooled Req instead of allocating a Handle. body runs under a
// fresh (pooled) scope with ctx and the configured ErrorPolicy; if
// d > 0 the submission is additionally cancelled — not-yet-started
// tasks drain, exactly like a context deadline — when the runtime's
// timer wheel fires after d, with context.DeadlineExceeded as the
// cause. The submission carries no root dependency accesses (serving
// requests are self-contained graphs ordered internally).
//
// When an inline-serving slot is free (Config.ServeSlots), the calling
// goroutine executes the request itself: the root body and every ready
// descendant run right here, on the submitter's exclusive thread
// index, and SubmitReq returns only once the request fully completed —
// skipping both cross-goroutine hand-offs (submit wake-up, completion
// wake-up) of the dispatch path. Workers still steal ready tasks of
// the request concurrently, so inline serving never reduces
// parallelism. When every slot is busy (or ServeSlots is negative),
// the root dispatches through the scheduler as before and Wait blocks
// on the latch.
//
// A deadline costs one timer registration (a captured-generation
// closure on the wheel); the d == 0 path allocates nothing.
func (rt *Runtime) SubmitReq(ctx context.Context, r *Req, d time.Duration, body func(*Ctx)) {
	// Bump the generation first, under mu: a stale timer of the
	// previous cycle that already passed its generation check must
	// complete its cancel attempt before the new cycle's state resets
	// (the bump waits on mu), and one that has not yet checked will see
	// the mismatch and stand down.
	r.mu.Lock()
	r.gen++
	gen := r.gen
	r.mu.Unlock()
	r.err = nil
	r.state.Store(reqIdle)
	sc := newScope(ctx, rt.cfg.OnError)
	r.sc = sc
	if d > 0 {
		rt.wheel.After(d, func() {
			r.mu.Lock()
			if r.gen == gen {
				r.tryCancel(context.DeadlineExceeded)
			}
			r.mu.Unlock()
		})
	}
	if slot := rt.acquireServe(); slot >= 0 {
		rt.submitReqInline(r, sc, body, slot)
		rt.releaseServe(slot)
		return
	}
	lease := rt.rootDom.AcquireFor(uintptr(unsafe.Pointer(r)))
	if !rt.gate.Enter(lease.Slot()) {
		lease.Release()
		rt.failDraining(r, sc)
		return
	}
	slot := rt.cfg.Workers + lease.Slot()
	t := rt.newReqTask(r, sc, body, slot)
	rt.registerWith(&rt.global, rt.rootDom, t, slot)
	rt.gate.Leave(lease.Slot())
	lease.Release()
}

// submitReqInline registers the request's root on the caller's
// exclusive serving slot and executes it in place: the registration
// arms the slot's bypass so the access-free root comes straight back
// to this goroutine instead of the scheduler, and the goroutine then
// helps execute ready tasks until the request's completion fold
// claimed the Req. The drain gate is entered around registration only,
// exactly like the dispatch path.
func (rt *Runtime) submitReqInline(r *Req, sc *scope, body func(*Ctx), slot int) {
	shard := (slot - rt.serveBase) % rt.cfg.RootShards
	if !rt.gate.Enter(shard) {
		rt.failDraining(r, sc)
		return
	}
	t := rt.newReqTask(r, sc, body, slot)
	bs := &rt.bypass[slot]
	bs.armed = true
	rt.registerWith(&rt.global, rt.rootDom, t, slot)
	bs.armed = false
	next := bs.next
	bs.next = nil
	rt.gate.Leave(shard)
	// The bypass declines a root whose scope is already aborted (or
	// when higher-priority work is queued); the root then went through
	// the scheduler and the helping loop below drains it like any
	// other task.
	for next != nil {
		next = rt.execute(next, slot)
	}
	rt.helpUntil(slot, func() bool { return r.state.Load() == reqDone })
}

// newReqTask builds the access-free root task of one Req cycle.
func (rt *Runtime) newReqTask(r *Req, sc *scope, body func(*Ctx), slot int) *Task {
	t := rt.newTask(&rt.global, body, nil, slot)
	t.sc = sc
	t.req = r
	t.ownsScope = true
	return t
}

// failDraining resolves a cycle rejected by the sealed drain gate.
func (rt *Runtime) failDraining(r *Req, sc *scope) {
	sc.release()
	r.sc = nil
	r.state.Store(reqDone) // a racing deadline must not cancel anything
	r.err = ErrRuntimeDraining
	r.done <- struct{}{}
}

// Wait blocks until the submission fully completes and returns its
// aggregate error (the same folding as RunCtx: task errors per the
// ErrorPolicy, a skip marker when the root itself was drained). A
// deadline armed at SubmitReq cancels the scope from the timer wheel —
// not-yet-started tasks drain with ErrTaskSkipped wrapping
// context.DeadlineExceeded — and completion still waits for the full
// drain: when Wait returns, no task of the submission can touch the
// request's state again, which is what makes caller-side frame reuse
// safe.
func (r *Req) Wait() error {
	<-r.done
	return r.err
}

// tryCancel cancels the in-flight submission's scope unless completion
// already claimed the fold. Safe from any goroutine; the state machine
// keeps it off a scope that completion is releasing.
func (r *Req) tryCancel(cause error) {
	if !r.state.CompareAndSwap(reqIdle, reqCancelling) {
		return // completing (or already done): nothing left to cancel
	}
	if sc := r.sc; sc != nil {
		sc.cancelExternal(cause)
	}
	r.state.Store(reqIdle)
}
