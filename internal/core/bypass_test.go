package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"unsafe"

	"repro/internal/deps"
)

// chainConfigs returns the optimized runtime config under each
// dependency system: the successor bypass and the pin-gated inline
// recycling must behave identically under both.
func chainConfigs() map[string]Config {
	wf := ConfigFor(VariantOptimized, 4, 2)
	lk := ConfigFor(VariantOptimized, 4, 2)
	lk.Deps = DepsLocked
	return map[string]Config{"wait-free": wf, "locked": lk}
}

// TestBypassChainCompletes drives a long serialized in→out chain — the
// shape where every Unregister readies exactly one successor, so the
// bypass slot carries almost every hand-off — and checks exactly-once
// execution and full live-task unwinding under both deps systems.
func TestBypassChainCompletes(t *testing.T) {
	for name, cfg := range chainConfigs() {
		t.Run(name, func(t *testing.T) {
			rt := New(cfg)
			defer rt.Close()
			const n = 20000
			var x int64
			var ran atomic.Int64
			err := rt.Run(func(c *Ctx) {
				for i := 0; i < n; i++ {
					c.Spawn(func(*Ctx) { x++; ran.Add(1) }, InOut(&x))
				}
				c.Taskwait()
			})
			if err != nil {
				t.Fatal(err)
			}
			if x != n || ran.Load() != n {
				t.Fatalf("chain ran %d/%d tasks, x=%d", ran.Load(), n, x)
			}
			if lv := rt.LiveTasks(); lv != 0 {
				t.Fatalf("LiveTasks = %d after Run returned", lv)
			}
		})
	}
}

// TestBypassChainDrains checks the FailFast drain path through the
// bypass-capable execute loop: an early chain task fails, the rest of
// the (already registered) chain must drain without executing, and the
// graph must still fully unwind to LiveTasks()==0.
func TestBypassChainDrains(t *testing.T) {
	boom := errors.New("boom")
	for name, cfg := range chainConfigs() {
		t.Run(name, func(t *testing.T) {
			rt := New(cfg)
			defer rt.Close()
			const n = 5000
			var x int64
			var ran atomic.Int64
			err := rt.Run(func(c *Ctx) {
				c.GoFn(func(*Ctx) (any, error) { return nil, boom }, InOut(&x))
				for i := 0; i < n; i++ {
					c.Spawn(func(*Ctx) { ran.Add(1) }, InOut(&x))
				}
				c.Taskwait()
			})
			if !errors.Is(err, boom) {
				t.Fatalf("Run error = %v, want %v", err, boom)
			}
			if ran.Load() != 0 {
				t.Fatalf("%d drained tasks executed their bodies", ran.Load())
			}
			if lv := rt.LiveTasks(); lv != 0 {
				t.Fatalf("LiveTasks = %d after drained Run", lv)
			}
		})
	}
}

// TestReductionGroupHeadQuiescence is the regression test for the pin
// protocol's subtlest case: reduction run members release on their own
// finished+children-done — long before the chain predecessor's
// satisfiability push reaches the run head — so the head's task shell
// must NOT be recycled at completion even though the task is fully
// done. The HPCCG-shaped DAG below (writer → reduction run → reader,
// twice, plus read chains feeding a multi-access successor) hung
// deterministically before the fix: the head's inline access was
// recycled, the predecessor's release push landed in a reused shell,
// and the readers after the runs never became satisfied.
func TestReductionGroupHeadQuiescence(t *testing.T) {
	for round := 0; round < 20; round++ {
		rt := New(ConfigFor(VariantOptimized, 4, 1))
		var rr, pap, alpha float64
		var p, ap, x, r [2]float64
		err := rt.Run(func(c *Ctx) {
			c.Spawn(func(*Ctx) { rr = 0 }, Out(&rr))
			for i := 0; i < 2; i++ {
				i := i
				c.Spawn(func(cc *Ctx) { cc.ReductionBuffer(&rr)[0] += r[i] },
					In(&r[i]), RedSpec(&rr, 1, deps.OpSum))
			}
			c.Spawn(func(*Ctx) { ap[0] = p[0] + p[1] }, Out(&ap[0]), In(&p[0]), In(&p[1]))
			c.Spawn(func(*Ctx) { ap[1] = p[1] + p[0] }, Out(&ap[1]), In(&p[1]), In(&p[0]))
			c.Spawn(func(*Ctx) { pap = 0 }, Out(&pap))
			for i := 0; i < 2; i++ {
				i := i
				c.Spawn(func(cc *Ctx) { cc.ReductionBuffer(&pap)[0] += p[i] * ap[i] },
					In(&p[i]), In(&ap[i]), RedSpec(&pap, 1, deps.OpSum))
			}
			c.Spawn(func(*Ctx) { alpha = rr + pap }, In(&rr), In(&pap), Out(&alpha))
			for i := 0; i < 2; i++ {
				i := i
				// Five accesses: exercises the overflow (heap) storage path
				// alongside the inline one.
				c.Spawn(func(*Ctx) { x[i] += alpha * p[i]; r[i] -= alpha * ap[i] },
					In(&alpha), In(&p[i]), In(&ap[i]), InOut(&x[i]), InOut(&r[i]))
			}
			c.Taskwait()
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if lv := rt.LiveTasks(); lv != 0 {
			t.Fatalf("round %d: LiveTasks = %d", round, lv)
		}
		rt.Close()
	}
}

// TestInlineAccessReuseChains hammers shell recycling with varying
// access counts (0..6, crossing the inline/overflow boundary) across
// several rounds on one runtime, so recycled shells are re-registered
// with different access-set sizes.
func TestInlineAccessReuseChains(t *testing.T) {
	rt := New(ConfigFor(VariantOptimized, 4, 2))
	defer rt.Close()
	var cells [6]float64
	for round := 0; round < 5; round++ {
		var ran atomic.Int64
		const n = 2000
		err := rt.Run(func(c *Ctx) {
			for i := 0; i < n; i++ {
				specs := make([]AccessSpec, 0, 6)
				for k := 0; k <= i%6; k++ {
					specs = append(specs, InOut(&cells[k]))
				}
				c.Spawn(func(*Ctx) { ran.Add(1) }, specs...)
				if i%512 == 511 {
					c.Taskwait()
				}
			}
			c.Taskwait()
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran.Load() != n {
			t.Fatalf("round %d: ran %d/%d", round, ran.Load(), n)
		}
		if lv := rt.LiveTasks(); lv != 0 {
			t.Fatalf("round %d: LiveTasks = %d", round, lv)
		}
	}
}

// TestCtxSize pins the Ctx layout the padded per-worker ctxSlot assumes
// (three words; the slot pads the remainder of the cache line).
func TestCtxSize(t *testing.T) {
	if s := unsafe.Sizeof(Ctx{}); s != 24 {
		t.Fatalf("Ctx size = %d, want 24 (update ctxSlot padding)", s)
	}
	if s := unsafe.Sizeof(ctxSlot{}); s != 64 {
		t.Fatalf("ctxSlot size = %d, want 64", s)
	}
	if s := unsafe.Sizeof(bypassSlot{}); s != 64 {
		t.Fatalf("bypassSlot size = %d, want 64", s)
	}
}

// TestTaskwaitNestedBypass checks the Ctx save/restore around taskwait
// helping: a body that taskwaits while the helper executes a bypassed
// chain must still observe its own task context afterwards (Spawn from
// the outer body attaches to the outer task, not the helped one).
func TestTaskwaitNestedBypass(t *testing.T) {
	rt := New(ConfigFor(VariantOptimized, 2, 1))
	defer rt.Close()
	var x int64
	var outer, inner atomic.Int64
	err := rt.Run(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Spawn(func(cc *Ctx) {
				for j := 0; j < 10; j++ {
					cc.Spawn(func(*Ctx) { inner.Add(1) }, InOut(&x))
				}
				cc.Taskwait()
				// After helping arbitrary chain tasks, cc must still be
				// this task's context: spawn one more child and wait.
				cc.Spawn(func(*Ctx) { inner.Add(1) }, InOut(&x))
				cc.Taskwait()
				outer.Add(1)
			})
		}
		c.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if outer.Load() != 100 || inner.Load() != 1100 {
		t.Fatalf("outer=%d inner=%d, want 100/1100", outer.Load(), inner.Load())
	}
	if lv := rt.LiveTasks(); lv != 0 {
		t.Fatalf("LiveTasks = %d", lv)
	}
}
