package core

import (
	"context"
	"errors"
	"testing"
)

// TestHandleSubmit exercises the untyped core Submit surface directly.
func TestHandleSubmit(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()

	h := rt.Submit(func(*Ctx) (any, error) { return 41, nil })
	v, err := h.Wait(nil)
	if err != nil || v.(int) != 41 {
		t.Fatalf("Wait = %v, %v; want 41, nil", v, err)
	}

	boom := errors.New("boom")
	h = rt.Submit(func(*Ctx) (any, error) { return nil, boom })
	if _, err := h.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
}

// TestSubmitDuringRun: Submit issued from another goroutine while a Run
// is in flight must not deadlock (registration-only serialization).
func TestSubmitDuringRun(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()

	inRun := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- rt.Run(func(c *Ctx) {
			close(inRun)
			<-release
		})
	}()
	<-inRun
	h := rt.Submit(func(*Ctx) (any, error) { return "ok", nil })
	v, err := h.Wait(nil) // completes while the Run is still blocked
	if err != nil || v.(string) != "ok" {
		t.Fatalf("Submit during Run = %v, %v", v, err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestScopeAbortCause covers the nil-scope fast path and cause
// propagation order.
func TestScopeAbortCause(t *testing.T) {
	var sc *scope
	if sc.abortCause() != nil {
		t.Fatal("nil scope must report no abort")
	}
	sc = newScope(nil, FailFast)
	if sc.abortCause() != nil {
		t.Fatal("fresh scope must report no abort")
	}
	e1, e2 := errors.New("e1"), errors.New("e2")
	sc.fail(e1)
	sc.fail(e2)
	if got := sc.abortCause(); got != e1 {
		t.Fatalf("abortCause = %v, want first failure e1", got)
	}
	if err := sc.err(); !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("scope err = %v, want join of e1, e2", err)
	}

	// Context cancellation is observed synchronously after cancel.
	ctx, cancel := context.WithCancelCause(context.Background())
	sc = newScope(ctx, FailFast)
	cause := errors.New("cause")
	cancel(cause)
	if got := sc.abortCause(); got != cause {
		t.Fatalf("abortCause after cancel = %v, want %v", got, cause)
	}
}

// TestSkipErrorUnwrap pins the skip error contract: errors.Is matches
// both ErrTaskSkipped and the cancellation cause.
func TestSkipErrorUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	err := error(&skipError{cause: cause})
	if !errors.Is(err, ErrTaskSkipped) || !errors.Is(err, cause) {
		t.Fatalf("skipError %v must wrap ErrTaskSkipped and cause", err)
	}
}

// TestErrorPolicyString keeps the diagnostics stable.
func TestErrorPolicyString(t *testing.T) {
	if FailFast.String() != "fail-fast" || CollectAll.String() != "collect-all" {
		t.Fatalf("policy strings = %q, %q", FailFast, CollectAll)
	}
}

// TestCollectAllKeepsRunning: core-level check that CollectAll does not
// abort the scope.
func TestCollectAllKeepsRunning(t *testing.T) {
	rt := New(Config{Workers: 2, OnError: CollectAll})
	defer rt.Close()

	ran := 0
	err := rt.Run(func(c *Ctx) {
		c.GoFn(func(*Ctx) (any, error) { return nil, errors.New("early") })
		c.Spawn(func(*Ctx) { ran++ })
		c.Taskwait()
	})
	if err == nil {
		t.Fatal("Run must surface the collected error")
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (CollectAll must not drain)", ran)
	}
}
