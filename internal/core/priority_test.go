package core

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// schedKindsUnderStress returns the scheduler designs the priority
// stress tests exercise. The CI stress matrix pins one design per job
// through REPRO_STRESS_SCHED ("sync", "central", "worksteal",
// "blocking"), mirroring REPRO_STRESS_DEPS; locally the three designs
// with distinct priority machinery run (blocking shares the central
// policy path).
func schedKindsUnderStress() []SchedulerKind {
	switch os.Getenv("REPRO_STRESS_SCHED") {
	case "sync":
		return []SchedulerKind{SchedSyncDTLock}
	case "central":
		return []SchedulerKind{SchedCentralPTLock}
	case "worksteal":
		return []SchedulerKind{SchedWorkStealing}
	case "blocking":
		return []SchedulerKind{SchedBlocking}
	}
	return []SchedulerKind{SchedSyncDTLock, SchedCentralPTLock, SchedWorkStealing}
}

// domainsUnderStress returns the NUMA-domain counts the differential
// stress suites run the tagged (priority/EDF/evented) side at. Locally
// 1 and 2 domains run, so every test run covers the sharded enqueue,
// shed and cross-domain wake paths; the CI stress matrix widens to 4
// domains through REPRO_STRESS_DOMAINS=on. The plain (stripped)
// reference side always runs at 1 domain — domain sharding, like
// priority, may only reorder ready tasks, so the final per-address
// versions must agree across domain counts.
func domainsUnderStress() []int {
	if os.Getenv("REPRO_STRESS_DOMAINS") == "on" {
		return []int{1, 2, 4}
	}
	return []int{1, 2}
}

func (k SchedulerKind) testName() string {
	switch k {
	case SchedCentralPTLock:
		return "central"
	case SchedBlocking:
		return "blocking"
	case SchedWorkStealing:
		return "worksteal"
	}
	return "sync"
}

// TestPriorityRespectsDependencies pins the core contract: a
// MaxPriority task still waits for its low-priority predecessor. Both
// tasks are queued while the single worker is parked in a gate task,
// so the scheduler sees them together and the only thing keeping the
// order correct is the dependency chain.
func TestPriorityRespectsDependencies(t *testing.T) {
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			rt := New(Config{Workers: 1, Scheduler: sk})
			defer rt.Close()
			release := make(chan struct{})
			gate := rt.Submit(func(*Ctx) (any, error) {
				<-release
				return nil, nil
			})
			var x float64
			var aDone atomic.Bool
			a := rt.Submit(func(*Ctx) (any, error) {
				x = 42
				aDone.Store(true)
				return nil, nil
			}, Out(&x))
			var sawPredecessor atomic.Bool
			b := rt.Submit(func(*Ctx) (any, error) {
				sawPredecessor.Store(aDone.Load() && x == 42)
				return nil, nil
			}, In(&x), Priority(MaxPriority))
			close(release)
			for _, h := range []*Handle{gate, a, b} {
				if _, err := h.Wait(nil); err != nil {
					t.Fatal(err)
				}
			}
			if !sawPredecessor.Load() {
				t.Fatal("high-priority successor ran before its low-priority predecessor")
			}
		})
	}
}

// TestPriorityBypassYieldsToQueuedHigher pins the successor-bypass
// gate: with a MaxPriority task queued, a released low-priority
// immediate successor must go through the scheduler (where the
// priority policy orders the two) instead of jumping the queue in the
// worker's bypass slot. One worker, fully sequenced, so the execution
// order is deterministic.
func TestPriorityBypassYieldsToQueuedHigher(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var mu sync.Mutex
	var order []string
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	var a float64
	queued := make(chan struct{})
	// t1 holds the worker; its completion releases s (the bypass
	// candidate). q is queued at MaxPriority while t1 runs.
	t1 := rt.Submit(func(*Ctx) (any, error) {
		<-queued
		return nil, nil
	}, InOut(&a))
	s := rt.Submit(func(*Ctx) (any, error) {
		record("successor")
		return nil, nil
	}, InOut(&a))
	q := rt.Submit(func(*Ctx) (any, error) {
		record("interactive")
		return nil, nil
	}, Priority(MaxPriority))
	close(queued) // q's registration completed: it is queued at level 3
	for _, h := range []*Handle{t1, s, q} {
		if _, err := h.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(order) != 2 || order[0] != "interactive" {
		t.Fatalf("execution order %v; want the queued MaxPriority task before the bypassed successor", order)
	}
}

// TestPriorityStarvationBounded pins the anti-starvation bound
// end-to-end: under a sustained stream of MaxPriority tasks (the
// feeder keeps a window outstanding for the whole test), a batch of
// level-0 tasks must still complete — the courtesy slot guarantees
// bounded waiting, on every scheduler design.
func TestPriorityStarvationBounded(t *testing.T) {
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			rt := New(Config{Workers: 2, Scheduler: sk})
			defer rt.Close()

			stop := make(chan struct{})
			var feederDone sync.WaitGroup
			var interactiveRan atomic.Int64
			// Feeder: keep several MaxPriority tasks outstanding until
			// told to stop.
			const feedWindow = 8
			feederDone.Add(feedWindow)
			for w := 0; w < feedWindow; w++ {
				go func() {
					defer feederDone.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						h := rt.Submit(func(*Ctx) (any, error) {
							interactiveRan.Add(1)
							return nil, nil
						}, Priority(MaxPriority))
						h.Wait(nil)
					}
				}()
			}

			const batch = 50
			handles := make([]*Handle, batch)
			for i := range handles {
				handles[i] = rt.Submit(func(*Ctx) (any, error) { return nil, nil })
			}
			done := make(chan struct{})
			go func() {
				for _, h := range handles {
					h.Wait(nil)
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Errorf("batch tasks starved: not all of %d completed under sustained "+
					"MaxPriority load (%d interactive tasks ran)", batch, interactiveRan.Load())
			}
			close(stop)
			feederDone.Wait()
			if t.Failed() {
				t.FailNow()
			}
		})
	}
}

// TestPriorityWithTaskloopsStress runs level-0 work-sharing loops
// concurrently with a MaxPriority submission stream: the lane
// re-route (a descriptor taken while a higher level is queued goes
// back through the scheduler) and the stealer claim-yield must not
// lose descriptors, skip iterations, or strand handles, on any
// scheduler design.
func TestPriorityWithTaskloopsStress(t *testing.T) {
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			rt := New(Config{Workers: 4, Scheduler: sk})
			defer rt.Close()
			const iters = 50_000
			var sum atomic.Int64
			loopDone := make(chan error, 1)
			go func() {
				loopDone <- rt.RunLoop(0, iters, 64, func(_ *Ctx, lo, hi int) {
					s := 0
					for i := lo; i < hi; i++ {
						s += i
					}
					sum.Add(int64(s))
				})
			}()
			var interactive atomic.Int64
			var handles []*Handle
			for i := 0; i < 200; i++ {
				handles = append(handles, rt.Submit(func(*Ctx) (any, error) {
					interactive.Add(1)
					return nil, nil
				}, Priority(MaxPriority)))
			}
			for _, h := range handles {
				if _, err := h.Wait(nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := <-loopDone; err != nil {
				t.Fatal(err)
			}
			if want := int64(iters) * (iters - 1) / 2; sum.Load() != want {
				t.Fatalf("loop sum %d, want %d (lost or duplicated chunks)", sum.Load(), want)
			}
			if interactive.Load() != 200 {
				t.Fatalf("interactive tasks ran %d times, want 200", interactive.Load())
			}
			if n := rt.LiveTasks(); n != 0 {
				t.Fatalf("LiveTasks = %d", n)
			}
		})
	}
}

// --- Differential stress: priorities must not change what runs ---

// priSpec is one randomized graph: tasks register in order, each with
// distinct-address accesses and a priority level; the same spec runs
// priority-tagged and priority-stripped and must behave identically
// under a per-address happens-before oracle (a compact version of the
// internal/deps differential oracle: readers overlap readers only,
// exclusives are mutually exclusive, every access observes exactly the
// address version its chain position entitles it to).
type priSpec struct {
	cells int
	tasks []priTask
}

type priTask struct {
	accs []priAccess
	pri  int
	// dl is a relative deadline in nanoseconds (0 = none) and inherit
	// the inheritance clause; both are zero in the base priority suite
	// and randomized by genDeadlineSpec. Like priorities, they are
	// scheduling hints only and must never change what runs.
	dl      int64
	inherit bool
}

type priAccess struct {
	addr int
	typ  depsAccessType
}

type depsAccessType uint8

const (
	priIn depsAccessType = iota
	priOut
	priInOut
	priCommutative
)

func genPriSpec(r *rand.Rand) priSpec {
	spec := priSpec{cells: 2 + r.Intn(5)}
	n := 1 + r.Intn(30)
	for t := 0; t < n; t++ {
		na := 1 + r.Intn(3)
		if na > spec.cells {
			na = spec.cells
		}
		perm := r.Perm(spec.cells)[:na] // distinct addresses per task
		task := priTask{pri: r.Intn(4)}
		for _, addr := range perm {
			typ := depsAccessType(r.Intn(4))
			task.accs = append(task.accs, priAccess{addr: addr, typ: typ})
		}
		spec.tasks = append(spec.tasks, task)
	}
	return spec
}

// genDeadlineSpec extends a random priority spec with random deadlines
// (about half the tasks, microsecond-scale offsets so many have already
// passed by execution — EDF must tolerate that) and inheritance clauses
// (about a third), for the deadline differential dimension.
func genDeadlineSpec(r *rand.Rand) priSpec {
	spec := genPriSpec(r)
	for i := range spec.tasks {
		if r.Intn(2) == 0 {
			spec.tasks[i].dl = int64(1+r.Intn(1000)) * int64(time.Microsecond)
		}
		if r.Intn(3) == 0 {
			spec.tasks[i].inherit = true
		}
	}
	return spec
}

// priExpectation is the version window an access may observe at body
// time (commutative run members share the run's window).
type priExpectation struct{ lo, hi int }

func computePriExpectations(spec priSpec) [][]*priExpectation {
	type addrState struct {
		excl     int
		runStart int
		inRun    bool
		runMembs []*priExpectation
	}
	st := make([]addrState, spec.cells)
	closeRun := func(s *addrState) {
		for _, e := range s.runMembs {
			e.hi = s.excl - 1
		}
		s.inRun = false
		s.runMembs = nil
	}
	exps := make([][]*priExpectation, len(spec.tasks))
	for t, task := range spec.tasks {
		exps[t] = make([]*priExpectation, len(task.accs))
		for i, a := range task.accs {
			s := &st[a.addr]
			switch a.typ {
			case priIn:
				closeRun(s)
				exps[t][i] = &priExpectation{lo: s.excl, hi: s.excl}
			case priOut, priInOut:
				closeRun(s)
				exps[t][i] = &priExpectation{lo: s.excl, hi: s.excl}
				s.excl++
			case priCommutative:
				if !s.inRun {
					s.inRun = true
					s.runStart = s.excl
				}
				e := &priExpectation{lo: s.runStart}
				s.runMembs = append(s.runMembs, e)
				exps[t][i] = e
				s.excl++
			}
		}
	}
	for a := range st {
		closeRun(&st[a])
	}
	return exps
}

// priCell is one address's oracle state, padded against false sharing.
type priCell struct {
	data    float64
	ver     atomic.Int64
	readers atomic.Int64
	writers atomic.Int64
	_       [24]byte
}

// runPriSpec executes the spec through a full runtime of the given
// scheduler kind, with or without the priority tags, under the oracle.
// It returns the final per-address versions.
//
// With evented set, every second task defers its release through the
// external-event subsystem: the body registers an event and the oracle
// *unwind* (version bump, exclusivity exit) runs in the completion —
// from a plain goroutine or from the shared timer wheel, alternating.
// The oracle then checks deferral for real: if the runtime released
// the task's dependencies at body return instead of at the final
// decrement, a successor would observe an in-flight exclusive or a
// stale version and report a violation.
func runPriSpec(t *testing.T, sk SchedulerKind, spec priSpec, tagged, evented, edf bool, domains int) []int64 {
	t.Helper()
	rt := New(Config{Workers: 4, Scheduler: sk, EDF: edf, Domains: domains})
	defer rt.Close()
	cells := make([]priCell, spec.cells)
	exps := computePriExpectations(spec)

	var vmu sync.Mutex
	var violations []string
	violate := func(format string, args ...any) {
		vmu.Lock()
		if len(violations) < 5 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		vmu.Unlock()
	}

	ran := make([]atomic.Int32, len(spec.tasks))
	err := rt.Run(func(c *Ctx) {
		for ti := range spec.tasks {
			ti := ti
			task := spec.tasks[ti]
			specs := make([]AccessSpec, 0, len(task.accs)+1)
			for _, a := range task.accs {
				p := &cells[a.addr].data
				switch a.typ {
				case priIn:
					specs = append(specs, In(p))
				case priOut:
					specs = append(specs, Out(p))
				case priInOut:
					specs = append(specs, InOut(p))
				case priCommutative:
					specs = append(specs, Commutative(p))
				}
			}
			if tagged {
				specs = append(specs, Priority(task.pri))
				if task.dl != 0 {
					specs = append(specs, Deadline(NowNS()+task.dl))
				}
				if task.inherit {
					specs = append(specs, Inherit())
				}
			}
			c.Spawn(func(cc *Ctx) {
				if ran[ti].Add(1) != 1 {
					violate("t%d executed more than once", ti)
				}
				for i, a := range task.accs {
					cell := &cells[a.addr]
					excl := a.typ != priIn
					if excl {
						if w := cell.writers.Add(1); w != 1 {
							violate("t%d c%d: %d concurrent exclusive bodies", ti, a.addr, w)
						}
						if r := cell.readers.Load(); r != 0 {
							violate("t%d c%d: exclusive overlaps %d readers", ti, a.addr, r)
						}
					} else {
						cell.readers.Add(1)
						if w := cell.writers.Load(); w != 0 {
							violate("t%d c%d: reader overlaps %d exclusives", ti, a.addr, w)
						}
					}
					if v := int(cell.ver.Load()); v < exps[ti][i].lo || v > exps[ti][i].hi {
						violate("t%d c%d: observed version %d, want [%d,%d]",
							ti, a.addr, v, exps[ti][i].lo, exps[ti][i].hi)
					}
				}
				for i := 0; i < 30; i++ {
					if i&7 == 0 {
						runtime.Gosched()
					}
				}
				unwind := func() {
					for i := len(task.accs) - 1; i >= 0; i-- {
						cell := &cells[task.accs[i].addr]
						if task.accs[i].typ != priIn {
							cell.ver.Add(1)
							cell.writers.Add(-1)
						} else {
							cell.readers.Add(-1)
						}
					}
				}
				if evented && ti%2 == 0 {
					if ti%4 == 0 {
						ev := cc.Events()
						ev.Add(1)
						go func() {
							runtime.Gosched()
							unwind()
							ev.Done()
						}()
					} else {
						cc.AfterFunc(time.Duration(ti%3)*50*time.Microsecond, unwind)
					}
				} else {
					unwind()
				}
			}, specs...)
		}
		c.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range ran {
		if ran[ti].Load() != 1 {
			violate("t%d ran %d times", ti, ran[ti].Load())
		}
	}
	vmu.Lock()
	defer vmu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("sched=%s tagged=%v evented=%v: oracle violations:\n  %s\nspec: %+v",
			sk.testName(), tagged, evented, violations[0], spec)
	}
	final := make([]int64, spec.cells)
	for a := range cells {
		final[a] = cells[a].ver.Load()
	}
	return final
}

// TestPriorityDifferentialStress runs randomized graphs with random
// per-task priorities through every scheduler design, twice each —
// priority-tagged and priority-stripped — under the happens-before
// oracle (the core-level sibling of the internal/deps differential
// suite). Priorities may only reorder ready tasks: both runs must be
// oracle-clean, run every task exactly once, and agree on the final
// per-address versions.
func TestPriorityDifferentialStress(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	baseSeed := int64(0x9121) // bump to re-roll the whole suite
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				seed := baseSeed + int64(round)
				spec := genPriSpec(rand.New(rand.NewSource(seed)))
				plain := runPriSpec(t, sk, spec, false, false, false, 1)
				for _, nd := range domainsUnderStress() {
					if nd > 1 && sk == SchedBlocking {
						continue // blocking forces Domains=1; skip the duplicate
					}
					tagged := runPriSpec(t, sk, spec, true, false, false, nd)
					for a := range tagged {
						if tagged[a] != plain[a] {
							t.Fatalf("seed %d domains %d: final version of cell %d differs: tagged %d vs stripped %d",
								seed, nd, a, tagged[a], plain[a])
						}
					}
				}
			}
		})
	}
}

// TestDeadlineDifferentialStress is the EDF/inheritance dimension of
// the differential suite: randomized graphs whose tasks carry random
// priorities, random (often already-expired) deadlines and random
// inheritance clauses run on an EDF-enabled runtime of every scheduler
// design, against the same spec fully stripped on a plain runtime.
// Deadlines order and inheritance promotes only *ready* tasks, so both
// runs must be oracle-clean, run every task exactly once, and agree on
// the final per-address versions.
func TestDeadlineDifferentialStress(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	baseSeed := int64(0x3177) // bump to re-roll the whole suite
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				seed := baseSeed + int64(round)
				spec := genDeadlineSpec(rand.New(rand.NewSource(seed)))
				plain := runPriSpec(t, sk, spec, false, false, false, 1)
				for _, nd := range domainsUnderStress() {
					if nd > 1 && sk == SchedBlocking {
						continue // blocking forces Domains=1; skip the duplicate
					}
					tagged := runPriSpec(t, sk, spec, true, false, true, nd)
					for a := range tagged {
						if tagged[a] != plain[a] {
							t.Fatalf("seed %d domains %d: final version of cell %d differs: deadline-tagged %d vs stripped %d",
								seed, nd, a, tagged[a], plain[a])
						}
					}
				}
			}
		})
	}
}
