package core

import (
	"sync/atomic"
	"testing"
)

// TestWeakAccessEndToEnd reproduces the OmpSs-2 pattern the paper's §2.1
// nesting discussion describes: a parent task declares weakinout and
// delegates the actual work to children; an outer successor is ordered
// after the children without the parent ever blocking.
func TestWeakAccessEndToEnd(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			blocks := make([]float64, 4)
			var sum float64
			rt.Run(func(c *Ctx) {
				// Phase producer: a weak parent spawning one strong
				// child per block.
				c.Spawn(func(cc *Ctx) {
					for i := range blocks {
						i := i
						cc.Spawn(func(*Ctx) { blocks[i] = float64(i + 1) },
							Out(&blocks[i]))
					}
				}, WeakInOut(&blocks[0]), WeakInOut(&blocks[1]),
					WeakInOut(&blocks[2]), WeakInOut(&blocks[3]))
				// Consumer: reads every block; must observe all writes.
				c.Spawn(func(*Ctx) {
					for _, b := range blocks {
						sum += b
					}
				}, In(&blocks[0]), In(&blocks[1]), In(&blocks[2]), In(&blocks[3]))
			})
			if sum != 10 {
				t.Fatalf("sum = %v, want 10 (consumer overtook weak parent's children)", sum)
			}
		})
	}
}

// TestLocalityPolicyEndToEnd runs a full workload on the locality policy
// wiring (SyncScheduler + NUMA-affine queues).
func TestLocalityPolicyEndToEnd(t *testing.T) {
	cfg := testConfig(VariantOptimized)
	cfg.Policy = PolicyLocality
	cfg.NUMANodes = 2
	rt := New(cfg)
	defer rt.Close()
	var count atomic.Int64
	var x float64
	rt.Run(func(c *Ctx) {
		for i := 0; i < 300; i++ {
			c.Spawn(func(*Ctx) { count.Add(1) })
		}
		for i := 0; i < 50; i++ {
			c.Spawn(func(*Ctx) { x++ }, InOut(&x))
		}
		c.Taskwait()
	})
	if count.Load() != 300 || x != 50 {
		t.Fatalf("count=%d x=%v, want 300, 50", count.Load(), x)
	}
}

// TestWeakParentRunsImmediately checks the "never delays the task" half
// of the weak contract at the runtime level.
func TestWeakParentRunsImmediately(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var x float64
	parentRanEarly := false
	rt.Run(func(c *Ctx) {
		// A slow strong writer holds the chain.
		release := make(chan struct{})
		c.Spawn(func(*Ctx) { <-release; x = 1 }, InOut(&x))
		// The weak task must run while the writer is still blocked.
		done := make(chan struct{})
		c.Spawn(func(*Ctx) { parentRanEarly = true; close(done) }, WeakInOut(&x))
		<-done
		close(release)
		c.Taskwait()
	})
	if !parentRanEarly {
		t.Fatal("weak task was delayed behind the strong writer")
	}
	if x != 1 {
		t.Fatalf("x = %v", x)
	}
}
