package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// reqConfigs covers both SubmitReq paths: inline serving (the default
// two slots) and the pure dispatch path (inline serving disabled).
func reqConfigs() []struct {
	name string
	cfg  Config
} {
	inline := testConfig(VariantOptimized)
	dispatch := testConfig(VariantOptimized)
	dispatch.ServeSlots = -1
	return []struct {
		name string
		cfg  Config
	}{{"inline", inline}, {"dispatch", dispatch}}
}

func TestSubmitReqCycles(t *testing.T) {
	for _, tc := range reqConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(tc.cfg)
			defer rt.Close()
			r := NewReq()
			var sum atomic.Int64
			want := int64(0)
			for cycle := 1; cycle <= 200; cycle++ {
				want += 10 * int64(cycle)
				rt.SubmitReq(context.Background(), r, 0, func(c *Ctx) {
					for i := 0; i < 10; i++ {
						c.Spawn(func(*Ctx) { sum.Add(int64(cycle)) })
					}
					c.Taskwait()
				})
				if err := r.Wait(); err != nil {
					t.Fatalf("cycle %d: Wait: %v", cycle, err)
				}
				if got := sum.Load(); got != want {
					t.Fatalf("cycle %d: sum = %d, want %d", cycle, got, want)
				}
			}
			if rt.LiveTasks() != 0 {
				t.Fatalf("%d live tasks after reuse cycles", rt.LiveTasks())
			}
		})
	}
}

func TestSubmitReqError(t *testing.T) {
	boom := errors.New("boom")
	for _, tc := range reqConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(tc.cfg)
			defer rt.Close()
			r := NewReq()
			rt.SubmitReq(context.Background(), r, 0, func(c *Ctx) {
				c.Fail(boom)
			})
			if err := r.Wait(); !errors.Is(err, boom) {
				t.Fatalf("Wait = %v, want wrapping %v", err, boom)
			}
			// The error must not leak into the next cycle's fresh scope.
			rt.SubmitReq(context.Background(), r, 0, func(c *Ctx) {})
			if err := r.Wait(); err != nil {
				t.Fatalf("Wait after failed cycle = %v, want nil", err)
			}
		})
	}
}

func TestSubmitReqDeadline(t *testing.T) {
	for _, tc := range reqConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(tc.cfg)
			defer rt.Close()
			r := NewReq()
			var x byte
			var ran atomic.Bool
			rt.SubmitReq(context.Background(), r, 2*time.Millisecond, func(c *Ctx) {
				c.Spawn(func(*Ctx) {
					time.Sleep(30 * time.Millisecond)
				}, Out(&x))
				c.Spawn(func(*Ctx) { ran.Store(true) }, In(&x))
				c.Taskwait()
			})
			err := r.Wait()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Wait = %v, want wrapping DeadlineExceeded", err)
			}
			if ran.Load() {
				t.Fatal("dependent of the slow task ran past the deadline")
			}
			// The latch is reusable after a deadline, and stale timers of
			// earlier cycles must never cancel later ones: run trivial
			// cycles well past the old deadline's firing point.
			deadlineAt := time.Now().Add(5 * time.Millisecond)
			for time.Now().Before(deadlineAt.Add(5 * time.Millisecond)) {
				rt.SubmitReq(context.Background(), r, 5*time.Millisecond, func(c *Ctx) {})
				if err := r.Wait(); err != nil {
					t.Fatalf("reuse cycle after deadline: %v", err)
				}
			}
		})
	}
}

func TestSubmitReqDraining(t *testing.T) {
	for _, tc := range reqConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(tc.cfg)
			defer rt.Close()
			if err := rt.Drain(context.Background()); err != nil {
				t.Fatalf("Drain: %v", err)
			}
			r := NewReq()
			rt.SubmitReq(context.Background(), r, 0, func(c *Ctx) {
				t.Error("body ran on a drained runtime")
			})
			if err := r.Wait(); !errors.Is(err, ErrRuntimeDraining) {
				t.Fatalf("Wait = %v, want ErrRuntimeDraining", err)
			}
		})
	}
}

// TestSubmitReqStorm hammers SubmitReq from more goroutines than there
// are inline-serving slots, so submissions race over slot acquisition
// and fall back to the dispatch path under contention, with stale
// deadline timers constantly firing into later cycles. Each goroutine
// verifies every successful cycle's dependency chain exactly.
func TestSubmitReqStorm(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	const goroutines = 16
	cycles := 150
	if testing.Short() {
		cycles = 40
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := NewReq()
			var stage, resp int64
			for cycle := 1; cycle <= cycles; cycle++ {
				d := time.Duration(0)
				if cycle%4 == 0 {
					d = 500 * time.Microsecond // mostly stale by completion
				}
				stage, resp = 0, 0
				rt.SubmitReq(context.Background(), r, d, func(c *Ctx) {
					c.Spawn(func(*Ctx) { stage = int64(cycle) }, Out(&stage))
					c.Spawn(func(*Ctx) { resp = stage * 2 }, In(&stage), Out(&resp))
					c.Taskwait()
				})
				err := r.Wait()
				switch {
				case err == nil:
					if resp != 2*int64(cycle) {
						errs[g] = fmt.Errorf("cycle %d: resp = %d, want %d", cycle, resp, 2*cycle)
						return
					}
				case errors.Is(err, context.DeadlineExceeded):
					// A genuinely-expired deadline: fine.
				default:
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if rt.LiveTasks() != 0 {
		t.Fatalf("%d live tasks after storm", rt.LiveTasks())
	}
}
