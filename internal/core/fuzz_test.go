package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// errFuzzTask is the sentinel failure injected into fail-marked tasks;
// the scope must deliver exactly one copy per failing task that ran.
var errFuzzTask = errors.New("fuzz task failure")

// fuzzTask is one decoded task of a fuzz DAG: an access set over a
// small cell pool and a failure mark.
type fuzzTask struct {
	accs []AccessSpec
	fail bool
}

// decodeFuzzGraph turns an arbitrary byte string into a bounded DAG
// spec. Per task: one control byte (bits 0-1 access count, bit 2
// failure mark), then one byte per access (bits 0-2 cell index, bits
// 3-5 access-type selector). Truncated input simply ends the graph, so
// every byte string decodes to a valid spec.
func decodeFuzzGraph(data []byte, cells *[8]float64) []fuzzTask {
	const maxTasks = 48
	var tasks []fuzzTask
	i := 0
	for i < len(data) && len(tasks) < maxTasks {
		ctl := data[i]
		i++
		ft := fuzzTask{fail: ctl&4 != 0}
		na := int(ctl & 3)
		for a := 0; a < na && i < len(data); a++ {
			ab := data[i]
			i++
			p := &cells[ab&7]
			switch (ab >> 3) & 7 {
			case 0, 6:
				ft.accs = append(ft.accs, In(p))
			case 1, 7:
				ft.accs = append(ft.accs, Out(p))
			case 2:
				ft.accs = append(ft.accs, InOut(p))
			case 3:
				ft.accs = append(ft.accs, Commutative(p))
			case 4:
				ft.accs = append(ft.accs, WeakIn(p))
			case 5:
				ft.accs = append(ft.accs, WeakInOut(p))
			}
		}
		tasks = append(tasks, ft)
	}
	return tasks
}

// countFuzzErrs walks an error tree counting sentinel occurrences:
// CollectAll must deliver exactly one per failing task.
func countFuzzErrs(err error) int {
	switch {
	case err == nil:
		return 0
	case err == errFuzzTask:
		return 1
	}
	switch x := err.(type) {
	case interface{ Unwrap() []error }:
		n := 0
		for _, e := range x.Unwrap() {
			n += countFuzzErrs(e)
		}
		return n
	case interface{ Unwrap() error }:
		return countFuzzErrs(x.Unwrap())
	}
	return 0
}

// FuzzGraphExecution decodes a byte string into a DAG spec and runs it
// through both dependency systems under both error policies, asserting
// the runtime's structural guarantees: the graph always unwinds
// (watchdog), live-task accounting returns to zero, and the scope's
// error policy delivers exactly the declared failures.
func FuzzGraphExecution(f *testing.F) {
	f.Add([]byte{})
	// A chain with a failure in the middle.
	f.Add([]byte{0x01, 0x0A, 0x01, 0x12, 0x05, 0x12, 0x01, 0x12, 0x01, 0x02})
	// Commutative storm over two cells with a weak anchor.
	f.Add([]byte{0x02, 0x18, 0x19, 0x02, 0x18, 0x19, 0x01, 0x28, 0x02, 0x19, 0x18})
	// Readers fanning out behind a writer, then another writer.
	f.Add([]byte{0x01, 0x08, 0x01, 0x00, 0x01, 0x00, 0x01, 0x30, 0x01, 0x08})
	// Duplicate addresses within one task (alias path) plus failures.
	f.Add([]byte{0x07, 0x10, 0x10, 0x08, 0x06, 0x2A, 0x12, 0x03, 0x00, 0x08, 0x10})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, dk := range []DepsKind{DepsWaitFree, DepsLocked} {
			for _, pol := range []ErrorPolicy{FailFast, CollectAll} {
				runFuzzGraph(t, data, dk, pol)
			}
		}
	})
}

func runFuzzGraph(t *testing.T, data []byte, dk DepsKind, pol ErrorPolicy) {
	var cells [8]float64
	tasks := decodeFuzzGraph(data, &cells)
	nFail := 0
	for _, ft := range tasks {
		if ft.fail {
			nFail++
		}
	}

	rt := New(Config{Workers: 2, Deps: dk, OnError: pol})
	defer rt.Close()

	var executed atomic.Int64
	handles := make([]*Handle, len(tasks))
	done := make(chan error, 1)
	go func() {
		done <- rt.Run(func(c *Ctx) {
			for i, ft := range tasks {
				ft := ft
				handles[i] = c.GoFn(func(*Ctx) (any, error) {
					executed.Add(1)
					if ft.fail {
						return nil, errFuzzTask
					}
					return i, nil
				}, ft.accs...)
			}
		})
	}()

	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("deps=%d policy=%v: deadlock: graph did not unwind within 30s (%d/%d tasks executed)",
			dk, pol, executed.Load(), len(tasks))
	}
	if n := rt.LiveTasks(); n != 0 {
		t.Fatalf("deps=%d policy=%v: LiveTasks = %d after Run returned", dk, pol, n)
	}

	switch {
	case nFail == 0:
		if err != nil {
			t.Fatalf("deps=%d policy=%v: unexpected error %v", dk, pol, err)
		}
		if got := executed.Load(); got != int64(len(tasks)) {
			t.Fatalf("deps=%d policy=%v: executed %d of %d tasks", dk, pol, got, len(tasks))
		}
	case pol == CollectAll:
		// Nothing cancels under CollectAll: every task runs, and the
		// aggregate carries exactly one sentinel per failing task.
		if got := executed.Load(); got != int64(len(tasks)) {
			t.Fatalf("collect-all: executed %d of %d tasks", got, len(tasks))
		}
		if got := countFuzzErrs(err); got != nFail {
			t.Fatalf("collect-all: %d sentinel errors in %v, want %d", got, err, nFail)
		}
	default: // FailFast with failures
		if !errors.Is(err, errFuzzTask) {
			t.Fatalf("fail-fast: error %v does not wrap the task failure", err)
		}
		if got := executed.Load(); got > int64(len(tasks)) {
			t.Fatalf("fail-fast: executed %d of %d tasks", got, len(tasks))
		}
	}

	// Handle-level checks: every handle resolves; under CollectAll the
	// outcome per task is fully determined.
	for i, h := range handles {
		if h == nil {
			continue
		}
		v, herr := h.Wait(nil)
		switch {
		case tasks[i].fail && herr == nil:
			t.Fatalf("task %d: failing task's handle returned nil error", i)
		case tasks[i].fail && !errors.Is(herr, errFuzzTask) && !errors.Is(herr, ErrTaskSkipped):
			t.Fatalf("task %d: handle error %v is neither the failure nor a skip", i, herr)
		case !tasks[i].fail && pol == CollectAll:
			if herr != nil {
				t.Fatalf("collect-all task %d: handle error %v", i, herr)
			}
			if v != i {
				t.Fatalf("collect-all task %d: result %v, want %d", i, v, i)
			}
		case !tasks[i].fail && herr != nil && !errors.Is(herr, ErrTaskSkipped):
			t.Fatalf("task %d: non-failing handle error %v is not a skip", i, herr)
		}
	}
}
