package core

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// elasticRounds scales the park/wake stress volume: up under the CI
// stress matrix (REPRO_STRESS_ELASTIC=on), down under -short.
func elasticRounds(base int) int {
	if testing.Short() {
		return base / 4
	}
	if os.Getenv("REPRO_STRESS_ELASTIC") == "on" {
		return base * 5
	}
	return base
}

// waitStats polls the runtime's stats until cond accepts a snapshot.
func waitStats(t *testing.T, rt *Runtime, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(rt.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("%s: stats stuck at %+v", what, rt.Stats())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestElasticParkIdle: an idle elastic pool parks every worker, and a
// submission into the fully parked pool still completes — the wake
// protocol recruits workers back on demand.
func TestElasticParkIdle(t *testing.T) {
	rt := New(Config{Workers: 4, IdleSpin: 64})
	defer rt.Close()
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, rt, "idle pool never fully parked", func(s Stats) bool {
		return s.Parked == 4
	})
	// Submit into the fully parked pool: the enqueue's WakeOne must
	// recruit a worker (the submitter goroutine does not help on Run).
	var ran atomic.Bool
	if err := rt.Run(func(*Ctx) { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("task submitted to a parked pool never ran")
	}
	s := rt.Stats()
	if s.Parks == 0 || s.Wakes == 0 {
		t.Fatalf("no park/wake traffic recorded: %+v", s)
	}
	if s.Workers != 4 {
		t.Fatalf("Stats().Workers = %d, want 4", s.Workers)
	}
}

// TestElasticMinWorkers: workers below MinWorkers never park — they
// stay in the spin phase while the rest of the pool sleeps.
func TestElasticMinWorkers(t *testing.T) {
	rt := New(Config{Workers: 4, MinWorkers: 2, IdleSpin: 64})
	defer rt.Close()
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, rt, "parkable workers never parked", func(s Stats) bool {
		return s.Parked == 2
	})
	// Give the pinned spinners time to (incorrectly) park, then check.
	time.Sleep(20 * time.Millisecond)
	if s := rt.Stats(); s.Parked != 2 || s.Spinning != 2 {
		t.Fatalf("MinWorkers=2 of 4: parked=%d spinning=%d, want 2/2", s.Parked, s.Spinning)
	}
}

// TestElasticSpinDisabled: IdleSpin < 0 reproduces the pure-spin
// baseline — no worker ever parks.
func TestElasticSpinDisabled(t *testing.T) {
	rt := New(Config{Workers: 4, IdleSpin: -1})
	defer rt.Close()
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if s := rt.Stats(); s.Parked != 0 || s.Parks != 0 {
		t.Fatalf("IdleSpin=-1 still parked: %+v", s)
	}
}

// TestElasticCloseWhileParked: Close must release a fully parked pool
// (the stop flag alone is unobservable to a sleeping worker).
func TestElasticCloseWhileParked(t *testing.T) {
	rt := New(Config{Workers: 4, IdleSpin: 64})
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, rt, "pool never parked before Close", func(s Stats) bool {
		return s.Parked == 4
	})
	done := make(chan struct{})
	go func() { rt.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a parked pool")
	}
}

// TestElasticDrainWhileParked: a task parked on an external event (a
// timer) completes — and releases its dependent successor — while every
// worker is asleep: the deferred release path's enqueue must wake the
// pool, and Drain must observe full quiescence.
func TestElasticDrainWhileParked(t *testing.T) {
	rt := New(Config{Workers: 4, IdleSpin: 64, EventTick: time.Millisecond})
	defer rt.Close()
	var x int
	var order atomic.Int32
	h := rt.Submit(func(c *Ctx) (any, error) {
		c.Spawn(func(c *Ctx) {
			order.CompareAndSwap(0, 1)
			c.After(10 * time.Millisecond)
		}, Out(&x))
		c.Spawn(func(*Ctx) {
			// Runs only after the timer fires: by then the whole pool
			// has had 10ms of idleness to park into.
			order.CompareAndSwap(1, 2)
		}, In(&x))
		return nil, nil
	})
	if _, err := h.Wait(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatalf("Drain on a parked pool: %v", err)
	}
	if order.Load() != 2 {
		t.Fatalf("event-held chain ran out of order: %d", order.Load())
	}
}

// TestElasticLostWakeupStorm hammers the park/wake edge across the
// scheduler designs: tiny spin budgets force workers to park between
// the bursts, so every submission round races the pre-sleep recheck
// against the producer's wake. A single lost wakeup leaves a round's
// tasks stranded with the pool asleep and the watchdog fires.
func TestElasticLostWakeupStorm(t *testing.T) {
	for _, sk := range schedKindsUnderStress() {
		t.Run(sk.testName(), func(t *testing.T) {
			rt := New(Config{Workers: 4, Scheduler: sk, IdleSpin: 16})
			defer rt.Close()
			rounds := elasticRounds(400)
			var ran atomic.Int64
			watchdog := time.AfterFunc(60*time.Second, func() {
				panic(fmt.Sprintf("elastic storm wedged: %+v", rt.Stats()))
			})
			defer watchdog.Stop()
			for r := 0; r < rounds; r++ {
				var x int
				h := rt.Submit(func(c *Ctx) (any, error) {
					for i := 0; i < 4; i++ {
						c.Spawn(func(*Ctx) { ran.Add(1) }, Out(&x))
					}
					return nil, nil
				})
				if _, err := h.Wait(nil); err != nil {
					t.Fatal(err)
				}
				if r%8 == 7 {
					// A breather long past the spin budget, so the next
					// round's enqueue hits parked workers, not warm ones.
					time.Sleep(500 * time.Microsecond)
				}
			}
			if got := ran.Load(); got != int64(4*rounds) {
				t.Fatalf("ran %d of %d tasks", got, 4*rounds)
			}
		})
	}
}
