package core

import (
	"context"
	"sync/atomic"
	"unsafe"

	"repro/internal/deps"
	"repro/internal/sched"
)

// Task is one unit of work with data dependencies. Tasks are created
// with Runtime.Run (root tasks) or Ctx.Spawn (nested tasks) and recycled
// through the configured allocator once fully complete (body finished and
// every descendant fully complete).
type Task struct {
	node   deps.Node
	body   func(*Ctx)
	fn     func(*Ctx) (any, error) // typed body (futures); body xor fn
	parent *Task
	rt     *Runtime

	// sc is the error/cancellation scope of the root submission this
	// task belongs to, inherited from the parent on spawn. Tasks of the
	// global domain itself have a nil scope.
	sc *scope

	// handle, when non-nil (roots and future-backed spawns), receives
	// the task's result/error and is closed at full completion.
	handle *Handle

	// req, when non-nil (SubmitReq roots), is the caller-pooled
	// completion latch that replaces the handle on the serving fast
	// path: completeOne folds the scope's aggregate error into it and
	// signals it after releasing the scope.
	req *Req

	// ownsScope marks the root task of a scope: its full completion
	// releases the scope's context registration and folds the scope's
	// aggregate error into the handle.
	ownsScope bool

	// loop, when non-nil, marks a work-sharing loop participant: the
	// loop's owner task (loop.owner == this task) or one of its steal
	// descriptors. The shared state is cleaned up in completeOne, which
	// is why resetBody does not touch it.
	loop *loopState

	// events, when non-nil, is the task's external-event counter
	// (lazily created by Ctx.Events): the body returned — or will
	// return — with out-of-band completions pending, and the release
	// path runs at the final decrement instead of inline in execute.
	// Heap-allocated on purpose: a buggy late Done must panic on the
	// drained counter, not corrupt a recycled shell.
	events *EventCounter

	// pri is the task's scheduling priority level, in
	// [0, MaxPriority]. It is inherited from the parent at creation
	// (children of an interactive request stay interactive; taskloop
	// steal descriptors ride at their loop's level) and overridden by a
	// PriorityClause pseudo access in the task's access list. newTask
	// assigns it unconditionally, so recycled shells cannot leak a
	// stale level.
	pri int8

	// inherit marks the task as a priority-inheritance donor: at
	// registration the runtime promotes its recorded unsatisfied
	// predecessors (transitively) to the task's effective priority,
	// closing the priority-inversion window. Set by the Inherit clause,
	// inherited from the parent like pri.
	inherit bool

	// deadline is the task's absolute scheduling deadline in
	// nanoseconds on the runtime's monotonic clock (NowNS); 0 means no
	// deadline. Inherited from the parent like pri and overridden by a
	// DeadlineClause pseudo access; read by the EDF policy, which sorts
	// deadline-less tasks last. Written only before registration, so
	// scheduler-side reads need no atomics.
	deadline int64

	// home is the NUMA domain the task's ready callback homed it to
	// (the readying slot's domain; see topology.go for the partition).
	// Written by the ready callback before any routing, read by the
	// executing worker for the affinity-retention accounting — both
	// single-writer-then-single-reader within the task's scheduled
	// window, so no atomics. Only meaningful on multi-domain runtimes.
	home int8

	// epri is the task's *effective* priority level: pri, possibly
	// raised by priority inheritance after a high-priority successor
	// registered behind this task. It is monotone per incarnation
	// (CAS-max raises only) and is what every scheduling decision reads
	// — queue lane selection, the successor-bypass gate, the work-share
	// yield checks.
	epri atomic.Int32

	// qstate encodes the task's scheduler-queue state: 0 when not
	// queued, dom<<8|(level+1) when an entry for it sits in lane
	// `level` of domain dom's scheduler. A promotion re-push CASes it
	// to the new level (same domain) and inserts a duplicate entry;
	// schedTook claims execution by Swap(0), so the losing (stale)
	// entry pops as a no-op. See schedAdd/schedTook and promote in
	// runtime.go.
	qstate atomic.Int32

	// alive counts full completions outstanding: 1 guard for the body
	// plus one per live child. The decrement to zero completes the task.
	alive atomic.Int64
}

// resetBody drops the task-level references — closure, scope, handle,
// parent — at full completion. It runs unconditionally in completeOne,
// even when the node's access storage is still pinned (e.g. the last
// root per address stays a tail of the never-unregistered global
// domain), so a retained shell never keeps a body closure, error
// scope or Future handle alive.
func (t *Task) resetBody() {
	t.body = nil
	t.fn = nil
	t.parent = nil
	t.rt = nil
	t.sc = nil
	t.handle = nil
	t.req = nil
	t.ownsScope = false
	t.events = nil
	t.inherit = false
	t.deadline = 0
	t.epri.Store(0)
	t.qstate.Store(0)
	t.alive.Store(0)
}

// reset fully prepares a recycled Task shell for reuse. It must only
// run once the node's access storage is quiescent (pin count zero):
// small access sets live inline in the shell and are reused with it,
// while an overflow slice (more than deps.InlineAccessCap accesses) is
// abandoned to the garbage collector, since dependency-chain pointers
// into it are not tracked beyond the pin protocol (see DESIGN.md).
func (t *Task) reset() {
	t.node.Reset()
	t.resetBody()
}

// fail records err as the task's outcome: on the task's handle (first
// error wins) and in the scope, where the error policy decides whether
// the rest of the scope keeps running. A taskloop steal descriptor has
// no handle of its own; its chunk errors are recorded on the shared
// loop state (first wins, atomically — several descriptors can fail
// concurrently) and folded into the loop's handle by the owner after
// the descriptors complete.
func (t *Task) fail(err error) {
	if t.handle != nil && t.handle.err == nil {
		t.handle.err = err
	}
	if l := t.loop; l != nil && l.owner != t {
		l.fail.CompareAndSwap(nil, &err)
	}
	t.sc.fail(err)
}

// Ctx is the execution context passed to a task body: it identifies the
// running task and worker, and exposes the task-side runtime API.
type Ctx struct {
	rt     *Runtime
	worker int
	task   *Task
}

// Worker returns the index of the worker executing the task.
func (c *Ctx) Worker() int { return c.worker }

// Priority returns the running task's scheduling priority level (the
// declared level, not counting any priority-inheritance promotion).
func (c *Ctx) Priority() int { return int(c.task.pri) }

// Deadline returns the running task's absolute scheduling deadline in
// nanoseconds on the runtime's monotonic clock (NowNS), or 0 when the
// task carries none. Bodies can compare it against NowNS() to detect
// that they are already late and shed work.
func (c *Ctx) Deadline() int64 { return c.task.deadline }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Spawn creates a child task with the given body and accesses. It may
// only be called from the task's own body (sibling registration is
// single-writer per domain, as in Nanos6). The child becomes ready when
// its dependencies are satisfied and runs on any worker.
func (c *Ctx) Spawn(body func(*Ctx), accs ...deps.AccessSpec) {
	c.rt.spawn(c.task, body, accs, c.worker)
}

// GoFn creates a child task whose body returns a result and an error,
// and returns its completion Handle. Like Spawn it may only be called
// from the task's own body. The child shares this task's scope: its
// error is recorded there (cancelling the scope under FailFast) in
// addition to being delivered through the Handle. The typed façade
// wrapper is repro.Go.
func (c *Ctx) GoFn(fn func(*Ctx) (any, error), accs ...deps.AccessSpec) *Handle {
	h := newHandle()
	t := c.rt.newTask(c.task, nil, accs, c.worker)
	t.fn = fn
	t.handle = h
	c.rt.register(c.task, t, c.worker)
	return h
}

// Fail records err as the running task's failure, exactly as if a GoFn
// body had returned it: the error lands in the task's scope — where
// the ErrorPolicy decides whether the rest of the scope keeps running —
// and on the task's handle, if it has one. It is the error channel for
// Spawn bodies, which have no return value; the compiled-graph node
// bodies use it to route node failures into the request's scope
// without a per-node handle allocation. A nil err is a no-op.
func (c *Ctx) Fail(err error) {
	if err != nil {
		c.task.fail(err)
	}
}

// Err returns the cancellation cause of the task's scope, or nil while
// the scope is live. Long-running bodies can poll it to stop early
// after the scope was cancelled (by the caller's context or a FailFast
// error); the runtime never interrupts a body that has started.
func (c *Ctx) Err() error { return c.task.sc.abortCause() }

// Context returns the context of the task's submission scope (the ctx
// given to RunCtx/SubmitCtx), for passing to context-aware callees.
// Tasks submitted without a context get a Background context.
func (c *Ctx) Context() context.Context {
	if c.task.sc != nil && c.task.sc.ctx != nil {
		return c.task.sc.ctx
	}
	return context.Background()
}

// Taskwait blocks until every child spawned by this task (and their
// descendants) has fully completed, combining any open reductions first
// (OmpSs-2 taskwait semantics). While waiting, the worker executes other
// ready tasks instead of spinning.
func (c *Ctx) Taskwait() {
	rt := c.rt
	t := c.task
	rt.tracer.Emit(c.worker, traceTaskwaitStart, 0)
	rt.deps.CloseDomain(&t.node, c.worker)
	rt.helpWhileChildren(t, c.worker)
	rt.tracer.Emit(c.worker, traceTaskwaitEnd, 0)
}

// ReductionBuffer returns this worker's privatized partial-result buffer
// for the task's reduction access on p (declared with RedSpec). The
// buffer holds the access's Len float64 elements, initialized to the
// operation's identity. Inside a taskloop chunk it resolves against the
// loop owner's reduction access, so every chunk — wherever it was
// stolen to — accumulates into the slot of the worker executing it.
func (c *Ctx) ReductionBuffer(p *float64) []float64 {
	n := &c.task.node
	if l := c.task.loop; l != nil {
		n = &l.owner.node
	}
	return c.rt.deps.ReductionBuffer(n, unsafe.Pointer(p), c.worker)
}

// AccessSpec aliases the dependency system's access declaration for
// callers that build spec slices dynamically.
type AccessSpec = deps.AccessSpec

// Access spec constructors. Addresses identify dependencies (OmpSs-2
// matches accesses by address); for array blocks pass the first element.

// In declares a read access on p.
func In[T any](p *T) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Type: deps.Read}
}

// Out declares a write access on p.
func Out[T any](p *T) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Type: deps.Write}
}

// InOut declares a read-write access on p.
func InOut[T any](p *T) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Type: deps.ReadWrite}
}

// RedSpec declares a reduction access over n float64 elements at p.
func RedSpec(p *float64, n int, op deps.ReductionOp) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Len: n, Type: deps.Reduction, Op: op}
}

// Commutative declares a commutative access on p.
func Commutative[T any](p *T) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Type: deps.Commutative}
}

// MaxPriority is the highest scheduling priority level; 0 is the
// default. The level count is bounded (sched.PriorityLevels), so
// Priority values outside [0, MaxPriority] are clamped.
const MaxPriority = sched.PriorityLevels - 1

// Priority declares the task's scheduling priority level, as a pseudo
// access riding in the access list (the OmpSs-2 priority clause). It
// declares no data dependency: the runtime strips it before
// registration and uses it to route the task through the scheduler's
// priority levels. Higher runs earlier among *ready* tasks — a
// priority never overtakes a data dependency. Children inherit the
// spawning task's level unless they carry their own clause. The public
// façade wrapper is repro.WithPriority.
func Priority(n int) deps.AccessSpec {
	return deps.AccessSpec{Type: deps.PriorityClause, Len: n}
}

// Deadline declares the task's absolute scheduling deadline: absNS
// nanoseconds on the runtime's monotonic clock (NowNS). Like Priority
// it is a pseudo access — stripped before registration — and like
// priorities it is inherited by children unless they carry their own
// clause. Deadlines only order tasks *within* the top priority level,
// and only when the runtime was built with Config.EDF: earlier
// deadlines pop first, deadline-less tasks last. A deadline never
// overtakes a data dependency. The public façade wrapper is
// repro.WithDeadline, which resolves a relative duration against
// NowNS.
func Deadline(absNS int64) deps.AccessSpec {
	return deps.AccessSpec{Type: deps.DeadlineClause, Len: int(absNS)}
}

// Inherit declares the task a priority-inheritance donor: at
// registration, every recorded unsatisfied predecessor of the task is
// promoted (transitively) to the task's effective priority level, so a
// low-priority task holding a dependency a high-priority task waits on
// is re-ranked instead of being starved behind mid-priority work (the
// classic priority-inversion window). Like Priority it is a pseudo
// access, stripped before registration, and the flag is inherited by
// children unless overridden. Promotion is best-effort for tasks
// mid-flight through shell recycling, and group predecessors
// (reductions, commutative runs) are not promoted. The public façade
// wrapper is repro.WithInheritance.
func Inherit() deps.AccessSpec {
	return deps.AccessSpec{Type: deps.InheritClause}
}

// WeakIn declares a weak read access on p: the task does not read p
// itself but may spawn children that do. Weak accesses never delay the
// task's execution; they anchor the children's dependency chains so
// successors at this nesting level wait for the children (OmpSs-2
// weakin).
func WeakIn[T any](p *T) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Type: deps.Read, Weak: true}
}

// WeakInOut declares a weak read-write access on p (OmpSs-2 weakinout):
// like InOut for the task's children, invisible to the task itself.
func WeakInOut[T any](p *T) deps.AccessSpec {
	return deps.AccessSpec{Addr: unsafe.Pointer(p), Type: deps.ReadWrite, Weak: true}
}
