package core

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

// depsKindsUnderStress returns the dependency systems the stress tests
// exercise. The CI stress matrix pins one system per job through
// REPRO_STRESS_DEPS ("wait-free" or "locked"); locally both run.
func depsKindsUnderStress() []DepsKind {
	switch os.Getenv("REPRO_STRESS_DEPS") {
	case "wait-free", "waitfree":
		return []DepsKind{DepsWaitFree}
	case "locked":
		return []DepsKind{DepsLocked}
	}
	return []DepsKind{DepsWaitFree, DepsLocked}
}

func (k DepsKind) testName() string {
	if k == DepsLocked {
		return "locked"
	}
	return "wait-free"
}

// TestConcurrentSubmitStorm hammers the sharded root-submission path:
// many goroutines call Submit with overlapping single- and multi-cell
// access sets (multi-cell sets exercise the ordered cross-shard lease)
// while a Run with a weak root access spawns children on the hottest
// cell, so nested chains and root chains interleave on the same
// addresses. Every increment must land exactly once and exclusively.
func TestConcurrentSubmitStorm(t *testing.T) {
	const (
		submitters = 8
		perSub     = 300
		ncells     = 8
		nested     = 200
	)
	for _, dk := range depsKindsUnderStress() {
		t.Run(dk.testName(), func(t *testing.T) {
			cfg := Config{Workers: 4, Deps: dk}
			rt := New(cfg)
			defer rt.Close()

			var cells [ncells]float64
			want := make([]int, ncells)

			// Expected per-cell totals, mirroring the deterministic
			// cell choice below.
			for g := 0; g < submitters; g++ {
				for i := 0; i < perSub; i++ {
					c1 := (g*31 + i) % ncells
					want[c1]++
					if i%5 == 0 {
						c2 := (c1 + 1 + i%(ncells-1)) % ncells
						want[c2]++
					}
				}
			}
			want[0] += nested

			// An active Run holds a weak root access on cells[0] and
			// spawns children incrementing it, concurrently with the
			// storm of root submissions on the same cell.
			runDone := make(chan error, 1)
			go func() {
				runDone <- rt.Run(func(c *Ctx) {
					for i := 0; i < nested; i++ {
						c.Spawn(func(*Ctx) { cells[0]++ }, InOut(&cells[0]))
					}
					c.Taskwait()
				}, WeakInOut(&cells[0]))
			}()

			var wg sync.WaitGroup
			errc := make(chan error, submitters)
			for g := 0; g < submitters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					handles := make([]*Handle, 0, perSub)
					for i := 0; i < perSub; i++ {
						c1 := (g*31 + i) % ncells
						if i%5 == 0 {
							// Multi-cell submission: both increments under
							// one root task whose lease may span shards.
							c2 := (c1 + 1 + i%(ncells-1)) % ncells
							handles = append(handles, rt.Submit(func(*Ctx) (any, error) {
								cells[c1]++
								cells[c2]++
								return nil, nil
							}, InOut(&cells[c1]), InOut(&cells[c2])))
							continue
						}
						handles = append(handles, rt.Submit(func(*Ctx) (any, error) {
							cells[c1]++
							return nil, nil
						}, InOut(&cells[c1])))
					}
					for _, h := range handles {
						if _, err := h.Wait(nil); err != nil {
							errc <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			if err := <-runDone; err != nil {
				t.Fatal(err)
			}
			for c := range cells {
				if cells[c] != float64(want[c]) {
					t.Errorf("cell %d = %v, want %d (lost or duplicated increments)", c, cells[c], want[c])
				}
			}
			if n := rt.LiveTasks(); n != 0 {
				t.Fatalf("LiveTasks = %d after storm", n)
			}
		})
	}
}

// TestSubmitCancellationMidStorm cancels a context while a storm of
// SubmitCtx chains is in flight. The first task of the hot chain blocks
// until the cancellation has happened, so every submission queued
// behind it is provably unstarted at cancel time: each of those handles
// must resolve with an error matching ErrTaskSkipped that also wraps
// the cancellation cause, and the graph must fully unwind.
func TestSubmitCancellationMidStorm(t *testing.T) {
	const (
		submitters = 6
		perSub     = 100
	)
	for _, dk := range depsKindsUnderStress() {
		t.Run(dk.testName(), func(t *testing.T) {
			cfg := Config{Workers: 4, Deps: dk}
			rt := New(cfg)
			defer rt.Close()

			ctx, cancel := context.WithCancel(context.Background())
			var hot float64
			cancelled := make(chan struct{})

			// Blocker: starts immediately (head of the hot chain), then
			// parks until the cancellation below has been issued.
			blocker := rt.SubmitCtx(ctx, func(c *Ctx) (any, error) {
				<-cancelled
				return nil, nil
			}, InOut(&hot))

			var executed atomic.Int64
			var wg sync.WaitGroup
			handles := make([][]*Handle, submitters)
			for g := 0; g < submitters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					hs := make([]*Handle, 0, perSub)
					for i := 0; i < perSub; i++ {
						hs = append(hs, rt.SubmitCtx(ctx, func(*Ctx) (any, error) {
							executed.Add(1)
							return nil, nil
						}, InOut(&hot)))
					}
					handles[g] = hs
				}(g)
			}
			wg.Wait()
			cancel()
			close(cancelled)

			if _, err := blocker.Wait(nil); err != nil {
				// The blocker ran; its own error reflects the scope's
				// observed cancellation, which is legitimate.
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("blocker error = %v", err)
				}
			}
			skipped := 0
			for g := range handles {
				for _, h := range handles[g] {
					_, err := h.Wait(nil) // every handle must resolve
					if err == nil {
						continue
					}
					if !errors.Is(err, ErrTaskSkipped) || !errors.Is(err, context.Canceled) {
						t.Fatalf("drained handle error = %v; want ErrTaskSkipped wrapping context.Canceled", err)
					}
					skipped++
				}
			}
			if skipped == 0 {
				t.Fatal("no submission was drained, cancellation did not interleave with the storm")
			}
			if got := int(executed.Load()) + skipped; got != submitters*perSub {
				t.Fatalf("executed+skipped = %d, want %d", got, submitters*perSub)
			}
			if n := rt.LiveTasks(); n != 0 {
				t.Fatalf("LiveTasks = %d after cancelled storm", n)
			}
		})
	}
}

// TestSubmitDuringRunAcrossShardCounts pins the degenerate and maximal
// shard configurations: RootShards 1 (fully serialized, the old regMu
// behaviour) and the clamp maximum must produce identical results.
func TestSubmitDuringRunAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 64} {
		cfg := Config{Workers: 2, RootShards: shards}
		rt := New(cfg)
		var x float64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					if err := rt.Run(func(*Ctx) { x++ }, InOut(&x)); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if x != 400 {
			t.Fatalf("shards=%d: x = %v, want 400", shards, x)
		}
		if rt.Config().RootShards != shards {
			t.Fatalf("RootShards = %d, want %d", rt.Config().RootShards, shards)
		}
		rt.Close()
	}
}
