package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/deps"
)

// TestQuickRandomProgramsMatchSerial generates random straight-line task
// programs over a handful of cells (reads, writes, read-writes) and runs
// them through the full runtime on every ablation variant. Because the
// dependency graph must linearize conflicting accesses in program order,
// the outcome must equal a serial execution of the same program.
func TestQuickRandomProgramsMatchSerial(t *testing.T) {
	type op struct {
		cell  int
		write bool
	}
	type program [][]op // task -> ops

	genProgram := func(r *rand.Rand) program {
		nTasks := 3 + r.Intn(12)
		prog := make(program, nTasks)
		for i := range prog {
			nOps := 1 + r.Intn(3)
			used := map[int]bool{}
			for o := 0; o < nOps; o++ {
				c := r.Intn(5)
				if used[c] {
					continue
				}
				used[c] = true
				prog[i] = append(prog[i], op{cell: c, write: r.Intn(2) == 0})
			}
		}
		return prog
	}

	runProgram := func(rt *Runtime, prog program, cells []float64) {
		rt.Run(func(c *Ctx) {
			for ti := range prog {
				ops := prog[ti]
				ti := ti
				specs := make([]deps.AccessSpec, 0, len(ops))
				for _, o := range ops {
					if o.write {
						specs = append(specs, InOut(&cells[o.cell]))
					} else {
						specs = append(specs, In(&cells[o.cell]))
					}
				}
				c.Spawn(func(*Ctx) {
					for _, o := range ops {
						if o.write {
							cells[o.cell] = cells[o.cell]*3 + float64(ti+1)
						}
					}
				}, specs...)
			}
			c.Taskwait()
		})
	}

	serialProgram := func(prog program, cells []float64) {
		for ti := range prog {
			for _, o := range prog[ti] {
				if o.write {
					cells[o.cell] = cells[o.cell]*3 + float64(ti+1)
				}
			}
		}
	}

	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				prog := genProgram(r)
				got := make([]float64, 5)
				runProgram(rt, prog, got)
				want := make([]float64, 5)
				serialProgram(prog, want)
				for i := range got {
					if got[i] != want[i] {
						t.Logf("seed %d: cell %d = %v, want %v", seed, i, got[i], want[i])
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeepNesting spawns a chain of nested tasks several levels deep,
// each level depending on the same cell, and checks the total ordering.
func TestDeepNesting(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var x float64
	const depth = 12
	var grow func(c *Ctx, level int)
	grow = func(c *Ctx, level int) {
		x = x*2 + 1
		if level < depth {
			c.Spawn(func(cc *Ctx) { grow(cc, level+1) }, InOut(&x))
		}
	}
	rt.Run(func(c *Ctx) {
		c.Spawn(func(cc *Ctx) { grow(cc, 1) }, InOut(&x))
		c.Spawn(func(*Ctx) { x += 1000 }, InOut(&x))
	})
	// depth doublings+1 then +1000: x = 2^depth - 1 + 1000.
	want := float64((1 << depth) - 1 + 1000)
	if x != want {
		t.Fatalf("x = %v, want %v", x, want)
	}
}

// TestTaskwaitInsideNestedTask exercises inline work execution during a
// nested taskwait.
func TestTaskwaitInsideNestedTask(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var sum float64
	rt.Run(func(c *Ctx) {
		c.Spawn(func(cc *Ctx) {
			local := make([]float64, 8)
			for i := range local {
				i := i
				cc.Spawn(func(*Ctx) { local[i] = float64(i) }, Out(&local[i]))
			}
			cc.Taskwait()
			for _, v := range local {
				sum += v
			}
		})
		c.Taskwait()
	})
	if sum != 28 {
		t.Fatalf("sum = %v, want 28", sum)
	}
}

// TestManyReductionDomains runs several independent reductions in one
// task graph; each must combine into its own target.
func TestManyReductionDomains(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	targets := make([]float64, 6)
	rt.Run(func(c *Ctx) {
		for ti := range targets {
			for k := 0; k < 9; k++ {
				ti := ti
				c.Spawn(func(cc *Ctx) {
					cc.ReductionBuffer(&targets[ti])[0]++
				}, RedSpec(&targets[ti], 1, deps.OpSum))
			}
		}
		c.Taskwait()
	})
	for i, v := range targets {
		if v != 9 {
			t.Fatalf("targets[%d] = %v, want 9", i, v)
		}
	}
}

// TestReductionAcrossTaskwaitReuse reuses the same reduction target in
// two phases separated by a taskwait: the second phase accumulates on
// top of the combined first phase.
func TestReductionAcrossTaskwaitReuse(t *testing.T) {
	rt := New(testConfig(VariantOptimized))
	defer rt.Close()
	var acc float64
	rt.Run(func(c *Ctx) {
		for k := 0; k < 5; k++ {
			c.Spawn(func(cc *Ctx) { cc.ReductionBuffer(&acc)[0]++ },
				RedSpec(&acc, 1, deps.OpSum))
		}
		c.Taskwait()
		if acc != 5 {
			t.Errorf("after first phase acc = %v, want 5", acc)
		}
		for k := 0; k < 3; k++ {
			c.Spawn(func(cc *Ctx) { cc.ReductionBuffer(&acc)[0]++ },
				RedSpec(&acc, 1, deps.OpSum))
		}
		c.Taskwait()
	})
	if acc != 8 {
		t.Fatalf("acc = %v, want 8", acc)
	}
}

// TestMixedAccessTypesOneAddress chains every access type on one cell
// and requires program-order effects.
func TestMixedAccessTypesOneAddress(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := New(testConfig(v))
			defer rt.Close()
			var x float64
			var reads []float64
			rt.Run(func(c *Ctx) {
				c.Spawn(func(*Ctx) { x = 2 }, Out(&x))
				c.Spawn(func(*Ctx) { reads = append(reads, x) }, In(&x))
				c.Spawn(func(cc *Ctx) { cc.ReductionBuffer(&x)[0] += 3 },
					RedSpec(&x, 1, deps.OpSum))
				c.Spawn(func(cc *Ctx) { cc.ReductionBuffer(&x)[0] += 4 },
					RedSpec(&x, 1, deps.OpSum))
				c.Spawn(func(*Ctx) { x *= 10 }, InOut(&x))
				c.Spawn(func(*Ctx) { reads = append(reads, x) }, In(&x))
			})
			// x: 2, then +3+4 combined = 9, then *10 = 90.
			if x != 90 {
				t.Fatalf("%s: x = %v, want 90", v, x)
			}
			if len(reads) != 2 || reads[0] != 2 || reads[1] != 90 {
				t.Fatalf("%s: reads = %v", v, reads)
			}
		})
	}
}
