package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/deps"
)

func loopTestRT(t *testing.T, workers int) *Runtime {
	t.Helper()
	rt := New(Config{Workers: workers, NUMANodes: 1})
	t.Cleanup(rt.Close)
	return rt
}

// waitQuiescent polls until every task of rt has fully completed, so
// tests can assert on the sharded live counter deterministically.
func waitQuiescent(t *testing.T, rt *Runtime) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rt.LiveTasks() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("runtime not quiescent: %d live tasks", rt.LiveTasks())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLoopRunsEveryIterationExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := loopTestRT(t, workers)
		const n = 10000
		hits := make([]atomic.Int32, n)
		err := rt.RunLoop(0, n, 0, func(_ *Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: RunLoop: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: iteration %d ran %d times", workers, i, got)
			}
		}
		waitQuiescent(t, rt)
	}
}

func TestLoopEmptyRange(t *testing.T) {
	rt := loopTestRT(t, 2)
	var calls atomic.Int32
	body := func(*Ctx, int, int) { calls.Add(1) }
	if err := rt.RunLoop(5, 5, 0, body); err != nil {
		t.Fatalf("empty range: %v", err)
	}
	if err := rt.RunLoop(7, 3, 0, body); err != nil {
		t.Fatalf("inverted range: %v", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("body called %d times on empty/inverted ranges", got)
	}
	waitQuiescent(t, rt)
}

func TestLoopGrainLargerThanRange(t *testing.T) {
	rt := loopTestRT(t, 4)
	var chunks atomic.Int32
	var span atomic.Int64
	err := rt.RunLoop(3, 10, 100, func(_ *Ctx, lo, hi int) {
		chunks.Add(1)
		span.Add(int64(hi - lo))
		if lo != 3 || hi != 10 {
			t.Errorf("chunk [%d,%d), want the whole range [3,10)", lo, hi)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunks.Load() != 1 || span.Load() != 7 {
		t.Fatalf("got %d chunks covering %d iterations, want 1 chunk of 7", chunks.Load(), span.Load())
	}
}

func TestLoopExplicitGrainBoundsChunks(t *testing.T) {
	rt := loopTestRT(t, 4)
	const n, grain = 1000, 64
	var covered atomic.Int64
	err := rt.RunLoop(0, n, grain, func(_ *Ctx, lo, hi int) {
		if hi-lo > grain {
			t.Errorf("chunk [%d,%d) exceeds grain %d", lo, hi, grain)
		}
		covered.Add(int64(hi - lo))
	})
	if err != nil {
		t.Fatal(err)
	}
	if covered.Load() != n {
		t.Fatalf("chunks covered %d of %d iterations", covered.Load(), n)
	}
}

// TestLoopOrdersWithDependencies checks both directions of a loop's
// dependency chain: the loop waits for a predecessor writing its input,
// and a successor reading the loop's output waits for EVERY chunk (the
// loop completes only when all chunks drain).
func TestLoopOrdersWithDependencies(t *testing.T) {
	rt := loopTestRT(t, 4)
	const n = 5000
	data := make([]float64, n)
	var sum float64
	err := rt.Run(func(c *Ctx) {
		c.Spawn(func(*Ctx) {
			for i := range data {
				data[i] = 1
			}
		}, Out(&data[0]))
		c.Loop(0, n, 0, func(_ *Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] *= 2
			}
		}, InOut(&data[0]))
		c.Spawn(func(*Ctx) {
			s := 0.0
			for i := range data {
				s += data[i]
			}
			sum = s
		}, In(&data[0]))
		c.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 2*n {
		t.Fatalf("successor saw sum %v, want %v (chunks escaped the loop's release)", sum, 2*n)
	}
}

func TestLoopCancellationMidLoop(t *testing.T) {
	rt := loopTestRT(t, 4)
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	h := rt.SubmitLoop(ctx, 0, n, 16, func(_ *Ctx, lo, hi int) {
		if executed.Add(int64(hi-lo)) > n/10 {
			cancel()
		}
	})
	_, err := h.Wait(nil)
	if !errors.Is(err, ErrTaskSkipped) {
		t.Fatalf("err = %v, want ErrTaskSkipped", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the cancellation cause wrapped", err)
	}
	if got := executed.Load(); got >= n {
		t.Fatalf("all %d iterations ran despite mid-loop cancellation", got)
	}
	// Every chunk resolved: the runtime drains to zero live tasks.
	waitQuiescent(t, rt)
}

func TestLoopCancelledBeforeStart(t *testing.T) {
	rt := loopTestRT(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	h := rt.SubmitLoop(ctx, 0, 1000, 0, func(*Ctx, int, int) { calls.Add(1) })
	_, err := h.Wait(nil)
	if !errors.Is(err, ErrTaskSkipped) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrTaskSkipped wrapping context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatal("chunks executed under a pre-cancelled context")
	}
	waitQuiescent(t, rt)
}

func TestLoopChunkPanicFailsScope(t *testing.T) {
	rt := loopTestRT(t, 4)
	err := rt.RunLoop(0, 1000, 8, func(_ *Ctx, lo, hi int) {
		if lo <= 500 && 500 < hi {
			panic("chunk exploded")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	waitQuiescent(t, rt)
}

// TestLoopGoLoopChunkErrorUnderCollectAll: a chunk panic must surface
// through the loop's own Handle even under CollectAll (no scope abort)
// and even when the failing chunk executed under a steal descriptor,
// which has no handle of its own.
func TestLoopGoLoopChunkErrorUnderCollectAll(t *testing.T) {
	rt := New(Config{Workers: 4, NUMANodes: 1, OnError: CollectAll})
	defer rt.Close()
	err := rt.Run(func(c *Ctx) {
		h := c.GoLoop(0, 10000, 8, func(_ *Ctx, lo, hi int) {
			if lo <= 7777 && 7777 < hi {
				panic("chunk exploded")
			}
		})
		c.Taskwait()
		_, herr := h.Wait(nil)
		var pe *PanicError
		if !errors.As(herr, &pe) {
			t.Errorf("loop handle err = %v, want *PanicError", herr)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("scope err = %v, want *PanicError joined", err)
	}
	waitQuiescent(t, rt)
}

func TestLoopNestedInsideTaskwait(t *testing.T) {
	rt := loopTestRT(t, 4)
	const n = 2000
	hits := make([]atomic.Int32, n)
	var after atomic.Bool
	err := rt.Run(func(c *Ctx) {
		c.Loop(0, n, 0, func(_ *Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		c.Taskwait()
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Errorf("iteration %d ran %d times before Taskwait returned", i, hits[i].Load())
				break
			}
		}
		after.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Load() {
		t.Fatal("root body never passed its Taskwait")
	}
}

// TestLoopNestedInsideChunk spawns a child loop from a chunk body: the
// outer loop must not complete before the inner one.
func TestLoopNestedInsideChunk(t *testing.T) {
	rt := loopTestRT(t, 4)
	const outer, inner = 64, 128
	var total atomic.Int64
	err := rt.RunLoop(0, outer, 4, func(c *Ctx, lo, hi int) {
		c.Loop(0, inner, 0, func(_ *Ctx, ilo, ihi int) {
			total.Add(int64(ihi - ilo))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != outer/4*inner {
		// outer/4 chunks at grain 4... the chunk count depends on
		// claiming; count iterations instead.
		t.Logf("chunked as %d total inner iterations", got)
	}
	if got := total.Load(); got%inner != 0 || got == 0 {
		t.Fatalf("inner loops ran %d iterations, want a positive multiple of %d", got, inner)
	}
	waitQuiescent(t, rt)
}

// TestLoopReductionMatchesSerial runs the RedSpec/ReductionBuffer path
// through a taskloop and checks the combined result against the serial
// sum (integer-valued data keeps float64 addition exact).
func TestLoopReductionMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 4, NUMANodes: 1},
		{Workers: 4, NUMANodes: 1, Deps: DepsLocked},
	} {
		rt := New(cfg)
		const n = 50000
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i % 9)
		}
		var result, want float64
		for i := range x {
			want += x[i]
		}
		err := rt.Run(func(c *Ctx) {
			c.Loop(0, n, 0, func(cc *Ctx, lo, hi int) {
				acc := cc.ReductionBuffer(&result)
				s := 0.0
				for i := lo; i < hi; i++ {
					s += x[i]
				}
				acc[0] += s
			}, RedSpec(&result, 1, deps.OpSum))
			c.Taskwait()
		})
		if err != nil {
			t.Fatalf("%s: %v", rt.DepsName(), err)
		}
		if result != want {
			t.Fatalf("%s: reduction = %v, want %v", rt.DepsName(), result, want)
		}
		rt.Close()
	}
}

// TestLoopOnEverySchedulerKind runs a loop+reduction on each scheduler
// design. The blocking scheduler is the interesting one: its idle
// workers park in a condvar inside Get and can never poll the
// work-share lane, so steal descriptors must route through the
// scheduler's own Add/Signal path there.
func TestLoopOnEverySchedulerKind(t *testing.T) {
	for _, kind := range []SchedulerKind{
		SchedSyncDTLock, SchedCentralPTLock, SchedBlocking, SchedWorkStealing,
	} {
		rt := New(Config{Workers: 4, NUMANodes: 1, Scheduler: kind})
		const n = 20000
		var covered atomic.Int64
		err := rt.RunLoop(0, n, 64, func(_ *Ctx, lo, hi int) {
			covered.Add(int64(hi - lo))
		})
		if err != nil {
			t.Fatalf("%s: %v", rt.SchedulerName(), err)
		}
		if covered.Load() != n {
			t.Fatalf("%s: covered %d of %d iterations", rt.SchedulerName(), covered.Load(), n)
		}
		rt.Close()
	}
}

// TestLoopManyConcurrentLoops submits loops from several goroutines at
// once, exercising concurrent recruitment through the shared lane.
func TestLoopManyConcurrentLoops(t *testing.T) {
	rt := loopTestRT(t, 4)
	const loops, n = 8, 4000
	done := make(chan error, loops)
	counts := make([]atomic.Int64, loops)
	for l := 0; l < loops; l++ {
		go func(l int) {
			done <- rt.RunLoop(0, n, 0, func(_ *Ctx, lo, hi int) {
				counts[l].Add(int64(hi - lo))
			})
		}(l)
	}
	for l := 0; l < loops; l++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for l := range counts {
		if got := counts[l].Load(); got != n {
			t.Fatalf("loop %d covered %d of %d iterations", l, got, n)
		}
	}
	waitQuiescent(t, rt)
}

// TestLoopGoLoopHandle resolves a child loop through its Handle.
func TestLoopGoLoopHandle(t *testing.T) {
	rt := loopTestRT(t, 2)
	var total atomic.Int64
	err := rt.Run(func(c *Ctx) {
		h := c.GoLoop(0, 1000, 0, func(_ *Ctx, lo, hi int) {
			total.Add(int64(hi - lo))
		})
		c.Taskwait()
		select {
		case <-h.Done():
		default:
			t.Error("handle unresolved after Taskwait")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 1000 {
		t.Fatalf("loop covered %d iterations, want 1000", total.Load())
	}
}
