package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventDeferredReleaseOrdersSuccessor pins the core contract: a
// successor of an event-holding task must not run — and must observe
// the data the external completion wrote — until the final decrement.
// The race detector validates the happens-before edge.
func TestEventDeferredReleaseOrdersSuccessor(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var x int
	a := rt.Submit(func(c *Ctx) (any, error) {
		ev := c.Events()
		ev.Add(1)
		go func() {
			time.Sleep(time.Millisecond)
			x = 42 // "response arrived": visible to successors via Done
			ev.Done()
		}()
		return nil, nil
	}, Out(&x))
	var got int
	b := rt.Submit(func(*Ctx) (any, error) {
		got = x
		return nil, nil
	}, In(&x))
	for _, h := range []*Handle{a, b} {
		if _, err := h.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if got != 42 {
		t.Fatalf("successor read %d, want 42 (released before the event fired?)", got)
	}
	if n := rt.LiveTasks(); n != 0 {
		t.Fatalf("LiveTasks = %d", n)
	}
	if n := rt.PendingEvents(); n != 0 {
		t.Fatalf("PendingEvents = %d", n)
	}
}

// TestEventDecrementBeforeReturnRace hammers the guard protocol: the
// external decrement may land before or after the body returns, and
// either interleaving must complete the task exactly once. Some
// iterations register two events to exercise multi-decrement drains.
func TestEventDecrementBeforeReturnRace(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	const n = 400
	var completed atomic.Int64
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		i := i
		handles[i] = rt.Submit(func(c *Ctx) (any, error) {
			ev := c.Events()
			k := 1 + i%2
			ev.Add(k)
			for j := 0; j < k; j++ {
				go ev.Done() // races with the body's return
			}
			if i%3 == 0 {
				runtime.Gosched() // sometimes let the decrement win
			}
			return i, nil
		})
	}
	for i, h := range handles {
		v, err := h.Wait(nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != i {
			t.Fatalf("handle %d resolved with %v", i, v)
		}
		completed.Add(1)
	}
	if completed.Load() != n {
		t.Fatalf("completed %d/%d", completed.Load(), n)
	}
	if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
		t.Fatalf("LiveTasks = %d, PendingEvents = %d after quiescence", l, p)
	}
}

// TestEventDoneFromWorkerBypass exercises the worker-context decrement:
// the final DoneFrom inside another task's body runs the release on the
// calling worker, including the immediate-successor bypass. The
// successor must observe the predecessor's deferred write.
func TestEventDoneFromWorkerBypass(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var x int
	ecCh := make(chan *EventCounter, 1)
	a := rt.Submit(func(c *Ctx) (any, error) {
		ev := c.Events()
		ev.Add(1)
		ecCh <- ev
		return nil, nil
	}, Out(&x))
	var got atomic.Int64
	b := rt.Submit(func(*Ctx) (any, error) {
		got.Store(int64(x))
		return nil, nil
	}, In(&x))
	// completer is an independent task that finishes a's event from its
	// own body.
	completer := rt.Submit(func(c *Ctx) (any, error) {
		ev := <-ecCh
		x = 7
		ev.DoneFrom(c)
		return nil, nil
	})
	for _, h := range []*Handle{a, b, completer} {
		if _, err := h.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if got.Load() != 7 {
		t.Fatalf("successor read %d, want 7", got.Load())
	}
	if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
		t.Fatalf("LiveTasks = %d, PendingEvents = %d", l, p)
	}
}

// TestEventCancellationWhilePending: a FailFast abort while a sibling
// holds pending events must drain the scope without leaks — the
// event-holding task still completes (at its final decrement), its
// successor is skipped with ErrTaskSkipped wrapping the cause, handles
// resolve, and the live/pending counters reach zero.
func TestEventCancellationWhilePending(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	sentinel := errors.New("backend exploded")
	var x int
	var hSucc, hFail *Handle
	var succRan atomic.Bool
	err := rt.Run(func(c *Ctx) {
		ev := make(chan *EventCounter, 1)
		c.GoFn(func(cc *Ctx) (any, error) {
			e := cc.Events()
			e.Add(1)
			ev <- e
			return nil, nil
		}, Out(&x))
		hSucc = c.GoFn(func(*Ctx) (any, error) {
			succRan.Store(true)
			return nil, nil
		}, In(&x))
		hFail = c.GoFn(func(*Ctx) (any, error) {
			return nil, sentinel
		})
		go func() {
			// Fire the event only after the failure has fully aborted the
			// scope, so the successor's skip is deterministic.
			<-hFail.Done()
			(<-ev).Done()
		}()
		c.Taskwait()
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want %v", err, sentinel)
	}
	if succRan.Load() {
		t.Fatal("successor of the event-holding task ran despite the scope abort")
	}
	_, serr := hSucc.Wait(nil)
	if !errors.Is(serr, ErrTaskSkipped) || !errors.Is(serr, sentinel) {
		t.Fatalf("skipped successor error = %v, want ErrTaskSkipped wrapping %v", serr, sentinel)
	}
	if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
		t.Fatalf("LiveTasks = %d, PendingEvents = %d after cancellation drain", l, p)
	}
}

// TestEventPanicWhileHoldingEvents: a body that panics after
// registering events still completes only at the final decrement, with
// the panic delivered as a *PanicError.
func TestEventPanicWhileHoldingEvents(t *testing.T) {
	rt := New(Config{Workers: 2, OnError: CollectAll})
	defer rt.Close()
	var fired atomic.Bool
	h := rt.Submit(func(c *Ctx) (any, error) {
		ev := c.Events()
		ev.Add(1)
		go func() {
			time.Sleep(2 * time.Millisecond)
			fired.Store(true)
			ev.Done()
		}()
		panic("boom while holding events")
	})
	_, err := h.Wait(nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("handle error = %v, want *PanicError", err)
	}
	if !fired.Load() {
		t.Fatal("handle resolved before the pending event fired")
	}
	if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
		t.Fatalf("LiveTasks = %d, PendingEvents = %d", l, p)
	}
}

// TestEventsOnLoopTasksRejected: Events has no defined release point
// for work-sharing loops; calling it from a chunk must panic, and the
// panic surfaces as the loop's *PanicError.
func TestEventsOnLoopTasksRejected(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	err := rt.RunLoop(0, 8, 1, func(c *Ctx, lo, hi int) {
		c.Events()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("loop error = %v, want *PanicError from the Events rejection", err)
	}
	if l := rt.LiveTasks(); l != 0 {
		t.Fatalf("LiveTasks = %d", l)
	}
}

// TestEventCounterMisusePanics: a drained counter is spent — further
// Add or Done must panic instead of corrupting a recycled task.
func TestEventCounterMisusePanics(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var ec *EventCounter
	h := rt.Submit(func(c *Ctx) (any, error) {
		ec = c.Events()
		return nil, nil
	})
	if _, err := h.Wait(nil); err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a drained counter did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Add", func() { ec.Add(1) })
	mustPanic("Done", func() { ec.Done() })
	mustPanic("Add(0)", func() { ec.Add(0) })
}

// TestAfterDefersCompletion: Ctx.After must hold the task's completion
// for at least the requested duration — without holding the worker
// (a second task runs meanwhile on the single worker).
func TestAfterDefersCompletion(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	const d = 20 * time.Millisecond
	start := time.Now()
	var overlapped atomic.Bool
	h := rt.Submit(func(c *Ctx) (any, error) {
		c.After(d)
		return nil, nil
	})
	// This task only runs if the worker was freed while the timer
	// pends.
	h2 := rt.Submit(func(*Ctx) (any, error) {
		overlapped.Store(true)
		return nil, nil
	})
	if _, err := h2.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < d {
		t.Fatalf("timer task completed after %v, before the requested %v", el, d)
	}
	if !overlapped.Load() {
		t.Fatal("worker was not released while the timer pended")
	}
}

// TestAfterFuncDeliversResponse: the simulated-I/O shape — AfterFunc
// writes the response on the wheel goroutine, the dependency order
// makes it visible to the successor (validated under -race).
func TestAfterFuncDeliversResponse(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var resp int
	a := rt.Submit(func(c *Ctx) (any, error) {
		c.AfterFunc(2*time.Millisecond, func() { resp = 99 })
		return nil, nil
	}, Out(&resp))
	var got int
	b := rt.Submit(func(*Ctx) (any, error) {
		got = resp
		return nil, nil
	}, In(&resp))
	for _, h := range []*Handle{a, b} {
		if _, err := h.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if got != 99 {
		t.Fatalf("successor read %d, want 99", got)
	}
}

// TestAwaitHelpsOnSingleWorker: Await must execute other ready work
// while blocked — on one worker, awaiting a handle whose task has not
// run yet deadlocks unless the waiter helps.
func TestAwaitHelpsOnSingleWorker(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	err := rt.Run(func(c *Ctx) {
		inner := rt.Submit(func(*Ctx) (any, error) { return 21, nil })
		v, err := c.Await(inner)
		if err != nil {
			panic(err)
		}
		if v.(int) != 21 {
			panic(fmt.Sprintf("awaited %v", v))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEventsAcrossConfigs smoke-tests the completer-slot wiring on
// every scheduler/deps/alloc combination the thread-index space must
// cover: external decrements run dependency release and completion on
// borrowed slots, which all per-thread structures must be sized for.
func TestEventsAcrossConfigs(t *testing.T) {
	cfgs := []Config{
		{Workers: 2, Scheduler: SchedSyncDTLock, Deps: DepsWaitFree},
		{Workers: 2, Scheduler: SchedSyncDTLock, Deps: DepsLocked},
		{Workers: 2, Scheduler: SchedCentralPTLock, Deps: DepsWaitFree},
		{Workers: 2, Scheduler: SchedBlocking, Deps: DepsLocked, Alloc: AllocSerial},
		{Workers: 2, Scheduler: SchedWorkStealing, Deps: DepsLocked},
		{Workers: 2, Scheduler: SchedWorkStealing, Deps: DepsWaitFree, EventSlots: 1},
	}
	for i, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d", i), func(t *testing.T) {
			rt := New(cfg)
			defer rt.Close()
			const n = 100
			var sum atomic.Int64
			cells := make([]int, n)
			handles := make([]*Handle, 0, 2*n)
			for j := 0; j < n; j++ {
				j := j
				handles = append(handles, rt.Submit(func(c *Ctx) (any, error) {
					ev := c.Events()
					ev.Add(1)
					go func() {
						cells[j] = j
						ev.Done()
					}()
					return nil, nil
				}, Out(&cells[j])))
				handles = append(handles, rt.Submit(func(*Ctx) (any, error) {
					sum.Add(int64(cells[j]))
					return nil, nil
				}, In(&cells[j])))
			}
			for _, h := range handles {
				if _, err := h.Wait(nil); err != nil {
					t.Fatal(err)
				}
			}
			if want := int64(n) * (n - 1) / 2; sum.Load() != want {
				t.Fatalf("successor sum %d, want %d", sum.Load(), want)
			}
			if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
				t.Fatalf("LiveTasks = %d, PendingEvents = %d", l, p)
			}
		})
	}
}

// TestEventWithCommutativeAccess: the commutative token is held across
// the park — a second commutative task on the same address must not
// enter its critical section until the first task's event fires.
func TestEventWithCommutativeAccess(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var x int
	var inside atomic.Int32
	body := func(c *Ctx) (any, error) {
		if inside.Add(1) != 1 {
			t.Error("two commutative critical sections overlapped")
		}
		ev := c.Events()
		ev.Add(1)
		go func() {
			time.Sleep(time.Millisecond)
			inside.Add(-1) // section ends only at the event
			ev.Done()
		}()
		return nil, nil
	}
	h1 := rt.Submit(body, Commutative(&x))
	h2 := rt.Submit(body, Commutative(&x))
	for _, h := range []*Handle{h1, h2} {
		if _, err := h.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
		t.Fatalf("LiveTasks = %d, PendingEvents = %d", l, p)
	}
}

// TestDrainGraceful: Drain waits for live tasks and pending events,
// then rejects every submission flavor with ErrRuntimeDraining.
func TestDrainGraceful(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var done atomic.Int64
	for i := 0; i < 20; i++ {
		rt.Submit(func(c *Ctx) (any, error) {
			c.After(2 * time.Millisecond)
			done.Add(1)
			return nil, nil
		})
	}
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if done.Load() != 20 {
		t.Fatalf("%d/20 tasks completed before Drain returned", done.Load())
	}
	if l, p := rt.LiveTasks(), rt.PendingEvents(); l != 0 || p != 0 {
		t.Fatalf("LiveTasks = %d, PendingEvents = %d after Drain", l, p)
	}
	if _, err := rt.Submit(func(*Ctx) (any, error) { return nil, nil }).Wait(nil); !errors.Is(err, ErrRuntimeDraining) {
		t.Fatalf("post-drain Submit error = %v, want ErrRuntimeDraining", err)
	}
	if err := rt.Run(func(*Ctx) {}); !errors.Is(err, ErrRuntimeDraining) {
		t.Fatalf("post-drain Run error = %v, want ErrRuntimeDraining", err)
	}
	if err := rt.RunLoop(0, 4, 1, func(*Ctx, int, int) {}); !errors.Is(err, ErrRuntimeDraining) {
		t.Fatalf("post-drain RunLoop error = %v, want ErrRuntimeDraining", err)
	}
	// Drain again: already quiescent, still nil.
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
}

// TestDrainContextCancel: a Drain that cannot reach quiescence before
// its context fires returns the cause; the seal still holds, and a
// later unbounded Drain completes.
func TestDrainContextCancel(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	release := make(chan struct{})
	h := rt.Submit(func(c *Ctx) (any, error) {
		ev := c.Events()
		ev.Add(1)
		go func() {
			<-release
			ev.Done()
		}()
		return nil, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := rt.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want deadline cause", err)
	}
	close(release)
	if _, err := h.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("follow-up Drain = %v", err)
	}
}
