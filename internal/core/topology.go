package core

// This file is the one home of the runtime's thread-index space and its
// partition into NUMA domains. Every structure indexed by a "worker"
// index — allocator free lists, dependency mailboxes, scheduler
// insertion queues, trace buffers, histogram recorder shards, bypass
// and context slots — is sized for the FULL slot space and partitioned
// by the same two formulas below. Do not restate the layout elsewhere;
// link here.
//
// # The slot space
//
// A runtime owns Slots() = Workers + RootShards + EventSlots +
// ServeSlots thread indices, made exclusive by four different
// mechanisms:
//
//	[0, W)             worker goroutines (one index per worker, for life)
//	[W, W+RS)          root submitters — exclusive while holding shard
//	                   i's registration lock (deps.RootLease)
//	[W+RS, W+RS+ES)    event completers — exclusive while holding the
//	                   completer pool's per-slot mutex (event.Slots)
//	[W+RS+ES, Slots)   inline-serving submitters — exclusive while
//	                   holding serveMu[i] (acquireServe)
//
// Ctx.Worker reports an index in [0, Slots()), so per-thread structures
// read through it (e.g. histogram shards) must be sized by
// Runtime.Slots, never by Config().Workers.
//
// # The domain partition
//
// With Config.Domains = D > 1 the runtime is sharded into D
// near-independent instances (per-domain scheduler stack, allocator,
// pending counters, park/wake state). Every slot has exactly one home
// domain, computed by slotDomain:
//
//   - Workers split into D contiguous, balanced blocks: worker w
//     belongs to domain w*D/W. Contiguity is what lets the Parker scan
//     only a domain's own slots and what a future CPU-pinning layer
//     would map onto physical NUMA nodes.
//   - Non-worker slots round-robin: slot s >= W belongs to domain
//     (s-W) % D, so submission shards, event completers and serving
//     slots spread their production evenly across domains. For the
//     root range this matches deps.ShardDomain.
//
// A producer enqueues into its own slot's domain; tasks cross domains
// only through the bounded work-shedding protocol (see runtime.go,
// shedTake) or an explicit cross-domain wake (sched.Parker.WakeOne).

// slotDomain maps a thread index onto its home domain for a runtime
// shaped (workers, domains). It is the only implementation of the
// partition formula; rt.slotDom materializes it per slot at New.
func slotDomain(slot, workers, domains int) int {
	if domains <= 1 {
		return 0
	}
	if slot < workers {
		return slot * domains / workers
	}
	return (slot - workers) % domains
}

// DomainOf returns the home domain of a thread index (as reported by
// Ctx.Worker), in [0, Config().Domains). Workloads use it to attribute
// an executed task to the domain of its executing worker; see the
// partition formula above.
func (rt *Runtime) DomainOf(slot int) int { return int(rt.slotDom[slot]) }

// Domains returns the runtime's domain count (Config.Domains after
// normalization; always >= 1).
func (rt *Runtime) Domains() int { return rt.ndomains }
