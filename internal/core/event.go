package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// This file implements external events (the OmpSs-2/Nanos6
// "external events" API): a task body may register out-of-band
// completions — network callbacks, timers, channel readers — that must
// fire before the task releases its dependencies and completes. The
// worker that ran the body returns to the scheduler immediately; the
// final decrement, from whatever goroutine it arrives on, runs the
// release path. This is the mechanism that lets the runtime drive
// I/O-bound request graphs without holding a worker per in-flight
// request. See DESIGN.md ("External events") for the lifecycle and
// pin-protocol invariants.

// ErrRuntimeDraining is reported by root submissions rejected because
// Runtime.Drain has sealed the runtime.
var ErrRuntimeDraining = errors.New("runtime draining")

// EventCounter defers its task's dependency release and completion
// until every registered external completion has fired. Obtain one
// inside a task body with Ctx.Events, call Add before the body
// returns, and Done from any goroutine when the external work
// finishes. The counter internally holds one guard for the body
// itself, dropped when the body returns: the task releases at the
// moment the count reaches zero, whether the last decrement lands
// before or after the return (the decrement-before-return race is
// resolved by the guard, not by the caller).
//
// After the final decrement the counter is spent: further Add or Done
// calls panic, and the task — its successors now released, its handle
// resolved — is recycled as usual.
type EventCounter struct {
	t  *Task
	rt *Runtime
	// n counts outstanding completions: 1 guard for the running body
	// plus one per registered external event. The decrement that takes
	// it to zero owns the release and immediately poisons the counter
	// with eventsDrained, so a buggy late Add or Done panics instead of
	// re-running the release on a recycled task shell.
	n atomic.Int64
}

// eventsDrained poisons a spent counter: negative enough that no legal
// Add can bring it back above zero.
const eventsDrained = -1 << 40

// Events returns the running task's event counter, creating it on
// first use. It may only be called from the task's own body, and is
// not supported on work-sharing loop tasks (a loop's completion is
// already a multi-party barrier across claimed chunks; deferring it on
// external events has no defined release point), where it panics.
func (c *Ctx) Events() *EventCounter {
	t := c.task
	if t.loop != nil {
		panic("repro: Events is not supported on work-sharing loop tasks")
	}
	if t.events == nil {
		ec := &EventCounter{t: t, rt: c.rt}
		ec.n.Store(1)
		t.events = ec
	}
	return t.events
}

// Add registers n pending external completions (n > 0). It must be
// called before the counter can drain — from the task's body, or from
// a goroutine that already holds an undone registration.
func (ec *EventCounter) Add(n int) {
	if n <= 0 {
		panic("repro: EventCounter.Add requires n > 0")
	}
	if ec.n.Add(int64(n)) <= int64(n) {
		panic("repro: EventCounter.Add after the counter drained")
	}
}

// Done signals one external completion; it may be called from any
// goroutine. The call that drains the counter to zero runs the task's
// dependency release and completion cascade — successors become ready,
// the handle resolves, the scope unwinds — on an exclusive borrowed
// completer slot.
func (ec *EventCounter) Done() {
	switch v := ec.n.Add(-1); {
	case v > 0:
	case v < 0:
		panic("repro: EventCounter.Done without a matching Add")
	default:
		ec.n.Store(eventsDrained)
		ec.rt.releaseExternal(ec.t)
	}
}

// DoneFrom is Done called from inside another task's body: the final
// decrement then reuses the calling worker's thread index instead of
// borrowing a completer slot, and the release keeps the worker-only
// fast paths — including the immediate-successor bypass, so a
// successor readied by this decrement can run on the calling worker
// right after the current body. c must be the Ctx of the task whose
// body is executing the call.
func (ec *EventCounter) DoneFrom(c *Ctx) {
	switch v := ec.n.Add(-1); {
	case v > 0:
	case v < 0:
		panic("repro: EventCounter.Done without a matching Add")
	default:
		ec.n.Store(eventsDrained)
		ec.rt.releaseDeferred(ec.t, c.worker, true)
	}
}

// releaseExternal runs the deferred release from a non-worker
// goroutine. The release path touches thread-indexed structures
// (dependency mailbox, allocator free list, scheduler insertion, trace
// buffer), so it borrows an exclusive event-completer slot for its
// duration; the slot count bounds completer parallelism, never
// correctness (Acquire spins until a slot frees).
func (rt *Runtime) releaseExternal(t *Task) {
	slot := rt.evSlots.Acquire()
	rt.releaseDeferred(t, slot, false)
	rt.evSlots.Release(slot)
}

// releaseDeferred finishes the lifecycle of a task whose body returned
// with events pending: the tail of execute that was skipped when the
// task parked. The order is identical — commutative token release,
// dependency unregister, completion cascade — so successors, handle
// and scope observe exactly what an inline completion would have
// produced. When the final decrementer is itself a worker (isWorker),
// the bypass slot is armed around the unregister and any parked
// successor chain is executed inline, matching the worker release
// path; decrements from completer slots route every readied successor
// through the scheduler (whose Add maintains the priority pending
// counts — a deferred release never lets a successor jump a queued
// higher-priority task).
func (rt *Runtime) releaseDeferred(t *Task, id int, isWorker bool) {
	rt.tracer.Emit(id, trace.KEventFire, 0)
	t.node.ReleaseCommutative()
	var next *Task
	if isWorker {
		bs := &rt.bypass[id]
		bs.armed = true
		rt.deps.Unregister(&t.node, id)
		bs.armed = false
		next = bs.next
		bs.next = nil
	} else {
		rt.deps.Unregister(&t.node, id)
	}
	rt.completeOne(t, id)
	rt.eventsHeld.v.Add(-1)
	for next != nil {
		next = rt.execute(next, id)
	}
}

// After defers this task's completion by at least d without holding a
// worker: it registers one event and schedules its completion on the
// runtime's shared timer wheel. Successors (and Taskwait/Future
// waiters) observe the task as complete only once the timer fires —
// the task-shaped replacement for time.Sleep in a body, at the cost of
// no worker and no goroutine. Multiple After calls (and explicit
// Add/Done pairs) compose: the task completes when all have fired.
func (c *Ctx) After(d time.Duration) {
	ec := c.Events()
	ec.Add(1)
	c.rt.wheel.After(d, ec.Done)
}

// AfterFunc runs fn on the shared timer goroutine after at least d,
// then completes one event — the simulated-I/O shape: write the
// arrived response where successors will read it, in fn, and the
// dependency order makes it visible to them. fn must be brief (it
// shares the single wheel goroutine) and must not block.
func (c *Ctx) AfterFunc(d time.Duration, fn func()) {
	ec := c.Events()
	ec.Add(1)
	c.rt.wheel.After(d, func() { fn(); ec.Done() })
}

// Await blocks the running task until h resolves and returns its
// result, executing other ready tasks on this worker meanwhile (the
// same blocking-help loop as Taskwait). It is the in-task way to join
// on a Handle — a bare Handle.Wait inside a body would park the worker
// goroutine itself. Awaiting a handle whose completion depends on this
// task deadlocks, exactly like a misplaced Taskwait.
func (c *Ctx) Await(h *Handle) (any, error) {
	c.rt.helpUntil(c.worker, func() bool {
		select {
		case <-h.done:
			return true
		default:
			return false
		}
	})
	return h.val, h.err
}

// Drain seals the runtime against new root submissions and waits until
// every live task — including tasks parked on pending external events
// — has fully completed. Sealed submissions (Run, Submit, loops)
// resolve immediately with ErrRuntimeDraining. Drain returns nil on
// quiescence or the context's cause if ctx fires first; the seal is
// permanent either way, making Drain the graceful half of shutdown:
//
//	rt.Drain(ctx) // stop intake, let in-flight requests finish
//	rt.Close()    // then stop the workers
//
// Concurrent and repeated calls are safe; they all wait for the same
// quiescence.
func (rt *Runtime) Drain(ctx context.Context) error {
	rt.gate.Close()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for i := 0; ; i++ {
		if rt.live.Sum() == 0 && rt.eventsHeld.v.Load() == 0 {
			return nil
		}
		select {
		case <-done:
			return context.Cause(ctx)
		default:
		}
		if i < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// PendingEvents returns the number of tasks whose bodies have returned
// but whose release is deferred on external events (diagnostics; exact
// at quiescence like LiveTasks).
func (rt *Runtime) PendingEvents() int64 { return rt.eventsHeld.v.Load() }
