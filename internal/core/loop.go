package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/deps"
)

// This file implements work-sharing loop tasks (OmpSs-2 taskloop /
// taskfor): a single logical task that owns an iteration range and is
// executed cooperatively by several workers, each claiming chunks from
// the loop's remaining span. Compared to spawning one task per chunk,
// the loop pays the dependency/scheduling cost once for the whole range
// — its accesses, its readiness, its release are all singular events —
// while still spreading the iterations across the machine.
//
// Execution model. The loop is an ordinary Task (it registers accesses,
// chains, bypasses and completes like any other); what differs is its
// body. When a worker starts executing the loop (the *owner* task), it
// publishes a *steal descriptor* — a pooled, access-free child task
// whose body is an entry point into the same claim loop — and begins
// claiming chunks. A worker that picks the descriptor up publishes the
// next descriptor and joins the claiming. Descriptors ride the
// scheduler's WorkShare hand-off lane (falling back to the ordinary
// scheduler when the lane is full), so recruitment is one CAS, not a
// queue round-trip. The owner's body returns only after the span is
// drained AND every descriptor has completed (it helps execute ready
// tasks while waiting, like Taskwait), so the loop's dependency release
// — and therefore the immediate-successor bypass to whatever the final
// chunk unblocks — happens exactly once, after the last chunk.
//
// Claiming. The remaining span is a single atomic cursor. A claim takes
// half of what remains, capped at a per-claim maximum of
// range/(2·workers) and floored at the grain, then runs its claim in
// grain-sized chunks, re-checking the scope's abort cause between
// chunks. Geometrically shrinking claims give guided-self-scheduling
// load balance; the cap keeps the first claimer from walking off with
// half the loop.
//
// Cancellation. Chunks honor scope cancellation/FailFast exactly like
// tasks: a claimer that observes the abort cause stops claiming, the
// remaining iterations are skipped, and the loop's handle reports an
// error matching ErrTaskSkipped wrapping the cause — while the loop
// itself still completes normally (accounting, release, recycling).

// loopGrainTarget is the chunks-per-worker target of the adaptive grain:
// enough chunks that late joiners find work, few enough that per-chunk
// bookkeeping stays negligible.
const loopGrainTarget = 8

// loopState is the shared state of one taskloop, referenced by the
// owner task and every steal descriptor. It is pooled: the owner's full
// completion — which strictly follows every descriptor's — releases it.
type loopState struct {
	owner *Task
	body  func(*Ctx, int, int)

	lo, hi   int64
	grain    int64
	maxClaim int64

	// next is the claim cursor: iterations in [next, hi) are unclaimed.
	next atomic.Int64

	// skipped records that at least one chunk was abandoned because the
	// scope aborted; the owner folds it into the handle as a skip error.
	skipped atomic.Bool

	// fail holds the first error of a chunk that executed under a steal
	// descriptor (descriptors have no handle of their own — see
	// Task.fail). The owner folds it into the loop's handle after the
	// descriptors complete, so GoLoop/SubmitLoop callers observe chunk
	// failures even under CollectAll, where no scope abort occurs.
	fail atomic.Pointer[error]
}

var loopPool = sync.Pool{New: func() any { return new(loopState) }}

// newLoopTask builds (without registering) the owner task of a loop
// over [lo, hi) with the given grain (<= 0 selects the adaptive grain).
func (rt *Runtime) newLoopTask(parent *Task, lo, hi, grain int, body func(*Ctx, int, int), accs []deps.AccessSpec, worker int) *Task {
	t := rt.newTask(parent, nil, accs, worker)
	ls := loopPool.Get().(*loopState)
	ls.owner = t
	ls.body = body
	ls.lo = int64(lo)
	ls.hi = int64(hi)
	if ls.hi < ls.lo {
		ls.hi = ls.lo
	}
	ls.next.Store(ls.lo)
	n := ls.hi - ls.lo
	workers := int64(rt.cfg.Workers)
	g := int64(grain)
	if g <= 0 {
		g = n / (workers * loopGrainTarget)
		if g < 1 {
			g = 1
		}
	}
	ls.grain = g
	// Per-claim cap: half a fair share of the whole range, never below
	// the grain (a zero cap would stall the claim loop).
	ls.maxClaim = n / (2 * workers)
	if ls.maxClaim < g {
		ls.maxClaim = g
	}
	ls.skipped.Store(false)
	ls.fail.Store(nil)
	t.loop = ls
	rt.loopsActive.Add(1)
	return t
}

// putLoopState recycles a loop's shared state once the owner has fully
// completed (every descriptor completes strictly earlier).
func putLoopState(ls *loopState) {
	ls.owner = nil
	ls.body = nil
	loopPool.Put(ls)
}

// RunLoop executes body over [lo, hi) as one work-sharing loop task and
// blocks until every chunk has completed. grain <= 0 selects the
// adaptive grain (about loopGrainTarget chunks per worker). The loop's
// accesses participate in root-level dependency chains exactly like
// Run/Submit roots. The public façade wrappers are repro.ForEach and
// repro.ForReduce.
func (rt *Runtime) RunLoop(lo, hi, grain int, body func(*Ctx, int, int), accs ...deps.AccessSpec) error {
	h := rt.SubmitLoop(context.Background(), lo, hi, grain, body, accs...)
	<-h.done
	return h.err
}

// SubmitLoop submits a root work-sharing loop task without waiting; the
// Handle resolves at the loop's full completion (every chunk drained).
// ctx cancellation skips unexecuted chunks; the Handle then reports an
// error matching ErrTaskSkipped wrapping the cause.
func (rt *Runtime) SubmitLoop(ctx context.Context, lo, hi, grain int, body func(*Ctx, int, int), accs ...deps.AccessSpec) *Handle {
	sc := newScope(ctx, rt.cfg.OnError)
	h := newHandle()
	lease := rt.rootDom.Acquire(accs)
	// Same drain-gate protocol as submitRoot: enter under the shard
	// lock, reject with ErrRuntimeDraining once Drain has sealed intake.
	if !rt.gate.Enter(lease.Slot()) {
		lease.Release()
		sc.release()
		h.err = ErrRuntimeDraining
		close(h.done)
		return h
	}
	slot := rt.cfg.Workers + lease.Slot()
	t := rt.newLoopTask(&rt.global, lo, hi, grain, body, accs, slot)
	t.sc = sc
	t.handle = h
	t.ownsScope = true
	rt.registerWith(&rt.global, rt.rootDom, t, slot)
	rt.gate.Leave(lease.Slot())
	lease.Release()
	return h
}

// Loop spawns a work-sharing loop task as a child of the running task:
// body executes over [lo, hi) in chunks, on whichever workers join.
// Like Spawn it may only be called from the task's own body, and
// Taskwait waits for the whole loop (the loop is one child; it
// completes when its last chunk drains). grain <= 0 selects the
// adaptive grain. The chunk body may be called concurrently from
// several workers on disjoint chunks; it must not call Spawn-family
// methods of a Ctx other than its own argument.
func (c *Ctx) Loop(lo, hi, grain int, body func(*Ctx, int, int), accs ...deps.AccessSpec) {
	t := c.rt.newLoopTask(c.task, lo, hi, grain, body, accs, c.worker)
	c.rt.register(c.task, t, c.worker)
}

// GoLoop is Loop returning the loop's completion Handle (resolved at
// full completion, like GoFn's).
func (c *Ctx) GoLoop(lo, hi, grain int, body func(*Ctx, int, int), accs ...deps.AccessSpec) *Handle {
	h := newHandle()
	t := c.rt.newLoopTask(c.task, lo, hi, grain, body, accs, c.worker)
	t.handle = h
	c.rt.register(c.task, t, c.worker)
	return h
}

// runLoopBody is the body of both the loop owner and its steal
// descriptors: recruit one more participant if there is enough span
// left, then claim and execute chunks until the span drains. The owner
// additionally waits for every outstanding descriptor (helping with
// ready work meanwhile) so the loop's release happens after the final
// chunk, and records the skip marker when cancellation abandoned part
// of the range.
//
// Both halves run under defers because a panicking chunk body unwinds
// through here before runBody's recover fires: a participant that dies
// mid-claim has abandoned claimed iterations (the cursor is already
// past them), and the owner must wait for its descriptors even while
// panicking — otherwise the loop's accesses would release with stolen
// chunks still executing.
func (rt *Runtime) runLoopBody(c *Ctx, t *Task) {
	ls := t.loop
	claimDone := false
	if t != ls.owner {
		defer func() {
			if !claimDone {
				ls.skipped.Store(true)
			}
		}()
		rt.maybeRecruit(ls, c.worker)
		rt.loopClaim(c, t, ls)
		claimDone = true
		return
	}
	defer func() {
		if !claimDone {
			ls.skipped.Store(true)
		}
		rt.helpWhileChildren(t, c.worker)
		// Every descriptor has completed (alive-count barrier above), so
		// their failure recordings happened-before these reads. First
		// error wins on the handle, matching Task.fail: a chunk error
		// from a descriptor beats the skip marker it caused.
		if t.handle != nil && t.handle.err == nil {
			if pe := ls.fail.Load(); pe != nil {
				t.handle.err = *pe
			}
		}
		if ls.skipped.Load() && t.handle != nil && t.handle.err == nil {
			if cause := t.sc.abortCause(); cause != nil {
				t.handle.err = &skipError{cause: cause}
			}
		}
	}()
	rt.maybeRecruit(ls, c.worker)
	rt.loopClaim(c, t, ls)
	claimDone = true
}

// maybeRecruit publishes one steal descriptor — an access-free pooled
// child task of the loop owner that enters the claim loop — when the
// remaining span could still feed another worker. Descriptors are
// registered from whichever worker is executing a chunk; that is safe
// concurrently because access-free registration touches no domain map,
// only atomic accounting.
func (rt *Runtime) maybeRecruit(ls *loopState, worker int) {
	// A lone worker can never be joined: publishing a descriptor would
	// only create a dead task it must later execute itself.
	if rt.cfg.Workers == 1 {
		return
	}
	if ls.hi-ls.next.Load() <= ls.grain {
		return
	}
	owner := ls.owner
	if owner.sc.abortCause() != nil {
		return
	}
	d := rt.newTask(owner, nil, nil, worker)
	d.loop = ls
	rt.register(owner, d, worker)
}

// loopClaim claims and runs chunks until the loop's span is exhausted
// or the scope aborts. Each claim takes half the remaining span (capped
// at maxClaim, floored at the grain) in one CAS, then executes it in
// grain-sized chunks with an abort check before each chunk.
func (rt *Runtime) loopClaim(c *Ctx, t *Task, ls *loopState) {
	g := ls.grain
	for {
		if t.sc.abortCause() != nil {
			if ls.next.Load() < ls.hi {
				ls.skipped.Store(true)
			}
			return
		}
		// A stealing participant yields between claims when a task of a
		// higher priority level is queued: it stops claiming and returns
		// to the scheduler (which will serve the higher level first),
		// bounding the loop-side priority inversion to one claim. The
		// owner never yields — it must drain the span, and the queued
		// task is picked up by the workers the yield frees.
		if t != ls.owner && rt.higherPriPending(int8(t.epri.Load()), int(rt.slotDom[c.worker])) {
			return
		}
		cur := ls.next.Load()
		rem := ls.hi - cur
		if rem <= 0 {
			return
		}
		take := rem / 2
		if take > ls.maxClaim {
			take = ls.maxClaim
		}
		if take < g {
			take = g
		}
		if take > rem {
			take = rem
		}
		if !ls.next.CompareAndSwap(cur, cur+take) {
			continue // another claimer moved the cursor; re-read
		}
		end := cur + take
		for lo := cur; lo < end; lo += g {
			hi := lo + g
			if hi > end {
				hi = end
			}
			if t.sc.abortCause() != nil {
				// The rest of this claim is already past the cursor and
				// can never run: mark the skip and stop.
				ls.skipped.Store(true)
				return
			}
			ls.body(c, int(lo), int(hi))
		}
	}
}
