package deps

import (
	"fmt"
	"unsafe"

	"repro/internal/asm"
)

// mailbox is the per-worker container of undelivered data-access messages
// (paper Fig. 2), specialized to accesses.
type mailbox struct {
	asm.Mailbox[*Access]
}

// push enqueues a message and pins the target's node for the message's
// lifetime: an undelivered message is an outstanding reference to the
// access, so the access storage (the task shell's inline array) must
// not be recycled until the delivery — and the evaluation it triggers —
// has finished. drain takes the matching unpin. Pushers are always in
// a position where the target is provably alive: they are mid-
// evaluation of a pinned access, registering under a pinned chain
// tail, or operating on their own still-guarded task.
func (mb *mailbox) push(a *Access, f asm.Flags) {
	a.node.Pin()
	mb.Push(a, f)
}

// mbSlot pads each worker's mailbox onto its own cache line.
type mbSlot struct {
	mb mailbox
	_  [40]byte
}

// WaitFree is the paper's wait-free dependency system (§2.2). All chain
// state lives in set-once atomic flag words; the only mutation is the
// delivery of a message via fetch-or, and every follow-up action is
// triggered by an exactly-once flag-conjunction transition. Reduction and
// commutative runs use a tiny per-run mutex off the critical path (see
// group).
type WaitFree struct {
	ready     ReadyFn
	quiescent ReadyFn
	workers   int
	mbs       []mbSlot
}

// NewWaitFree returns a wait-free dependency system for the given worker
// count. Worker indices passed to the System methods must be in
// [0, workers] and each index must have at most one concurrent user:
// the runtime passes its real worker count plus its root-shard count
// minus one, so the indices above the real workers are submitter slots
// whose exclusivity the RootDomain leases enforce.
func NewWaitFree(ready ReadyFn, workers int) *WaitFree {
	return &WaitFree{ready: ready, workers: workers, mbs: make([]mbSlot, workers+1)}
}

// OnQuiescent registers the callback fired when a node's pin count
// reaches zero from this system's side — all accesses released, no
// chain-tail references, no undelivered messages — after the owning
// task had already fully completed. The runtime uses it to recycle the
// task shell (with its inline access array) back to the allocator.
// When unset, quiescent nodes are simply left to the garbage collector.
func (s *WaitFree) OnQuiescent(fn ReadyFn) { s.quiescent = fn }

// unpin drops one storage reference; the holder must not touch the
// node's accesses after this call. The drop to zero fires the
// quiescence callback with the calling worker (for allocator routing).
func (s *WaitFree) unpin(n *Node, worker int) {
	if n.Unpin() == 0 && s.quiescent != nil {
		s.quiescent(n, worker)
	}
}

// Name implements System.
func (s *WaitFree) Name() string { return "wait-free" }

// Register implements System. It links each access of n into the chains
// of parent's domain. The domain map is single-writer (only the thread
// executing the parent creates its children), so registration itself
// needs no lock; all cross-thread interaction happens through messages.
//
// Pin accounting: every non-alias access pins its node once until it
// releases (dropped in evaluate at the release transition), and once
// more while it is the domain-map tail of its chain (dropped below when
// a later sibling replaces it, or in Unregister when the parent's
// domain closes for good). Replaced tails are unpinned only after the
// drain: the linking pushed a flagHasSuccessor message at the old tail,
// and the tail pin is what keeps it dereferenceable until delivery.
func (s *WaitFree) Register(parent, n *Node, worker int) {
	s.register(parent, nil, n, worker)
}

// RegisterRoot implements System. It is Register with the domain map
// selected per access: every address chain lives in the shard the
// address hashes to, and the caller's lease of those shards is what
// makes each shard's map single-writer. Root chains have no parent
// access (shard nodes declare no accesses), so fresh chains are born
// satisfied exactly as chains of the former single global domain were.
func (s *WaitFree) RegisterRoot(d *RootDomain, n *Node, worker int) {
	s.register(nil, d, n, worker)
}

// register is the shared registration loop: each access links into
// parent's domain (nested tasks) or, when d is non-nil, into the shard
// of its own address (root tasks).
func (s *WaitFree) register(parent *Node, d *RootDomain, n *Node, worker int) {
	mb := &s.mbs[worker].mb
	n.pending.Store(1) // registration guard
	var replacedArr [InlineAccessCap]*Node
	replaced := replacedArr[:0]
	for i := range n.Accesses {
		a := &n.Accesses[i]
		if hasEarlierAccess(n, i) {
			// Duplicate declaration within one task: linking it into the
			// chain would deadlock the task on itself, so alias it.
			a.alias = true
			continue
		}
		owner := parent
		if d != nil {
			owner = d.shardNode(a.addr)
		}
		if rn := s.linkInto(owner, a, mb); rn != nil {
			replaced = append(replaced, rn)
		}
	}
	s.drain(mb, worker)
	for _, rn := range replaced {
		s.unpin(rn, worker)
	}
	n.satisfied(s.ready, worker) // release the registration guard
}

// linkInto links one non-alias access into owner's domain map and
// returns the node of the plain-access tail it replaced, if any (the
// caller unpins replaced tails after the drain — the pushed
// flagHasSuccessor message is what keeps them dereferenceable until
// delivery). The caller must be the single writer of owner's domain.
func (s *WaitFree) linkInto(owner *Node, a *Access, mb *mailbox) (replaced *Node) {
	n := a.node
	n.Pin() // released-access pin, dropped at a's release transition
	if owner.domain == nil {
		owner.domain = make(map[unsafe.Pointer]tailEntry, InlineAccessCap)
	}
	tail, ok := owner.domain[a.addr]
	switch {
	case ok && tail.group != nil:
		s.linkAfterGroup(tail, a, mb)
	case ok:
		s.linkAfterAccess(tail, a, mb)
		replaced = tail.access.node
		// Record the chain predecessor for the core's priority-
		// inheritance walk; the tail pin makes the dereference safe.
		n.recordPred(replaced)
	default:
		tail.parent = findOwnAccess(owner, a.addr)
		s.linkFresh(tail.parent, a, mb)
	}
	if a.group != nil {
		owner.domain[a.addr] = tailEntry{group: a.group, parent: tail.parent}
	} else {
		owner.domain[a.addr] = tailEntry{access: a, parent: tail.parent}
		n.Pin() // tail pin, dropped when a stops being the chain tail
	}
	return replaced
}

// Unregister implements System: the task finished, so deliver the
// finished flag to every access and release each access's child guard
// (paper Definition 2.4). Open groups created by the task's children are
// closed first so trailing reductions combine.
//
// The task's body has returned, and children are only ever registered
// by the thread executing the parent's body, so after this call n's
// domain map can never be consulted again: the chain-tail pins still
// held by the current tails (accesses of n's children) are dropped
// here, after the drain.
func (s *WaitFree) Unregister(n *Node, worker int) {
	mb := &s.mbs[worker].mb
	closeOpenGroups(n, mb)
	for i := range n.Accesses {
		a := &n.Accesses[i]
		if a.alias {
			continue
		}
		mb.push(a, flagFinished)
		if a.childGuard.Add(-1) == 0 {
			mb.push(a, flagChildrenDone)
		}
	}
	s.drain(mb, worker)
	for _, t := range n.domain {
		if t.access != nil {
			s.unpin(t.access.node, worker)
		}
	}
}

// CloseDomain implements System: close open reduction/commutative runs in
// n's domain so their combines can happen (taskwait semantics).
func (s *WaitFree) CloseDomain(n *Node, worker int) {
	mb := &s.mbs[worker].mb
	closeOpenGroups(n, mb)
	s.drain(mb, worker)
}

// ReductionBuffer implements System.
func (s *WaitFree) ReductionBuffer(n *Node, addr unsafe.Pointer, worker int) []float64 {
	for i := range n.Accesses {
		a := &n.Accesses[i]
		if a.addr == addr && a.typ == Reduction && a.group != nil {
			return a.group.slot(worker)
		}
	}
	panic(fmt.Sprintf("deps: no reduction access on %p", addr))
}

func closeOpenGroups(n *Node, mb *mailbox) {
	for _, t := range n.domain {
		if t.group != nil {
			t.group.close(nil, mb)
		}
	}
}

// findOwnAccess returns parent's access to addr, if any: the anchor for a
// child chain crossing nesting levels (paper Fig. 1's child relation).
// hasEarlierAccess reports whether accesses[0:i] already contains the
// address of access i (duplicate declaration within one task).
func hasEarlierAccess(n *Node, i int) bool {
	addr := n.Accesses[i].addr
	for j := 0; j < i; j++ {
		if n.Accesses[j].addr == addr && !n.Accesses[j].alias {
			return true
		}
	}
	return false
}

func findOwnAccess(parent *Node, addr unsafe.Pointer) *Access {
	for i := range parent.Accesses {
		a := &parent.Accesses[i]
		if a.addr == addr && !a.alias {
			return a
		}
	}
	return nil
}

// linkFresh starts a new chain for a. If the parent task itself accesses
// the address, the chain roots under that access (child relation) and
// inherits its satisfiability; otherwise the chain head is born satisfied.
func (s *WaitFree) linkFresh(pa *Access, a *Access, mb *mailbox) {
	s.armAccess(a, pa, mb)
	if pa != nil {
		pa.child.Store(a)
		mb.push(pa, flagHasChild)
	} else {
		mb.push(a, flagReadSat|flagWriteSat)
	}
}

// linkAfterAccess appends a after the current chain tail.
func (s *WaitFree) linkAfterAccess(tail tailEntry, a *Access, mb *mailbox) {
	prev := tail.access
	s.armAccess(a, tail.parent, mb)
	prev.succReadCompat = prev.typ == Read && a.typ == Read
	prev.succ.Store(a)
	mb.push(prev, flagHasSuccessor)
}

// linkAfterGroup either joins a compatible open run or closes the run and
// chains a after it.
func (s *WaitFree) linkAfterGroup(tail tailEntry, a *Access, mb *mailbox) {
	g := tail.group
	if g.compatible(a) && g.join(a, mb) {
		a.parentAccess = tail.parent
		if tail.parent != nil {
			tail.parent.childGuard.Add(1)
		}
		if a.typ == Commutative {
			a.node.pending.Add(1)
		}
		return
	}
	s.armAccess(a, tail.parent, mb)
	g.close(a, mb)
}

// armAccess performs the per-access bookkeeping common to all link paths:
// parent guard, pending count, and group creation for run-typed accesses.
func (s *WaitFree) armAccess(a *Access, chainParent *Access, mb *mailbox) {
	a.parentAccess = chainParent
	if chainParent != nil {
		chainParent.childGuard.Add(1)
	}
	switch a.typ {
	case Reduction:
		newGroup(Reduction, a, s.workers)
		// Reductions execute eagerly into privatized storage; they never
		// block the task, so they do not contribute to pending.
	case Commutative:
		newGroup(Commutative, a, s.workers)
		a.node.pending.Add(1)
	default:
		if !a.weak {
			a.node.pending.Add(1)
		}
	}
}

// drain delivers queued messages until the mailbox is empty, evaluating
// each resulting transition (the while loop of paper Fig. 2). Each
// delivery drops the pin its push took — after the evaluation, so the
// access stays dereferenceable throughout, even when another worker
// concurrently completes the access's release transition.
func (s *WaitFree) drain(mb *mailbox, worker int) {
	for {
		m, ok := mb.Pop()
		if !ok {
			return
		}
		before, after := m.To.state.Deliver(m.Bits)
		s.evaluate(m.To, before, after, mb, worker)
		s.unpin(m.To.node, worker)
	}
}

// evaluate inspects the flag transition produced by one delivery and
// pushes the follow-up messages it triggers. Each condition below is a
// conjunction of set-once flags, so asm.Transitioned guarantees the
// corresponding action fires exactly once per access regardless of which
// thread's delivery completed it.
func (s *WaitFree) evaluate(a *Access, before, after asm.Flags, mb *mailbox, worker int) {
	if before == after {
		return // redundant delivery
	}

	if a.group != nil {
		// Run member: satisfiability is managed by the group.
		if a.groupHead && asm.Transitioned(before, after, flagReadSat|flagWriteSat) {
			a.group.satArrived(mb)
		}
		if a.typ == Commutative && asm.Transitioned(before, after, flagReadSat|flagWriteSat) {
			a.node.satisfied(s.ready, worker)
		}
		if asm.Transitioned(before, after, flagFinished|flagChildrenDone) {
			a.group.memberReleased(mb)
			if a.parentAccess != nil {
				s.childReleased(a.parentAccess, mb)
			}
		}
		// Storage pin: drop it only once no further message can target
		// this access. A plain reduction member receives nothing after
		// its own finished+children-done — but the run's head is still
		// owed the chain predecessor's satisfiability push, and a
		// commutative member the group's broadcast, so those hold the
		// pin until the full release conjunction (run members release
		// eagerly, so finished can long precede the sat flags).
		memberDone := flagFinished | flagChildrenDone
		if a.groupHead || a.typ == Commutative {
			memberDone = flagsReleased
		}
		if asm.Transitioned(before, after, memberDone) {
			s.unpin(a.node, worker)
		}
		return
	}

	// Execution satisfaction: reads need read satisfiability, exclusive
	// accesses need both. Weak accesses never gate execution.
	if !a.weak {
		if a.typ == Read {
			if asm.Transitioned(before, after, flagReadSat) {
				a.node.satisfied(s.ready, worker)
			}
		} else if asm.Transitioned(before, after, flagReadSat|flagWriteSat) {
			a.node.satisfied(s.ready, worker)
		}
	}

	// Early read forwarding: consecutive reads run concurrently, so read
	// satisfiability flows to a read successor before this access ends.
	// succReadCompat is a plain field written by the registrar just
	// before it delivers flagHasSuccessor, so it must only be read after
	// the transition check observes that flag (the atomic state word
	// orders the publication); keep the Transitioned operand first.
	if asm.Transitioned(before, after, flagReadSat|flagHasSuccessor) && a.succReadCompat {
		mb.push(a.succ.Load(), flagReadSat)
	}

	// Child forwarding: accesses of child tasks inherit the
	// satisfiability of the parent access they nest under.
	if asm.Transitioned(before, after, flagReadSat|flagHasChild) {
		mb.push(a.child.Load(), flagReadSat)
	}
	if asm.Transitioned(before, after, flagWriteSat|flagHasChild) {
		mb.push(a.child.Load(), flagWriteSat)
	}

	// Release: satisfied + finished + children done. Forward full
	// satisfiability to the successor and notify across nesting levels.
	if asm.Transitioned(before, after, flagsReleased) {
		if a.parentAccess != nil {
			s.childReleased(a.parentAccess, mb)
		}
	}
	if asm.Transitioned(before, after, flagsReleased|flagHasSuccessor) {
		mb.push(a.succ.Load(), flagReadSat|flagWriteSat)
	}
	if asm.Transitioned(before, after, flagsReleased) {
		// The access released: drop its storage pin, after every use of
		// a above. A later flagHasSuccessor delivery may still read
		// a.succ, but only from a registrar that holds the tail pin.
		s.unpin(a.node, worker)
	}
}

// childReleased drops one reference from pa's child guard; the final drop
// delivers children-done, enabling pa's own release.
func (s *WaitFree) childReleased(pa *Access, mb *mailbox) {
	if pa.childGuard.Add(-1) == 0 {
		mb.push(pa, flagChildrenDone)
	}
}

var _ System = (*WaitFree)(nil)
