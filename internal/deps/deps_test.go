package deps

import (
	"math/rand"
	"sync"
	"testing"
	"unsafe"
)

// texec is a miniature task executor for exercising a dependency system
// without the full runtime: tasks become ready via the callback and are
// run (body, then Unregister) by the test in a chosen order.
type texec struct {
	sys   System
	mu    sync.Mutex
	ready []*ttask
}

type ttask struct {
	node Node
	name string
	body func(self *ttask)
}

func newExec(kind string, workers int) *texec {
	te := &texec{}
	ready := func(n *Node, worker int) {
		t := n.Payload.(*ttask)
		te.mu.Lock()
		te.ready = append(te.ready, t)
		te.mu.Unlock()
	}
	switch kind {
	case "waitfree":
		te.sys = NewWaitFree(ready, workers)
	case "locked":
		te.sys = NewLocked(ready, workers)
	default:
		panic(kind)
	}
	return te
}

func mkTask(name string, specs []AccessSpec, body func(self *ttask)) *ttask {
	t := &ttask{name: name, body: body}
	t.node.Payload = t
	t.node.Accesses = make([]Access, len(specs))
	for i, s := range specs {
		t.node.Accesses[i].Init(&t.node, s)
	}
	return t
}

func (te *texec) spawn(parent *ttask, t *ttask, worker int) {
	te.sys.Register(&parent.node, &t.node, worker)
}

func (te *texec) pop(r *rand.Rand) *ttask {
	te.mu.Lock()
	defer te.mu.Unlock()
	if len(te.ready) == 0 {
		return nil
	}
	i := 0
	if r != nil {
		i = r.Intn(len(te.ready))
	}
	t := te.ready[i]
	te.ready[i] = te.ready[len(te.ready)-1]
	te.ready = te.ready[:len(te.ready)-1]
	return t
}

// runAll executes ready tasks (in random order if r != nil) until none
// remain, returning the names in execution order.
func (te *texec) runAll(r *rand.Rand, worker int) []string {
	var order []string
	for {
		t := te.pop(r)
		if t == nil {
			return order
		}
		order = append(order, t.name)
		if t.body != nil {
			t.body(t)
		}
		te.sys.Unregister(&t.node, worker)
	}
}

func addrOf(p *float64) unsafe.Pointer { return unsafe.Pointer(p) }

func systems() []string { return []string{"waitfree", "locked"} }

func TestNoDepsImmediatelyReady(t *testing.T) {
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		te.spawn(root, mkTask("a", nil, nil), 0)
		if len(te.ready) != 1 {
			t.Fatalf("%s: task with no accesses not immediately ready", kind)
		}
	}
}

func TestWriteThenReadOrdering(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		w := mkTask("w", []AccessSpec{{Addr: addrOf(&x), Type: Write}}, nil)
		rd := mkTask("r", []AccessSpec{{Addr: addrOf(&x), Type: Read}}, nil)
		te.spawn(root, w, 0)
		te.spawn(root, rd, 0)
		if len(te.ready) != 1 || te.ready[0] != w {
			t.Fatalf("%s: expected only writer ready, have %d", kind, len(te.ready))
		}
		order := te.runAll(nil, 0)
		if len(order) != 2 || order[0] != "w" || order[1] != "r" {
			t.Fatalf("%s: order = %v", kind, order)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		w := mkTask("w", []AccessSpec{{Addr: addrOf(&x), Type: Write}}, nil)
		r1 := mkTask("r1", []AccessSpec{{Addr: addrOf(&x), Type: Read}}, nil)
		r2 := mkTask("r2", []AccessSpec{{Addr: addrOf(&x), Type: Read}}, nil)
		te.spawn(root, w, 0)
		te.spawn(root, r1, 0)
		te.spawn(root, r2, 0)
		// Run the writer only.
		wt := te.pop(nil)
		if wt != w {
			t.Fatalf("%s: first ready is %s", kind, wt.name)
		}
		te.sys.Unregister(&wt.node, 0)
		// Both readers must now be ready simultaneously.
		if len(te.ready) != 2 {
			t.Fatalf("%s: want both readers ready, have %d", kind, len(te.ready))
		}
	}
}

func TestReadersBlockWriter(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		r1 := mkTask("r1", []AccessSpec{{Addr: addrOf(&x), Type: Read}}, nil)
		r2 := mkTask("r2", []AccessSpec{{Addr: addrOf(&x), Type: Read}}, nil)
		w := mkTask("w", []AccessSpec{{Addr: addrOf(&x), Type: Write}}, nil)
		te.spawn(root, r1, 0)
		te.spawn(root, r2, 0)
		te.spawn(root, w, 0)
		if len(te.ready) != 2 {
			t.Fatalf("%s: want 2 readers ready, have %d", kind, len(te.ready))
		}
		// Finish r1 only: writer must stay blocked.
		te.sys.Unregister(&r1.node, 0)
		te.mu.Lock()
		n := len(te.ready)
		te.mu.Unlock()
		if n != 2 { // r1 popped? no — we did not pop; r1,r2 still queued
			t.Fatalf("%s: writer became ready with a reader outstanding", kind)
		}
		te.sys.Unregister(&r2.node, 0)
		te.mu.Lock()
		n = len(te.ready)
		te.mu.Unlock()
		if n != 3 {
			t.Fatalf("%s: writer not released after both readers, ready=%d", kind, n)
		}
	}
}

func TestWriterChainSequential(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		names := []string{"w0", "w1", "w2", "w3", "w4"}
		for _, nm := range names {
			te.spawn(root, mkTask(nm, []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}, nil), 0)
		}
		order := te.runAll(rand.New(rand.NewSource(1)), 0)
		for i, nm := range names {
			if order[i] != nm {
				t.Fatalf("%s: order %v violates chain", kind, order)
			}
		}
	}
}

func TestNestedChildBlocksParentSuccessor(t *testing.T) {
	// Parent P(inout A) spawns child C(inout A) and finishes before C.
	// Sibling S(inout A) after P must wait for C: the cross-nesting
	// dependency of paper Fig. 1.
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}
		c := mkTask("c", spec, nil)
		p := mkTask("p", spec, func(self *ttask) {
			te.spawn(self, c, 0)
		})
		s := mkTask("s", spec, nil)
		te.spawn(root, p, 0)
		te.spawn(root, s, 0)

		pt := te.pop(nil)
		if pt != p {
			t.Fatalf("%s: expected parent first", kind)
		}
		p.body(p)
		te.sys.Unregister(&p.node, 0) // parent finishes; child still alive
		te.mu.Lock()
		readyNow := make([]*ttask, len(te.ready))
		copy(readyNow, te.ready)
		te.mu.Unlock()
		for _, rt := range readyNow {
			if rt == s {
				t.Fatalf("%s: sibling ready before child finished", kind)
			}
		}
		// Run the child; sibling must become ready.
		order := te.runAll(nil, 0)
		if len(order) != 2 || order[0] != "c" || order[1] != "s" {
			t.Fatalf("%s: order after parent = %v", kind, order)
		}
	}
}

func TestNestedGrandchildren(t *testing.T) {
	// Three levels: successor of the top task waits for the deepest one.
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}
		var order []string
		gc := mkTask("gc", spec, func(*ttask) { order = append(order, "gc") })
		c := mkTask("c", spec, func(self *ttask) {
			order = append(order, "c")
			te.spawn(self, gc, 0)
		})
		p := mkTask("p", spec, func(self *ttask) {
			order = append(order, "p")
			te.spawn(self, c, 0)
		})
		s := mkTask("s", spec, func(*ttask) { order = append(order, "s") })
		te.spawn(root, p, 0)
		te.spawn(root, s, 0)
		te.runAll(nil, 0)
		want := []string{"p", "c", "gc", "s"}
		if len(order) != 4 {
			t.Fatalf("%s: ran %v", kind, order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("%s: order %v, want %v", kind, order, want)
			}
		}
	}
}

func TestReductionCombines(t *testing.T) {
	for _, kind := range systems() {
		target := make([]float64, 4)
		target[0] = 10 // initial value participates in the sum
		te := newExec(kind, 4)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&target[0]), Len: 4, Type: Reduction, Op: OpSum}}
		for i := 0; i < 8; i++ {
			w := i % 3 // emulate different workers
			tk := mkTask("red", spec, func(self *ttask) {
				buf := te.sys.ReductionBuffer(&self.node, addrOf(&target[0]), w)
				for j := range buf {
					buf[j] += 1
				}
			})
			te.spawn(root, tk, 0)
		}
		te.runAll(rand.New(rand.NewSource(7)), 0)
		te.sys.CloseDomain(&root.node, 0)
		if target[0] != 18 { // 10 + 8
			t.Fatalf("%s: target[0] = %v, want 18", kind, target[0])
		}
		for j := 1; j < 4; j++ {
			if target[j] != 8 {
				t.Fatalf("%s: target[%d] = %v, want 8", kind, j, target[j])
			}
		}
	}
}

func TestReductionThenReaderSeesCombined(t *testing.T) {
	for _, kind := range systems() {
		target := []float64{0}
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		rspec := []AccessSpec{{Addr: addrOf(&target[0]), Len: 1, Type: Reduction, Op: OpSum}}
		var seen float64 = -1
		for i := 0; i < 4; i++ {
			tk := mkTask("red", rspec, func(self *ttask) {
				te.sys.ReductionBuffer(&self.node, addrOf(&target[0]), 0)[0] += 2
			})
			te.spawn(root, tk, 0)
		}
		reader := mkTask("reader", []AccessSpec{{Addr: addrOf(&target[0]), Type: Read}},
			func(*ttask) { seen = target[0] })
		te.spawn(root, reader, 0)
		te.runAll(rand.New(rand.NewSource(3)), 0)
		if seen != 8 {
			t.Fatalf("%s: reader saw %v, want 8 (combined)", kind, seen)
		}
	}
}

func TestReductionMax(t *testing.T) {
	for _, kind := range systems() {
		target := []float64{-100}
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&target[0]), Len: 1, Type: Reduction, Op: OpMax}}
		vals := []float64{3, 7, -2, 5}
		for _, v := range vals {
			v := v
			tk := mkTask("red", spec, func(self *ttask) {
				buf := te.sys.ReductionBuffer(&self.node, addrOf(&target[0]), 1)
				if v > buf[0] {
					buf[0] = v
				}
			})
			te.spawn(root, tk, 0)
		}
		te.runAll(nil, 0)
		te.sys.CloseDomain(&root.node, 0)
		if target[0] != 7 {
			t.Fatalf("%s: max = %v, want 7", kind, target[0])
		}
	}
}

func TestCommutativeMutualExclusionAndCompletion(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&x), Type: Commutative}}
		for i := 0; i < 5; i++ {
			te.spawn(root, mkTask("c", spec, nil), 0)
		}
		after := mkTask("after", []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}, nil)
		te.spawn(root, after, 0)
		// All commutative tasks become ready together; tokens serialize.
		te.mu.Lock()
		n := len(te.ready)
		te.mu.Unlock()
		if n != 5 {
			t.Fatalf("%s: want 5 commutative ready, have %d", kind, n)
		}
		// Acquire a token for the first; the second must fail to acquire.
		t1 := te.pop(nil)
		t2 := te.pop(nil)
		if !t1.node.TryAcquireCommutative() {
			t.Fatalf("%s: first token acquisition failed", kind)
		}
		if t2.node.TryAcquireCommutative() {
			t.Fatalf("%s: token acquired twice", kind)
		}
		t1.node.ReleaseCommutative()
		if !t2.node.TryAcquireCommutative() {
			t.Fatalf("%s: token not released", kind)
		}
		t2.node.ReleaseCommutative()
		te.sys.Unregister(&t1.node, 0)
		te.sys.Unregister(&t2.node, 0)
		order := te.runAll(nil, 0)
		if order[len(order)-1] != "after" {
			t.Fatalf("%s: successor ran before commutative run drained: %v", kind, order)
		}
	}
}

func TestDuplicateAccessAlias(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		dup := mkTask("dup", []AccessSpec{
			{Addr: addrOf(&x), Type: ReadWrite},
			{Addr: addrOf(&x), Type: Read},
		}, nil)
		te.spawn(root, dup, 0)
		succ := mkTask("succ", []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}, nil)
		te.spawn(root, succ, 0)
		order := te.runAll(nil, 0)
		if len(order) != 2 || order[0] != "dup" || order[1] != "succ" {
			t.Fatalf("%s: order = %v", kind, order)
		}
	}
}

func TestMultiAccessTask(t *testing.T) {
	// A task reading two addresses waits for both writers.
	var a, b float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		wa := mkTask("wa", []AccessSpec{{Addr: addrOf(&a), Type: Write}}, nil)
		wb := mkTask("wb", []AccessSpec{{Addr: addrOf(&b), Type: Write}}, nil)
		r := mkTask("r", []AccessSpec{
			{Addr: addrOf(&a), Type: Read},
			{Addr: addrOf(&b), Type: Read},
		}, nil)
		te.spawn(root, wa, 0)
		te.spawn(root, wb, 0)
		te.spawn(root, r, 0)
		te.sys.Unregister(&te.pop(nil).node, 0)
		te.mu.Lock()
		n := len(te.ready)
		te.mu.Unlock()
		if n != 1 {
			t.Fatalf("%s: reader ready with one writer outstanding", kind)
		}
		order := te.runAll(nil, 0)
		if order[len(order)-1] != "r" {
			t.Fatalf("%s: order = %v", kind, order)
		}
	}
}

// refModel computes, for a straight-line program of read/write tasks, the
// set of (reader -> last preceding writer) constraints.
type progTask struct {
	id    int
	specs []AccessSpec
}

// TestQuickRandomGraphsRespectSerialSemantics generates random programs
// over a few addresses and executes them in random ready order under both
// systems; every read must observe the value left by its last preceding
// writer in program order, and writers must be totally ordered per
// address.
func TestQuickRandomGraphsRespectSerialSemantics(t *testing.T) {
	cells := make([]float64, 4)
	for _, kind := range systems() {
		for seed := int64(0); seed < 30; seed++ {
			r := rand.New(rand.NewSource(seed))
			nTasks := 5 + r.Intn(20)
			prog := make([]progTask, nTasks)
			lastWriter := map[unsafe.Pointer]int{}
			expect := map[int]map[unsafe.Pointer]int{} // reader id -> addr -> writer id
			for i := range prog {
				na := 1 + r.Intn(2)
				specs := make([]AccessSpec, 0, na)
				used := map[int]bool{}
				exp := map[unsafe.Pointer]int{}
				for j := 0; j < na; j++ {
					c := r.Intn(len(cells))
					if used[c] {
						continue
					}
					used[c] = true
					addr := addrOf(&cells[c])
					if r.Intn(2) == 0 {
						specs = append(specs, AccessSpec{Addr: addr, Type: Read})
						exp[addr] = lastWriter[addr]
					} else {
						specs = append(specs, AccessSpec{Addr: addr, Type: ReadWrite})
						exp[addr] = lastWriter[addr] // inout also reads
						lastWriter[addr] = i
					}
				}
				prog[i] = progTask{id: i, specs: specs}
				expect[i] = exp
			}

			for i := range cells {
				cells[i] = 0
			}
			lastWriter = map[unsafe.Pointer]int{}

			te := newExec(kind, 2)
			root := mkTask("root", nil, nil)
			violations := 0
			for _, pt := range prog {
				pt := pt
				tk := mkTask("t", pt.specs, func(self *ttask) {
					for _, sp := range pt.specs {
						cell := (*float64)(sp.Addr)
						want := float64(expect[pt.id][sp.Addr])
						if *cell != want {
							violations++
						}
						if sp.Type == ReadWrite {
							*cell = float64(pt.id)
						}
					}
				})
				te.spawn(root, tk, 0)
			}
			te.runAll(r, 0)
			if violations != 0 {
				t.Fatalf("%s seed %d: %d serial-semantics violations", kind, seed, violations)
			}
		}
	}
}

// TestParallelStress drives both systems from several goroutines at once:
// a creator registering a writer chain per cell while workers execute
// ready tasks, verifying the final cell values.
func TestParallelStress(t *testing.T) {
	const workers = 4
	const chainLen = 60
	const nCells = 8
	for _, kind := range systems() {
		cells := make([]float64, nCells)
		te := newExec(kind, workers)
		root := mkTask("root", nil, nil)
		var wg sync.WaitGroup
		var stop sync.WaitGroup
		stop.Add(1)
		total := chainLen * nCells
		done := make(chan struct{})
		executed := 0
		var execMu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for {
					tk := te.pop(nil)
					if tk == nil {
						select {
						case <-done:
							// Drain any stragglers before exiting.
							if tk := te.pop(nil); tk == nil {
								return
							}
							continue
						default:
							continue
						}
					}
					if tk.body != nil {
						tk.body(tk)
					}
					te.sys.Unregister(&tk.node, id)
					execMu.Lock()
					executed++
					if executed == total {
						close(done)
					}
					execMu.Unlock()
				}
			}(w)
		}
		// Creator: register chains task by task (single-writer domain).
		for step := 0; step < chainLen; step++ {
			for c := 0; c < nCells; c++ {
				c := c
				tk := mkTask("w", []AccessSpec{{Addr: addrOf(&cells[c]), Type: ReadWrite}},
					func(*ttask) { cells[c]++ })
				te.spawn(root, tk, workers)
			}
		}
		wg.Wait()
		for c := range cells {
			if cells[c] != chainLen {
				t.Fatalf("%s: cell %d = %v, want %d (lost or duplicated updates)",
					kind, c, cells[c], chainLen)
			}
		}
	}
}
