package deps

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Locked is the fine-grained-locking dependency system: the design the
// paper's wait-free implementation replaced, kept as the "w/o wait-free
// dependencies" variant of the evaluation (§6.2). Every access chain
// (one per address per domain) is protected by its own mutex; each
// registration and each release acquires the chain lock and rescans the
// chain to propagate satisfiability. Under fine-grained tasks the chain
// locks of hot addresses serialize the runtime, which is exactly the
// bottleneck Figure 4-6's "w/o wait-free dependencies" series exhibits.
type Locked struct {
	ready   ReadyFn
	workers int
}

// NewLocked returns the locking dependency system.
func NewLocked(ready ReadyFn, workers int) *Locked {
	return &Locked{ready: ready, workers: workers}
}

// Name implements System.
func (s *Locked) Name() string { return "fine-grained-locking" }

// lchain is one per-(domain,address) dependency chain.
type lchain struct {
	mu      sync.Mutex
	entries []*lentry
	head    int // index of the first non-released entry
	closed  bool
	// parentEntry/parentChain locate the parent-task access this chain
	// nests under, fixed at chain creation.
	parentEntry *lentry
	parentChain *lchain
}

// lentry is one access's position in a chain. It deliberately holds no
// pointer back to the Access: chains are built from heap-allocated
// lentries precisely so that nothing in this system dereferences a
// task's (possibly shell-inlined, recycled) access storage after
// Register returns — which is why the locking baseline needs none of
// the wait-free system's pin accounting. The node pointer is only
// dereferenced through satisfy, which the satisfied flag short-circuits
// for every entry of a task that has started executing.
type lentry struct {
	node      *Node
	typ       AccessType
	finished  bool
	satisfied bool
	// pendingChildren counts live child accesses plus one guard held
	// until the owning task finishes. Zero means fully released.
	pendingChildren atomic.Int64
	// parentEntry/parentChain locate the access one nesting level up.
	parentEntry *lentry
	parentChain *lchain
	run         *lrun
	chain       *lchain
}

func (e *lentry) done() bool { return e.pendingChildren.Load() == 0 }

// lrun is a reduction or commutative run in the locking baseline.
type lrun struct {
	mu       sync.Mutex
	op       ReductionOp
	addr     unsafe.Pointer
	length   int
	slots    [][]float64
	token    atomic.Int32
	combined bool
}

func (r *lrun) slot(worker int) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.slots[worker]
	if s == nil {
		s = make([]float64, r.length)
		switch r.op {
		case OpMax:
			for i := range s {
				s[i] = math.Inf(-1)
			}
		case OpMin:
			for i := range s {
				s[i] = math.Inf(1)
			}
		}
		r.slots[worker] = s
	}
	return s
}

func (r *lrun) combine() {
	if r.combined {
		return
	}
	r.combined = true
	dst := unsafe.Slice((*float64)(r.addr), r.length)
	for _, s := range r.slots {
		if s == nil {
			continue
		}
		switch r.op {
		case OpSum:
			for i := range dst {
				dst[i] += s[i]
			}
		case OpMax:
			for i := range dst {
				dst[i] = math.Max(dst[i], s[i])
			}
		case OpMin:
			for i := range dst {
				dst[i] = math.Min(dst[i], s[i])
			}
		}
	}
}

// ldefer accumulates cross-chain work discovered during a rescan so it
// can be applied after the chain lock is dropped (avoiding lock nesting,
// the deadlock hazard the paper attributes to this design).
type ldefer struct {
	chains []*lchain
}

// Register implements System.
func (s *Locked) Register(parent, n *Node, worker int) {
	s.register(parent, nil, n, worker)
}

// RegisterRoot implements System: Register with the chain map selected
// per access by the address's shard. The caller's lease keeps each
// shard's ldomain single-writer; root chains have no parent entry.
func (s *Locked) RegisterRoot(d *RootDomain, n *Node, worker int) {
	s.register(nil, d, n, worker)
}

// register is the shared registration loop: each access links into
// parent's domain (nested tasks) or, when d is non-nil, into the shard
// of its own address (root tasks).
func (s *Locked) register(parent *Node, d *RootDomain, n *Node, worker int) {
	n.pending.Store(1)
	var post ldefer
	for i := range n.Accesses {
		a := &n.Accesses[i]
		if hasEarlierAccess(n, i) {
			a.alias = true
			continue
		}
		owner := parent
		if d != nil {
			owner = d.shardNode(a.addr)
		}
		s.linkInto(owner, a, &post, worker)
	}
	s.apply(&post, worker)
	n.satisfied(s.ready, worker)
}

// linkInto appends one non-alias access to its chain in owner's domain
// map. The caller must be the single writer of owner's ldomain.
func (s *Locked) linkInto(owner *Node, a *Access, post *ldefer, worker int) {
	n := a.node
	if owner.ldomain == nil {
		owner.ldomain = make(map[unsafe.Pointer]*lchain, InlineAccessCap)
	}
	ch, ok := owner.ldomain[a.addr]
	if !ok {
		ch = &lchain{}
		owner.ldomain[a.addr] = ch
		if pa := findOwnAccess(owner, a.addr); pa != nil && pa.lentry != nil {
			ch.parentEntry = pa.lentry
			ch.parentChain = pa.lentry.chain
		}
	}
	parentEntry, parentChain := ch.parentEntry, ch.parentChain

	ch.mu.Lock()
	e := &lentry{node: n, typ: a.typ, chain: ch,
		parentEntry: parentEntry, parentChain: parentChain}
	e.pendingChildren.Store(1)
	a.lentry = e
	if parentEntry != nil {
		parentEntry.pendingChildren.Add(1)
	}
	switch a.typ {
	case Reduction:
		e.run = s.runFor(ch, a)
		e.satisfied = true // eager, privatized
	case Commutative:
		e.run = s.runFor(ch, a)
		a.token = &e.run.token
		n.pending.Add(1)
	default:
		if a.weak {
			e.satisfied = true // weak: never gates execution
		} else {
			n.pending.Add(1)
		}
	}
	if last := len(ch.entries) - 1; last >= ch.head && e.run == nil {
		// Record the chain predecessor for the core's priority-
		// inheritance walk (group entries are excluded, mirroring the
		// wait-free system's plain-tail-only recording).
		if p := ch.entries[last]; p.run == nil {
			n.recordPred(p.node)
		}
	}
	ch.entries = append(ch.entries, e)
	s.rescan(ch, post, worker)
	ch.mu.Unlock()
}

// runFor joins the chain's trailing open run if compatible, else starts a
// new one. Caller holds ch.mu.
func (s *Locked) runFor(ch *lchain, a *Access) *lrun {
	if len(ch.entries) > ch.head {
		last := ch.entries[len(ch.entries)-1]
		if last.run != nil && last.typ == a.typ &&
			(a.typ != Reduction || last.run.op == a.op) {
			return last.run
		}
	}
	return &lrun{op: a.op, addr: a.addr, length: a.length,
		slots: make([][]float64, s.workers+1)}
}

// Unregister implements System.
func (s *Locked) Unregister(n *Node, worker int) {
	var post ldefer
	s.closeChains(n, &post, worker)
	for i := range n.Accesses {
		a := &n.Accesses[i]
		e := a.lentry
		if e == nil || a.alias {
			continue
		}
		ch := e.chain
		ch.mu.Lock()
		e.finished = true
		e.pendingChildren.Add(-1) // release the owner guard
		s.rescan(ch, &post, worker)
		ch.mu.Unlock()
	}
	s.apply(&post, worker)
}

// CloseDomain implements System.
func (s *Locked) CloseDomain(n *Node, worker int) {
	var post ldefer
	s.closeChains(n, &post, worker)
	s.apply(&post, worker)
}

func (s *Locked) closeChains(n *Node, post *ldefer, worker int) {
	for _, ch := range n.ldomain {
		ch.mu.Lock()
		ch.closed = true
		s.rescan(ch, post, worker)
		ch.mu.Unlock()
	}
}

// ReductionBuffer implements System.
func (s *Locked) ReductionBuffer(n *Node, addr unsafe.Pointer, worker int) []float64 {
	for i := range n.Accesses {
		a := &n.Accesses[i]
		if a.addr == addr && a.typ == Reduction && a.lentry != nil && a.lentry.run != nil {
			return a.lentry.run.slot(worker)
		}
	}
	panic(fmt.Sprintf("deps: no reduction access on %p", addr))
}

// apply performs the cross-chain notifications collected by rescans,
// cascading until quiescent. Chain locks are taken one at a time.
func (s *Locked) apply(post *ldefer, worker int) {
	for len(post.chains) > 0 {
		ch := post.chains[len(post.chains)-1]
		post.chains = post.chains[:len(post.chains)-1]
		ch.mu.Lock()
		s.rescan(ch, post, worker)
		ch.mu.Unlock()
	}
}

// rescan pops fully released entries off the front of the chain and
// satisfies the new front run. Caller holds ch.mu. Cross-chain effects
// (parent notifications) are deferred into post.
func (s *Locked) rescan(ch *lchain, post *ldefer, worker int) {
	for ch.head < len(ch.entries) {
		e := ch.entries[ch.head]
		if e.run != nil {
			// Group run: released only as a whole, when every member is
			// done and the run can no longer grow.
			k := ch.head
			all := true
			for k < len(ch.entries) && ch.entries[k].run == e.run {
				if !ch.entries[k].done() {
					all = false
				}
				k++
			}
			runClosed := k < len(ch.entries) || ch.closed
			if !all || !runClosed {
				break
			}
			if e.typ == Reduction {
				e.run.combine()
			}
			for i := ch.head; i < k; i++ {
				s.release(ch.entries[i], post)
				ch.entries[i] = nil
			}
			ch.head = k
			continue
		}
		if !e.done() {
			break
		}
		s.release(e, post)
		ch.entries[ch.head] = nil
		ch.head++
	}

	// Compact long-lived chains so released prefixes do not accumulate.
	if ch.head > 64 && ch.head*2 > len(ch.entries) {
		n := copy(ch.entries, ch.entries[ch.head:])
		clear(ch.entries[n:])
		ch.entries = ch.entries[:n]
		ch.head = 0
	}

	if ch.head >= len(ch.entries) {
		return
	}
	front := ch.entries[ch.head]
	switch front.typ {
	case Read:
		for i := ch.head; i < len(ch.entries) && ch.entries[i].typ == Read; i++ {
			s.satisfy(ch.entries[i], worker)
		}
	case Write, ReadWrite:
		s.satisfy(front, worker)
	case Reduction:
		// Members were satisfied eagerly at registration.
	case Commutative:
		for i := ch.head; i < len(ch.entries) && ch.entries[i].run == front.run; i++ {
			s.satisfy(ch.entries[i], worker)
		}
	}
}

func (s *Locked) satisfy(e *lentry, worker int) {
	if e.satisfied {
		return
	}
	e.satisfied = true
	e.node.satisfied(s.ready, worker)
}

// release notifies the nesting level above that one child access is gone.
func (s *Locked) release(e *lentry, post *ldefer) {
	if e.parentEntry == nil {
		return
	}
	if e.parentEntry.pendingChildren.Add(-1) == 0 && e.parentChain != nil {
		post.chains = append(post.chains, e.parentChain)
	}
}

var _ System = (*Locked)(nil)
