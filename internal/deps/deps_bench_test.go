package deps

import (
	"testing"
	"unsafe"
)

// benchRegisterUnregister measures the full dependency lifecycle of one
// task in a writer chain: registration, satisfiability propagation on
// the predecessor's release, and unregistration. This is the §2 hot
// path; the wait-free system's advantage over the locking baseline here
// is the mechanism behind the "w/o wait-free dependencies" gap.
func benchRegisterUnregister(b *testing.B, kind string) {
	var cell float64
	te := newExec(kind, 2)
	root := mkTask("root", nil, nil)
	spec := []AccessSpec{{Addr: unsafe.Pointer(&cell), Type: ReadWrite}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := mkTask("w", spec, nil)
		te.spawn(root, tk, 0)
		// The chain head is always ready immediately (predecessor
		// released); run and release it.
		got := te.pop(nil)
		te.sys.Unregister(&got.node, 0)
	}
}

func BenchmarkWaitFreeChainLifecycle(b *testing.B) { benchRegisterUnregister(b, "waitfree") }
func BenchmarkLockedChainLifecycle(b *testing.B)   { benchRegisterUnregister(b, "locked") }

// benchIndependent measures tasks with disjoint accesses: pure
// registration overhead, no chain interaction.
func benchIndependent(b *testing.B, kind string) {
	cells := make([]float64, 64)
	te := newExec(kind, 2)
	root := mkTask("root", nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &cells[i%len(cells)]
		tk := mkTask("w", []AccessSpec{{Addr: unsafe.Pointer(c), Type: ReadWrite}}, nil)
		te.spawn(root, tk, 0)
		got := te.pop(nil)
		te.sys.Unregister(&got.node, 0)
	}
}

func BenchmarkWaitFreeIndependentTasks(b *testing.B) { benchIndependent(b, "waitfree") }
func BenchmarkLockedIndependentTasks(b *testing.B)   { benchIndependent(b, "locked") }

// benchReduction measures reduction-run membership: join, slot, release.
func benchReduction(b *testing.B, kind string) {
	target := []float64{0}
	te := newExec(kind, 2)
	root := mkTask("root", nil, nil)
	spec := []AccessSpec{{Addr: unsafe.Pointer(&target[0]), Len: 1, Type: Reduction, Op: OpSum}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := mkTask("r", spec, nil)
		te.spawn(root, tk, 0)
		got := te.pop(nil)
		te.sys.ReductionBuffer(&got.node, unsafe.Pointer(&target[0]), 0)[0]++
		te.sys.Unregister(&got.node, 0)
	}
}

func BenchmarkWaitFreeReductionMember(b *testing.B) { benchReduction(b, "waitfree") }
func BenchmarkLockedReductionMember(b *testing.B)   { benchReduction(b, "locked") }
