package deps

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// group is a maximal run of consecutive reduction or commutative accesses
// to one address within one domain. The chain treats the whole run as a
// single segment: the run's head receives satisfiability from the chain
// predecessor, and the run releases downstream (to `after`) only when
// every member has released and the run is closed.
//
// Group state transitions are the one place this dependency system uses a
// mutex. Runs are coarse (one per reduction clause per address), so the
// mutex is far off the per-task critical path the paper optimizes; the
// chain propagation itself stays wait-free.
type group struct {
	mu sync.Mutex

	kind   AccessType // Reduction or Commutative
	op     ReductionOp
	addr   unsafe.Pointer
	length int

	// slots holds the per-worker privatized partial results (reductions).
	slots [][]float64

	// pending counts registered members that have not yet released.
	pending int
	// closed: no further member can join (a non-compatible access
	// registered after the run, or the domain closed).
	closed bool
	// satisfied: the chain predecessor released to the run's head.
	satisfied bool
	// released: the run has combined (reductions) and forwarded
	// satisfiability downstream.
	released bool

	// after is the access immediately following the run, installed at
	// close time; it receives full satisfiability when the run releases.
	after *Access

	// members collects commutative accesses so satisfiability can be
	// broadcast when the predecessor releases.
	members []*Access

	// token serializes commutative execution.
	token atomic.Int32
}

func newGroup(kind AccessType, a *Access, workers int) *group {
	g := &group{
		kind:   kind,
		op:     a.op,
		addr:   a.addr,
		length: a.length,
		slots:  make([][]float64, workers+1),
	}
	a.group = g
	a.groupHead = true
	g.pending = 1
	if kind == Commutative {
		g.members = append(g.members, a)
		a.token = &g.token
	}
	return g
}

// join adds a compatible access to an open run. Caller: registration
// thread. Returns false if the run is closed (the caller then starts a
// new run chained after this one).
func (g *group) join(a *Access, mb *mailbox) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.pending++
	a.group = g
	if g.kind == Commutative {
		g.members = append(g.members, a)
		a.token = &g.token
		if g.satisfied {
			mb.push(a, flagReadSat|flagWriteSat)
		}
	}
	return true
}

// compatible reports whether access a may join this run.
func (g *group) compatible(a *Access) bool {
	if a.typ != g.kind || a.addr != g.addr {
		return false
	}
	return g.kind != Reduction || a.op == g.op
}

// satArrived records that the chain predecessor released to the run head.
// Commutative members become executable; reductions only unblock their
// eventual combine (members run eagerly).
func (g *group) satArrived(mb *mailbox) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.satisfied = true
	if g.kind == Commutative {
		for _, m := range g.members {
			if !m.groupHead {
				mb.push(m, flagReadSat|flagWriteSat)
			}
		}
	}
	g.tryRelease(mb)
}

// memberReleased records that one member finished (including its nested
// accesses) and releases the run when it was the last.
func (g *group) memberReleased(mb *mailbox) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending--
	g.tryRelease(mb)
}

// close seals the run. If next is non-nil it becomes the run's successor
// and receives satisfiability when the run releases (immediately, if the
// run has already released).
func (g *group) close(next *Access, mb *mailbox) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	if next != nil {
		if g.released {
			mb.push(next, flagReadSat|flagWriteSat)
			return
		}
		g.after = next
	}
	g.tryRelease(mb)
}

// tryRelease combines and forwards downstream once the run is complete.
// Caller must hold g.mu.
func (g *group) tryRelease(mb *mailbox) {
	if g.released || !g.closed || !g.satisfied || g.pending != 0 {
		return
	}
	g.released = true
	if g.kind == Reduction {
		g.combine()
	}
	if g.after != nil {
		mb.push(g.after, flagReadSat|flagWriteSat)
	}
}

// slot returns worker's privatized buffer, allocating it on first use
// initialized to the operation's identity element.
func (g *group) slot(worker int) []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.slots[worker]
	if s == nil {
		s = make([]float64, g.length)
		switch g.op {
		case OpMax:
			for i := range s {
				s[i] = math.Inf(-1)
			}
		case OpMin:
			for i := range s {
				s[i] = math.Inf(1)
			}
		}
		g.slots[worker] = s
	}
	return s
}

// combine folds every privatized buffer into the target memory. Safe to
// call with g.mu held: by release time no member can be writing slots.
func (g *group) combine() {
	dst := unsafe.Slice((*float64)(g.addr), g.length)
	for _, s := range g.slots {
		if s == nil {
			continue
		}
		switch g.op {
		case OpSum:
			for i := range dst {
				dst[i] += s[i]
			}
		case OpMax:
			for i := range dst {
				dst[i] = math.Max(dst[i], s[i])
			}
		case OpMin:
			for i := range dst {
				dst[i] = math.Min(dst[i], s[i])
			}
		}
	}
}
