//go:build !stress

package deps

// stressRounds is the differential-stress iteration count of a regular
// test run (-short quarters it). The nightly CI job builds with
// -tags=stress for the long campaign; see stress_mode_on_test.go.
const stressRounds = 200
