package deps

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/asm"
)

// Atomic State Machine flags of one access (paper §2.2). Flags are
// set-once: the only operation on an access's state is the delivery of a
// message that merges new flags, so the state machine is acyclic and
// every propagation action fires exactly once (asm.Transitioned).
const (
	// flagReadSat: every predecessor that writes the address has
	// released; read-type accesses may execute.
	flagReadSat asm.Flags = 1 << iota
	// flagWriteSat: every predecessor has fully released; exclusive
	// accesses may execute.
	flagWriteSat
	// flagFinished: the owning task's body has completed.
	flagFinished
	// flagChildrenDone: every child access registered under this access
	// has released (trivially true for accesses without children).
	flagChildrenDone
	// flagHasSuccessor: the successor pointer has been installed.
	flagHasSuccessor
	// flagHasChild: the child pointer has been installed.
	flagHasChild
)

// flagsReleased is the conjunction after which an access no longer
// constrains anything upstream: satisfied, finished, and its nested
// accesses are done. Releasing forwards full satisfiability to the
// successor and notifies the parent access across nesting levels.
const flagsReleased = flagReadSat | flagWriteSat | flagFinished | flagChildrenDone

// Access is one data access of a task (paper Listing 1): the address,
// the access type, the ASM flag word, and the successor/child links that
// form the binary trees of Figure 1.
type Access struct {
	state asm.State

	addr   unsafe.Pointer
	length int
	typ    AccessType
	op     ReductionOp

	node *Node

	// succ is the next access to the same address at the same nesting
	// level; child is the first access to the same address one nesting
	// level below. Both are written before the corresponding Has* flag
	// is delivered, which orders the publication.
	succ  atomic.Pointer[Access]
	child atomic.Pointer[Access]

	// parentAccess is the access one nesting level above that this
	// access was registered under, if any. Releasing decrements its
	// childGuard.
	parentAccess *Access

	// childGuard counts live child accesses plus one guard held by the
	// owning task until it finishes; the decrement to zero delivers
	// flagChildrenDone exactly once.
	childGuard atomic.Int64

	// group is the reduction or commutative run this access belongs to,
	// nil for ordinary accesses. groupHead marks the first member, which
	// receives satisfiability from the chain predecessor.
	group     *group
	groupHead bool

	// succReadCompat records, at link time, that this access and its
	// successor are both reads, so read satisfiability can be forwarded
	// early (before this access finishes).
	succReadCompat bool

	// alias marks a duplicate access (same task, same address); aliases
	// do not participate in the chain.
	alias bool

	// weak marks an access that anchors child chains without gating the
	// task's own execution (OmpSs-2 weak in/out/inout).
	weak bool

	// token, when non-nil, is the commutative execution token shared by
	// the access's group (also used by the locking baseline).
	token *atomic.Int32

	// lentry is the locking baseline's chain entry for this access.
	lentry *lentry
}

// Init fills the immutable part of the access from its spec.
func (a *Access) Init(n *Node, s AccessSpec) {
	a.state = asm.State{}
	a.addr = s.Addr
	a.length = s.Len
	a.typ = s.Type
	a.op = s.Op
	a.node = n
	a.succ.Store(nil)
	a.child.Store(nil)
	a.parentAccess = nil
	a.childGuard.Store(1)
	a.group = nil
	a.groupHead = false
	a.succReadCompat = false
	a.alias = false
	a.weak = s.Weak
	a.token = nil
	a.lentry = nil
}

// clearRefs drops the pointer-bearing fields of a quiesced access so a
// pooled task shell does not retain dead dependency-graph structures
// (reduction groups and their privatized buffers, chain links, locking
// chains) while it sits in the allocator's free list. Only called from
// Node.Reset, after the pin count guarantees no concurrent reader.
func (a *Access) clearRefs() {
	a.addr = nil
	a.node = nil
	a.succ.Store(nil)
	a.child.Store(nil)
	a.parentAccess = nil
	a.group = nil
	a.token = nil
	a.lentry = nil
}

// Addr returns the dependency address of the access.
func (a *Access) Addr() unsafe.Pointer { return a.addr }

// Type returns the access type.
func (a *Access) Type() AccessType { return a.typ }
