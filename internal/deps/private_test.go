package deps

import (
	"sync"
	"testing"
)

func TestPrivateCombineFoldsEverySlot(t *testing.T) {
	p := NewPrivate[int64](4, 0)
	*p.Slot(0) += 5
	*p.Slot(2) += 7
	sum := p.Combine(0, func(a, b int64) int64 { return a + b })
	if sum != 12 {
		t.Fatalf("Combine = %d, want 12", sum)
	}
}

func TestPrivateIdentityInitialization(t *testing.T) {
	p := NewPrivate(3, 1.0)
	*p.Slot(1) *= 8
	prod := p.Combine(1.0, func(a, b float64) float64 { return a * b })
	if prod != 8 {
		t.Fatalf("Combine = %v, want 8 (identity slots must not distort)", prod)
	}
}

func TestPrivateMinimumOneWorker(t *testing.T) {
	p := NewPrivate[int](0, 0)
	*p.Slot(0) = 3
	if got := p.Combine(0, func(a, b int) int { return a + b }); got != 3 {
		t.Fatalf("Combine = %d, want 3", got)
	}
}

// TestPrivateConcurrentWorkers exercises the single-writer-per-slot
// contract under -race: disjoint workers accumulate concurrently.
func TestPrivateConcurrentWorkers(t *testing.T) {
	const workers, perWorker = 8, 10000
	p := NewPrivate[int64](workers, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.Slot(w)
			for i := 0; i < perWorker; i++ {
				*s++
			}
		}(w)
	}
	wg.Wait()
	if got := p.Combine(0, func(a, b int64) int64 { return a + b }); got != workers*perWorker {
		t.Fatalf("Combine = %d, want %d", got, workers*perWorker)
	}
}
