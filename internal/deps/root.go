package deps

import (
	"math/bits"
	"sync/atomic"
	"unsafe"

	"repro/internal/locks"
)

// MaxRootShards bounds the shard count of a RootDomain: the lease held
// during a registration is a uint64 bitmask of shard indices.
const MaxRootShards = 64

// RootDomain is a sharded registration domain for root tasks: the
// dependency chains of the runtime's global domain, partitioned across
// shards by address hash so that concurrent submissions touching
// unrelated addresses register in parallel.
//
// Every per-address chain lives entirely inside the shard its address
// hashes to, so the chain protocols of both dependency systems are
// untouched: a shard is just a smaller single-writer domain. The
// single-writer rule is preserved per shard by the shard's registration
// mutex, and each shard doubles as one *submitter slot* — the holder of
// shard i's lock is the exclusive user of thread-local worker index
// workers+i (dependency mailbox, allocator free list, scheduler
// insertion, trace buffer), which is what lets many goroutines submit
// concurrently without sharing those structures.
//
// A submission whose accesses span several shards takes every involved
// shard lock in ascending index order (Acquire), which makes cross-shard
// submissions deadlock-free while still ordering same-address
// submissions through their common shard.
type RootDomain struct {
	// shift turns the hashed address into a shard index: the top
	// log2(len(shards)) bits of the multiplied hash.
	shift uint
	// rr rotates access-less submissions across shards so independent
	// submitters do not all serialize on shard 0.
	rr     atomic.Uint32
	shards []rootShard
}

// rootShard is one shard: the registration lock and the Node whose
// domain maps hold the shard's chain tails. The node is never
// registered or unregistered itself — like the global task it stands
// in for, it exists only as the owner of its children's chains — so
// its tail pins are held forever (the per-shard tail-pin rule: the
// last task per address stays pinned until a later submission
// replaces it, exactly as with the former single global domain).
//
// The registration lock is the repository's own Partitioned Ticket
// Lock, like every other lock on the runtime's synchronization paths
// (scheduler insertion queues, DTLock): a FIFO spin lock whose waiters
// pay for serialization in cycles. A sync.Mutex here would park
// waiters so cheaply that — as with Go's scalable allocator, which
// alloc.Serial exists to counteract — the very contention this
// sharding removes would be invisible to measurement on small hosts.
type rootShard struct {
	mu   *locks.PTLock
	node Node
}

// NormalizeShards clamps and rounds a requested shard count exactly as
// NewRootDomain sizes the domain: at least 1, at most MaxRootShards,
// rounded up to a power of two. The runtime's Config normalization
// uses it too, so configuration introspection and worker-slot sizing
// always agree with the domain actually built.
func NormalizeShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > MaxRootShards {
		n = MaxRootShards
	}
	sz := 1
	for sz < n {
		sz <<= 1
	}
	return sz
}

// ShardDomain maps root shard i onto its home runtime domain under a
// d-domain runtime: shards round-robin across domains, so concurrent
// submitters spread their production evenly and every domain owns its
// own slice of the root shards (shard i belongs to domain i%d, i.e.
// domain k's slice is {k, k+d, k+2d, ...}). The runtime's slot→domain
// partition (core/topology.go) applies this to the submitter-slot
// range; keeping the formula here too lets deps-level tooling reason
// about shard placement without importing core.
func ShardDomain(shard, domains int) int {
	if domains <= 1 {
		return 0
	}
	return shard % domains
}

// NewRootDomain returns a root domain with NormalizeShards(n) shards.
func NewRootDomain(n int) *RootDomain {
	sz := NormalizeShards(n)
	d := &RootDomain{shift: uint(64 - bits.Len(uint(sz-1))), shards: make([]rootShard, sz)}
	for i := range d.shards {
		d.shards[i].mu = locks.NewPTLock(locks.DefaultPTLockSize)
	}
	return d
}

// Shards returns the shard count (a power of two).
func (d *RootDomain) Shards() int { return len(d.shards) }

// shardOf hashes an address to its shard index. Fibonacci hashing: the
// low bits of a Go address are alignment zeros, the multiplication
// spreads them across the high bits the shift keeps.
func (d *RootDomain) shardOf(p unsafe.Pointer) int {
	return int((uint64(uintptr(p)) * 0x9E3779B97F4A7C15) >> d.shift)
}

// shardNode returns the shard node owning addr's chain.
func (d *RootDomain) shardNode(p unsafe.Pointer) *Node {
	return &d.shards[d.shardOf(p)].node
}

// RootLease is a held set of shard registration locks covering one root
// submission. It is a value type: Acquire/Release allocate nothing.
type RootLease struct {
	d    *RootDomain
	mask uint64
	slot int
}

// Acquire locks every shard covering the addresses of accs, in
// ascending index order. A submission with no accesses still leases one
// shard (rotating across them) because the submitter needs exclusive
// use of a slot's thread-local structures even when there is no chain
// to join. The caller must Release the lease after RegisterRoot.
func (d *RootDomain) Acquire(accs []AccessSpec) RootLease {
	var mask uint64
	for i := range accs {
		if accs[i].Type == PriorityClause || accs[i].Type == DeadlineClause ||
			accs[i].Type == InheritClause {
			// Pseudo accesses carry no address: they join no chain and
			// lease no shard (a nil Addr would always hash to one shard
			// and needlessly serialize every priority-tagged submission).
			continue
		}
		mask |= 1 << uint(d.shardOf(accs[i].Addr))
	}
	if mask == 0 {
		mask = 1 << (uint64(d.rr.Add(1)) & uint64(len(d.shards)-1))
	}
	for m := mask; m != 0; {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		d.shards[i].mu.Lock()
	}
	return RootLease{d: d, mask: mask, slot: bits.TrailingZeros64(mask)}
}

// AcquireFor is Acquire for a submission with no data accesses whose
// caller holds a stable spreading key — typically the address of a
// pooled per-request structure (the compiled-graph serving path). The
// key hashes straight to one shard with the same Fibonacci hash the
// address path uses, so high-rate access-less submitters spread across
// shards without sharing the round-robin counter's cache line, and
// repeat submissions keyed by the same frame stay on one shard, whose
// thread-local structures (allocator free list, dependency mailbox)
// they keep warm.
func (d *RootDomain) AcquireFor(key uintptr) RootLease {
	i := int((uint64(key) * 0x9E3779B97F4A7C15) >> d.shift)
	d.shards[i].mu.Lock()
	return RootLease{d: d, mask: 1 << uint(i), slot: i}
}

// Slot returns the lease's submitter-slot index: the lowest held shard.
// The runtime offsets it by the worker count to obtain the thread-local
// worker index the lease holder may use.
func (l RootLease) Slot() int { return l.slot }

// Release unlocks every shard held by the lease.
func (l RootLease) Release() {
	for m := l.mask; m != 0; {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		l.d.shards[i].mu.Unlock()
	}
}
