// Package deps implements the data-dependency system of the task-based
// runtime: the paper's wait-free implementation built on Atomic State
// Machines (§2), and the fine-grained-locking baseline it replaced (the
// "w/o wait-free dependencies" variant of the evaluation, §6).
//
// Dependencies follow the OmpSs-2 model: a task declares *accesses*
// (address + access type); accesses to the same address form chains with
// successor links between sibling tasks and child links across nesting
// levels (paper Fig. 1). Reductions and commutative accesses are access
// types, not task-group constructs, matching OmpSs-2 rather than OpenMP.
package deps

import (
	"sync/atomic"
	"unsafe"
)

// AccessType classifies one data access of a task.
type AccessType uint8

const (
	// Read allows concurrent execution with other reads of the address.
	Read AccessType = iota
	// Write requires exclusive access.
	Write
	// ReadWrite requires exclusive access (OmpSs-2 inout).
	ReadWrite
	// Reduction privatizes the address per worker; consecutive reduction
	// tasks of the same operation run concurrently and their partial
	// results are combined when the reduction domain closes.
	Reduction
	// Commutative grants mutual exclusion without ordering: consecutive
	// commutative tasks may run in any order but never simultaneously.
	Commutative
	// PriorityClause is a pseudo access type: a spec of this type
	// declares no data access at all — it carries a scheduling priority
	// (in the spec's Len field) through a task's access list, the way
	// OmpSs-2's priority clause rides alongside the dependency clauses.
	// The runtime core strips these specs before registration, so a
	// dependency system never sees one; Acquire skips them when leasing
	// root shards.
	PriorityClause
	// DeadlineClause is a pseudo access type like PriorityClause: it
	// carries an absolute scheduling deadline (nanoseconds on the
	// runtime's monotonic clock, in the spec's Len field) through a
	// task's access list. Stripped by the core before registration;
	// skipped by Acquire.
	DeadlineClause
	// InheritClause is a pseudo access type like PriorityClause: its
	// presence asks the core to promote the task's unsatisfied
	// predecessors (transitively) to the task's effective priority at
	// registration, closing the priority-inversion window. Stripped by
	// the core before registration; skipped by Acquire.
	InheritClause
)

// String returns the OmpSs-2 clause name of the access type.
func (t AccessType) String() string {
	switch t {
	case Read:
		return "in"
	case Write:
		return "out"
	case ReadWrite:
		return "inout"
	case Reduction:
		return "reduction"
	case Commutative:
		return "commutative"
	case PriorityClause:
		return "priority"
	case DeadlineClause:
		return "deadline"
	case InheritClause:
		return "inherit"
	}
	return "unknown"
}

// exclusive reports whether the access type requires full exclusivity
// with respect to its chain predecessors before the task may run.
func (t AccessType) exclusive() bool { return t == Write || t == ReadWrite }

// ReductionOp is the combination operation of a reduction access.
type ReductionOp uint8

const (
	// OpSum combines partial results by addition (identity 0).
	OpSum ReductionOp = iota
	// OpMax combines partial results by maximum (identity -Inf).
	OpMax
	// OpMin combines partial results by minimum (identity +Inf).
	OpMin
)

// AccessSpec describes one access at task-creation time. Addr identifies
// the dependency (OmpSs-2 matches accesses by address); Len is the number
// of float64 elements covered, used only by reductions to size the
// privatized buffers.
type AccessSpec struct {
	Addr unsafe.Pointer
	Len  int
	Type AccessType
	Op   ReductionOp
	// Weak marks an OmpSs-2 weak access: the task does not itself touch
	// the data, so the access never blocks the task's execution, but it
	// anchors the dependency chains of the task's children at this
	// nesting level (paper §2.1: "dependency domains of tasks on
	// different nesting levels can share dependencies"). Weak accesses
	// release like strong ones: successors still wait for the task's
	// children registered under them.
	Weak bool
}

// ReadyFn is invoked by a dependency system exactly once per task, when
// the task's last blocking access becomes satisfied. It may be called
// from any worker, including in the middle of Register (tasks with no
// blocking predecessors) and Unregister (successors becoming ready).
// The worker argument is the index of the calling worker, for routing
// the ready task to that worker's scheduler insertion queue.
type ReadyFn func(n *Node, worker int)

// System is a dependency-tracking implementation. Register must be
// called by the thread executing the parent task (sibling registration is
// single-writer per domain, as in Nanos6); Unregister and CloseDomain may
// be called from the worker that ran the task. The worker index selects
// thread-local structures (message mailboxes, reduction slots) and must
// be unique per concurrent caller.
type System interface {
	// Register links every access of n into the dependency graph of
	// parent's domain and arms readiness tracking. It must be called
	// exactly once per task, before the task can run.
	Register(parent, n *Node, worker int)
	// RegisterRoot is Register against a sharded root domain: each
	// access of n joins the chain of its address's shard. The caller
	// must hold a lease of d covering n's accesses (RootDomain.Acquire)
	// and pass the lease's submitter-slot worker index, which keeps
	// per-shard registration single-writer while unrelated root
	// submissions proceed in parallel on other shards.
	RegisterRoot(d *RootDomain, n *Node, worker int)
	// Unregister marks n's task finished and propagates satisfiability
	// to successor and parent accesses (paper Definition 2.4).
	Unregister(n *Node, worker int)
	// CloseDomain closes any open reduction or commutative groups in n's
	// domain so trailing reductions can combine. Called at taskwait.
	CloseDomain(n *Node, worker int)
	// ReductionBuffer returns the worker-private partial-result buffer
	// for the reduction access of n on addr.
	ReductionBuffer(n *Node, addr unsafe.Pointer, worker int) []float64
	// Name identifies the implementation in traces and benchmarks.
	Name() string
}

// InlineAccessCap is the number of accesses a Node stores inline,
// inside the task shell, without a heap allocation. Every workload
// kernel shipped in internal/workloads declares at most this many
// accesses per task; larger access sets overflow to a heap slice whose
// lifetime is left to the garbage collector (see DESIGN.md, "Task
// lifetime and memory").
const InlineAccessCap = 4

// Node is the per-task dependency record, embedded in the runtime's Task
// structure. Payload carries the owning task for the ready callback.
type Node struct {
	Payload  any
	Accesses []Access

	// inline is the allocation-free backing store for small access
	// sets; InitAccesses points Accesses at it when the count fits.
	// Because it is embedded in the recycled task shell, its reuse is
	// gated by the pin count below — unlike the overflow slice, which
	// is simply abandoned to the GC at reset.
	inline [InlineAccessCap]Access

	// pins counts outstanding reasons the node's access storage may
	// still be dereferenced by another thread: the runtime's shell
	// guard (held from creation to full completion), one per non-alias
	// access until that access releases, one per access currently
	// installed as a domain-map chain tail, and one per undelivered
	// mailbox message targeting an access of this node. The wait-free
	// system maintains the last three (see waitfree.go); the locking
	// baseline maintains none, because it never dereferences an Access
	// after Register returns. The transition to zero means the access
	// storage is quiescent and the shell — inline array included — can
	// be recycled.
	pins atomic.Int32

	// pending counts unsatisfied blocking accesses plus a registration
	// guard; the transition to zero fires ReadyFn.
	pending atomic.Int32

	// domain maps address -> chain tail for the children of this task.
	// It is written only by the thread executing this task (the creator
	// of the children), so it needs no lock.
	domain map[unsafe.Pointer]tailEntry

	// ldomain is the equivalent domain map of the locking baseline.
	ldomain map[unsafe.Pointer]*lchain

	// preds records the node's immediate plain-access chain
	// predecessors at registration time, one slot per recorded
	// predecessor, for the core's priority-inheritance walk (which runs
	// right after registration, on the registering thread, but may
	// chase predecessors-of-predecessors recorded by other threads).
	// Slots are atomics plus a generation snapshot because a recorded
	// predecessor's shell can be recycled and re-registered
	// concurrently with a transitive walk: the walker revalidates the
	// generation and skips recycled shells. Group predecessors
	// (reduction/commutative runs) are not recorded — promotion is
	// best-effort and those tasks are satisfied eagerly anyway.
	preds  [InlineAccessCap]predSlot
	npreds int // registration-thread-only write cursor; walkers scan slots

	// gen counts shell reuses; bumped by Reset before the pred slots
	// are cleared, so a walker holding a stale slot observes a
	// generation mismatch instead of promoting an unrelated task.
	gen atomic.Uint32
}

// predSlot is one recorded immediate predecessor: the node pointer and
// the generation it had when recorded.
type predSlot struct {
	n   atomic.Pointer[Node]
	gen atomic.Uint32
}

// recordPred appends p to n's predecessor slots (best-effort: silently
// dropped once the fixed slots are full). Called by the registering
// thread only.
func (n *Node) recordPred(p *Node) {
	if p == nil || p == n || n.npreds >= InlineAccessCap {
		return
	}
	s := &n.preds[n.npreds]
	s.gen.Store(p.gen.Load())
	s.n.Store(p)
	n.npreds++
}

// VisitPreds calls f for each recorded immediate predecessor whose
// shell generation still matches its recorded snapshot. Best-effort:
// a predecessor recycled between the generation check and f sees only
// atomic operations from f's side (the core promotes via CAS-monotone
// fields), so a lost or spurious promotion is a bounded scheduling
// anomaly, never a memory-safety or exactly-once violation.
func (n *Node) VisitPreds(f func(p *Node)) {
	for i := range n.preds {
		p := n.preds[i].n.Load()
		if p == nil || p.gen.Load() != n.preds[i].gen.Load() {
			continue
		}
		f(p)
	}
}

// tailEntry is the wait-free system's bottom-map entry: the most recent
// access of a chain (or the open group run that currently ends it), plus
// the parent-task access the chain nests under, if any.
type tailEntry struct {
	access *Access
	group  *group
	parent *Access
}

// InitAccesses points n.Accesses at zero-initialized storage for count
// accesses: the node's inline array when it fits (no allocation), a
// fresh heap slice otherwise. The caller then Inits each element.
func (n *Node) InitAccesses(count int) []Access {
	if count <= InlineAccessCap {
		n.Accesses = n.inline[:count]
	} else {
		n.Accesses = make([]Access, count)
	}
	return n.Accesses
}

// Pin adds one reason the node's access storage must not be recycled.
func (n *Node) Pin() { n.pins.Add(1) }

// Unpin drops one such reason and returns the remaining count; zero
// means the storage is quiescent and the shell may be recycled.
func (n *Node) Unpin() int32 { return n.pins.Add(-1) }

// domainRetainCap bounds the domain-map capacity a pooled shell keeps:
// maps up to this size are cleared and reused (clear preserves the
// buckets, so a recycled shell re-registering a similar working set of
// addresses allocates nothing — the steady-state serving path depends
// on this), larger ones are dropped to the garbage collector so a
// one-off wide fan-out does not stay resident in the pool forever.
const domainRetainCap = 64

// Reset prepares a recycled Node for reuse by a new task. It must only
// be called once the node is quiescent (pin count zero): that is what
// makes clearing the inline accesses safe. Clearing drops their
// pointer-bearing fields so a pooled shell does not keep dead
// dependency structures reachable (groups with per-worker slot
// buffers, locking-baseline chains); the next task's Init rewrites
// every field anyway. An overflow slice (when Accesses pointed to heap
// storage) is dropped to the garbage collector wholesale, and domain
// maps are retained empty up to domainRetainCap.
func (n *Node) Reset() {
	if len(n.Accesses) > 0 && &n.Accesses[0] == &n.inline[0] {
		for i := range n.Accesses {
			n.Accesses[i].clearRefs()
		}
	}
	n.Payload = nil
	n.Accesses = nil
	n.pending.Store(0)
	// Invalidate outstanding pred-slot references to this shell before
	// clearing our own slots: walkers compare against gen first.
	n.gen.Add(1)
	for i := 0; i < n.npreds; i++ {
		n.preds[i].n.Store(nil)
	}
	n.npreds = 0
	if len(n.domain) <= domainRetainCap {
		clear(n.domain)
	} else {
		n.domain = nil
	}
	if len(n.ldomain) <= domainRetainCap {
		clear(n.ldomain)
	} else {
		n.ldomain = nil
	}
}

// satisfied consumes one pending dependency and fires ready on the last.
func (n *Node) satisfied(ready ReadyFn, worker int) {
	if n.pending.Add(-1) == 0 {
		ready(n, worker)
	}
}

// TryAcquireCommutative attempts to take the execution token of every
// commutative access of n. On failure it rolls back and returns false;
// the caller should re-enqueue the task. Tokens are assigned by the
// dependency system during Register.
func (n *Node) TryAcquireCommutative() bool {
	for i := range n.Accesses {
		a := &n.Accesses[i]
		if a.token == nil {
			continue
		}
		if !a.token.CompareAndSwap(0, 1) {
			for j := 0; j < i; j++ {
				if t := n.Accesses[j].token; t != nil {
					t.Store(0)
				}
			}
			return false
		}
	}
	return true
}

// ReleaseCommutative returns every commutative token held by n.
func (n *Node) ReleaseCommutative() {
	for i := range n.Accesses {
		if t := n.Accesses[i].token; t != nil {
			t.Store(0)
		}
	}
}

// HasCommutative reports whether any access of n needs an execution token.
func (n *Node) HasCommutative() bool {
	for i := range n.Accesses {
		if n.Accesses[i].token != nil {
			return true
		}
	}
	return false
}
