package deps

// Differential stress suite: randomized task graphs over small address
// sets run through BOTH dependency systems and cross-checked against a
// per-address happens-before oracle. The oracle enforces, per address:
//
//   - mutual exclusion: an exclusive (out/inout/commutative) body never
//     overlaps any other body on the address, and readers never overlap
//     writers (readers may overlap readers);
//   - completion order: every body observes exactly the address version
//     its position in the declared chain entitles it to — a version is
//     the count of exclusive bodies that released before it, so a
//     too-early or out-of-order execution is caught even when it does
//     not physically overlap;
//   - exactly-once: the final version equals the number of declared
//     exclusive accesses, and every task ran exactly once.
//
// Specs are generated from a seed (report its value to replay) and
// shrunk on failure by removing tasks while the failure reproduces.

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// stressAccess is one declared access of a generated task.
type stressAccess struct {
	addr int // index into the spec's cell array
	typ  AccessType
	weak bool
}

func (a stressAccess) String() string {
	w := ""
	if a.weak {
		w = "weak-"
	}
	return fmt.Sprintf("%s%s(c%d)", w, a.typ, a.addr)
}

// stressSpec is one generated graph: tasks register in slice order, so
// the declared dependency chains are exactly the per-address access
// sequences in that order.
type stressSpec struct {
	cells int
	tasks [][]stressAccess
}

func (s stressSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cells=%d tasks=%d\n", s.cells, len(s.tasks))
	for i, accs := range s.tasks {
		fmt.Fprintf(&b, "  t%-3d", i)
		for _, a := range accs {
			fmt.Fprintf(&b, " %s", a)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// genStressSpec draws a random graph: few addresses (so chains are long
// and contended), mixed access types including weak anchors and
// duplicate declarations (alias path).
func genStressSpec(r *rand.Rand) stressSpec {
	spec := stressSpec{cells: 2 + r.Intn(6)}
	n := 1 + r.Intn(40)
	for t := 0; t < n; t++ {
		na := 1 + r.Intn(3)
		accs := make([]stressAccess, 0, na)
		for a := 0; a < na; a++ {
			acc := stressAccess{addr: r.Intn(spec.cells)}
			switch p := r.Intn(100); {
			case p < 30:
				acc.typ = Read
			case p < 50:
				acc.typ = Write
			case p < 70:
				acc.typ = ReadWrite
			case p < 85:
				acc.typ = Commutative
			case p < 93:
				acc.typ = Read
				acc.weak = true
			default:
				acc.typ = ReadWrite
				acc.weak = true
			}
			accs = append(accs, acc)
		}
		spec.tasks = append(spec.tasks, accs)
	}
	return spec
}

// expectation is the version window one non-weak access may observe at
// body time: lo==hi for ordinary accesses, a run-wide window for
// commutative run members (they execute in any order within the run).
type expectation struct {
	lo, hi int
}

// computeExpectations walks the spec in registration order and assigns
// each (task, access) its version window, reproducing the chain
// semantics: reads expect the count of prior exclusives, exclusives
// expect their own position, consecutive commutatives share the run's
// window. Weak and alias accesses get no expectation (nil entries).
func computeExpectations(spec stressSpec) [][]*expectation {
	type addrState struct {
		excl     int // exclusive accesses so far
		runStart int // first version of the trailing commutative run
		inRun    bool
		runMembs []*expectation // members of the trailing run, for hi fixup
	}
	st := make([]addrState, spec.cells)
	exps := make([][]*expectation, len(spec.tasks))
	closeRun := func(s *addrState) {
		for _, e := range s.runMembs {
			e.hi = s.excl - 1
		}
		s.inRun = false
		s.runMembs = nil
	}
	for t, accs := range spec.tasks {
		exps[t] = make([]*expectation, len(accs))
		seen := map[int]bool{}
		for i, a := range accs {
			if seen[a.addr] {
				continue // alias: the system links only the first
			}
			seen[a.addr] = true
			if a.weak {
				// Weak accesses never run a body on the address; they
				// only anchor chains, so they neither observe nor bump
				// the version. They do close a commutative run (the
				// chain links them after it).
				closeRun(&st[a.addr])
				continue
			}
			s := &st[a.addr]
			switch a.typ {
			case Read:
				closeRun(s)
				exps[t][i] = &expectation{lo: s.excl, hi: s.excl}
			case Write, ReadWrite:
				closeRun(s)
				exps[t][i] = &expectation{lo: s.excl, hi: s.excl}
				s.excl++
			case Commutative:
				if !s.inRun {
					s.inRun = true
					s.runStart = s.excl
				}
				e := &expectation{lo: s.runStart}
				s.runMembs = append(s.runMembs, e)
				exps[t][i] = e
				s.excl++
			}
		}
	}
	for a := range st {
		closeRun(&st[a])
	}
	return exps
}

// stressCell is one address's oracle state, padded against false
// sharing so the oracle itself does not serialize the run.
type stressCell struct {
	data    float64 // the dependency address
	ver     atomic.Int64
	readers atomic.Int64
	writers atomic.Int64
	_       [24]byte
}

// stressRun executes spec on the named dependency system with a
// concurrent worker pool and the happens-before oracle armed. It
// returns an error describing the first violations, a deadlock (tasks
// never completing), or a wrong final state.
func stressRun(kind string, spec stressSpec, seed int64) error {
	const workers = 4
	cells := make([]stressCell, spec.cells)
	exps := computeExpectations(spec)

	var (
		vmu        sync.Mutex
		violations []string
	)
	violate := func(format string, args ...any) {
		vmu.Lock()
		if len(violations) < 5 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		vmu.Unlock()
	}

	type stask struct {
		node Node
		id   int
		ran  atomic.Int32
	}
	var (
		rmu   sync.Mutex
		ready []*stask
	)
	readyFn := func(n *Node, worker int) {
		t := n.Payload.(*stask)
		rmu.Lock()
		ready = append(ready, t)
		rmu.Unlock()
	}
	var sys System
	switch kind {
	case "waitfree":
		sys = NewWaitFree(readyFn, workers)
	case "locked":
		sys = NewLocked(readyFn, workers)
	default:
		panic(kind)
	}

	// touch performs the oracle checks for one non-weak access: entry
	// counters catch physical overlap, the version check catches order
	// inversions that never physically overlapped.
	touch := func(t *stask, i int, a stressAccess, exp *expectation, enter bool) {
		c := &cells[a.addr]
		excl := a.typ != Read
		if enter {
			if excl {
				if w := c.writers.Add(1); w != 1 {
					violate("t%d %s: %d concurrent exclusive bodies", t.id, a, w)
				}
				if r := c.readers.Load(); r != 0 {
					violate("t%d %s: exclusive body overlaps %d readers", t.id, a, r)
				}
			} else {
				c.readers.Add(1)
				if w := c.writers.Load(); w != 0 {
					violate("t%d %s: reader overlaps %d exclusive bodies", t.id, a, w)
				}
			}
			if v := int(c.ver.Load()); v < exp.lo || v > exp.hi {
				violate("t%d %s: observed version %d, want [%d,%d]", t.id, a, v, exp.lo, exp.hi)
			}
			return
		}
		if excl {
			c.ver.Add(1)
			c.writers.Add(-1)
		} else {
			c.readers.Add(-1)
		}
	}

	var completed atomic.Int64
	execute := func(t *stask, w int, r *rand.Rand) {
		if t.ran.Add(1) != 1 {
			violate("t%d executed more than once", t.id)
		}
		accs := spec.tasks[t.id]
		exp := exps[t.id]
		for i, a := range accs {
			if exp[i] != nil {
				touch(t, i, a, exp[i], true)
			}
		}
		// Dwell inside the body so overlap windows are physically wide.
		for i := 0; i < 40; i++ {
			if i&15 == 0 {
				runtime.Gosched()
			}
		}
		for i := len(accs) - 1; i >= 0; i-- {
			if exp[i] != nil {
				touch(t, i, accs[i], exp[i], false)
			}
		}
		sys.Unregister(&t.node, w)
		completed.Add(1)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed ^ int64(w)<<32))
			for spins := 0; ; spins++ {
				rmu.Lock()
				var t *stask
				if len(ready) > 0 {
					i := r.Intn(len(ready))
					t = ready[i]
					ready[i] = ready[len(ready)-1]
					ready = ready[:len(ready)-1]
				}
				rmu.Unlock()
				if t == nil {
					select {
					case <-stop:
						return
					default:
					}
					runtime.Gosched()
					continue
				}
				spins = 0
				if t.node.HasCommutative() && !t.node.TryAcquireCommutative() {
					rmu.Lock()
					ready = append(ready, t)
					rmu.Unlock()
					runtime.Gosched()
					continue
				}
				execute(t, w, r)
				t.node.ReleaseCommutative()
			}
		}(w)
	}

	// Register every task from the root, in spec order, concurrently
	// with the workers executing and unregistering (the registrar uses
	// the reserved extra worker index, as the runtime's submitters do).
	root := &stask{id: -1}
	root.node.Payload = root
	tasks := make([]*stask, len(spec.tasks))
	for t := range spec.tasks {
		st := &stask{id: t}
		st.node.Payload = st
		dst := st.node.InitAccesses(len(spec.tasks[t]))
		for i, a := range spec.tasks[t] {
			dst[i].Init(&st.node, AccessSpec{
				Addr: unsafe.Pointer(&cells[a.addr].data),
				Type: a.typ,
				Weak: a.weak,
			})
		}
		tasks[t] = st
		sys.Register(&root.node, &st.node, workers)
	}

	deadline := time.Now().Add(30 * time.Second)
	for completed.Load() < int64(len(tasks)) {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			return fmt.Errorf("deadlock: %d/%d tasks completed after 30s",
				completed.Load(), len(tasks))
		}
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()

	// Final state: version = declared exclusive count, exactly once.
	// Only accesses with an expectation (non-weak, non-alias) bump it.
	wantVer := make([]int, spec.cells)
	for t, accs := range spec.tasks {
		for i, a := range accs {
			if exps[t][i] != nil && a.typ != Read {
				wantVer[a.addr]++
			}
		}
	}
	for a := range cells {
		if got := int(cells[a].ver.Load()); got != wantVer[a] {
			violate("cell %d final version %d, want %d", a, got, wantVer[a])
		}
	}
	vmu.Lock()
	defer vmu.Unlock()
	if len(violations) > 0 {
		return fmt.Errorf("oracle violations:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// failsRepeatedly re-runs a candidate spec a few times: concurrent
// failures are probabilistic, so shrinking only keeps reductions whose
// failure still reproduces.
func failsRepeatedly(kind string, spec stressSpec, seed int64, tries int) error {
	for i := 0; i < tries; i++ {
		if err := stressRun(kind, spec, seed+int64(i)); err != nil {
			return err
		}
	}
	return nil
}

// shrinkSpec greedily removes tasks while the failure reproduces,
// returning a (locally) minimal failing spec for the report.
func shrinkSpec(kind string, spec stressSpec, seed int64) stressSpec {
	budget := 120
	for changed := true; changed && budget > 0; {
		changed = false
		for i := 0; i < len(spec.tasks) && budget > 0; i++ {
			cand := stressSpec{cells: spec.cells}
			cand.tasks = append(cand.tasks, spec.tasks[:i]...)
			cand.tasks = append(cand.tasks, spec.tasks[i+1:]...)
			budget--
			if failsRepeatedly(kind, cand, seed, 3) != nil {
				spec = cand
				changed = true
				break
			}
		}
	}
	return spec
}

// TestDifferentialStress is the suite entry point: stressRounds random
// graphs (see stress_mode_*_test.go for the per-mode round counts),
// each run through both dependency systems under the oracle. On
// failure it reports the seed and a shrunk reproduction spec.
func TestDifferentialStress(t *testing.T) {
	rounds := stressRounds
	if testing.Short() {
		rounds = stressRounds / 4
		if rounds < 20 {
			rounds = 20
		}
	}
	baseSeed := int64(0x5eed_03) // bump to re-roll the whole suite
	for round := 0; round < rounds; round++ {
		seed := baseSeed + int64(round)
		spec := genStressSpec(rand.New(rand.NewSource(seed)))
		for _, kind := range systems() {
			if err := stressRun(kind, spec, seed); err != nil {
				min := shrinkSpec(kind, spec, seed)
				t.Fatalf("seed %d, %s: %v\nminimal failing spec:\n%s", seed, kind, err, min)
			}
		}
	}
}
