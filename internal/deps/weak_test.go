package deps

import "testing"

func TestWeakAccessDoesNotBlockTask(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		// A strong writer holds the chain...
		w := mkTask("w", []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}, nil)
		te.spawn(root, w, 0)
		// ...and a weak-inout task behind it must still be immediately
		// ready (it does not touch x itself).
		weak := mkTask("weak", []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite, Weak: true}}, nil)
		te.spawn(root, weak, 0)
		te.mu.Lock()
		n := len(te.ready)
		te.mu.Unlock()
		if n != 2 {
			t.Fatalf("%s: weak task blocked behind writer (ready=%d)", kind, n)
		}
	}
}

func TestWeakAccessAnchorsChildren(t *testing.T) {
	// The OmpSs-2 pattern: parent declares weakinout(x) and spawns a
	// child with a strong inout(x); a sibling successor with inout(x)
	// must wait for the child even though the parent never blocks.
	var x float64
	for _, kind := range systems() {
		x = 0
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}
		weakSpecs := []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite, Weak: true}}
		child := mkTask("child", spec, func(*ttask) { x = 7 })
		parent := mkTask("parent", weakSpecs, func(self *ttask) {
			te.spawn(self, child, 0)
		})
		succ := mkTask("succ", spec, func(*ttask) { x *= 10 })
		te.spawn(root, parent, 0)
		te.spawn(root, succ, 0)

		// Parent must be ready immediately (weak), successor must not.
		pt := te.pop(nil)
		if pt != parent {
			t.Fatalf("%s: expected parent ready first", kind)
		}
		parent.body(parent)
		te.sys.Unregister(&parent.node, 0)
		te.mu.Lock()
		for _, r := range te.ready {
			if r == succ {
				t.Fatalf("%s: successor ready before weak parent's child ran", kind)
			}
		}
		te.mu.Unlock()
		order := te.runAll(nil, 0)
		if x != 70 {
			t.Fatalf("%s: x = %v, want 70 (order %v)", kind, x, order)
		}
	}
}

func TestWeakChainOfParents(t *testing.T) {
	// Two weak levels deep: weak grandparent -> weak parent -> strong
	// leaf; a successor after the grandparent waits for the leaf.
	var x float64
	for _, kind := range systems() {
		x = 1
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		strong := []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}
		weak := []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite, Weak: true}}
		leaf := mkTask("leaf", strong, func(*ttask) { x += 5 })
		mid := mkTask("mid", weak, func(self *ttask) { te.spawn(self, leaf, 0) })
		top := mkTask("top", weak, func(self *ttask) { te.spawn(self, mid, 0) })
		succ := mkTask("succ", strong, func(*ttask) { x *= 3 })
		te.spawn(root, top, 0)
		te.spawn(root, succ, 0)
		te.runAll(nil, 0)
		if x != 18 { // (1+5)*3
			t.Fatalf("%s: x = %v, want 18", kind, x)
		}
	}
}

func TestWeakReadAllowsConcurrentStrongReads(t *testing.T) {
	// weakin must behave as a read in the chain: it neither blocks nor
	// is blocked by other reads.
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		te.spawn(root, mkTask("w", []AccessSpec{{Addr: addrOf(&x), Type: Write}}, nil), 0)
		te.spawn(root, mkTask("r", []AccessSpec{{Addr: addrOf(&x), Type: Read}}, nil), 0)
		wk := mkTask("weak", []AccessSpec{{Addr: addrOf(&x), Type: Read, Weak: true}}, nil)
		te.spawn(root, wk, 0)
		te.mu.Lock()
		n := len(te.ready)
		te.mu.Unlock()
		// Writer ready + weak ready; strong read still blocked.
		if n != 2 {
			t.Fatalf("%s: ready=%d, want 2 (writer + weak)", kind, n)
		}
	}
}
