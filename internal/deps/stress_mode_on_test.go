//go:build stress

package deps

// stressRounds under -tags=stress: the nightly-style long campaign
// (non-gating in CI; see .github/workflows/ci.yml).
const stressRounds = 2500
