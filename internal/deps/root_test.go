package deps

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestNewRootDomainRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
		{64, 64}, {65, 64}, {1 << 20, 64},
	} {
		if got := NewRootDomain(tc.in).Shards(); got != tc.want {
			t.Errorf("NewRootDomain(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRootDomainShardOfInRange pins the hash→shard mapping to the shard
// range for a spread of addresses and shard counts.
func TestRootDomainShardOfInRange(t *testing.T) {
	cells := make([]float64, 1024)
	for _, n := range []int{1, 2, 8, 64} {
		d := NewRootDomain(n)
		used := map[int]bool{}
		for i := range cells {
			s := d.shardOf(unsafe.Pointer(&cells[i]))
			if s < 0 || s >= d.Shards() {
				t.Fatalf("shards=%d: shardOf out of range: %d", n, s)
			}
			used[s] = true
		}
		// With 1024 distinct addresses every shard of a 64-way domain
		// should see traffic; a grossly skewed hash would fail this.
		if n == 64 && len(used) < 32 {
			t.Errorf("shards=64: only %d shards used by 1024 addresses", len(used))
		}
	}
}

// TestAcquireLeaseCoversAccesses: a lease must hold exactly the shards
// of the declared addresses, and Slot must be the lowest held shard.
func TestAcquireLeaseCoversAccesses(t *testing.T) {
	d := NewRootDomain(16)
	var a, b float64
	accs := []AccessSpec{
		{Addr: unsafe.Pointer(&a), Type: Write},
		{Addr: unsafe.Pointer(&b), Type: Read},
		{Addr: unsafe.Pointer(&a), Type: Read}, // duplicate addr: same shard
	}
	l := d.Acquire(accs)
	wantMask := uint64(1)<<d.shardOf(unsafe.Pointer(&a)) | uint64(1)<<d.shardOf(unsafe.Pointer(&b))
	if l.mask != wantMask {
		t.Fatalf("lease mask = %b, want %b", l.mask, wantMask)
	}
	if l.Slot() != bits.TrailingZeros64(wantMask) {
		t.Fatalf("lease slot = %d, want lowest shard %d", l.Slot(), bits.TrailingZeros64(wantMask))
	}
	l.Release()

	// Access-less leases rotate and still hold exactly one shard.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		l := d.Acquire(nil)
		if bits.OnesCount64(l.mask) != 1 {
			t.Fatalf("empty-access lease holds %d shards", bits.OnesCount64(l.mask))
		}
		seen[l.Slot()] = true
		l.Release()
	}
	if len(seen) < 2 {
		t.Fatalf("empty-access leases never rotated: %v", seen)
	}
}

// TestConcurrentRegisterRoot drives RegisterRoot from many goroutines
// through proper leases on both systems: same-address submissions must
// chain (mutual exclusion of the oracle cell), cross-shard access sets
// must not deadlock, and every task must become ready exactly once.
func TestConcurrentRegisterRoot(t *testing.T) {
	const (
		workers    = 2 // executor goroutines
		submitters = 6
		perSub     = 150
		ncells     = 5
	)
	for _, kind := range systems() {
		t.Run(kind, func(t *testing.T) {
			d := NewRootDomain(8)
			slots := workers + d.Shards()

			type rtask struct {
				node  Node
				cells []*atomic.Int64
			}
			var (
				rmu   sync.Mutex
				ready []*rtask
			)
			readyFn := func(n *Node, worker int) {
				tk := n.Payload.(*rtask)
				rmu.Lock()
				ready = append(ready, tk)
				rmu.Unlock()
			}
			var sys System
			if kind == "waitfree" {
				sys = NewWaitFree(readyFn, slots-1)
			} else {
				sys = NewLocked(readyFn, slots-1)
			}

			cells := make([]struct {
				data float64
				busy atomic.Int64
				runs atomic.Int64
				_    [40]byte
			}, ncells)

			var completed atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						rmu.Lock()
						var tk *rtask
						if len(ready) > 0 {
							tk = ready[len(ready)-1]
							ready = ready[:len(ready)-1]
						}
						rmu.Unlock()
						if tk == nil {
							select {
							case <-stop:
								return
							default:
							}
							runtime.Gosched()
							continue
						}
						for _, c := range tk.cells {
							if c.Add(1) != 1 {
								t.Error("exclusive root bodies overlap")
							}
						}
						runtime.Gosched()
						for _, c := range tk.cells {
							c.Add(-1)
						}
						sys.Unregister(&tk.node, w)
						completed.Add(1)
					}
				}(w)
			}

			var sub sync.WaitGroup
			for s := 0; s < submitters; s++ {
				sub.Add(1)
				go func(s int) {
					defer sub.Done()
					for i := 0; i < perSub; i++ {
						c1 := (s + i) % ncells
						specs := []AccessSpec{{Addr: unsafe.Pointer(&cells[c1].data), Type: ReadWrite}}
						tk := &rtask{cells: []*atomic.Int64{&cells[c1].busy}}
						if i%3 == 0 {
							c2 := (c1 + 1) % ncells
							specs = append(specs, AccessSpec{Addr: unsafe.Pointer(&cells[c2].data), Type: ReadWrite})
							tk.cells = append(tk.cells, &cells[c2].busy)
						}
						tk.node.Payload = tk
						dst := tk.node.InitAccesses(len(specs))
						for j := range specs {
							dst[j].Init(&tk.node, specs[j])
						}
						lease := d.Acquire(specs)
						sys.RegisterRoot(d, &tk.node, workers+lease.Slot())
						lease.Release()
						cells[c1].runs.Add(1)
					}
				}(s)
			}
			sub.Wait()
			total := int64(submitters * perSub)
			for spins := 0; completed.Load() < total; spins++ {
				if spins > 1<<22 {
					t.Fatalf("stalled: %d/%d root tasks completed", completed.Load(), total)
				}
				runtime.Gosched()
			}
			close(stop)
			wg.Wait()
		})
	}
}
