package deps

import (
	"math/rand"
	"testing"
)

// TestLongChainCascade releases a long writer chain and ensures the
// propagation cascade is iterative (mailbox-driven), not recursive: a
// 20k-deep chain must not overflow the stack in either system.
func TestLongChainCascade(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		const n = 20000
		for i := 0; i < n; i++ {
			te.spawn(root, mkTask("w", []AccessSpec{{Addr: addrOf(&x), Type: ReadWrite}}, nil), 0)
		}
		ran := len(te.runAll(nil, 0))
		if ran != n {
			t.Fatalf("%s: ran %d of %d chained tasks", kind, ran, n)
		}
	}
}

// TestManyIndependentChains stresses the bottom map with many addresses.
func TestManyIndependentChains(t *testing.T) {
	cells := make([]float64, 500)
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		for round := 0; round < 3; round++ {
			for i := range cells {
				i := i
				te.spawn(root, mkTask("w",
					[]AccessSpec{{Addr: addrOf(&cells[i]), Type: ReadWrite}},
					func(*ttask) { cells[i]++ }), 0)
			}
		}
		te.runAll(rand.New(rand.NewSource(2)), 0)
		for i := range cells {
			if cells[i] != 3 {
				t.Fatalf("%s: cell %d = %v", kind, i, cells[i])
			}
			cells[i] = 0
		}
	}
}

// TestCommutativeAfterDomainClose registers commutative tasks, closes
// the domain (taskwait), then registers more: the second run must form
// a new group chained after the first.
func TestCommutativeAfterDomainClose(t *testing.T) {
	var x float64
	for _, kind := range systems() {
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&x), Type: Commutative}}
		var order []string
		for i := 0; i < 3; i++ {
			te.spawn(root, mkTask("a", spec, func(*ttask) { order = append(order, "a") }), 0)
		}
		te.runAll(nil, 0)
		te.sys.CloseDomain(&root.node, 0)
		for i := 0; i < 3; i++ {
			te.spawn(root, mkTask("b", spec, func(*ttask) { order = append(order, "b") }), 0)
		}
		te.runAll(nil, 0)
		if len(order) != 6 {
			t.Fatalf("%s: ran %v", kind, order)
		}
		for i := 0; i < 3; i++ {
			if order[i] != "a" || order[i+3] != "b" {
				t.Fatalf("%s: order %v", kind, order)
			}
		}
	}
}

// TestReductionGroupAfterReduction verifies two back-to-back reduction
// runs of different operations chain correctly: the second combines only
// after the first has released.
func TestReductionGroupAfterReduction(t *testing.T) {
	target := []float64{0}
	for _, kind := range systems() {
		target[0] = 0
		te := newExec(kind, 2)
		root := mkTask("root", nil, nil)
		sum := []AccessSpec{{Addr: addrOf(&target[0]), Len: 1, Type: Reduction, Op: OpSum}}
		mx := []AccessSpec{{Addr: addrOf(&target[0]), Len: 1, Type: Reduction, Op: OpMax}}
		for i := 0; i < 4; i++ {
			te.spawn(root, mkTask("s", sum, func(self *ttask) {
				te.sys.ReductionBuffer(&self.node, addrOf(&target[0]), 0)[0] += 2
			}), 0)
		}
		for i := 0; i < 3; i++ {
			v := float64(i)
			te.spawn(root, mkTask("m", mx, func(self *ttask) {
				buf := te.sys.ReductionBuffer(&self.node, addrOf(&target[0]), 1)
				if v > buf[0] {
					buf[0] = v
				}
			}), 0)
		}
		te.runAll(rand.New(rand.NewSource(4)), 0)
		te.sys.CloseDomain(&root.node, 0)
		// Sum run: 0 + 4*2 = 8; max run: max(8, 0, 1, 2) = 8.
		if target[0] != 8 {
			t.Fatalf("%s: target = %v, want 8", kind, target[0])
		}
	}
}

// TestQuickSystemsAgree runs random integer-valued programs (writes and
// reductions; order-independent arithmetic) under both systems and
// requires identical final states.
func TestQuickSystemsAgree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		nTasks := 4 + r.Intn(16)
		kinds := make([]int, nTasks)   // 0: inout ++, 1: reduction +=
		cellIdx := make([]int, nTasks) // target cell
		for i := range kinds {
			kinds[i] = r.Intn(2)
			cellIdx[i] = r.Intn(3)
		}
		results := map[string][]float64{}
		for _, kind := range systems() {
			cells := make([]float64, 3)
			te := newExec(kind, 2)
			root := mkTask("root", nil, nil)
			for i := 0; i < nTasks; i++ {
				ci := cellIdx[i]
				addr := addrOf(&cells[ci])
				if kinds[i] == 0 {
					te.spawn(root, mkTask("w",
						[]AccessSpec{{Addr: addr, Type: ReadWrite}},
						func(*ttask) { cells[ci]++ }), 0)
				} else {
					te.spawn(root, mkTask("r",
						[]AccessSpec{{Addr: addr, Len: 1, Type: Reduction, Op: OpSum}},
						func(self *ttask) {
							te.sys.ReductionBuffer(&self.node, addr, 0)[0]++
						}), 0)
				}
			}
			te.runAll(r, 0)
			te.sys.CloseDomain(&root.node, 0)
			results[kind] = cells
		}
		wf, lk := results["waitfree"], results["locked"]
		for i := range wf {
			if wf[i] != lk[i] {
				t.Fatalf("seed %d: cell %d differs: waitfree %v locked %v",
					seed, i, wf[i], lk[i])
			}
		}
	}
}

// TestReadsAfterReductionConcurrent: readers following a reduction run
// must all see the combined value and be simultaneously ready.
func TestReadsAfterReductionConcurrent(t *testing.T) {
	target := []float64{0}
	for _, kind := range systems() {
		target[0] = 0
		te := newExec(kind, 3)
		root := mkTask("root", nil, nil)
		spec := []AccessSpec{{Addr: addrOf(&target[0]), Len: 1, Type: Reduction, Op: OpSum}}
		for i := 0; i < 3; i++ {
			te.spawn(root, mkTask("red", spec, func(self *ttask) {
				te.sys.ReductionBuffer(&self.node, addrOf(&target[0]), 0)[0]++
			}), 0)
		}
		seen := make([]float64, 2)
		for i := 0; i < 2; i++ {
			i := i
			te.spawn(root, mkTask("rd",
				[]AccessSpec{{Addr: addrOf(&target[0]), Type: Read}},
				func(*ttask) { seen[i] = target[0] }), 0)
		}
		// Run the reductions only.
		for i := 0; i < 3; i++ {
			tk := te.pop(nil)
			tk.body(tk)
			te.sys.Unregister(&tk.node, 0)
		}
		te.mu.Lock()
		ready := len(te.ready)
		te.mu.Unlock()
		if ready != 2 {
			t.Fatalf("%s: %d readers ready after combine, want 2", kind, ready)
		}
		te.runAll(nil, 0)
		if seen[0] != 3 || seen[1] != 3 {
			t.Fatalf("%s: readers saw %v", kind, seen)
		}
	}
}
