package deps

// Private is a set of per-worker privatized reduction slots for
// work-sharing loop tasks: the generic-element counterpart of the
// float64 slot arrays inside reduction groups (group.slots,
// lrun.slots). A loop's chunks accumulate into the slot of whichever
// worker executes them — no atomic traffic per iteration or per chunk —
// and the partials are combined exactly once, by the single thread that
// observes the loop's completion (the commutative/reduction group
// machinery guarantees such a thread exists: the loop is one logical
// task, so its release is one event).
//
// Every slot starts at the identity element, so Combine can fold all
// slots unconditionally: untouched workers contribute the identity.
type Private[T any] struct {
	slots []privSlot[T]
}

// privSlot pads each worker's accumulator so neighbouring workers'
// writes never share a cache line. The pad is generous rather than
// exact because T's size is not known here.
type privSlot[T any] struct {
	v T
	_ [64]byte
}

// NewPrivate returns worker-private slots for workers workers, each
// initialized to identity (which must be the identity element of the
// intended combine: 0 for sums, +Inf for mins, ...).
func NewPrivate[T any](workers int, identity T) *Private[T] {
	if workers < 1 {
		workers = 1
	}
	p := &Private[T]{slots: make([]privSlot[T], workers)}
	for i := range p.slots {
		p.slots[i].v = identity
	}
	return p
}

// Slot returns worker's private accumulator. Each worker index must
// have at most one concurrent user — the same single-writer contract as
// every other per-worker structure in this package.
func (p *Private[T]) Slot(worker int) *T { return &p.slots[worker].v }

// Combine folds every slot into acc with combine and returns the
// result. It must only be called once no chunk can be writing a slot —
// i.e. after the owning loop task has fully completed.
func (p *Private[T]) Combine(acc T, combine func(T, T) T) T {
	for i := range p.slots {
		acc = combine(acc, p.slots[i].v)
	}
	return acc
}
