// Package alloc provides the task-memory allocators of paper §4. After
// the dependency system and the scheduler are optimized, memory
// allocation becomes the next bottleneck: general-purpose allocators that
// serialize every request throttle task creation. The paper swaps the
// system allocator for jemalloc; here the contrast is reproduced with two
// allocators behind one interface:
//
//   - Pooled: per-worker free lists refilled in batches from a shared
//     arena, emulating jemalloc's thread caches (the "optimized" variant).
//   - Serial: every allocation and free takes one global lock and pays a
//     simulated metadata cost, emulating a serializing system allocator
//     (the "w/o jemalloc" variant).
//
// Go's own allocator is already scalable, which would hide the paper's
// bottleneck entirely; the Serial allocator deliberately reintroduces it
// so the ablation benchmarks can measure its impact.
package alloc

import "sync"

// Allocator hands out and recycles objects of type T for workers
// identified by index (0..workers; the last index is the external
// submitter slot).
type Allocator[T any] interface {
	Get(worker int) *T
	Put(worker int, obj *T)
	Name() string
}

// Pooled is the scalable allocator: each worker owns a private free list
// and touches the shared arena only to move batches, amortizing the lock
// over batchSize objects (jemalloc's tcache flush/fill, structurally).
type Pooled[T any] struct {
	batch  int
	local  []poolSlot[T]
	mu     sync.Mutex
	global []*T
}

type poolSlot[T any] struct {
	free []*T
	_    [40]byte
}

// NewPooled returns a pooled allocator for workers+1 threads with the
// given refill batch size (0 selects a default of 64).
func NewPooled[T any](workers, batch int) *Pooled[T] {
	if batch <= 0 {
		batch = 64
	}
	return &Pooled[T]{batch: batch, local: make([]poolSlot[T], workers+1)}
}

// Name implements Allocator.
func (p *Pooled[T]) Name() string { return "pooled" }

// Get returns a zeroed-or-recycled object. The caller is responsible for
// resetting recycled state (the runtime's Task.reset does).
func (p *Pooled[T]) Get(worker int) *T {
	l := &p.local[worker]
	if n := len(l.free); n > 0 {
		obj := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return obj
	}
	// Refill from the global arena.
	p.mu.Lock()
	take := p.batch
	if take > len(p.global) {
		take = len(p.global)
	}
	if take > 0 {
		cut := len(p.global) - take
		l.free = append(l.free, p.global[cut:]...)
		clearPtrs(p.global[cut:])
		p.global = p.global[:cut]
	}
	p.mu.Unlock()
	if n := len(l.free); n > 0 {
		obj := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return obj
	}
	return new(T)
}

// Put recycles an object into the worker's free list, flushing half the
// list to the global arena when it overfills.
func (p *Pooled[T]) Put(worker int, obj *T) {
	l := &p.local[worker]
	l.free = append(l.free, obj)
	if len(l.free) >= 2*p.batch {
		cut := len(l.free) - p.batch
		p.mu.Lock()
		p.global = append(p.global, l.free[cut:]...)
		p.mu.Unlock()
		clearPtrs(l.free[cut:])
		l.free = l.free[:cut]
	}
}

func clearPtrs[T any](s []*T) {
	for i := range s {
		s[i] = nil
	}
}

// Serial emulates a serializing general-purpose allocator: one global
// mutex guards every operation, plus a small constant amount of metadata
// work under the lock (free-list threading), which is what turns it into
// a scalability bottleneck on many-core runs.
type Serial[T any] struct {
	mu   sync.Mutex
	free []*T
	// meta simulates allocator bookkeeping performed under the lock.
	meta [8]uint64
}

// NewSerial returns the serializing allocator.
func NewSerial[T any]() *Serial[T] { return &Serial[T]{} }

// Name implements Allocator.
func (s *Serial[T]) Name() string { return "serial" }

// Get implements Allocator.
func (s *Serial[T]) Get(worker int) *T {
	s.mu.Lock()
	s.bookkeep()
	var obj *T
	if n := len(s.free); n > 0 {
		obj = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	s.mu.Unlock()
	if obj == nil {
		obj = new(T)
	}
	return obj
}

// Put implements Allocator.
func (s *Serial[T]) Put(worker int, obj *T) {
	s.mu.Lock()
	s.bookkeep()
	s.free = append(s.free, obj)
	s.mu.Unlock()
}

// bookkeep performs a few dependent memory operations under the lock,
// standing in for size-class lookup and free-list threading.
func (s *Serial[T]) bookkeep() {
	x := s.meta[0]
	for i := range s.meta {
		x = x*2654435761 + s.meta[i]
		s.meta[i] = x
	}
}

var (
	_ Allocator[int] = (*Pooled[int])(nil)
	_ Allocator[int] = (*Serial[int])(nil)
)
