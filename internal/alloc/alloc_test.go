package alloc

import (
	"sync"
	"testing"
)

type obj struct {
	id  int
	pad [4]int64
}

func TestPooledRecycles(t *testing.T) {
	p := NewPooled[obj](2, 4)
	a := p.Get(0)
	a.id = 99
	p.Put(0, a)
	b := p.Get(0)
	if b != a {
		t.Fatal("pooled allocator did not recycle the local object")
	}
}

func TestPooledDistinctUntilFreed(t *testing.T) {
	p := NewPooled[obj](2, 4)
	seen := map[*obj]bool{}
	for i := 0; i < 100; i++ {
		o := p.Get(0)
		if seen[o] {
			t.Fatal("allocator returned a live object twice")
		}
		seen[o] = true
	}
}

func TestPooledGlobalFlowBetweenWorkers(t *testing.T) {
	// Worker 0 frees enough objects to flush to the global arena; worker
	// 1 must then be able to refill from it.
	p := NewPooled[obj](2, 4)
	objs := make([]*obj, 16)
	for i := range objs {
		objs[i] = p.Get(0)
	}
	for _, o := range objs {
		p.Put(0, o)
	}
	recycled := 0
	for i := 0; i < 16; i++ {
		o := p.Get(1)
		for _, old := range objs {
			if o == old {
				recycled++
				break
			}
		}
	}
	if recycled == 0 {
		t.Fatal("no objects flowed through the global arena to worker 1")
	}
}

func TestSerialRecycles(t *testing.T) {
	s := NewSerial[obj]()
	a := s.Get(0)
	s.Put(0, a)
	if b := s.Get(1); b != a {
		t.Fatal("serial allocator did not recycle")
	}
}

func TestConcurrentChurn(t *testing.T) {
	for _, alloc := range []Allocator[obj]{NewPooled[obj](4, 8), NewSerial[obj]()} {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				held := make([]*obj, 0, 8)
				for i := 0; i < 2000; i++ {
					o := alloc.Get(id)
					o.id = id
					held = append(held, o)
					if len(held) == cap(held) {
						for _, h := range held {
							if h.id != id {
								t.Errorf("%s: object shared between workers while live", alloc.Name())
							}
							alloc.Put(id, h)
						}
						held = held[:0]
					}
				}
				for _, h := range held {
					alloc.Put(id, h)
				}
			}(w)
		}
		wg.Wait()
	}
}

func BenchmarkPooledGetPut(b *testing.B) {
	p := NewPooled[obj](1, 64)
	for i := 0; i < b.N; i++ {
		o := p.Get(0)
		p.Put(0, o)
	}
}

func BenchmarkSerialGetPut(b *testing.B) {
	s := NewSerial[obj]()
	for i := 0; i < b.N; i++ {
		o := s.Get(0)
		s.Put(0, o)
	}
}
