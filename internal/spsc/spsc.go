// Package spsc provides the bounded wait-free single-producer
// single-consumer queue used by the synchronized scheduler to decouple
// task insertion from scheduling (paper §3.1). Ready tasks are buffered
// here by creator threads and drained in batch by whichever worker owns
// the scheduler lock, so contention among consumers never slows down the
// producing core.
//
// The implementation is a classic power-of-two ring with cached
// positions: the producer caches the consumer index and refreshes it only
// when the ring looks full (and symmetrically for the consumer), so in
// steady state each side touches a single shared cache line per batch
// instead of per element.
package spsc

import "sync/atomic"

// Queue is a bounded wait-free SPSC ring buffer. Exactly one goroutine
// may call Push and exactly one may call Pop/ConsumeAll; the two sides
// may run concurrently. The zero value is not usable; use New.
type Queue[T any] struct {
	head     atomic.Uint64 // next slot to pop; owned by consumer
	_        [56]byte
	tail     atomic.Uint64 // next slot to push; owned by producer
	_        [56]byte
	headMemo uint64 // producer's cached view of head
	_        [56]byte
	tailMemo uint64 // consumer's cached view of tail
	_        [56]byte
	mask     uint64
	buf      []T
}

// New returns a queue with capacity for at least size elements (rounded
// up to a power of two, minimum 2).
func New[T any](size int) *Queue[T] {
	n := 2
	for n < size {
		n <<= 1
	}
	return &Queue[T]{mask: uint64(n - 1), buf: make([]T, n)}
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Push appends v and reports whether there was room. Producer-side only.
func (q *Queue[T]) Push(v T) bool {
	t := q.tail.Load()
	if t-q.headMemo > q.mask {
		// Ring looks full under the cached view; refresh it.
		q.headMemo = q.head.Load()
		if t-q.headMemo > q.mask {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// Pop removes and returns the oldest element. Consumer-side only.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tailMemo {
		q.tailMemo = q.tail.Load()
		if h == q.tailMemo {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // release the reference for the GC
	q.head.Store(h + 1)
	return v, true
}

// ConsumeAll pops every element currently visible and passes each to fn,
// returning the number consumed. Consumer-side only. Elements pushed
// concurrently with the call may or may not be consumed.
func (q *Queue[T]) ConsumeAll(fn func(T)) int {
	var zero T
	h := q.head.Load()
	t := q.tail.Load()
	n := 0
	for ; h != t; h++ {
		v := q.buf[h&q.mask]
		q.buf[h&q.mask] = zero
		q.head.Store(h + 1)
		fn(v)
		n++
	}
	return n
}

// Len returns a racy snapshot of the number of queued elements; it is
// exact only when producer and consumer are quiescent.
func (q *Queue[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Empty reports whether the queue appears empty (racy snapshot).
func (q *Queue[T]) Empty() bool { return q.Len() <= 0 }
