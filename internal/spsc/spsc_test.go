package spsc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopSequential(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed with room available", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop() = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
}

func TestBoundedCapacity(t *testing.T) {
	q := New[int](4)
	n := 0
	for q.Push(n) {
		n++
		if n > q.Cap() {
			t.Fatal("pushed more elements than capacity")
		}
	}
	if n != q.Cap() {
		t.Fatalf("accepted %d elements, capacity %d", n, q.Cap())
	}
	// Drain one; exactly one more push must fit.
	if _, ok := q.Pop(); !ok {
		t.Fatal("Pop failed on full queue")
	}
	if !q.Push(99) {
		t.Fatal("Push failed after Pop made room")
	}
	if q.Push(100) {
		t.Fatal("Push succeeded past capacity")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128},
	} {
		if got := New[int](tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestConcurrentFIFO(t *testing.T) {
	// A single producer pushes a strictly increasing sequence while a
	// single consumer pops; the consumer must observe the exact sequence.
	q := New[int](64)
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if q.Push(i) {
				i++
			}
		}
	}()
	next := 0
	for next < total {
		if v, ok := q.Pop(); ok {
			if v != next {
				t.Errorf("out of order: got %d want %d", v, next)
				break
			}
			next++
		}
	}
	wg.Wait()
}

func TestConsumeAllBatches(t *testing.T) {
	q := New[int](128)
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if q.Push(i) {
				i++
			}
		}
	}()
	next := 0
	for next < total {
		q.ConsumeAll(func(v int) {
			if v != next {
				t.Errorf("out of order: got %d want %d", v, next)
			}
			next++
		})
	}
	wg.Wait()
	if n := q.ConsumeAll(func(int) {}); n != 0 {
		t.Fatalf("queue not drained: %d left", n)
	}
}

func TestPointerReleaseOnPop(t *testing.T) {
	// Popped slots must drop their reference so the GC can reclaim items.
	q := New[*int](4)
	v := new(int)
	q.Push(v)
	q.Pop()
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatal("popped slot still holds a reference")
		}
	}
}

func TestQuickFIFOProperty(t *testing.T) {
	// Property: for any interleaving of pushes (values 0..n-1) and pops,
	// the popped sequence is a prefix-respecting FIFO of the pushed one.
	f := func(sizes []uint8) bool {
		q := New[int](8)
		pushed, popped := 0, 0
		for _, s := range sizes {
			k := int(s % 8)
			for i := 0; i < k; i++ {
				if q.Push(pushed) {
					pushed++
				}
			}
			for i := 0; i < k/2; i++ {
				if v, ok := q.Pop(); ok {
					if v != popped {
						return false
					}
					popped++
				}
			}
		}
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			if v != popped {
				return false
			}
			popped++
		}
		return pushed == popped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPopSequential(b *testing.B) {
	q := New[int](1024)
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkPushPopPipelined(b *testing.B) {
	q := New[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; {
			if q.Push(i) {
				i++
			}
		}
	}()
	for n := 0; n < b.N; {
		if _, ok := q.Pop(); ok {
			n++
		}
	}
	<-done
}
