package asm

import (
	"math/bits"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeliverMergesFlags(t *testing.T) {
	var s State
	before, after := s.Deliver(0b0101)
	if before != 0 || after != 0b0101 {
		t.Fatalf("Deliver: before=%b after=%b", before, after)
	}
	before, after = s.Deliver(0b0010)
	if before != 0b0101 || after != 0b0111 {
		t.Fatalf("second Deliver: before=%b after=%b", before, after)
	}
	if s.Load() != 0b0111 {
		t.Fatalf("Load = %b", s.Load())
	}
}

func TestRedundantDeliveryDetected(t *testing.T) {
	var s State
	s.Deliver(0b1)
	before, after := s.Deliver(0b1)
	if before != after {
		t.Fatal("redundant delivery not detectable via before==after")
	}
}

func TestTransitionedExactlyOnceSequential(t *testing.T) {
	var s State
	const cond Flags = 0b11
	fired := 0
	for _, m := range []Flags{0b01, 0b100, 0b10, 0b10} {
		b, a := s.Deliver(m)
		if Transitioned(b, a, cond) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("condition fired %d times, want 1", fired)
	}
}

func TestTransitionedExactlyOnceConcurrent(t *testing.T) {
	// The central exactly-once property: when many goroutines deliver
	// single-flag messages, exactly one of them observes the completion
	// of any given conjunction.
	const cond Flags = 0b1111
	for round := 0; round < 200; round++ {
		var s State
		var fired int32
		var mu sync.Mutex
		var wg sync.WaitGroup
		for b := 0; b < 4; b++ {
			wg.Add(1)
			go func(bit int) {
				defer wg.Done()
				before, after := s.Deliver(1 << bit)
				if Transitioned(before, after, cond) {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}(b)
		}
		wg.Wait()
		if fired != 1 {
			t.Fatalf("round %d: condition fired %d times, want exactly 1", round, fired)
		}
	}
}

func TestQuickMonotonicity(t *testing.T) {
	// Property: flags only grow; after any sequence of deliveries the
	// state equals the union of all messages (Definition 2.2).
	f := func(msgs []uint64) bool {
		var s State
		var union Flags
		for _, m := range msgs {
			before, after := s.Deliver(Flags(m))
			if after&before != before { // a flag was cleared
				return false
			}
			union |= Flags(m)
			if after != union {
				return false
			}
		}
		return s.Load() == union
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeliveryBoundedByFlagCount(t *testing.T) {
	// Wait-freedom bound (Lemma 2.3): the number of effective (non
	// redundant) deliveries an ASM can receive is bounded by |F| — each
	// effective delivery sets at least one new bit.
	f := func(msgs []uint64) bool {
		var s State
		effective := 0
		for _, m := range msgs {
			if m == 0 {
				continue
			}
			before, after := s.Deliver(Flags(m))
			if before != after {
				effective++
			}
		}
		return effective <= bits.OnesCount64(uint64(s.Load()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxLIFO(t *testing.T) {
	var mb Mailbox[int]
	mb.Push(1, 0b1)
	mb.Push(2, 0b10)
	if mb.Len() != 2 || mb.Empty() {
		t.Fatal("Len/Empty wrong after pushes")
	}
	m, ok := mb.Pop()
	if !ok || m.To != 2 || m.Bits != 0b10 {
		t.Fatalf("Pop = %+v,%v", m, ok)
	}
	m, _ = mb.Pop()
	if m.To != 1 {
		t.Fatalf("Pop = %+v", m)
	}
	if _, ok := mb.Pop(); ok || !mb.Empty() {
		t.Fatal("mailbox not empty after draining")
	}
}

func TestFlagsHas(t *testing.T) {
	f := Flags(0b1010)
	if !f.Has(0b1000) || !f.Has(0b1010) || f.Has(0b1) || f.Has(0b1011) {
		t.Fatal("Has misbehaves")
	}
	if !f.Has(0) {
		t.Fatal("every set contains the empty set")
	}
}
