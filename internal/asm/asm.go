// Package asm implements the Atomic State Machine (ASM) concept from
// paper §2.2–2.3: a finite state machine encoded in an atomic flag word
// whose only transition is the delivery of a message that sets one or
// more previously unset flags.
//
// Because flags can only be set (never cleared) and the word is finite,
// every access receives at most |F| non-empty messages over its lifetime,
// which bounds the number of atomic update conflicts and makes delivery
// wait-free (Lemma 2.3). The dependency system in internal/deps builds
// its propagation protocol on these primitives.
package asm

import "sync/atomic"

// Flags is the set F of state bits of one Atomic State Machine.
type Flags uint64

// State is the atomic flag word of one ASM instance. The zero value is
// the empty starting state (F_a = ∅).
type State struct {
	bits atomic.Uint64
}

// Load returns the current flag set.
func (s *State) Load() Flags { return Flags(s.bits.Load()) }

// Deliver atomically merges the message m into the state and returns the
// flag word before and after the transition. The paper's restrictions
// (m non-empty, m disjoint from the current state) guarantee progress;
// redundant deliveries (m already set) are permitted here and detected by
// before == after, so callers can make idempotent notifications cheap.
//
// The implementation is the CAS loop of the paper's Lemma 2.3: a CAS can
// fail only because another delivery set at least one more flag, and with
// a finite set-once flag word there are at most |F| such conflicts, so
// delivery is wait-free. (A fetch-or would be equivalent; the explicit
// loop matches the proof and sidesteps a Go 1.24.0 register-allocation
// bug observed when atomic.Uint64.Or is inlined into a method call
// argument list.)
func (s *State) Deliver(m Flags) (before, after Flags) {
	for {
		old := s.bits.Load()
		if old&uint64(m) == uint64(m) {
			return Flags(old), Flags(old) // fully redundant
		}
		if s.bits.CompareAndSwap(old, old|uint64(m)) {
			return Flags(old), Flags(old) | m
		}
	}
}

// Has reports whether every flag in want is set in f.
func (f Flags) Has(want Flags) bool { return f&want == want }

// Transitioned reports whether the delivery that moved the state from
// before to after completed the conjunction cond: all bits of cond are
// set in after and at least one of them was newly set. Because flags are
// set-once, exactly one delivery in any concurrent history observes the
// transition for a given cond, which is how the dependency system makes
// each propagation action fire exactly once without locks.
func Transitioned(before, after, cond Flags) bool {
	return after&cond == cond && before&cond != cond
}

// Message is one data-access message (paper Listing 2): flags to set on
// the target ASM. The "flags after propagation" half of the paper's
// message (delivery notification to the originator) is expressed by the
// dependency layer pushing a follow-up message, keeping this type simple.
type Message[T any] struct {
	To   T
	Bits Flags
}

// Mailbox is the per-worker container of undelivered messages (paper
// Fig. 2). It is strictly thread-local: each worker drains its own
// mailbox after triggering a delivery cascade. A slice-backed LIFO is
// used; delivery order between independent messages is irrelevant
// because flag sets only grow.
type Mailbox[T any] struct {
	queue []Message[T]
}

// Push enqueues a message for later delivery.
func (mb *Mailbox[T]) Push(to T, bits Flags) {
	mb.queue = append(mb.queue, Message[T]{To: to, Bits: bits})
}

// Pop removes and returns the most recently pushed message.
func (mb *Mailbox[T]) Pop() (Message[T], bool) {
	if len(mb.queue) == 0 {
		var zero Message[T]
		return zero, false
	}
	m := mb.queue[len(mb.queue)-1]
	mb.queue = mb.queue[:len(mb.queue)-1]
	return m, true
}

// Empty reports whether no messages are pending.
func (mb *Mailbox[T]) Empty() bool { return len(mb.queue) == 0 }

// Len returns the number of pending messages.
func (mb *Mailbox[T]) Len() int { return len(mb.queue) }
