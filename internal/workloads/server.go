package workloads

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Server is the sustained-traffic scenario the sharded root-submission
// path exists for: many goroutines concurrently submit small dependent
// task graphs (requests) against an overlapping key space, through the
// runtime's public Submit API rather than one nesting task. Each
// request is a two-task chain — a compute task producing a delta into a
// request-private staging cell, and an apply task folding the staged
// delta into one of the shared keys — so every request exercises a
// cross-root dependency (staging cell) plus contended root chains (the
// keys).
//
// Deltas are small integers, so float64 key totals are exact and the
// parallel result must match the serial reference bit-for-bit no matter
// how the concurrent submissions interleave: per-key addition is
// commutative across requests, while the in/out chain inside each
// request checks that root-level dependencies order its two tasks.
type Server struct {
	nkeys, submitters, requests int

	keys    []float64
	staging []float64 // one cell per request
}

// NewServer builds a server scenario over nkeys keys, driven by
// `submitters` concurrent client goroutines issuing `requests` requests
// in total.
func NewServer(nkeys, submitters, requests int) *Server {
	if nkeys < 1 {
		nkeys = 1
	}
	if submitters < 1 {
		submitters = 1
	}
	if requests < submitters {
		requests = submitters
	}
	s := &Server{
		nkeys:      nkeys,
		submitters: submitters,
		requests:   requests,
		keys:       make([]float64, nkeys),
		staging:    make([]float64, requests),
	}
	s.Reset()
	return s
}

// Name implements Workload.
func (s *Server) Name() string { return "server" }

// Reset implements Workload. Integer-valued keys keep sums exact.
func (s *Server) Reset() {
	for i := range s.keys {
		s.keys[i] = float64(1 + i%9)
	}
	clear(s.staging)
}

// reqKey and reqDelta derive a request's target key and integer delta
// deterministically, so the serial reference replays the same traffic.
func (s *Server) reqKey(r int) int { return int(uint64(r) * 2654435761 % uint64(s.nkeys)) }

func (s *Server) reqDelta(r int) float64 { return float64(1 + (r*7+3)%11) }

// Run implements Workload: submitters goroutines issue their share of
// the requests concurrently, each request as two dependent root
// submissions, and every handle is awaited before returning.
func (s *Server) Run(rt *core.Runtime) error {
	var wg sync.WaitGroup
	errs := make([]error, s.submitters)
	for g := 0; g < s.submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			handles := make([]*core.Handle, 0, 2*(s.requests/s.submitters+1))
			for r := g; r < s.requests; r += s.submitters {
				r := r
				stage := &s.staging[r]
				key := &s.keys[s.reqKey(r)]
				handles = append(handles, rt.Submit(func(*core.Ctx) (any, error) {
					*stage = s.reqDelta(r)
					return nil, nil
				}, core.Out(stage)))
				handles = append(handles, rt.Submit(func(*core.Ctx) (any, error) {
					*key += *stage
					return nil, nil
				}, core.In(stage), core.InOut(key)))
			}
			for _, h := range handles {
				if _, err := h.Wait(nil); err != nil && errs[g] == nil {
					errs[g] = err
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunSerial implements Workload: the same traffic applied in request
// order on one goroutine.
func (s *Server) RunSerial() {
	for r := 0; r < s.requests; r++ {
		s.staging[r] = s.reqDelta(r)
		s.keys[s.reqKey(r)] += s.staging[r]
	}
}

// Verify implements Workload: every key must hold its initial value
// plus exactly the deltas of the requests that targeted it — additions
// of integer-valued float64s commute exactly, so any lost, duplicated
// or reordered-with-overlap update is a mismatch.
func (s *Server) Verify() error {
	for k := 0; k < s.nkeys; k++ {
		want := float64(1 + k%9)
		for r := 0; r < s.requests; r++ {
			if s.reqKey(r) == k {
				want += s.reqDelta(r)
			}
		}
		if s.keys[k] != want {
			return fmt.Errorf("server: key %d = %v, want %v", k, s.keys[k], want)
		}
	}
	for r := 0; r < s.requests; r++ {
		if s.staging[r] != s.reqDelta(r) {
			return fmt.Errorf("server: request %d staged %v, want %v", r, s.staging[r], s.reqDelta(r))
		}
	}
	return nil
}

// TotalWork implements Workload: two element updates per request.
func (s *Server) TotalWork() float64 { return float64(2 * s.requests) }

// Tasks implements Workload: two tasks per request.
func (s *Server) Tasks() int { return 2 * s.requests }

var _ Workload = (*Server)(nil)
