package workloads

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counter"
)

// Server is the sustained-traffic scenario the sharded root-submission
// path exists for: many goroutines concurrently submit small dependent
// task graphs (requests) against an overlapping key space, through the
// runtime's public Submit API rather than one nesting task. Each
// request is a two-task chain — a compute task producing a delta into a
// request-private staging cell, and an apply task folding the staged
// delta into one of the shared keys — so every request exercises a
// cross-root dependency (staging cell) plus contended root chains (the
// keys).
//
// Deltas are small integers, so float64 key totals are exact and the
// parallel result must match the serial reference bit-for-bit no matter
// how the concurrent submissions interleave: per-key addition is
// commutative across requests, while the in/out chain inside each
// request checks that root-level dependencies order its two tasks.
type Server struct {
	nkeys, submitters, requests int

	keys    []float64
	staging []float64 // one cell per request
}

// NewServer builds a server scenario over nkeys keys, driven by
// `submitters` concurrent client goroutines issuing `requests` requests
// in total.
func NewServer(nkeys, submitters, requests int) *Server {
	if nkeys < 1 {
		nkeys = 1
	}
	if submitters < 1 {
		submitters = 1
	}
	if requests < submitters {
		requests = submitters
	}
	s := &Server{
		nkeys:      nkeys,
		submitters: submitters,
		requests:   requests,
		keys:       make([]float64, nkeys),
		staging:    make([]float64, requests),
	}
	s.Reset()
	return s
}

// Name implements Workload.
func (s *Server) Name() string { return "server" }

// Reset implements Workload. Integer-valued keys keep sums exact.
func (s *Server) Reset() {
	for i := range s.keys {
		s.keys[i] = float64(1 + i%9)
	}
	clear(s.staging)
}

// reqKey and reqDelta derive a request's target key and integer delta
// deterministically, so the serial reference replays the same traffic.
func (s *Server) reqKey(r int) int { return int(uint64(r) * 2654435761 % uint64(s.nkeys)) }

func (s *Server) reqDelta(r int) float64 { return float64(1 + (r*7+3)%11) }

// Run implements Workload: submitters goroutines issue their share of
// the requests concurrently, each request as two dependent root
// submissions, and every handle is awaited before returning.
func (s *Server) Run(rt *core.Runtime) error {
	var wg sync.WaitGroup
	errs := make([]error, s.submitters)
	for g := 0; g < s.submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			handles := make([]*core.Handle, 0, 2*(s.requests/s.submitters+1))
			for r := g; r < s.requests; r += s.submitters {
				r := r
				stage := &s.staging[r]
				key := &s.keys[s.reqKey(r)]
				handles = append(handles, rt.Submit(func(*core.Ctx) (any, error) {
					*stage = s.reqDelta(r)
					return nil, nil
				}, core.Out(stage)))
				handles = append(handles, rt.Submit(func(*core.Ctx) (any, error) {
					*key += *stage
					return nil, nil
				}, core.In(stage), core.InOut(key)))
			}
			for _, h := range handles {
				if _, err := h.Wait(nil); err != nil && errs[g] == nil {
					errs[g] = err
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunSerial implements Workload: the same traffic applied in request
// order on one goroutine.
func (s *Server) RunSerial() {
	for r := 0; r < s.requests; r++ {
		s.staging[r] = s.reqDelta(r)
		s.keys[s.reqKey(r)] += s.staging[r]
	}
}

// Verify implements Workload: every key must hold its initial value
// plus exactly the deltas of the requests that targeted it — additions
// of integer-valued float64s commute exactly, so any lost, duplicated
// or reordered-with-overlap update is a mismatch.
func (s *Server) Verify() error {
	for k := 0; k < s.nkeys; k++ {
		want := float64(1 + k%9)
		for r := 0; r < s.requests; r++ {
			if s.reqKey(r) == k {
				want += s.reqDelta(r)
			}
		}
		if s.keys[k] != want {
			return fmt.Errorf("server: key %d = %v, want %v", k, s.keys[k], want)
		}
	}
	for r := 0; r < s.requests; r++ {
		if s.staging[r] != s.reqDelta(r) {
			return fmt.Errorf("server: request %d staged %v, want %v", r, s.staging[r], s.reqDelta(r))
		}
	}
	return nil
}

// TotalWork implements Workload: two element updates per request.
func (s *Server) TotalWork() float64 { return float64(2 * s.requests) }

// Tasks implements Workload: two tasks per request.
func (s *Server) Tasks() int { return 2 * s.requests }

var _ Workload = (*Server)(nil)

// QoSServer is the two-class quality-of-service extension of Server:
// a latency story on top of the throughput story. A small population of
// *interactive* requests (one closed-loop client, request latency
// measured per request) runs against a sustained flood of *batch*
// requests (several clients, each keeping a deep window of outstanding
// request chains), both classes issuing the same two-task
// compute→apply chains over one shared, overlapping key table. With
// class priorities enabled the interactive chain carries
// core.MaxPriority and jumps the scheduler's ready queue ahead of the
// batch backlog; priority-blind, it waits its FIFO turn behind the
// whole flood — the difference is the interactive tail latency, which
// the per-class histograms record.
//
// Dependency semantics are identical in both modes (priorities order
// only *ready* tasks), so the final key table is exact and
// mode-independent: Verify replays the deterministic traffic serially.
// An interactive request whose key collides with an in-flight batch
// chain still waits for that chain through the dependency system; in
// deadline mode (SetDeadline) the interactive chain carries the
// inheritance clause, so a colliding queued batch predecessor is
// promoted to the interactive level instead of waiting its FIFO turn
// behind the flood (see DESIGN.md on priority inversion). The key
// table is sized so collisions stay rare enough not to dominate the
// tail either way.
//
// Deadline mode additionally stamps each interactive chain with an
// absolute deadline of "issue + d" — EDF ordering within the top
// priority class on WithEDF runtimes — and counts a *miss* whenever an
// interactive request's server-side completion exceeds its deadline,
// in both scheduling modes, so priority-blind and EDF+inheritance runs
// report comparable InteractiveMissRate figures.
type QoSServer struct {
	nkeys         int
	batchClients  int
	interRequests int
	spin          int
	usePriority   bool

	// deadline, when positive, enables deadline mode: interactive
	// chains carry Deadline/Inherit clauses (the latter only with
	// usePriority) and misses are counted against it.
	deadline  time.Duration
	interMiss atomic.Int64

	// The batch class is stop-controlled, not count-controlled: each
	// client floods request chains through its window until the
	// interactive stream has completed (plus a per-client cap as a
	// memory guard), so every interactive sample is taken under load no
	// matter how fast either class runs on the host. The traffic is
	// deterministic *per request index*, so Verify stays exact: it
	// replays exactly the per-client prefixes that were issued.
	batchCap    int // per client
	batchIssued []int
	stop        atomic.Bool

	keys       []float64
	batchStage []float64 // batchClients * batchCap cells
	interStage []float64

	// Interactive and Batch record per-request latency in nanoseconds,
	// one histogram per class: from the client's submission start to
	// the *server-side* completion of the request's apply task,
	// recorded by the task body itself into the executing worker's
	// histogram shard (allocation-free). Server-side completion — not
	// the client goroutine's own wake-up — is the quantity the
	// scheduler controls: on a host whose cores are saturated by the
	// worker pool, the client's wake-up adds tens of milliseconds of
	// Go-scheduler noise that is identical in both scheduling modes
	// and says nothing about queueing policy.
	Interactive *counter.Histogram
	Batch       *counter.Histogram

	// Elapsed is the wall time of the last Run; with the batch class
	// dominating the request count, Elapsed/batchRequests is the batch
	// throughput cost the QoS layer must not degrade.
	Elapsed time.Duration

	// interArrivals, when set, switches the interactive client from
	// closed-loop (one outstanding request, latency from issue time) to
	// open-loop: requests are issued on the schedule regardless of
	// completions, and each latency is measured from its *scheduled*
	// instant, so scheduler-induced queueing shows up in the tail
	// instead of throttling the offered load (no coordinated omission).
	interArrivals Arrivals
}

const (
	// qosBatchWindow is each batch client's outstanding-request window:
	// deep enough that the ready backlog outlasts a client goroutine's
	// worst-case scheduling stall on a saturated host (so the flood
	// never collapses between refills), bounded so the live-task
	// population reaches steady state.
	qosBatchWindow = 64
	// qosBatchCapPerInter is the per-client memory guard on the
	// stop-controlled batch flood: at most this many batch requests per
	// interactive request per client (sized far above what any host
	// drains during one interactive round trip, so the stop flag — not
	// the cap — ends the flood).
	qosBatchCapPerInter = 400
	// qosSpinIters sizes each task's busy work (dependent FP
	// operations, ~2ns each): large enough that queue-drain time — what
	// the interactive class waits for when priority-blind — dominates
	// the worker pool's scheduling noise on small hosts, small enough
	// that a request is still an interactive-scale unit of work
	// (~100µs).
	qosSpinIters = 40000
)

// NewQoSServer builds a two-class scenario over nkeys shared keys:
// interRequests interactive requests against batchClients batch
// clients flooding until the interactive stream completes.
// usePriority selects the QoS mode; false is the priority-blind
// baseline the latency benchmarks compare against.
func NewQoSServer(nkeys, interRequests, batchClients int, usePriority bool) *QoSServer {
	if nkeys < 1 {
		nkeys = 1
	}
	if interRequests < 1 {
		interRequests = 1
	}
	if batchClients < 1 {
		batchClients = 1
	}
	// A client is a goroutine with its own outstanding window and
	// histogram shard; beyond a machine's worth of them the scenario
	// only measures Go-scheduler thrash.
	if batchClients > 64 {
		batchClients = 64
	}
	s := &QoSServer{
		nkeys:         nkeys,
		batchClients:  batchClients,
		interRequests: interRequests,
		batchCap:      qosBatchCapPerInter * interRequests,
		spin:          qosSpinIters,
		usePriority:   usePriority,
	}
	s.batchIssued = make([]int, batchClients)
	s.keys = make([]float64, nkeys)
	s.batchStage = make([]float64, batchClients*s.batchCap)
	s.interStage = make([]float64, s.interRequests)
	// Recorders are the workers executing the apply tasks; the shard
	// count is re-sized to the runtime's worker count at Run.
	s.Interactive = counter.NewHistogram(1)
	s.Batch = counter.NewHistogram(1)
	s.Reset()
	return s
}

// Name implements Workload.
func (s *QoSServer) Name() string { return "qos" }

// Reset implements Workload.
func (s *QoSServer) Reset() {
	for i := range s.keys {
		s.keys[i] = float64(1 + i%9)
	}
	clear(s.batchStage)
	clear(s.interStage)
	clear(s.batchIssued)
	s.stop.Store(false)
	s.Interactive.Reset()
	s.Batch.Reset()
	s.interMiss.Store(0)
	s.Elapsed = 0
}

// SetDeadline enables deadline mode: every interactive request is
// stamped with an absolute scheduling deadline of "issue instant + d"
// (plus the inheritance clause when the server runs with priorities),
// and completions past the deadline count as misses. d <= 0 restores
// the deadline-free default.
func (s *QoSServer) SetDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.deadline = d
}

// InteractiveMisses returns how many interactive requests of the last
// Run completed after their deadline (0 outside deadline mode).
func (s *QoSServer) InteractiveMisses() int { return int(s.interMiss.Load()) }

// InteractiveMissRate returns the fraction of interactive requests
// that missed their deadline in the last Run.
func (s *QoSServer) InteractiveMissRate() float64 {
	return float64(s.interMiss.Load()) / float64(s.interRequests)
}

// Deterministic per-request traffic, replayable by the serial
// reference. Both classes hash into the same key table — overlapping
// keys are the point of the scenario. A batch request is identified by
// its global index r = client*batchCap + i, so the issued prefixes are
// replayable per client no matter when the stop flag fired.
func (s *QoSServer) batchKey(r int) int { return int(uint64(r) * 2654435761 % uint64(s.nkeys)) }

func (s *QoSServer) batchDelta(r int) float64 { return float64(1 + (r*7+3)%11) }

func (s *QoSServer) interKey(r int) int {
	return int(uint64(r*40503+7) * 2654435761 % uint64(s.nkeys))
}

func (s *QoSServer) interDelta(r int) float64 { return float64(1 + (r*5+1)%7) }

// spinWork burns n dependent floating-point operations seeded by a
// positive value and returns exactly zero — as Floor(1/(x+2)) of an
// x ≥ 1, which the compiler cannot fold away — so task bodies can add
// it to their stores without perturbing the exact integer arithmetic
// Verify depends on.
func spinWork(seed float64, n int) float64 {
	x := seed + 2
	for i := 0; i < n; i++ {
		x = x*0.999999 + 1
	}
	return math.Floor(1 / (x + 2))
}

// qosInflight tracks one submitted request chain.
type qosInflight struct {
	compute, apply *core.Handle
}

// submitChain issues one compute→apply request chain, optionally
// tagged with the interactive priority level. The apply body records
// the request's server-side latency — from t0, the request's issue (or
// open-loop scheduled) instant, to apply completion — into the
// executing worker's shard of hist. In deadline mode an interactive
// chain (inter) additionally carries an absolute deadline clause of
// "t0 + deadline" — and, with priorities on, the inheritance clause,
// so a colliding queued batch predecessor is promoted out of the flood
// — and the apply body counts a miss when its completion overruns the
// deadline.
func (s *QoSServer) submitChain(rt *core.Runtime, stage, key *float64, delta float64, pri, inter bool, hist *counter.Histogram, t0 time.Time) qosInflight {
	spin := s.spin
	dl := time.Duration(0)
	if inter {
		dl = s.deadline
	}
	var f qosInflight
	compute := func(*core.Ctx) (any, error) {
		*stage = delta + spinWork(delta, spin)
		return nil, nil
	}
	apply := func(c *core.Ctx) (any, error) {
		*key += *stage + spinWork(*stage, spin)
		lat := time.Since(t0)
		hist.Record(c.Worker(), lat.Nanoseconds())
		if dl > 0 && lat > dl {
			s.interMiss.Add(1)
		}
		return nil, nil
	}
	switch {
	case pri && dl > 0:
		abs := core.NowNS() + dl.Nanoseconds()
		f.compute = rt.Submit(compute, core.Out(stage),
			core.Priority(core.MaxPriority), core.Deadline(abs), core.Inherit())
		f.apply = rt.Submit(apply, core.In(stage), core.InOut(key),
			core.Priority(core.MaxPriority), core.Deadline(abs), core.Inherit())
	case pri:
		f.compute = rt.Submit(compute, core.Out(stage), core.Priority(core.MaxPriority))
		f.apply = rt.Submit(apply, core.In(stage), core.InOut(key), core.Priority(core.MaxPriority))
	default:
		f.compute = rt.Submit(compute, core.Out(stage))
		f.apply = rt.Submit(apply, core.In(stage), core.InOut(key))
	}
	return f
}

// await resolves a chain's handles, folding the first error into errp.
func (f *qosInflight) await(errp *error) {
	if f.apply == nil {
		return
	}
	if _, err := f.apply.Wait(nil); err != nil && *errp == nil {
		*errp = err
	}
	if _, err := f.compute.Wait(nil); err != nil && *errp == nil {
		*errp = err
	}
	f.apply, f.compute = nil, nil
}

// Run implements Workload: batch clients flood request chains through
// bounded windows until the stop flag fires, while the interactive
// client issues its requests one at a time, recording per-request
// latency; the last interactive completion raises the flag, so the
// whole interactive stream runs under load.
func (s *QoSServer) Run(rt *core.Runtime) error {
	// Size the per-worker recording shards for this runtime, reusing
	// the existing histograms (already zeroed by Reset) when the shard
	// count matches, so a caller's pre-Run reference stays live across
	// repeated runs on the same runtime.
	if w := rt.Slots(); s.Interactive.Recorders() != w {
		s.Interactive = counter.NewHistogram(w)
		s.Batch = counter.NewHistogram(w)
	}
	start := time.Now()
	errs := make([]error, s.batchClients+1)
	var wg sync.WaitGroup
	for g := 0; g < s.batchClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var win [qosBatchWindow]qosInflight
			n := 0
			// Each client always issues at least one window (so the
			// throughput and latency figures exist even on degenerate
			// runs), then keeps going until stop or its cap.
			for ; n < s.batchCap && (n < qosBatchWindow || !s.stop.Load()); n++ {
				r := g*s.batchCap + n
				i := n % qosBatchWindow
				win[i].await(&errs[g])
				win[i] = s.submitChain(rt,
					&s.batchStage[r], &s.keys[s.batchKey(r)], s.batchDelta(r), false, false, s.Batch, time.Now())
			}
			s.batchIssued[g] = n
			for i := range win {
				win[i].await(&errs[g])
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer s.stop.Store(true)
		if s.interArrivals == nil {
			// Closed loop: one outstanding request, latency from issue.
			for r := 0; r < s.interRequests; r++ {
				f := s.submitChain(rt,
					&s.interStage[r], &s.keys[s.interKey(r)], s.interDelta(r), s.usePriority, true, s.Interactive, time.Now())
				f.await(&errs[s.batchClients])
			}
			return
		}
		// Open loop: issue on the schedule without waiting for earlier
		// requests; latency origins are the scheduled instants.
		inflight := make([]qosInflight, s.interRequests)
		sched0 := time.Now()
		for r := 0; r < s.interRequests; r++ {
			i := r
			if i >= len(s.interArrivals) {
				i = len(s.interArrivals) - 1
			}
			t0 := s.interArrivals.Pace(sched0, i)
			inflight[r] = s.submitChain(rt,
				&s.interStage[r], &s.keys[s.interKey(r)], s.interDelta(r), s.usePriority, true, s.Interactive, t0)
		}
		for r := range inflight {
			inflight[r].await(&errs[s.batchClients])
		}
	}()
	wg.Wait()
	s.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetInteractiveArrivals switches the interactive client to the given
// open-loop schedule (nil restores the closed-loop default). The
// schedule should hold one entry per interactive request; a shorter
// one issues the surplus requests immediately at its last instant.
func (s *QoSServer) SetInteractiveArrivals(a Arrivals) { s.interArrivals = a }

// BatchRequests returns the number of batch requests the last Run
// issued (stop-controlled, so it varies with host speed; the traffic
// itself is deterministic per index).
func (s *QoSServer) BatchRequests() int {
	n := 0
	for _, c := range s.batchIssued {
		n += c
	}
	return n
}

// RunSerial implements Workload: the per-client issued prefixes (or,
// before any Run, nothing) plus the interactive stream, in
// deterministic order on one goroutine.
func (s *QoSServer) RunSerial() {
	for g := 0; g < s.batchClients; g++ {
		for i := 0; i < s.batchIssued[g]; i++ {
			r := g*s.batchCap + i
			s.batchStage[r] = s.batchDelta(r)
			s.keys[s.batchKey(r)] += s.batchStage[r]
		}
	}
	for r := 0; r < s.interRequests; r++ {
		s.interStage[r] = s.interDelta(r)
		s.keys[s.interKey(r)] += s.interStage[r]
	}
}

// Verify implements Workload: exact per-key totals over exactly the
// issued requests of both classes — priorities may reorder ready tasks
// but never change the outcome.
func (s *QoSServer) Verify() error {
	want := make([]float64, s.nkeys)
	for k := range want {
		want[k] = float64(1 + k%9)
	}
	for g := 0; g < s.batchClients; g++ {
		for i := 0; i < s.batchIssued[g]; i++ {
			r := g*s.batchCap + i
			want[s.batchKey(r)] += s.batchDelta(r)
			if s.batchStage[r] != s.batchDelta(r) {
				return fmt.Errorf("qos: batch request %d staged %v, want %v", r, s.batchStage[r], s.batchDelta(r))
			}
		}
	}
	for r := 0; r < s.interRequests; r++ {
		want[s.interKey(r)] += s.interDelta(r)
		if s.interStage[r] != s.interDelta(r) {
			return fmt.Errorf("qos: interactive request %d staged %v, want %v", r, s.interStage[r], s.interDelta(r))
		}
	}
	for k := 0; k < s.nkeys; k++ {
		if s.keys[k] != want[k] {
			return fmt.Errorf("qos: key %d = %v, want %v", k, s.keys[k], want[k])
		}
	}
	return nil
}

// BatchNsPerRequest returns the last Run's batch-class cost: wall time
// per issued batch request (the batch class dominates the request mix,
// so the QoS layer's overhead shows up here).
func (s *QoSServer) BatchNsPerRequest() float64 {
	n := s.BatchRequests()
	if n == 0 || s.Elapsed == 0 {
		return 0
	}
	return float64(s.Elapsed.Nanoseconds()) / float64(n)
}

// TotalWork implements Workload: two element updates per request (the
// batch side counts the last Run's issued requests, or one window per
// client before any Run).
func (s *QoSServer) TotalWork() float64 { return float64(s.Tasks()) }

// Tasks implements Workload: two tasks per request.
func (s *QoSServer) Tasks() int {
	n := s.BatchRequests()
	if n == 0 {
		n = s.batchClients * qosBatchWindow
	}
	return 2 * (n + s.interRequests)
}

var _ Workload = (*QoSServer)(nil)
