// Package workloads implements the eight benchmarks of the paper's
// evaluation (§6.1) as task graphs over the runtime's public API —
// DotProduct, Heat (Gauss-Seidel), HPCCG, a LULESH proxy, a miniAMR
// proxy, Matmul, NBody, and Cholesky — plus Server, a sustained-traffic
// scenario beyond the paper: many goroutines concurrently submitting
// small dependent request graphs through the sharded root domain.
//
// Every workload runs a constant problem size while the task granularity
// (work units per task) varies — the paper's experimental axis. Each
// provides a serial reference execution for verification: with correct
// dependencies the parallel execution must match the serial one exactly
// (or within floating-point tolerance where commutative accumulation
// makes summation order nondeterministic).
package workloads

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
)

// Workload is one benchmark instance: fixed problem size, fixed
// granularity, reusable across runs.
type Workload interface {
	// Name is the benchmark's short name ("cholesky", "heat", ...).
	Name() string
	// Reset reinitializes the data to the deterministic initial state.
	Reset()
	// Run executes one full instance through the runtime. It returns
	// the submission's aggregate error (recovered task panics, GoFn
	// errors); numerical mismatches are Verify's department.
	Run(rt *core.Runtime) error
	// RunSerial executes the reference implementation on the same data.
	RunSerial()
	// Verify checks the result of the last Run against the reference.
	// It must be called on a freshly Reset+Run instance.
	Verify() error
	// TotalWork returns the work units of one Run (the performance
	// numerator; unit: inner-loop element updates).
	TotalWork() float64
	// Tasks returns the approximate number of tasks of one Run.
	Tasks() int
}

// Grain reports work units per task, the paper's granularity axis.
func Grain(w Workload) float64 {
	t := w.Tasks()
	if t == 0 {
		return 0
	}
	return w.TotalWork() / float64(t)
}

// Size scales a workload's problem. Benchmarks interpret N as their
// natural dimension (elements, grid side, matrix side, particles) and
// Steps as the number of iterations/timesteps.
type Size struct {
	N     int
	Steps int
}

// Builder constructs a workload with a given problem size and block
// (granularity) parameter.
type Builder func(size Size, block int) Workload

// Registry maps benchmark names to builders.
var Registry = map[string]Builder{
	"dotproduct": func(s Size, b int) Workload { return NewDotProduct(s.N, b) },
	"heat":       func(s Size, b int) Workload { return NewHeat(s.N, b, s.Steps) },
	"matmul":     func(s Size, b int) Workload { return NewMatmul(s.N, b) },
	"cholesky":   func(s Size, b int) Workload { return NewCholesky(s.N, b) },
	"hpccg":      func(s Size, b int) Workload { return NewHPCCG(s.N, b, s.Steps) },
	"nbody":      func(s Size, b int) Workload { return NewNBody(s.N, b, s.Steps) },
	"lulesh":     func(s Size, b int) Workload { return NewLulesh(s.N, b, s.Steps) },
	"miniamr":    func(s Size, b int) Workload { return NewMiniAMR(s.N, b, s.Steps) },
	// server interprets N as the key count, Steps as the total request
	// count and block as the number of concurrent submitter goroutines.
	"server": func(s Size, b int) Workload { return NewServer(s.N, b, s.Steps) },
	// qos is the two-class latency-SLO scenario: N keys, Steps
	// interactive requests, block batch clients, priorities enabled.
	"qos": func(s Size, b int) Workload { return NewQoSServer(s.N, s.Steps, b, true) },
	// echo is the external-events RPC-proxy scenario: N keys, Steps
	// requests, block client goroutines, a 1ms simulated backend in
	// events (non-blocking) mode with a 64-deep window per client.
	"echo": func(s Size, b int) Workload {
		return NewEcho(s.N, b, s.Steps, 64, time.Millisecond, false)
	},
}

// Build constructs a named workload or returns an error listing the
// available names.
func Build(name string, size Size, block int) (Workload, error) {
	b, ok := Registry[name]
	if !ok {
		names := make([]string, 0, len(Registry))
		for n := range Registry {
			names = append(names, n)
		}
		return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, names)
	}
	return b(size, block), nil
}

// lcg fills dst with deterministic pseudo-random values in (0, 1),
// used for reproducible initial data across Reset calls.
func lcg(dst []float64, seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for i := range dst {
		s = s*6364136223846793005 + 1442695040888963407
		dst[i] = float64(s>>11) / float64(1<<53)
	}
}

// almostEqual compares with relative tolerance for results whose
// accumulation order is nondeterministic (commutative accesses).
func almostEqual(a, b, relTol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if a > 1 || a < -1 {
		m = a
		if m < 0 {
			m = -m
		}
	}
	return d <= relTol*m
}

// Reduction op aliases for brevity inside the workload files.
const (
	redSum = deps.OpSum
	redMax = deps.OpMax
)
