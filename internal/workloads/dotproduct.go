package workloads

import (
	"fmt"

	"repro/internal/core"
)

// DotProduct is benchmark (1) of §6.1: the dot product of two arrays as
// one work-sharing loop task with a reduction access aggregating the
// per-chunk partial sums — the canonical taskloop+reduction kernel. The
// block parameter is the loop grain: workers claim chunks of block
// iterations from the loop's remaining span, and each chunk accumulates
// into its worker's privatized reduction buffer, combined once when the
// loop's reduction closes at the taskwait.
type DotProduct struct {
	n, block int
	x, y     []float64
	result   float64
	expect   float64
}

// NewDotProduct builds a dot product over n elements in blocks of block.
func NewDotProduct(n, block int) *DotProduct {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	d := &DotProduct{n: n, block: block, x: make([]float64, n), y: make([]float64, n)}
	d.Reset()
	return d
}

// Name implements Workload.
func (d *DotProduct) Name() string { return "dotproduct" }

// Reset implements Workload. Integer-valued data keeps float64 sums
// exact, so parallel and serial results compare bit-for-bit.
func (d *DotProduct) Reset() {
	for i := range d.x {
		d.x[i] = float64(1 + i%7)
		d.y[i] = float64(1 + i%5)
	}
	d.result = 0
	d.expect = 0
}

// Run implements Workload.
func (d *DotProduct) Run(rt *core.Runtime) error {
	d.result = 0
	return rt.Run(func(c *core.Ctx) {
		c.Loop(0, d.n, d.block, d.chunk, core.RedSpec(&d.result, 1, redSum))
		c.Taskwait()
	})
}

// chunk accumulates one [lo, hi) block into the executing worker's
// privatized reduction buffer.
func (d *DotProduct) chunk(cc *core.Ctx, lo, hi int) {
	acc := cc.ReductionBuffer(&d.result)
	s := 0.0
	for i := lo; i < hi; i++ {
		s += d.x[i] * d.y[i]
	}
	acc[0] += s
}

// RunSerial implements Workload.
func (d *DotProduct) RunSerial() {
	s := 0.0
	for i := 0; i < d.n; i++ {
		s += d.x[i] * d.y[i]
	}
	d.expect = s
}

// Verify implements Workload.
func (d *DotProduct) Verify() error {
	d.RunSerial()
	if d.result != d.expect {
		return fmt.Errorf("dotproduct: got %v want %v", d.result, d.expect)
	}
	return nil
}

// TotalWork implements Workload.
func (d *DotProduct) TotalWork() float64 { return float64(d.n) }

// Tasks implements Workload.
func (d *DotProduct) Tasks() int { return (d.n + d.block - 1) / d.block }
