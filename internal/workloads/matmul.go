package workloads

import (
	"fmt"

	"repro/internal/core"
)

// Matmul is benchmark (6) of §6.1: a classic blocked matrix multiply
// C = A·B. One task per (i, j, k) tile triple; the inout access on the C
// tile chains the k-loop while independent (i, j) tiles run in parallel.
type Matmul struct {
	n, block int
	nb       int
	a, b, c  []float64
	ref      []float64
}

// NewMatmul builds an n×n multiply in block×block tiles.
func NewMatmul(n, block int) *Matmul {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	n = n / block * block
	if n == 0 {
		n = block
	}
	m := &Matmul{n: n, block: block, nb: n / block,
		a: make([]float64, n*n), b: make([]float64, n*n),
		c: make([]float64, n*n), ref: make([]float64, n*n)}
	m.Reset()
	return m
}

// Name implements Workload.
func (m *Matmul) Name() string { return "matmul" }

// Reset implements Workload.
func (m *Matmul) Reset() {
	lcg(m.a, 1)
	lcg(m.b, 2)
	for i := range m.c {
		m.c[i] = 0
	}
}

// gemmTile computes C[bi,bj] += A[bi,bk] · B[bk,bj] on block tiles.
func gemmTile(a, b, c []float64, n, block, bi, bj, bk int) {
	for i := bi * block; i < (bi+1)*block; i++ {
		for k := bk * block; k < (bk+1)*block; k++ {
			aik := a[i*n+k]
			ci := c[i*n+bj*block : i*n+(bj+1)*block]
			bk := b[k*n+bj*block : k*n+(bj+1)*block]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// rep returns the dependency representative of a tile of matrix x.
func (m *Matmul) rep(x []float64, bi, bj int) *float64 {
	return &x[bi*m.block*m.n+bj*m.block]
}

// Run implements Workload.
func (m *Matmul) Run(rt *core.Runtime) error {
	return rt.Run(func(c *core.Ctx) {
		for bi := 0; bi < m.nb; bi++ {
			for bj := 0; bj < m.nb; bj++ {
				for bk := 0; bk < m.nb; bk++ {
					bi, bj, bk := bi, bj, bk
					c.Spawn(func(*core.Ctx) {
						gemmTile(m.a, m.b, m.c, m.n, m.block, bi, bj, bk)
					},
						core.In(m.rep(m.a, bi, bk)),
						core.In(m.rep(m.b, bk, bj)),
						core.InOut(m.rep(m.c, bi, bj)))
				}
			}
		}
		c.Taskwait()
	})
}

// RunSerial implements Workload.
func (m *Matmul) RunSerial() {
	for i := range m.ref {
		m.ref[i] = 0
	}
	for bi := 0; bi < m.nb; bi++ {
		for bj := 0; bj < m.nb; bj++ {
			for bk := 0; bk < m.nb; bk++ {
				gemmTile(m.a, m.b, m.ref, m.n, m.block, bi, bj, bk)
			}
		}
	}
}

// Verify implements Workload: identical tile order per C tile makes the
// comparison exact.
func (m *Matmul) Verify() error {
	m.RunSerial()
	for i := range m.c {
		if m.c[i] != m.ref[i] {
			return fmt.Errorf("matmul: C[%d] = %v, serial %v", i, m.c[i], m.ref[i])
		}
	}
	return nil
}

// TotalWork implements Workload (element multiply-adds).
func (m *Matmul) TotalWork() float64 {
	nf := float64(m.n)
	return nf * nf * nf
}

// Tasks implements Workload.
func (m *Matmul) Tasks() int { return m.nb * m.nb * m.nb }
