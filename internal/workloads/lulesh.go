package workloads

import (
	"fmt"

	"repro/internal/core"
)

// Lulesh is benchmark (4) of §6.1: a proxy for the taskified LULESH 2.0
// hydrodynamics mini-app. The staggered-grid structure is reproduced in
// one dimension: element blocks scatter forces to their nodes (boundary
// nodes shared with the neighbouring block are updated under commutative
// accesses), node blocks integrate velocities, and element blocks update
// their state from the surrounding nodal velocities — the
// gather/scatter pattern that dominates LULESH's task graph.
type Lulesh struct {
	n, block, steps int
	nb              int
	elem            []float64 // n element states (stress-like)
	nodeF           []float64 // n+1 nodal forces
	nodeV           []float64 // n+1 nodal velocities
	refElem         []float64
	refV            []float64
}

// NewLulesh builds an n-element proxy in blocks of block elements.
func NewLulesh(n, block, steps int) *Lulesh {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	n = n / block * block
	if n == 0 {
		n = block
	}
	if steps < 1 {
		steps = 1
	}
	l := &Lulesh{n: n, block: block, steps: steps, nb: n / block,
		elem: make([]float64, n), nodeF: make([]float64, n+1),
		nodeV:   make([]float64, n+1),
		refElem: make([]float64, n), refV: make([]float64, n+1)}
	l.Reset()
	return l
}

// Name implements Workload.
func (l *Lulesh) Name() string { return "lulesh" }

// Reset implements Workload.
func (l *Lulesh) Reset() {
	lcg(l.elem, 17)
	for i := range l.nodeF {
		l.nodeF[i] = 0
		l.nodeV[i] = 0
	}
}

// scatterForces adds element stresses to the adjacent nodes of block b.
func (l *Lulesh) scatterForces(b int) {
	for e := b * l.block; e < (b+1)*l.block; e++ {
		s := l.elem[e]
		l.nodeF[e] -= s
		l.nodeF[e+1] += s
	}
}

// integrateNodes advances nodal velocities [lo,hi) and clears forces.
func (l *Lulesh) integrateNodes(lo, hi int) {
	const dt = 1e-3
	for i := lo; i < hi; i++ {
		l.nodeV[i] += dt * l.nodeF[i]
		l.nodeF[i] = 0
	}
}

// updateElems advances the element states of block b from the velocity
// gradient across each element.
func (l *Lulesh) updateElems(b int) {
	const dt = 1e-3
	for e := b * l.block; e < (b+1)*l.block; e++ {
		l.elem[e] += dt * (l.nodeV[e+1] - l.nodeV[e])
	}
}

func (l *Lulesh) elemRep(b int) *float64 { return &l.elem[b*l.block] }

// nodeRep returns the representative of node block b; node block b holds
// nodes [b*block, (b+1)*block), plus the final node owned by the last
// block.
func (l *Lulesh) nodeRep(b int) *float64 { return &l.nodeF[b*l.block] }

// Run implements Workload.
func (l *Lulesh) Run(rt *core.Runtime) error {
	return rt.Run(func(c *core.Ctx) {
		for s := 0; s < l.steps; s++ {
			// Scatter: element block b touches node blocks b and b+1
			// (the shared boundary node), so it takes two commutative
			// accesses — the multi-token case of the commutative path.
			for b := 0; b < l.nb; b++ {
				b := b
				specs := []core.AccessSpec{
					core.In(l.elemRep(b)),
					core.Commutative(l.nodeRep(b)),
				}
				if b < l.nb-1 {
					specs = append(specs, core.Commutative(l.nodeRep(b+1)))
				}
				c.Spawn(func(*core.Ctx) { l.scatterForces(b) }, specs...)
			}
			// Node integration per node block.
			for b := 0; b < l.nb; b++ {
				b := b
				lo, hi := b*l.block, (b+1)*l.block
				if b == l.nb-1 {
					hi = l.n + 1
				}
				c.Spawn(func(*core.Ctx) { l.integrateNodes(lo, hi) },
					core.InOut(l.nodeRep(b)))
			}
			// Element update reads both surrounding node blocks.
			for b := 0; b < l.nb; b++ {
				b := b
				specs := []core.AccessSpec{
					core.InOut(l.elemRep(b)), core.In(l.nodeRep(b)),
				}
				if b < l.nb-1 {
					specs = append(specs, core.In(l.nodeRep(b+1)))
				}
				c.Spawn(func(*core.Ctx) { l.updateElems(b) }, specs...)
			}
		}
		c.Taskwait()
	})
}

// RunSerial implements Workload.
func (l *Lulesh) RunSerial() {
	for s := 0; s < l.steps; s++ {
		for b := 0; b < l.nb; b++ {
			l.scatterForces(b)
		}
		for b := 0; b < l.nb; b++ {
			lo, hi := b*l.block, (b+1)*l.block
			if b == l.nb-1 {
				hi = l.n + 1
			}
			l.integrateNodes(lo, hi)
		}
		for b := 0; b < l.nb; b++ {
			l.updateElems(b)
		}
	}
	copy(l.refElem, l.elem)
	copy(l.refV, l.nodeV)
}

// Verify implements Workload. Each boundary node receives exactly two
// contributions and two-operand floating-point addition is commutative,
// so the comparison is exact despite the commutative scheduling.
func (l *Lulesh) Verify() error {
	gotE := append([]float64(nil), l.elem...)
	gotV := append([]float64(nil), l.nodeV...)
	l.Reset()
	l.RunSerial()
	for i := range gotE {
		if gotE[i] != l.refElem[i] {
			return fmt.Errorf("lulesh: elem[%d] = %v, serial %v", i, gotE[i], l.refElem[i])
		}
	}
	for i := range gotV {
		if gotV[i] != l.refV[i] {
			return fmt.Errorf("lulesh: nodeV[%d] = %v, serial %v", i, gotV[i], l.refV[i])
		}
	}
	return nil
}

// TotalWork implements Workload (element updates across the three
// phases).
func (l *Lulesh) TotalWork() float64 {
	return 3 * float64(l.n) * float64(l.steps)
}

// Tasks implements Workload.
func (l *Lulesh) Tasks() int { return 3 * l.nb * l.steps }
