package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// NBody is benchmark (7) of §6.1: a blocked all-pairs N-body step
// mimicking dynamic particle simulations, expressed as two work-sharing
// loop tasks per step ordered purely by their declared accesses. The
// force loop iterates over target blocks (each chunk owns whole bi
// rows, so force accumulation into frc[bi] is single-writer and
// deterministic) reading every position block and updating every force
// block; the integration loop advances positions and clears forces.
// The per-block access chains serialize force(s) → integrate(s) →
// force(s+1), and because a loop task releases only when its last
// chunk drains, the chains double as exact phase barriers — no
// explicit taskwait between phases.
type NBody struct {
	n, block, steps int
	nb              int
	pos, vel, frc   []float64 // 3 components per particle
	refPos          []float64
}

// NewNBody builds an n-particle simulation in blocks of block particles
// over the given number of steps.
func NewNBody(n, block, steps int) *NBody {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	n = n / block * block
	if n == 0 {
		n = block
	}
	if steps < 1 {
		steps = 1
	}
	w := &NBody{n: n, block: block, steps: steps, nb: n / block,
		pos: make([]float64, 3*n), vel: make([]float64, 3*n),
		frc: make([]float64, 3*n), refPos: make([]float64, 3*n)}
	w.Reset()
	return w
}

// Name implements Workload.
func (w *NBody) Name() string { return "nbody" }

// Reset implements Workload.
func (w *NBody) Reset() {
	lcg(w.pos, 11)
	for i := range w.vel {
		w.vel[i] = 0
		w.frc[i] = 0
	}
}

// forcePair accumulates the softened gravitational pull of block bj's
// particles onto block bi's force array.
func (w *NBody) forcePair(bi, bj int) {
	const soft = 1e-3
	b := w.block
	for i := bi * b; i < (bi+1)*b; i++ {
		xi, yi, zi := w.pos[3*i], w.pos[3*i+1], w.pos[3*i+2]
		fx, fy, fz := 0.0, 0.0, 0.0
		for j := bj * b; j < (bj+1)*b; j++ {
			if i == j {
				continue
			}
			dx := w.pos[3*j] - xi
			dy := w.pos[3*j+1] - yi
			dz := w.pos[3*j+2] - zi
			r2 := dx*dx + dy*dy + dz*dz + soft
			inv := 1 / (r2 * math.Sqrt(r2))
			fx += dx * inv
			fy += dy * inv
			fz += dz * inv
		}
		w.frc[3*i] += fx
		w.frc[3*i+1] += fy
		w.frc[3*i+2] += fz
	}
}

// integrate advances block bi and clears its forces.
func (w *NBody) integrate(bi int) {
	const dt = 1e-4
	b := w.block
	for i := bi * b; i < (bi+1)*b; i++ {
		for d := 0; d < 3; d++ {
			w.vel[3*i+d] += dt * w.frc[3*i+d]
			w.pos[3*i+d] += dt * w.vel[3*i+d]
			w.frc[3*i+d] = 0
		}
	}
}

// forceRows computes the forces on blocks [lo, hi): one taskloop chunk.
// Each bi is touched by exactly one chunk, so frc[bi] needs no
// synchronization and the bj-ascending accumulation matches the serial
// order bit for bit.
func (w *NBody) forceRows(_ *core.Ctx, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		for bj := 0; bj < w.nb; bj++ {
			w.forcePair(bi, bj)
		}
	}
}

// integrateRows advances blocks [lo, hi): one taskloop chunk.
func (w *NBody) integrateRows(_ *core.Ctx, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		w.integrate(bi)
	}
}

func (w *NBody) posRep(bi int) *float64 { return &w.pos[3*bi*w.block] }
func (w *NBody) frcRep(bi int) *float64 { return &w.frc[3*bi*w.block] }

// Run implements Workload.
func (w *NBody) Run(rt *core.Runtime) error {
	// The loops' access sets: forces read every position block and
	// update every force block; integration updates both.
	forceAccs := make([]core.AccessSpec, 0, 2*w.nb)
	intAccs := make([]core.AccessSpec, 0, 2*w.nb)
	for bi := 0; bi < w.nb; bi++ {
		forceAccs = append(forceAccs, core.In(w.posRep(bi)), core.InOut(w.frcRep(bi)))
		intAccs = append(intAccs, core.InOut(w.posRep(bi)), core.InOut(w.frcRep(bi)))
	}
	return rt.Run(func(c *core.Ctx) {
		for s := 0; s < w.steps; s++ {
			c.Loop(0, w.nb, 1, w.forceRows, forceAccs...)
			c.Loop(0, w.nb, 1, w.integrateRows, intAccs...)
		}
		c.Taskwait()
	})
}

// RunSerial implements Workload.
func (w *NBody) RunSerial() {
	for s := 0; s < w.steps; s++ {
		for bi := 0; bi < w.nb; bi++ {
			for bj := 0; bj < w.nb; bj++ {
				w.forcePair(bi, bj)
			}
		}
		for bi := 0; bi < w.nb; bi++ {
			w.integrate(bi)
		}
	}
	copy(w.refPos, w.pos)
}

// Verify implements Workload: chunked force accumulation follows the
// serial bj order, but positions are still compared within tolerance to
// stay robust against associativity-sensitive compilation differences.
func (w *NBody) Verify() error {
	got := append([]float64(nil), w.pos...)
	w.Reset()
	w.RunSerial()
	for i := range got {
		if !almostEqual(got[i], w.refPos[i], 1e-9) {
			return fmt.Errorf("nbody: pos[%d] = %v, serial %v", i, got[i], w.refPos[i])
		}
	}
	return nil
}

// TotalWork implements Workload (particle-pair interactions).
func (w *NBody) TotalWork() float64 {
	return float64(w.n) * float64(w.n) * float64(w.steps)
}

// Tasks implements Workload: the loop grain is one block row, so each
// step contributes up to nb force chunks and nb integration chunks.
func (w *NBody) Tasks() int { return w.steps * 2 * w.nb }
