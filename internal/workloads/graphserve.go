package workloads

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/counter"
)

// GraphServe is the compiled-template serving scenario: one symphony
// fan-in DAG is compiled once (repro.Graph.Compile) and then
// instantiated per request by `clients` concurrent goroutines through
// CompiledGraph.Do — the serving fast path the compilation exists for.
//
// Every request draws a unique *ticket* from a shared atomic counter in
// the template's source node, and every downstream node is a fixed
// integer transform of its dependencies, so the sink value is an exact
// function of the ticket. Each client reads ticket and sink from the
// same GraphExec and files the sink under the ticket; Verify then
// demands that every ticket 1..requests was observed exactly once with
// exactly the expected sink value. Any cross-frame contamination —
// request A's node writing into request B's pooled frame, a stale
// result slot surviving frame recycling, a dependency edge firing
// early — shows up as a wrong or duplicated ticket, not as a latency
// artifact. The sink node carries an explicit priority so the storm
// also exercises the compiled priority-spec path.
type GraphServe struct {
	clients, requests int

	graph *repro.Graph
	tmpl  *repro.CompiledGraph
	rt    *core.Runtime // runtime tmpl was compiled against
	tick  int           // node index of "ticket" in tmpl
	sink  int           // node index of "render" in tmpl

	// seq issues tickets; node bodies share it across every in-flight
	// frame, which is exactly the aliasing the frames must not leak.
	seq atomic.Int64

	// rec[t-1] holds the sink value observed for ticket t, installed
	// with a compare-and-swap from zero so a duplicated ticket is caught
	// at delivery, not folded away.
	rec []int64

	// arrivals, when set, paces each client's issue loop on the shared
	// open-loop schedule (indexed by global request number); latency is
	// then measured from the scheduled instant. Nil is closed-loop
	// issue, latency from issue time.
	arrivals Arrivals

	// Latency records per-request client-side latency (issue or
	// scheduled instant to Do return) in nanoseconds, one shard per
	// client.
	Latency *counter.Histogram
	// Elapsed is the wall time of the last Run.
	Elapsed time.Duration
}

// graphServeSink is the exact sink value of one served request:
// render = quote*7 + ticket, quote = price*2 - promo,
// price = auth + inventory*2, promo = ticket*11 + 7,
// auth = ticket*3 + 1, inventory = ticket*5 + 2.
func graphServeSink(ticket int64) int64 { return 106*ticket + 21 }

// NewGraphServe builds a serving scenario: `requests` instantiations of
// the compiled template, issued by `clients` concurrent goroutines.
func NewGraphServe(clients, requests int) *GraphServe {
	if clients < 1 {
		clients = 1
	}
	if clients > 64 {
		clients = 64
	}
	if requests < clients {
		requests = clients
	}
	gs := &GraphServe{
		clients:  clients,
		requests: requests,
		rec:      make([]int64, requests),
		Latency:  counter.NewHistogram(clients),
	}
	seq := &gs.seq
	gs.graph = repro.NewGraph().
		Add("ticket", nil, func(*repro.Ctx, map[string]any) (any, error) {
			return seq.Add(1), nil
		}).
		Add("auth", []string{"ticket"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["ticket"].(int64)*3 + 1, nil
		}).
		Add("inventory", []string{"ticket"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["ticket"].(int64)*5 + 2, nil
		}).
		Add("promo", []string{"ticket"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["ticket"].(int64)*11 + 7, nil
		}).
		Add("price", []string{"auth", "inventory"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["auth"].(int64) + d["inventory"].(int64)*2, nil
		}).
		Add("quote", []string{"price", "promo"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["price"].(int64)*2 - d["promo"].(int64), nil
		}).
		Add("render", []string{"quote", "ticket"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["quote"].(int64)*7 + d["ticket"].(int64), nil
		}).
		SetPriority("render", 1)
	gs.Reset()
	return gs
}

// SetArrivals switches the clients to the given open-loop schedule,
// indexed by global request number (nil restores closed-loop issue).
func (gs *GraphServe) SetArrivals(a Arrivals) { gs.arrivals = a }

// Name implements Workload.
func (gs *GraphServe) Name() string { return "graphserve" }

// Reset implements Workload.
func (gs *GraphServe) Reset() {
	gs.seq.Store(0)
	clear(gs.rec)
	gs.Latency.Reset()
	gs.Elapsed = 0
}

// template returns the compiled template for rt, compiling on first use
// (or when Run moves to a different runtime).
func (gs *GraphServe) template(rt *core.Runtime) (*repro.CompiledGraph, error) {
	if gs.tmpl != nil && gs.rt == rt {
		return gs.tmpl, nil
	}
	cg, err := gs.graph.Compile(rt)
	if err != nil {
		return nil, err
	}
	gs.tick, _ = cg.NodeIndex("ticket")
	gs.sink, _ = cg.NodeIndex("render")
	gs.tmpl, gs.rt = cg, rt
	return cg, nil
}

// serveOne instantiates the template once and files the observed sink
// value under the request's ticket.
func (gs *GraphServe) serveOne(ctx context.Context, cg *repro.CompiledGraph) error {
	ex, err := cg.Do(ctx)
	if err != nil {
		return err
	}
	defer ex.Release()
	tv, err := ex.ValueAt(gs.tick)
	if err != nil {
		return err
	}
	sv, err := ex.ValueAt(gs.sink)
	if err != nil {
		return err
	}
	t := tv.(int64)
	if t < 1 || t > int64(len(gs.rec)) {
		return fmt.Errorf("graphserve: ticket %d out of range 1..%d", t, len(gs.rec))
	}
	if !atomic.CompareAndSwapInt64(&gs.rec[t-1], 0, sv.(int64)) {
		return fmt.Errorf("graphserve: ticket %d delivered twice", t)
	}
	return nil
}

// Run implements Workload: clients serve their request shares
// concurrently through the shared compiled template, closed-loop or on
// the open-loop arrival schedule.
func (gs *GraphServe) Run(rt *core.Runtime) error {
	cg, err := gs.template(rt)
	if err != nil {
		return err
	}
	if gs.Latency.Recorders() != gs.clients {
		gs.Latency = counter.NewHistogram(gs.clients)
	}
	ctx := context.Background()
	start := time.Now()
	errs := make([]error, gs.clients)
	var wg sync.WaitGroup
	for g := 0; g < gs.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := g; r < gs.requests; r += gs.clients {
				t0 := time.Now()
				if gs.arrivals != nil {
					i := r
					if i >= len(gs.arrivals) {
						i = len(gs.arrivals) - 1
					}
					t0 = gs.arrivals.Pace(start, i)
				}
				if err := gs.serveOne(ctx, cg); err != nil {
					if errs[g] == nil {
						errs[g] = err
					}
					continue
				}
				gs.Latency.Record(g, time.Since(t0).Nanoseconds())
			}
		}(g)
	}
	wg.Wait()
	gs.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunSerial implements Workload: the same tickets in order on one
// goroutine, through the exact transform.
func (gs *GraphServe) RunSerial() {
	for t := int64(1); t <= int64(gs.requests); t++ {
		gs.rec[t-1] = graphServeSink(t)
	}
	gs.seq.Store(int64(gs.requests))
}

// Verify implements Workload: every ticket observed exactly once, every
// sink value exact.
func (gs *GraphServe) Verify() error {
	if got := gs.seq.Load(); got != int64(gs.requests) {
		return fmt.Errorf("graphserve: issued %d tickets, want %d", got, gs.requests)
	}
	for t := int64(1); t <= int64(gs.requests); t++ {
		if got, want := gs.rec[t-1], graphServeSink(t); got != want {
			return fmt.Errorf("graphserve: ticket %d sink = %d, want %d", t, got, want)
		}
	}
	return nil
}

// TotalWork implements Workload: seven node evaluations per request.
func (gs *GraphServe) TotalWork() float64 { return float64(7 * gs.requests) }

// Tasks implements Workload: seven node tasks plus the root per request.
func (gs *GraphServe) Tasks() int { return 8 * gs.requests }

var _ Workload = (*GraphServe)(nil)
