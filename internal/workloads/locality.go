package workloads

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/counter"
)

// LocalityMix is the NUMA-domain affinity scenario: several producer
// goroutines each drive a window of two-task compute→apply request
// chains over a *private* key slab, with every eighth request tagged
// interactive (core.MaxPriority, latency recorded per request) and the
// rest batch. Because producers never share keys, the only things that
// can move a chain off the domain its producer's submissions land in
// are the runtime's own mechanisms — work shedding, cross-domain
// wakes, help loops — so the benchmark's affinity-retention metric
// (read from Runtime.Stats' per-domain Executed/ExecutedHome counters)
// isolates how well the sharded runtime keeps work home under a
// two-class priority mix, and the interactive histogram prices what
// the sharding costs the latency tail.
//
// Like Server, deltas are small integers: the final key slabs are
// exact and producer-order independent, so Verify is bit-for-bit.
type LocalityMix struct {
	producers, keysPer, requests int
	spin                         int

	keys    []float64 // producers * keysPer, slab per producer
	staging []float64 // one cell per request

	// Interactive records per-request latency (ns) of the interactive
	// class, from issue to server-side apply completion, recorded by
	// the executing worker (see QoSServer.Interactive for why
	// server-side completion is the gated quantity).
	Interactive *counter.Histogram
}

const (
	// localityWindow is each producer's outstanding-chain window: deep
	// enough to keep every domain's scheduler non-empty (an empty home
	// queue is what licenses shedding), small enough that the live-task
	// population stays steady.
	localityWindow = 32
	// localityInterEvery tags every n-th request per producer as
	// interactive.
	localityInterEvery = 8
	// localitySpinIters sizes each task body's busy work (~20µs): large
	// enough that execution placement — not submission overhead —
	// dominates, small enough for interactive-scale requests.
	localitySpinIters = 10000
)

// NewLocalityMix builds the scenario: `producers` clients, each owning
// a keysPer-key slab, issuing `requests` chains in total.
func NewLocalityMix(producers, keysPer, requests int) *LocalityMix {
	if producers < 1 {
		producers = 1
	}
	if keysPer < 1 {
		keysPer = 1
	}
	if requests < producers {
		requests = producers
	}
	s := &LocalityMix{
		producers: producers,
		keysPer:   keysPer,
		requests:  requests,
		spin:      localitySpinIters,
		keys:      make([]float64, producers*keysPer),
		staging:   make([]float64, requests),
	}
	s.Interactive = counter.NewHistogram(1)
	s.Reset()
	return s
}

// Name implements Workload.
func (s *LocalityMix) Name() string { return "locality" }

// Reset implements Workload.
func (s *LocalityMix) Reset() {
	for i := range s.keys {
		s.keys[i] = float64(1 + i%9)
	}
	clear(s.staging)
	s.Interactive.Reset()
}

// Deterministic per-request traffic. Request r belongs to producer
// r%producers and targets a key inside that producer's slab only.
func (s *LocalityMix) reqKey(r int) int {
	g := r % s.producers
	return g*s.keysPer + int(uint64(r)*2654435761%uint64(s.keysPer))
}

func (s *LocalityMix) reqDelta(r int) float64 { return float64(1 + (r*7+3)%11) }

func (s *LocalityMix) interactive(r int) bool {
	return (r/s.producers)%localityInterEvery == 0
}

// Run implements Workload: each producer floods its request share
// through a bounded window of outstanding chains.
func (s *LocalityMix) Run(rt *core.Runtime) error {
	if w := rt.Slots(); s.Interactive.Recorders() != w {
		s.Interactive = counter.NewHistogram(w)
	}
	var wg sync.WaitGroup
	errs := make([]error, s.producers)
	for g := 0; g < s.producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var win [localityWindow]qosInflight
			n := 0
			for r := g; r < s.requests; r += s.producers {
				r := r
				i := n % localityWindow
				n++
				win[i].await(&errs[g])
				stage := &s.staging[r]
				key := &s.keys[s.reqKey(r)]
				delta := s.reqDelta(r)
				spin := s.spin
				inter := s.interactive(r)
				t0 := time.Now()
				compute := func(*core.Ctx) (any, error) {
					*stage = delta + spinWork(delta, spin)
					return nil, nil
				}
				apply := func(c *core.Ctx) (any, error) {
					*key += *stage + spinWork(*stage, spin)
					if inter {
						s.Interactive.Record(c.Worker(), time.Since(t0).Nanoseconds())
					}
					return nil, nil
				}
				if inter {
					win[i].compute = rt.Submit(compute, core.Out(stage), core.Priority(core.MaxPriority))
					win[i].apply = rt.Submit(apply, core.In(stage), core.InOut(key), core.Priority(core.MaxPriority))
				} else {
					win[i].compute = rt.Submit(compute, core.Out(stage))
					win[i].apply = rt.Submit(apply, core.In(stage), core.InOut(key))
				}
			}
			for i := range win {
				win[i].await(&errs[g])
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunSerial implements Workload.
func (s *LocalityMix) RunSerial() {
	for r := 0; r < s.requests; r++ {
		s.staging[r] = s.reqDelta(r)
		s.keys[s.reqKey(r)] += s.staging[r]
	}
}

// Verify implements Workload: exact per-key totals — domain sharding
// and priorities may reorder ready tasks but never change the result.
func (s *LocalityMix) Verify() error {
	want := make([]float64, len(s.keys))
	for k := range want {
		want[k] = float64(1 + k%9)
	}
	for r := 0; r < s.requests; r++ {
		want[s.reqKey(r)] += s.reqDelta(r)
		if s.staging[r] != s.reqDelta(r) {
			return fmt.Errorf("locality: request %d staged %v, want %v", r, s.staging[r], s.reqDelta(r))
		}
	}
	for k := range s.keys {
		if s.keys[k] != want[k] {
			return fmt.Errorf("locality: key %d = %v, want %v", k, s.keys[k], want[k])
		}
	}
	return nil
}

// TotalWork implements Workload: two element updates per request.
func (s *LocalityMix) TotalWork() float64 { return float64(2 * s.requests) }

// Tasks implements Workload: two tasks per request.
func (s *LocalityMix) Tasks() int { return 2 * s.requests }

var _ Workload = (*LocalityMix)(nil)
