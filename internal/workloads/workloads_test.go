package workloads

import (
	"testing"

	"repro/internal/core"
)

// smallSizes returns a quick test instance per benchmark.
func smallSizes() map[string]struct {
	size  Size
	block int
} {
	return map[string]struct {
		size  Size
		block int
	}{
		"dotproduct": {Size{N: 4096, Steps: 1}, 256},
		"heat":       {Size{N: 32, Steps: 4}, 8},
		"matmul":     {Size{N: 48, Steps: 1}, 12},
		"cholesky":   {Size{N: 48, Steps: 1}, 12},
		"hpccg":      {Size{N: 1024, Steps: 25}, 128},
		"nbody":      {Size{N: 128, Steps: 3}, 32},
		"lulesh":     {Size{N: 512, Steps: 5}, 64},
		"miniamr":    {Size{N: 512, Steps: 6}, 64},
		"server":     {Size{N: 32, Steps: 600}, 8},
		"qos":        {Size{N: 64, Steps: 10}, 3},
		"echo":       {Size{N: 32, Steps: 300}, 4},
	}
}

func newTestRuntime(v core.Variant) *core.Runtime {
	cfg := core.ConfigFor(v, 4, 2)
	cfg.PinWorkers = false
	return core.New(cfg)
}

// TestAllWorkloadsVerifyOptimized runs every benchmark on the optimized
// runtime and checks the parallel result against the serial reference.
func TestAllWorkloadsVerifyOptimized(t *testing.T) {
	rt := newTestRuntime(core.VariantOptimized)
	defer rt.Close()
	for name, tc := range smallSizes() {
		name, tc := name, tc
		t.Run(name, func(t *testing.T) {
			w, err := Build(name, tc.size, tc.block)
			if err != nil {
				t.Fatal(err)
			}
			w.Reset()
			if err := w.Run(rt); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllWorkloadsVerifyAcrossVariants cross-checks every benchmark on
// every ablation variant: the dependency semantics must be identical no
// matter which implementation enforces them.
func TestAllWorkloadsVerifyAcrossVariants(t *testing.T) {
	for _, v := range core.Variants()[1:] { // optimized covered above
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := newTestRuntime(v)
			defer rt.Close()
			for name, tc := range smallSizes() {
				w, err := Build(name, tc.size, tc.block)
				if err != nil {
					t.Fatal(err)
				}
				w.Reset()
				if err := w.Run(rt); err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

// TestWorkloadsOnComparisonRuntimes exercises the GOMP-like and
// LLVM-like baseline runtimes on two representative benchmarks.
func TestWorkloadsOnComparisonRuntimes(t *testing.T) {
	for _, v := range []core.Variant{core.VariantGOMPLike, core.VariantLLVMLike} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			rt := newTestRuntime(v)
			defer rt.Close()
			for _, name := range []string{"heat", "cholesky"} {
				tc := smallSizes()[name]
				w, _ := Build(name, tc.size, tc.block)
				w.Reset()
				if err := w.Run(rt); err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

// TestQoSServerBothModes runs the two-class scenario with priorities
// on and off: the final key table must be exact either way (priorities
// reorder ready tasks, never results), and both class histograms must
// have recorded every request.
func TestQoSServerBothModes(t *testing.T) {
	for _, pri := range []bool{true, false} {
		rt := newTestRuntime(core.VariantOptimized)
		q := NewQoSServer(256, 12, 3, pri)
		if err := q.Run(rt); err != nil {
			t.Fatal(err)
		}
		if err := q.Verify(); err != nil {
			t.Fatalf("usePriority=%v: %v", pri, err)
		}
		if got := q.Interactive.Count(); got != 12 {
			t.Fatalf("usePriority=%v: %d interactive samples, want 12", pri, got)
		}
		if got, want := q.Batch.Count(), int64(q.BatchRequests()); got != want {
			t.Fatalf("usePriority=%v: %d batch samples, want %d", pri, got, want)
		}
		if q.BatchRequests() < q.batchClients*qosBatchWindow {
			t.Fatalf("usePriority=%v: only %d batch requests issued", pri, q.BatchRequests())
		}
		if q.Elapsed <= 0 || q.BatchNsPerRequest() <= 0 {
			t.Fatalf("usePriority=%v: elapsed/throughput not recorded", pri)
		}
		if n := rt.LiveTasks(); n != 0 {
			t.Fatalf("usePriority=%v: LiveTasks = %d", pri, n)
		}
		rt.Close()
	}
}

func TestGranularityScalesWithBlock(t *testing.T) {
	small, _ := Build("matmul", Size{N: 64}, 8)
	large, _ := Build("matmul", Size{N: 64}, 32)
	if Grain(small) >= Grain(large) {
		t.Fatalf("grain(8)=%v !< grain(32)=%v", Grain(small), Grain(large))
	}
	if small.TotalWork() != large.TotalWork() {
		t.Fatalf("total work changed with block size: %v vs %v",
			small.TotalWork(), large.TotalWork())
	}
}

func TestBuildUnknownBenchmark(t *testing.T) {
	if _, err := Build("nope", Size{N: 8}, 2); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBlockClamping(t *testing.T) {
	// Degenerate block sizes must be clamped, not crash.
	for name := range Registry {
		w, err := Build(name, Size{N: 64, Steps: 2}, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if w.Tasks() < 1 {
			t.Fatalf("%s: no tasks with oversized block", name)
		}
		w, err = Build(name, Size{N: 64, Steps: 2}, 0)
		if err != nil || w.Tasks() < 1 {
			t.Fatalf("%s: bad workload with zero block", name)
		}
	}
}

// TestRepeatedRunsAreReproducible runs a deterministic workload twice
// through the runtime and requires identical results.
func TestRepeatedRunsAreReproducible(t *testing.T) {
	rt := newTestRuntime(core.VariantOptimized)
	defer rt.Close()
	h1 := NewHeat(32, 8, 3)
	if err := h1.Run(rt); err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), h1.grid...)
	h1.Reset()
	if err := h1.Run(rt); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != h1.grid[i] {
			t.Fatalf("non-reproducible at %d: %v vs %v", i, first[i], h1.grid[i])
		}
	}
}
