package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// HPCCG is benchmark (3) of §6.1: a taskified conjugate-gradient solver
// with several kernels combining task reductions (dot products) and
// multi-dependencies (SpMV reads three vector blocks, scalar updates read
// multiple reduction results). The matrix is the 1-D operator
// tridiag(-1, 3, -1), diagonally dominant so CG converges quickly.
type HPCCG struct {
	n, block, iters int

	b, x, r, p, ap []float64

	// scalars are dependency objects chained between vector kernels.
	rr, pap, rrNew, alpha, beta float64

	refX []float64
}

// NewHPCCG builds a CG solve of n unknowns in blocks of block over the
// given number of iterations.
func NewHPCCG(n, block, iters int) *HPCCG {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	n = n / block * block
	if n == 0 {
		n = block
	}
	if iters < 1 {
		iters = 1
	}
	h := &HPCCG{n: n, block: block, iters: iters,
		b: make([]float64, n), x: make([]float64, n), r: make([]float64, n),
		p: make([]float64, n), ap: make([]float64, n), refX: make([]float64, n)}
	h.Reset()
	return h
}

// Name implements Workload.
func (h *HPCCG) Name() string { return "hpccg" }

// Reset implements Workload.
func (h *HPCCG) Reset() {
	lcg(h.b, 5)
	for i := range h.x {
		h.x[i] = 0
		h.r[i] = h.b[i]
		h.p[i] = h.b[i]
		h.ap[i] = 0
	}
	h.rr, h.pap, h.rrNew, h.alpha, h.beta = 0, 0, 0, 0, 0
}

// spmvBlock computes ap[lo:hi] = (A·p)[lo:hi] for the tridiagonal A.
func (h *HPCCG) spmvBlock(lo, hi int) {
	for i := lo; i < hi; i++ {
		v := 3 * h.p[i]
		if i > 0 {
			v -= h.p[i-1]
		}
		if i < h.n-1 {
			v -= h.p[i+1]
		}
		h.ap[i] = v
	}
}

// Run implements Workload. Every kernel of the serial CG below appears
// here as a set of blocked tasks chained purely through data accesses.
func (h *HPCCG) Run(rt *core.Runtime) error {
	n, bs := h.n, h.block
	return rt.Run(func(c *core.Ctx) {
		// rr = r·r
		c.Spawn(func(*core.Ctx) { h.rr = 0 }, core.Out(&h.rr))
		for lo := 0; lo < n; lo += bs {
			lo, hi := lo, min(lo+bs, n)
			c.Spawn(func(cc *core.Ctx) {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += h.r[i] * h.r[i]
				}
				cc.ReductionBuffer(&h.rr)[0] += s
			}, core.In(&h.r[lo]), core.RedSpec(&h.rr, 1, redSum))
		}

		for it := 0; it < h.iters; it++ {
			// ap = A·p (multi-dependency SpMV: reads three p blocks)
			for lo := 0; lo < n; lo += bs {
				lo, hi := lo, min(lo+bs, n)
				specs := []core.AccessSpec{core.Out(&h.ap[lo]), core.In(&h.p[lo])}
				if lo > 0 {
					specs = append(specs, core.In(&h.p[lo-bs]))
				}
				if hi < n {
					specs = append(specs, core.In(&h.p[hi]))
				}
				c.Spawn(func(*core.Ctx) { h.spmvBlock(lo, hi) }, specs...)
			}
			// pap = p·ap
			c.Spawn(func(*core.Ctx) { h.pap = 0 }, core.Out(&h.pap))
			for lo := 0; lo < n; lo += bs {
				lo, hi := lo, min(lo+bs, n)
				c.Spawn(func(cc *core.Ctx) {
					s := 0.0
					for i := lo; i < hi; i++ {
						s += h.p[i] * h.ap[i]
					}
					cc.ReductionBuffer(&h.pap)[0] += s
				}, core.In(&h.p[lo]), core.In(&h.ap[lo]), core.RedSpec(&h.pap, 1, redSum))
			}
			// alpha = rr/pap
			c.Spawn(func(*core.Ctx) { h.alpha = h.rr / h.pap },
				core.In(&h.rr), core.In(&h.pap), core.Out(&h.alpha))
			// x += alpha·p ; r -= alpha·ap
			for lo := 0; lo < n; lo += bs {
				lo, hi := lo, min(lo+bs, n)
				c.Spawn(func(*core.Ctx) {
					for i := lo; i < hi; i++ {
						h.x[i] += h.alpha * h.p[i]
						h.r[i] -= h.alpha * h.ap[i]
					}
				}, core.In(&h.alpha), core.In(&h.p[lo]), core.In(&h.ap[lo]),
					core.InOut(&h.x[lo]), core.InOut(&h.r[lo]))
			}
			// rrNew = r·r
			c.Spawn(func(*core.Ctx) { h.rrNew = 0 }, core.Out(&h.rrNew))
			for lo := 0; lo < n; lo += bs {
				lo, hi := lo, min(lo+bs, n)
				c.Spawn(func(cc *core.Ctx) {
					s := 0.0
					for i := lo; i < hi; i++ {
						s += h.r[i] * h.r[i]
					}
					cc.ReductionBuffer(&h.rrNew)[0] += s
				}, core.In(&h.r[lo]), core.RedSpec(&h.rrNew, 1, redSum))
			}
			// beta = rrNew/rr ; rr = rrNew
			c.Spawn(func(*core.Ctx) { h.beta = h.rrNew / h.rr; h.rr = h.rrNew },
				core.InOut(&h.rr), core.In(&h.rrNew), core.Out(&h.beta))
			// p = r + beta·p
			for lo := 0; lo < n; lo += bs {
				lo, hi := lo, min(lo+bs, n)
				c.Spawn(func(*core.Ctx) {
					for i := lo; i < hi; i++ {
						h.p[i] = h.r[i] + h.beta*h.p[i]
					}
				}, core.In(&h.beta), core.In(&h.r[lo]), core.InOut(&h.p[lo]))
			}
		}
		c.Taskwait()
	})
}

// RunSerial implements Workload: textbook CG with identical kernels.
func (h *HPCCG) RunSerial() {
	n := h.n
	rr := 0.0
	for i := 0; i < n; i++ {
		rr += h.r[i] * h.r[i]
	}
	for it := 0; it < h.iters; it++ {
		for lo := 0; lo < n; lo += h.block {
			h.spmvBlock(lo, min(lo+h.block, n))
		}
		pap := 0.0
		for i := 0; i < n; i++ {
			pap += h.p[i] * h.ap[i]
		}
		alpha := rr / pap
		for i := 0; i < n; i++ {
			h.x[i] += alpha * h.p[i]
			h.r[i] -= alpha * h.ap[i]
		}
		rrNew := 0.0
		for i := 0; i < n; i++ {
			rrNew += h.r[i] * h.r[i]
		}
		beta := rrNew / rr
		rr = rrNew
		for i := 0; i < n; i++ {
			h.p[i] = h.r[i] + beta*h.p[i]
		}
	}
	copy(h.refX, h.x)
}

// Verify implements Workload: reductions make the summation order
// nondeterministic, so the solutions are compared within tolerance and
// the true residual must have converged.
func (h *HPCCG) Verify() error {
	got := append([]float64(nil), h.x...)
	h.Reset()
	h.RunSerial()
	for i := range got {
		if !almostEqual(got[i], h.refX[i], 1e-6) {
			return fmt.Errorf("hpccg: x[%d] = %v, serial %v", i, got[i], h.refX[i])
		}
	}
	// True residual of the parallel solution.
	var res, bn float64
	for i := 0; i < h.n; i++ {
		v := 3 * got[i]
		if i > 0 {
			v -= got[i-1]
		}
		if i < h.n-1 {
			v -= got[i+1]
		}
		d := h.b[i] - v
		res += d * d
		bn += h.b[i] * h.b[i]
	}
	if h.iters >= 20 && math.Sqrt(res) > 1e-8*math.Sqrt(bn) {
		return fmt.Errorf("hpccg: residual %g did not converge (||b||=%g)",
			math.Sqrt(res), math.Sqrt(bn))
	}
	return nil
}

// TotalWork implements Workload (vector-element updates per iteration:
// spmv + 2 dots + 2 axpy + p-update ≈ 6n).
func (h *HPCCG) TotalWork() float64 {
	return 6 * float64(h.n) * float64(h.iters)
}

// Tasks implements Workload.
func (h *HPCCG) Tasks() int {
	nb := (h.n + h.block - 1) / h.block
	return 1 + nb + h.iters*(4*nb+nb+3)
}
