package workloads

import (
	"fmt"

	"repro/internal/core"
)

// MiniAMR is benchmark (5) of §6.1: a proxy for the taskified miniAMR
// mini-app, mimicking the task patterns of adaptive mesh refinement. A
// one-dimensional domain of blocks is advanced with a stencil; on a
// deterministic schedule, blocks become "refined" and their update is
// performed by nested child tasks on the block halves — exercising the
// nesting-crossing dependency support (paper Fig. 1) that makes miniAMR
// the paper's scheduler stress test.
type MiniAMR struct {
	n, block, steps int
	nb              int
	u, next         []float64
	refU            []float64
}

// NewMiniAMR builds an n-cell domain in blocks of block cells over the
// given number of steps.
func NewMiniAMR(n, block, steps int) *MiniAMR {
	if block < 2 {
		block = 2
	}
	block = block / 2 * 2 // halves must be even
	if block > n {
		block = n
	}
	n = n / block * block
	if n == 0 {
		n = block
	}
	if steps < 1 {
		steps = 1
	}
	m := &MiniAMR{n: n, block: block, steps: steps, nb: n / block,
		u: make([]float64, n), next: make([]float64, n), refU: make([]float64, n)}
	m.Reset()
	return m
}

// Name implements Workload.
func (m *MiniAMR) Name() string { return "miniamr" }

// Reset implements Workload.
func (m *MiniAMR) Reset() {
	lcg(m.u, 23)
	for i := range m.next {
		m.next[i] = 0
	}
}

// refined reports whether block b is refined at step s (deterministic
// refinement schedule mimicking AMR's changing block population).
func (m *MiniAMR) refined(s, b int) bool { return (s+b)%3 == 0 }

// halfRep returns the dependency representative of half h (0 or 1) of
// block b. Every task on a block declares both halves, so nested child
// tasks on a single half chain correctly under the parent's accesses.
func (m *MiniAMR) halfRep(b, h int) *float64 {
	return &m.u[b*m.block+h*m.block/2]
}

// updateRange advances cells [lo,hi) with a 3-point stencil, reading the
// boundary values captured by the caller.
func (m *MiniAMR) updateRange(lo, hi int, left, right float64) {
	prev := left
	for i := lo; i < hi; i++ {
		cur := m.u[i]
		nxt := right
		if i+1 < hi {
			nxt = m.u[i+1]
		}
		m.u[i] = 0.25*prev + 0.5*cur + 0.25*nxt
		prev = cur
	}
}

// blockBounds returns the cell range and captured boundary values of
// block b (zero-flux domain boundaries).
func (m *MiniAMR) blockBounds(b int) (lo, hi int, left, right float64) {
	lo, hi = b*m.block, (b+1)*m.block
	if lo > 0 {
		left = m.u[lo-1]
	} else {
		left = m.u[lo]
	}
	if hi < m.n {
		right = m.u[hi]
	} else {
		right = m.u[hi-1]
	}
	return lo, hi, left, right
}

// Run implements Workload.
func (m *MiniAMR) Run(rt *core.Runtime) error {
	return rt.Run(func(c *core.Ctx) {
		for s := 0; s < m.steps; s++ {
			for b := 0; b < m.nb; b++ {
				s, b := s, b
				specs := []core.AccessSpec{
					core.InOut(m.halfRep(b, 0)), core.InOut(m.halfRep(b, 1)),
				}
				if b > 0 {
					specs = append(specs, core.In(m.halfRep(b-1, 1)))
				}
				if b < m.nb-1 {
					specs = append(specs, core.In(m.halfRep(b+1, 0)))
				}
				c.Spawn(func(cc *core.Ctx) {
					lo, hi, left, right := m.blockBounds(b)
					if !m.refined(s, b) {
						m.updateRange(lo, hi, left, right)
						return
					}
					// Refined block: the parent captures the half
					// boundary and spawns one child task per half; the
					// children nest under the parent's half accesses.
					mid := (lo + hi) / 2
					lb, rb := m.u[mid-1], m.u[mid]
					cc.Spawn(func(*core.Ctx) { m.updateRange(lo, mid, left, rb) },
						core.InOut(m.halfRep(b, 0)))
					cc.Spawn(func(*core.Ctx) { m.updateRange(mid, hi, lb, right) },
						core.InOut(m.halfRep(b, 1)))
				}, specs...)
			}
		}
		c.Taskwait()
	})
}

// RunSerial implements Workload: the identical refinement schedule and
// update order.
func (m *MiniAMR) RunSerial() {
	for s := 0; s < m.steps; s++ {
		for b := 0; b < m.nb; b++ {
			lo, hi, left, right := m.blockBounds(b)
			if !m.refined(s, b) {
				m.updateRange(lo, hi, left, right)
				continue
			}
			mid := (lo + hi) / 2
			lb, rb := m.u[mid-1], m.u[mid]
			m.updateRange(lo, mid, left, rb)
			m.updateRange(mid, hi, lb, right)
		}
	}
	copy(m.refU, m.u)
}

// Verify implements Workload: fully deterministic, so exact.
func (m *MiniAMR) Verify() error {
	got := append([]float64(nil), m.u...)
	m.Reset()
	m.RunSerial()
	for i := range got {
		if got[i] != m.refU[i] {
			return fmt.Errorf("miniamr: u[%d] = %v, serial %v", i, got[i], m.refU[i])
		}
	}
	return nil
}

// TotalWork implements Workload.
func (m *MiniAMR) TotalWork() float64 {
	return float64(m.n) * float64(m.steps)
}

// Tasks implements Workload: one task per block per step plus two child
// tasks per refined block (one third of blocks).
func (m *MiniAMR) Tasks() int {
	return m.steps*m.nb + 2*(m.steps*m.nb/3)
}
