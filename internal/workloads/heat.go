package workloads

import (
	"fmt"

	"repro/internal/core"
)

// Heat is benchmark (2) of §6.1: an iterative Gauss-Seidel solver for
// the heat equation on a 2-D grid, blocked, with one task per block per
// time step and a task reduction computing the residual. Dependencies
// express the classic wavefront: a block reads its left/top neighbours
// from the current sweep and its right/bottom neighbours from the
// previous one, which is exactly what address-based in/inout accesses in
// registration order produce.
type Heat struct {
	n, block, steps int
	nb              int // blocks per side
	grid            []float64
	ref             []float64
	// tileRes holds each tile's last-sweep residual contribution; a
	// work-sharing reduction loop folds it into residual after the
	// sweeps (see Run).
	tileRes     []float64
	residual    float64
	refResidual float64
}

// NewHeat builds an n×n interior grid (plus boundary) in block×block
// tiles over the given number of Gauss-Seidel sweeps.
func NewHeat(n, block, steps int) *Heat {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	// Round n down to a multiple of block for clean tiling.
	n = n / block * block
	if n == 0 {
		n = block
	}
	h := &Heat{n: n, block: block, steps: steps, nb: n / block,
		grid: make([]float64, (n+2)*(n+2)), ref: make([]float64, (n+2)*(n+2))}
	h.tileRes = make([]float64, h.nb*h.nb)
	h.Reset()
	return h
}

// Name implements Workload.
func (h *Heat) Name() string { return "heat" }

// Reset implements Workload: fixed hot top boundary, cold interior.
func (h *Heat) Reset() {
	for i := range h.grid {
		h.grid[i] = 0
	}
	stride := h.n + 2
	for j := 0; j < stride; j++ {
		h.grid[j] = 100 // top boundary row
	}
	for i := range h.tileRes {
		h.tileRes[i] = 0
	}
	h.residual = 0
	h.refResidual = 0
}

func (h *Heat) at(i, j int) *float64 { return &h.grid[i*(h.n+2)+j] }

// sweepBlock performs the Gauss-Seidel update of one tile, returning the
// accumulated local residual.
func (h *Heat) sweepBlock(bi, bj int) float64 {
	stride := h.n + 2
	res := 0.0
	for i := bi*h.block + 1; i <= (bi+1)*h.block; i++ {
		row := i * stride
		for j := bj*h.block + 1; j <= (bj+1)*h.block; j++ {
			old := h.grid[row+j]
			v := 0.25 * (h.grid[row+j-1] + h.grid[row+j+1] +
				h.grid[row-stride+j] + h.grid[row+stride+j])
			h.grid[row+j] = v
			d := v - old
			res += d * d
		}
	}
	return res
}

// Run implements Workload. Block representatives (the first interior
// element of each tile) carry the wavefront dependencies; the last
// sweep records each tile's residual contribution, which a
// work-sharing reduction loop folds into the scalar residual after the
// sweeps drain.
func (h *Heat) Run(rt *core.Runtime) error {
	h.residual = 0
	return rt.Run(func(c *core.Ctx) {
		for s := 0; s < h.steps; s++ {
			last := s == h.steps-1
			for bi := 0; bi < h.nb; bi++ {
				for bj := 0; bj < h.nb; bj++ {
					bi, bj := bi, bj
					specs := make([]core.AccessSpec, 0, 5)
					specs = append(specs, core.InOut(h.rep(bi, bj)))
					if bi > 0 {
						specs = append(specs, core.In(h.rep(bi-1, bj)))
					}
					if bj > 0 {
						specs = append(specs, core.In(h.rep(bi, bj-1)))
					}
					if bi < h.nb-1 {
						specs = append(specs, core.In(h.rep(bi+1, bj)))
					}
					if bj < h.nb-1 {
						specs = append(specs, core.In(h.rep(bi, bj+1)))
					}
					if last {
						c.Spawn(func(*core.Ctx) {
							h.tileRes[bi*h.nb+bj] = h.sweepBlock(bi, bj)
						}, specs...)
					} else {
						c.Spawn(func(*core.Ctx) { h.sweepBlock(bi, bj) }, specs...)
					}
				}
			}
		}
		c.Taskwait()
		c.Loop(0, h.nb*h.nb, 0, h.residualChunk, core.RedSpec(&h.residual, 1, redSum))
		c.Taskwait()
	})
}

// residualChunk folds the per-tile residuals of [lo, hi) into the
// executing worker's privatized reduction buffer.
func (h *Heat) residualChunk(cc *core.Ctx, lo, hi int) {
	acc := cc.ReductionBuffer(&h.residual)
	s := 0.0
	for i := lo; i < hi; i++ {
		s += h.tileRes[i]
	}
	acc[0] += s
}

// rep returns the dependency representative of a tile.
func (h *Heat) rep(bi, bj int) *float64 { return h.at(bi*h.block+1, bj*h.block+1) }

// RunSerial implements Workload: the same blocked sweeps in registration
// order, which the dependency graph linearizes identically.
func (h *Heat) RunSerial() {
	h.refResidual = 0
	for s := 0; s < h.steps; s++ {
		for bi := 0; bi < h.nb; bi++ {
			for bj := 0; bj < h.nb; bj++ {
				r := h.sweepBlock(bi, bj)
				if s == h.steps-1 {
					h.refResidual += r
				}
			}
		}
	}
}

// Verify implements Workload: the parallel grid must match the serial
// one exactly (the dependency wavefront makes the computation
// deterministic); the residual reduction may differ in summation order.
func (h *Heat) Verify() error {
	got := append([]float64(nil), h.grid...)
	gotRes := h.residual
	h.Reset()
	h.RunSerial()
	for i := range got {
		if got[i] != h.grid[i] {
			return fmt.Errorf("heat: grid[%d] = %v, serial %v", i, got[i], h.grid[i])
		}
	}
	if !almostEqual(gotRes, h.refResidual, 1e-9) {
		return fmt.Errorf("heat: residual %v, serial %v", gotRes, h.refResidual)
	}
	return nil
}

// TotalWork implements Workload.
func (h *Heat) TotalWork() float64 { return float64(h.n) * float64(h.n) * float64(h.steps) }

// Tasks implements Workload.
func (h *Heat) Tasks() int { return h.nb * h.nb * h.steps }
