package workloads

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/counter"
)

// Echo is the RPC-proxy scenario the external-events subsystem exists
// for: every request is a three-task chain — a *frontend* task staging
// the request payload, a *backend* task that must wait out a simulated
// backend round trip before producing the response, and a *reply* task
// folding the response into a shared per-key accumulator (so requests
// also contend on root-level dependency chains, like Server). The
// backend wait is the experimental axis:
//
//   - events mode (the default): the backend body registers the
//     response arrival on the runtime's timer wheel through
//     Ctx.AfterFunc and returns immediately. The worker goes back to
//     the scheduler; the request graph parks, one of thousands in
//     flight, and releases when the "response" fires.
//   - blocking mode (the baseline): the backend body time.Sleeps the
//     round trip, holding its worker. In-flight requests are then
//     capped by the worker count, the thread-per-request model the
//     events API replaces.
//
// Traffic is deterministic per request index and integer-valued, so
// Verify replays it serially and demands bit-exact key totals — a
// premature release (reply reading resp before the backend completion
// wrote it) is a verification failure, not just a latency artifact.
type Echo struct {
	nkeys, clients, requests int
	window                   int
	backendLat               time.Duration
	blocking                 bool

	keys  []float64
	stage []float64 // one cell per request: frontend → backend
	resp  []float64 // one cell per request: backend → reply

	// arrivals, when set, paces each client's issue loop on the shared
	// open-loop schedule (indexed by global request number); latency is
	// then measured from the scheduled instant. Nil is closed-loop
	// windowed issue, latency from issue time.
	arrivals Arrivals

	// Latency records per-request server-side latency (t0 to reply-task
	// completion) in nanoseconds, recorded by the reply body into the
	// executing worker's shard.
	Latency *counter.Histogram
	// Elapsed is the wall time of the last Run; with Little's law,
	// requests/Elapsed × backendLat is the mean number of request
	// graphs simultaneously waiting on the backend.
	Elapsed time.Duration

	lastWorkers int
}

// NewEcho builds an echo scenario: `requests` three-task request
// chains over nkeys shared accumulators, issued by `clients` concurrent
// goroutines each keeping up to `window` requests in flight, with a
// simulated backend round trip of backendLat. blocking selects the
// worker-holding baseline; false is events mode.
func NewEcho(nkeys, clients, requests, window int, backendLat time.Duration, blocking bool) *Echo {
	if nkeys < 1 {
		nkeys = 1
	}
	if clients < 1 {
		clients = 1
	}
	if clients > 64 {
		clients = 64
	}
	if requests < clients {
		requests = clients
	}
	if window < 1 {
		window = 1
	}
	if backendLat <= 0 {
		backendLat = time.Millisecond
	}
	e := &Echo{
		nkeys:      nkeys,
		clients:    clients,
		requests:   requests,
		window:     window,
		backendLat: backendLat,
		blocking:   blocking,
		keys:       make([]float64, nkeys),
		stage:      make([]float64, requests),
		resp:       make([]float64, requests),
		Latency:    counter.NewHistogram(1),
	}
	e.Reset()
	return e
}

// SetArrivals switches the clients to the given open-loop schedule,
// indexed by global request number (nil restores closed-loop issue).
// The schedule should hold one entry per request; a shorter one issues
// the surplus immediately at its last instant.
func (e *Echo) SetArrivals(a Arrivals) { e.arrivals = a }

// Name implements Workload.
func (e *Echo) Name() string { return "echo" }

// Reset implements Workload. Integer-valued keys keep sums exact.
func (e *Echo) Reset() {
	for i := range e.keys {
		e.keys[i] = float64(1 + i%9)
	}
	clear(e.stage)
	clear(e.resp)
	e.Latency.Reset()
	e.Elapsed = 0
}

// Deterministic per-request traffic: the Fibonacci-hashed key and
// integer payload match Server's scheme, and the backend transform
// (double the payload) stays exactly representable.
func (e *Echo) reqKey(r int) int { return int(uint64(r) * 2654435761 % uint64(e.nkeys)) }

func (e *Echo) reqDelta(r int) float64 { return float64(1 + (r*7+3)%11) }

// echoInflight tracks one submitted request chain.
type echoInflight struct{ front, back, reply *core.Handle }

func (f *echoInflight) await(errp *error) {
	if f.reply == nil {
		return
	}
	for _, h := range [...]*core.Handle{f.reply, f.back, f.front} {
		if _, err := h.Wait(nil); err != nil && *errp == nil {
			*errp = err
		}
	}
	f.front, f.back, f.reply = nil, nil, nil
}

// submitRequest issues one frontend→backend→reply chain for request r,
// with latency measured from t0.
func (e *Echo) submitRequest(rt *core.Runtime, r int, t0 time.Time) echoInflight {
	stage, resp := &e.stage[r], &e.resp[r]
	key := &e.keys[e.reqKey(r)]
	delta := e.reqDelta(r)
	lat := e.backendLat
	hist := e.Latency
	var f echoInflight
	f.front = rt.Submit(func(*core.Ctx) (any, error) {
		*stage = delta
		return nil, nil
	}, core.Out(stage))
	if e.blocking {
		f.back = rt.Submit(func(*core.Ctx) (any, error) {
			time.Sleep(lat) // the worker-holding baseline
			*resp = *stage * 2
			return nil, nil
		}, core.In(stage), core.Out(resp))
	} else {
		f.back = rt.Submit(func(c *core.Ctx) (any, error) {
			v := *stage
			// The "response arrives": written on the wheel goroutine,
			// ordered before the reply task by the event completing
			// only after fn runs.
			c.AfterFunc(lat, func() { *resp = v * 2 })
			return nil, nil // worker freed; the graph parks here
		}, core.In(stage), core.Out(resp))
	}
	f.reply = rt.Submit(func(c *core.Ctx) (any, error) {
		*key += *resp
		hist.Record(c.Worker(), time.Since(t0).Nanoseconds())
		return nil, nil
	}, core.In(resp), core.InOut(key))
	return f
}

// Run implements Workload: clients issue their request shares
// concurrently, each through a bounded in-flight window (closed loop)
// or on the open-loop arrival schedule, and every handle is awaited
// before returning.
func (e *Echo) Run(rt *core.Runtime) error {
	// Sized by the full thread-index space: a reply body can execute on
	// a non-worker slot when an inline-serving submitter helps it.
	if w := rt.Slots(); e.Latency.Recorders() != w {
		e.Latency = counter.NewHistogram(w)
	}
	e.lastWorkers = rt.Config().Workers
	start := time.Now()
	errs := make([]error, e.clients)
	var wg sync.WaitGroup
	for g := 0; g < e.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			win := make([]echoInflight, e.window)
			n := 0
			for r := g; r < e.requests; r += e.clients {
				t0 := time.Now()
				if e.arrivals != nil {
					i := r
					if i >= len(e.arrivals) {
						i = len(e.arrivals) - 1
					}
					t0 = e.arrivals.Pace(start, i)
				}
				i := n % e.window
				win[i].await(&errs[g])
				win[i] = e.submitRequest(rt, r, t0)
				n++
			}
			for i := range win {
				win[i].await(&errs[g])
			}
		}(g)
	}
	wg.Wait()
	e.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunSerial implements Workload: the same traffic in request order on
// one goroutine.
func (e *Echo) RunSerial() {
	for r := 0; r < e.requests; r++ {
		e.stage[r] = e.reqDelta(r)
		e.resp[r] = e.stage[r] * 2
		e.keys[e.reqKey(r)] += e.resp[r]
	}
}

// Verify implements Workload: bit-exact per-key totals plus exact
// per-request staging and response cells — a reply that ran before its
// backend completion wrote the response shows up here.
func (e *Echo) Verify() error {
	want := make([]float64, e.nkeys)
	for k := range want {
		want[k] = float64(1 + k%9)
	}
	for r := 0; r < e.requests; r++ {
		if e.stage[r] != e.reqDelta(r) {
			return fmt.Errorf("echo: request %d staged %v, want %v", r, e.stage[r], e.reqDelta(r))
		}
		if e.resp[r] != e.reqDelta(r)*2 {
			return fmt.Errorf("echo: request %d response %v, want %v", r, e.resp[r], e.reqDelta(r)*2)
		}
		want[e.reqKey(r)] += e.resp[r]
	}
	for k := 0; k < e.nkeys; k++ {
		if e.keys[k] != want[k] {
			return fmt.Errorf("echo: key %d = %v, want %v", k, e.keys[k], want[k])
		}
	}
	return nil
}

// InflightPerWorker returns the last Run's mean number of request
// graphs concurrently waiting on the backend, per worker: by Little's
// law, throughput × backendLat, over the worker count. The blocking
// baseline cannot exceed 1.0 (a waiting request holds a worker); the
// events mode is bounded by the client windows, not the workers.
func (e *Echo) InflightPerWorker() float64 {
	if e.Elapsed == 0 || e.lastWorkers == 0 {
		return 0
	}
	throughput := float64(e.requests) / e.Elapsed.Seconds()
	return throughput * e.backendLat.Seconds() / float64(e.lastWorkers)
}

// TotalWork implements Workload: three element updates per request.
func (e *Echo) TotalWork() float64 { return float64(3 * e.requests) }

// Tasks implements Workload: three tasks per request.
func (e *Echo) Tasks() int { return 3 * e.requests }

var _ Workload = (*Echo)(nil)
