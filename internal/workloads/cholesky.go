package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Cholesky is benchmark (8) of §6.1: a blocked Cholesky factorization of
// a symmetric positive-definite matrix, the canonical data-flow showcase.
// The four kernels (potrf, trsm, syrk, gemm) are chained purely by their
// tile accesses, yielding the classic irregular task DAG.
type Cholesky struct {
	n, block int
	nb       int
	a        []float64 // factorized in place (lower triangle)
	orig     []float64
	ref      []float64
}

// NewCholesky builds an n×n factorization in block×block tiles.
func NewCholesky(n, block int) *Cholesky {
	if block < 1 {
		block = 1
	}
	if block > n {
		block = n
	}
	n = n / block * block
	if n == 0 {
		n = block
	}
	c := &Cholesky{n: n, block: block, nb: n / block,
		a: make([]float64, n*n), orig: make([]float64, n*n), ref: make([]float64, n*n)}
	c.Reset()
	return c
}

// Name implements Workload.
func (ch *Cholesky) Name() string { return "cholesky" }

// Reset implements Workload: a symmetric diagonally dominant matrix is
// positive definite.
func (ch *Cholesky) Reset() {
	n := ch.n
	lcg(ch.a, 3)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := 0.5 * (ch.a[i*n+j] + ch.a[j*n+i])
			ch.a[i*n+j], ch.a[j*n+i] = v, v
		}
		ch.a[i*n+i] += float64(n)
	}
	copy(ch.orig, ch.a)
}

// The tile kernels operate on the lower triangle in place.

// potrf: unblocked Cholesky of the diagonal tile (bk,bk).
func (ch *Cholesky) potrf(bk int) {
	n, b := ch.n, ch.block
	base := bk * b
	for j := 0; j < b; j++ {
		d := ch.a[(base+j)*n+base+j]
		for k := 0; k < j; k++ {
			v := ch.a[(base+j)*n+base+k]
			d -= v * v
		}
		d = math.Sqrt(d)
		ch.a[(base+j)*n+base+j] = d
		for i := j + 1; i < b; i++ {
			s := ch.a[(base+i)*n+base+j]
			for k := 0; k < j; k++ {
				s -= ch.a[(base+i)*n+base+k] * ch.a[(base+j)*n+base+k]
			}
			ch.a[(base+i)*n+base+j] = s / d
		}
	}
}

// trsm: A[bi,bk] = A[bi,bk] · L[bk,bk]^-T (forward substitution).
func (ch *Cholesky) trsm(bk, bi int) {
	n, b := ch.n, ch.block
	rb, cb := bi*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := ch.a[(rb+i)*n+cb+j]
			for k := 0; k < j; k++ {
				s -= ch.a[(rb+i)*n+cb+k] * ch.a[(cb+j)*n+cb+k]
			}
			ch.a[(rb+i)*n+cb+j] = s / ch.a[(cb+j)*n+cb+j]
		}
	}
}

// syrk: A[bi,bi] -= A[bi,bk] · A[bi,bk]^T (lower triangle only).
func (ch *Cholesky) syrk(bk, bi int) {
	n, b := ch.n, ch.block
	rb, cb := bi*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j <= i; j++ {
			s := ch.a[(rb+i)*n+rb+j]
			for k := 0; k < b; k++ {
				s -= ch.a[(rb+i)*n+cb+k] * ch.a[(rb+j)*n+cb+k]
			}
			ch.a[(rb+i)*n+rb+j] = s
		}
	}
}

// gemm: A[bi,bj] -= A[bi,bk] · A[bj,bk]^T.
func (ch *Cholesky) gemm(bk, bi, bj int) {
	n, b := ch.n, ch.block
	rb, jb, cb := bi*b, bj*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := ch.a[(rb+i)*n+jb+j]
			for k := 0; k < b; k++ {
				s -= ch.a[(rb+i)*n+cb+k] * ch.a[(jb+j)*n+cb+k]
			}
			ch.a[(rb+i)*n+jb+j] = s
		}
	}
}

// rep returns the dependency representative of tile (bi,bj).
func (ch *Cholesky) rep(bi, bj int) *float64 {
	return &ch.a[bi*ch.block*ch.n+bj*ch.block]
}

// Run implements Workload: the standard right-looking tiled algorithm.
func (ch *Cholesky) Run(rt *core.Runtime) error {
	return rt.Run(func(c *core.Ctx) {
		for k := 0; k < ch.nb; k++ {
			k := k
			c.Spawn(func(*core.Ctx) { ch.potrf(k) }, core.InOut(ch.rep(k, k)))
			for i := k + 1; i < ch.nb; i++ {
				i := i
				c.Spawn(func(*core.Ctx) { ch.trsm(k, i) },
					core.In(ch.rep(k, k)), core.InOut(ch.rep(i, k)))
			}
			for i := k + 1; i < ch.nb; i++ {
				i := i
				for j := k + 1; j < i; j++ {
					j := j
					c.Spawn(func(*core.Ctx) { ch.gemm(k, i, j) },
						core.In(ch.rep(i, k)), core.In(ch.rep(j, k)),
						core.InOut(ch.rep(i, j)))
				}
				c.Spawn(func(*core.Ctx) { ch.syrk(k, i) },
					core.In(ch.rep(i, k)), core.InOut(ch.rep(i, i)))
			}
		}
		c.Taskwait()
	})
}

// RunSerial implements Workload: same kernels, program order.
func (ch *Cholesky) RunSerial() {
	for k := 0; k < ch.nb; k++ {
		ch.potrf(k)
		for i := k + 1; i < ch.nb; i++ {
			ch.trsm(k, i)
		}
		for i := k + 1; i < ch.nb; i++ {
			for j := k + 1; j < i; j++ {
				ch.gemm(k, i, j)
			}
			ch.syrk(k, i)
		}
	}
}

// Verify implements Workload: the parallel factor must match the serial
// factor exactly, and L·Lᵀ must reconstruct the original matrix.
func (ch *Cholesky) Verify() error {
	got := append([]float64(nil), ch.a...)
	ch.Reset()
	ch.RunSerial()
	n := ch.n
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if got[i*n+j] != ch.a[i*n+j] {
				return fmt.Errorf("cholesky: L[%d,%d] = %v, serial %v",
					i, j, got[i*n+j], ch.a[i*n+j])
			}
		}
	}
	// Spot-check the reconstruction on a diagonal stripe.
	for i := 0; i < n; i++ {
		s := 0.0
		for k := 0; k <= i; k++ {
			s += got[i*n+k] * got[i*n+k]
		}
		if !almostEqual(s, ch.orig[i*n+i], 1e-8) {
			return fmt.Errorf("cholesky: (L·Lᵀ)[%d,%d] = %v, want %v",
				i, i, s, ch.orig[i*n+i])
		}
	}
	return nil
}

// TotalWork implements Workload (≈ n³/3 multiply-adds).
func (ch *Cholesky) TotalWork() float64 {
	nf := float64(ch.n)
	return nf * nf * nf / 3
}

// Tasks implements Workload.
func (ch *Cholesky) Tasks() int {
	nb := ch.nb
	// potrf: nb, trsm: nb(nb-1)/2, syrk: nb(nb-1)/2, gemm: ~nb³/6
	return nb + nb*(nb-1) + nb*(nb-1)*(nb-2)/6
}
