package workloads

import (
	"math"
	"testing"
)

// Kernel-level unit tests: the numeric building blocks must be right
// independently of the task graphs around them.

func TestCholeskyKernelFactorizesKnownMatrix(t *testing.T) {
	// A 2x2 blocked factorization of a hand-checkable SPD matrix:
	// A = L·Lᵀ with L = [[2,0],[1,3]] gives A = [[4,2],[2,10]].
	ch := NewCholesky(2, 1)
	n := ch.n
	ch.a[0*n+0], ch.a[0*n+1] = 4, 2
	ch.a[1*n+0], ch.a[1*n+1] = 2, 10
	ch.RunSerial()
	want := [2][2]float64{{2, 0}, {1, 3}}
	for i := 0; i < 2; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(ch.a[i*n+j]-want[i][j]) > 1e-12 {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, ch.a[i*n+j], want[i][j])
			}
		}
	}
}

func TestGemmTileMatchesDirectProduct(t *testing.T) {
	const n, block = 8, 4
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	c := make([]float64, n*n)
	lcg(a, 1)
	lcg(bm, 2)
	for bi := 0; bi < n/block; bi++ {
		for bj := 0; bj < n/block; bj++ {
			for bk := 0; bk < n/block; bk++ {
				gemmTile(a, bm, c, n, block, bi, bj, bk)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += a[i*n+k] * bm[k*n+j]
			}
			if math.Abs(c[i*n+j]-want) > 1e-9 {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, c[i*n+j], want)
			}
		}
	}
}

func TestHeatSweepConservesBoundaries(t *testing.T) {
	h := NewHeat(16, 8, 1)
	top := make([]float64, h.n+2)
	stride := h.n + 2
	copy(top, h.grid[:stride])
	h.RunSerial()
	for j := 0; j < stride; j++ {
		if h.grid[j] != top[j] {
			t.Fatal("boundary row modified by sweep")
		}
	}
	// Heat must have diffused into the first interior row.
	anyWarm := false
	for j := 1; j <= h.n; j++ {
		if h.grid[stride+j] > 0 {
			anyWarm = true
		}
	}
	if !anyWarm {
		t.Fatal("no diffusion from hot boundary")
	}
}

func TestHPCCGSpmvTridiagonal(t *testing.T) {
	h := NewHPCCG(8, 4, 1)
	for i := range h.p {
		h.p[i] = 1
	}
	h.spmvBlock(0, h.n)
	// Interior rows: 3-1-1 = 1; boundary rows: 3-1 = 2.
	for i := 0; i < h.n; i++ {
		want := 1.0
		if i == 0 || i == h.n-1 {
			want = 2.0
		}
		if h.ap[i] != want {
			t.Fatalf("Ap[%d] = %v, want %v", i, h.ap[i], want)
		}
	}
}

func TestNBodyMomentumApproximatelyConserved(t *testing.T) {
	// Pairwise forces are equal and opposite; after a serial step the
	// total momentum change must be ~0 (softening keeps it inexact only
	// at floating-point level).
	w := NewNBody(64, 16, 1)
	w.RunSerial()
	var px, py, pz float64
	for i := 0; i < w.n; i++ {
		px += w.vel[3*i]
		py += w.vel[3*i+1]
		pz += w.vel[3*i+2]
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-12*float64(w.n) {
		t.Fatalf("momentum drift: (%g, %g, %g)", px, py, pz)
	}
}

func TestLuleshForceBalance(t *testing.T) {
	// scatterForces writes -s and +s per element: the force sum over all
	// nodes telescopes to elem[last]-elem[0] contributions at the ends.
	l := NewLulesh(64, 16, 1)
	for b := 0; b < l.nb; b++ {
		l.scatterForces(b)
	}
	sum := 0.0
	for _, f := range l.nodeF {
		sum += f
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("force sum = %g, want 0 (telescoping)", sum)
	}
}

func TestMiniAMRRefinementScheduleDeterministic(t *testing.T) {
	m := NewMiniAMR(256, 64, 3)
	a := m.refined(1, 2)
	b := m.refined(1, 2)
	if a != b {
		t.Fatal("refinement schedule not deterministic")
	}
	// Roughly one third of blocks refine each step.
	count := 0
	for b := 0; b < 300; b++ {
		if m.refined(0, b) {
			count++
		}
	}
	if count != 100 {
		t.Fatalf("refined %d of 300, want 100", count)
	}
}

func TestLCGDeterministicAndInRange(t *testing.T) {
	a := make([]float64, 100)
	b := make([]float64, 100)
	lcg(a, 42)
	lcg(b, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("lcg not deterministic")
		}
		if a[i] <= 0 || a[i] >= 1 {
			t.Fatalf("lcg[%d] = %v out of (0,1)", i, a[i])
		}
	}
	lcg(b, 43)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds produce the same stream")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !almostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Fatal("tiny relative difference rejected")
	}
	if almostEqual(1.0, 1.1, 1e-9) {
		t.Fatal("large difference accepted")
	}
	if !almostEqual(0, 0, 1e-9) {
		t.Fatal("exact zero rejected")
	}
	if !almostEqual(-100, -100.0000000001, 1e-9) {
		t.Fatal("negative magnitudes mishandled")
	}
}
