package workloads

import (
	"math/rand"
	"time"
)

// Arrivals is a precomputed open-loop arrival schedule: entry i is the
// offset from the schedule's start at which request i should be
// issued. Open-loop clients issue on the schedule regardless of how
// fast earlier requests complete, and latency is measured from the
// *scheduled* instant — so a slow server sees queueing delay in the
// recorded tail instead of silently throttling the load (the
// coordinated-omission error of closed-loop measurement).
type Arrivals []time.Duration

// FixedArrivals returns n arrivals at a constant interval (a
// deterministic rate of 1/interval).
func FixedArrivals(n int, interval time.Duration) Arrivals {
	a := make(Arrivals, n)
	for i := range a {
		a[i] = time.Duration(i) * interval
	}
	return a
}

// PoissonArrivals returns n arrivals of a Poisson process with the
// given mean inter-arrival time, deterministic per seed (exponential
// gaps, the standard open-loop traffic model).
func PoissonArrivals(n int, mean time.Duration, seed int64) Arrivals {
	rng := rand.New(rand.NewSource(seed))
	a := make(Arrivals, n)
	var t float64
	for i := range a {
		t += rng.ExpFloat64() * float64(mean)
		a[i] = time.Duration(t)
	}
	return a
}

// Pace sleeps until the i-th scheduled instant relative to start and
// returns that instant. The return value — not time.Now() — is the
// latency origin for request i: an issuer running behind schedule
// issues immediately but still charges the accumulated delay to the
// request, keeping the measurement free of coordinated omission.
func (a Arrivals) Pace(start time.Time, i int) time.Time {
	sched := start.Add(a[i])
	if d := time.Until(sched); d > 0 {
		time.Sleep(d)
	}
	return sched
}
