package workloads

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestEchoBothModesVerify runs the echo scenario in events mode and in
// the worker-blocking baseline on the same runtime and demands the
// bit-exact serial result from both.
func TestEchoBothModesVerify(t *testing.T) {
	rt := newTestRuntime(core.VariantOptimized)
	defer rt.Close()
	for _, blocking := range []bool{false, true} {
		name := "events"
		if blocking {
			name = "blocking"
		}
		t.Run(name, func(t *testing.T) {
			e := NewEcho(32, 4, 300, 16, 200*time.Microsecond, blocking)
			if err := e.Run(rt); err != nil {
				t.Fatal(err)
			}
			if err := e.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := e.Latency.Count(); got != 300 {
				t.Fatalf("recorded %d latencies, want 300", got)
			}
		})
	}
}

// TestEchoOpenLoopArrivals drives the echo clients on a Poisson
// open-loop schedule and checks the result stays exact and every
// request's latency is recorded against its scheduled instant.
func TestEchoOpenLoopArrivals(t *testing.T) {
	rt := newTestRuntime(core.VariantOptimized)
	defer rt.Close()
	const requests = 200
	e := NewEcho(32, 4, requests, 16, 200*time.Microsecond, false)
	e.SetArrivals(PoissonArrivals(requests, 50*time.Microsecond, 1))
	if err := e.Run(rt); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := e.Latency.Count(); got != requests {
		t.Fatalf("recorded %d latencies, want %d", got, requests)
	}
}

// TestArrivalsSchedules pins the schedule generators: fixed arrivals
// are an exact lattice, Poisson arrivals are strictly increasing and
// deterministic per seed, and Pace never returns an instant other than
// the scheduled one — a late issuer still charges its delay to the
// request (no coordinated omission).
func TestArrivalsSchedules(t *testing.T) {
	f := FixedArrivals(5, time.Millisecond)
	for i, off := range f {
		if off != time.Duration(i)*time.Millisecond {
			t.Fatalf("fixed arrival %d at %v", i, off)
		}
	}
	p1 := PoissonArrivals(100, time.Millisecond, 42)
	p2 := PoissonArrivals(100, time.Millisecond, 42)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("poisson schedule not deterministic at %d: %v vs %v", i, p1[i], p2[i])
		}
		if i > 0 && p1[i] <= p1[i-1] {
			t.Fatalf("poisson schedule not increasing at %d", i)
		}
	}
	// Pace of an instant already in the past returns the scheduled
	// instant, not now.
	start := time.Now().Add(-time.Second)
	sched := FixedArrivals(2, 100*time.Millisecond).Pace(start, 1)
	if want := start.Add(100 * time.Millisecond); !sched.Equal(want) {
		t.Fatalf("Pace returned %v, want scheduled %v", sched, want)
	}
}

// TestQoSOpenLoopInteractive switches the QoS scenario's interactive
// client to an open-loop schedule and checks the run stays exact with
// every interactive latency recorded.
func TestQoSOpenLoopInteractive(t *testing.T) {
	rt := newTestRuntime(core.VariantOptimized)
	defer rt.Close()
	s := NewQoSServer(64, 8, 2, true)
	s.SetInteractiveArrivals(FixedArrivals(8, 500*time.Microsecond))
	if err := s.Run(rt); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := s.Interactive.Count(); got != 8 {
		t.Fatalf("recorded %d interactive latencies, want 8", got)
	}
}

// TestTenThousandInflightGraphsOnEightWorkers is the tentpole
// acceptance check, phrased deterministically: 10,000 echo-style
// request graphs are driven to the parked state *simultaneously* on an
// 8-worker runtime — every backend body has returned with its event
// pending, so PendingEvents reports all 10,000 — before a handful of
// completer goroutines fire the "responses". The run must then drain
// completely and verify bit-exact, proving in-flight capacity is
// bounded by memory, not by workers (the blocking baseline caps at 8).
func TestTenThousandInflightGraphsOnEightWorkers(t *testing.T) {
	const (
		requests = 10_000
		nkeys    = 64
	)
	rt := core.New(core.Config{Workers: 8})
	defer rt.Close()

	keys := make([]float64, nkeys)
	for i := range keys {
		keys[i] = float64(1 + i%9)
	}
	stage := make([]float64, requests)
	resp := make([]float64, requests)
	evs := make([]*core.EventCounter, requests)
	reqKey := func(r int) int { return int(uint64(r) * 2654435761 % uint64(nkeys)) }
	reqDelta := func(r int) float64 { return float64(1 + (r*7+3)%11) }

	replies := make([]*core.Handle, requests)
	for r := 0; r < requests; r++ {
		r := r
		st, rp := &stage[r], &resp[r]
		key := &keys[reqKey(r)]
		rt.Submit(func(*core.Ctx) (any, error) {
			*st = reqDelta(r)
			return nil, nil
		}, core.Out(st))
		rt.Submit(func(c *core.Ctx) (any, error) {
			ec := c.Events()
			ec.Add(1)
			evs[r] = ec // published to the firing goroutines via PendingEvents below
			return nil, nil
		}, core.In(st), core.Out(rp))
		replies[r] = rt.Submit(func(*core.Ctx) (any, error) {
			*key += *rp
			return nil, nil
		}, core.In(rp), core.InOut(key))
	}

	// Every backend body must return with its event pending: all 10k
	// graphs parked at once, no worker held.
	deadline := time.Now().Add(30 * time.Second)
	for rt.PendingEvents() != requests {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d graphs parked on events", rt.PendingEvents(), requests)
		}
		time.Sleep(time.Millisecond)
	}

	// Fire the 10k responses from 8 external goroutines.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := g; r < requests; r += 8 {
				resp[r] = stage[r] * 2
				evs[r].Done()
			}
		}(g)
	}
	wg.Wait()
	for r, h := range replies {
		if _, err := h.Wait(nil); err != nil {
			t.Fatalf("reply %d: %v", r, err)
		}
	}

	for k := 0; k < nkeys; k++ {
		want := float64(1 + k%9)
		for r := 0; r < requests; r++ {
			if reqKey(r) == k {
				want += reqDelta(r) * 2
			}
		}
		if keys[k] != want {
			t.Fatalf("key %d = %v, want %v", k, keys[k], want)
		}
	}
	if live := rt.LiveTasks(); live != 0 {
		t.Fatalf("LiveTasks = %d after drain, want 0", live)
	}
	if pend := rt.PendingEvents(); pend != 0 {
		t.Fatalf("PendingEvents = %d after drain, want 0", pend)
	}
}
