package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// tinyMachine keeps harness tests fast on small hosts.
var tinyMachine = platform.Machine{Name: "test", Cores: 4, NUMANodes: 2}

func TestRunSweepProducesNormalizedPanel(t *testing.T) {
	panel, err := RunSweep(SweepConfig{
		Figure:    "test",
		Benchmark: "dotproduct",
		Machine:   tinyMachine,
		Size:      workloads.Size{N: 1 << 14},
		Blocks:    []int{1 << 7, 1 << 10, 1 << 12},
		Variants:  []core.Variant{core.VariantOptimized, core.VariantNoDTLock},
		Repeats:   1,
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Series) != 2 {
		t.Fatalf("series = %d", len(panel.Series))
	}
	sawPeak := false
	for _, s := range panel.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: points = %d", s.Label, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.Efficiency < 0 || pt.Efficiency > 100.0001 {
				t.Fatalf("efficiency out of range: %v", pt.Efficiency)
			}
			if pt.Efficiency > 99.999 {
				sawPeak = true
			}
			if pt.Perf <= 0 || pt.Grain <= 0 || pt.Tasks <= 0 {
				t.Fatalf("bad point: %+v", pt)
			}
		}
	}
	if !sawPeak {
		t.Fatal("no cell at 100% efficiency; normalization broken")
	}
}

func TestSweepGrainIncreasesWithBlock(t *testing.T) {
	panel, err := RunSweep(SweepConfig{
		Figure: "test", Benchmark: "heat", Machine: tinyMachine,
		Size: workloads.Size{N: 64, Steps: 2}, Blocks: []int{8, 16, 32},
		Variants: []core.Variant{core.VariantOptimized},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := panel.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Grain <= pts[i-1].Grain {
			t.Fatalf("grain not increasing: %+v", pts)
		}
	}
}

func TestWriteRowsFormat(t *testing.T) {
	panel, err := RunSweep(SweepConfig{
		Figure: "figX", Benchmark: "matmul", Machine: tinyMachine,
		Size: workloads.Size{N: 48}, Blocks: []int{12, 24},
		Variants: []core.Variant{core.VariantOptimized},
		Labels:   []string{"Nanos6"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	panel.WriteRows(&buf)
	out := buf.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "matmul") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "Nanos6") {
		t.Fatalf("label missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + cols + 2 rows
		t.Fatalf("row count = %d:\n%s", lines, out)
	}
}

func TestFigureDefinitionsComplete(t *testing.T) {
	figs := Figures()
	if len(figs) != 6 {
		t.Fatalf("figures = %d, want 6 (figures 4..9)", len(figs))
	}
	sh := shapes(Quick)
	shFull := shapes(Full)
	for _, f := range figs {
		if len(f.Benchmarks) < 3 {
			t.Fatalf("%s: %d benchmarks", f.Name, len(f.Benchmarks))
		}
		if len(f.Labels) != len(f.Variants) {
			t.Fatalf("%s: labels/variants mismatch", f.Name)
		}
		for _, b := range f.Benchmarks {
			if _, ok := sh[b]; !ok {
				t.Fatalf("%s: no quick shape for %s", f.Name, b)
			}
			if _, ok := shFull[b]; !ok {
				t.Fatalf("%s: no full shape for %s", f.Name, b)
			}
			if _, ok := workloads.Registry[b]; !ok {
				t.Fatalf("%s: unknown benchmark %s", f.Name, b)
			}
		}
	}
	if _, ok := FigureByName("figure4"); !ok {
		t.Fatal("figure4 not found by name")
	}
	if _, ok := FigureByName("figureX"); ok {
		t.Fatal("bogus figure found")
	}
}

func TestRunTracedProducesServeEvents(t *testing.T) {
	res, err := RunTraced("dtlock", core.SchedSyncDTLock, tinyMachine, 0,
		workloads.Size{N: 1 << 12, Steps: 3}, 1<<7, core.NoiseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Totals().TaskCount == 0 {
		t.Fatal("traced run recorded no tasks")
	}
	if !strings.Contains(res.Timeline, "|") {
		t.Fatal("timeline missing")
	}
}

func TestRunTracedNoise(t *testing.T) {
	res, err := RunTraced("noise", core.SchedSyncDTLock, tinyMachine, 0,
		workloads.Size{N: 1 << 12, Steps: 3}, 1<<7,
		core.NoiseConfig{AfterServes: 1, Duration: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Summary.Totals()
	if tot.Serves > 0 && tot.Interrupts != 1 {
		t.Fatalf("serves=%d interrupts=%d", tot.Serves, tot.Interrupts)
	}
}

func TestSection34RunsAndIsPositive(t *testing.T) {
	r, err := RunSection34(4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.DTLockOpsPerSec <= 0 || r.PTLockOpsPerSec <= 0 || r.SerialAddsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", r)
	}
	if r.SchedulingSpeedup <= 0 || r.InsertionSpeedup <= 0 {
		t.Fatalf("non-positive speedups: %+v", r)
	}
}

func TestPlatformDescriptors(t *testing.T) {
	if platform.IntelXeon.Cores != 48 || platform.AMDRome.Cores != 128 ||
		platform.Graviton2.Cores != 64 {
		t.Fatal("paper core counts wrong")
	}
	if platform.AMDRome.Workers(16) != 16 {
		t.Fatal("worker cap not applied")
	}
	if platform.Graviton2.Workers(0) != 64 {
		t.Fatal("uncapped workers wrong")
	}
	if _, ok := platform.ByName("AMD Rome"); !ok {
		t.Fatal("ByName failed")
	}
	if platform.DefaultLimit() < 1 {
		t.Fatal("bad default limit")
	}
}
