package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func TestSeriesGrainExtremes(t *testing.T) {
	s := Series{Points: []Point{
		{Grain: 100, Efficiency: 40},
		{Grain: 10, Efficiency: 15},
		{Grain: 1000, Efficiency: 95},
	}}
	if got := s.AtFinestGrain(); got != 15 {
		t.Fatalf("AtFinestGrain = %v, want 15", got)
	}
	if got := s.AtCoarsestGrain(); got != 95 {
		t.Fatalf("AtCoarsestGrain = %v, want 95", got)
	}
	var empty Series
	if empty.AtFinestGrain() != 0 || empty.AtCoarsestGrain() != 0 {
		t.Fatal("empty series must report 0")
	}
}

func TestPanelPeakAndLookup(t *testing.T) {
	p := Panel{Series: []Series{
		{Label: "a", Points: []Point{{Perf: 10}, {Perf: 30}}},
		{Label: "b", Points: []Point{{Perf: 20}}},
	}}
	if p.Peak() != 30 {
		t.Fatalf("Peak = %v", p.Peak())
	}
	if _, ok := p.SeriesByLabel("b"); !ok {
		t.Fatal("SeriesByLabel failed")
	}
	if _, ok := p.SeriesByLabel("nope"); ok {
		t.Fatal("bogus label found")
	}
	p.normalize()
	if p.Series[0].Points[1].Efficiency != 100 {
		t.Fatal("peak cell not normalized to 100")
	}
}

func TestRunSweepRejectsUnknownBenchmark(t *testing.T) {
	_, err := RunSweep(SweepConfig{
		Benchmark: "not-a-benchmark",
		Machine:   tinyMachine,
		Blocks:    []int{8},
		Variants:  []core.Variant{core.VariantOptimized},
	})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunSweepVerifyCatchesNothingOnGoodRun(t *testing.T) {
	// -verify path on a correct workload must not error.
	_, err := RunSweep(SweepConfig{
		Figure: "t", Benchmark: "lulesh", Machine: tinyMachine,
		Size:     workloads.Size{N: 1 << 10, Steps: 2},
		Blocks:   []int{1 << 7},
		Variants: []core.Variant{core.VariantOptimized},
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
}
