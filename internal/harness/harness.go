// Package harness regenerates the paper's evaluation (§6.2-6.4): the
// efficiency-versus-granularity sweeps of Figures 4-9 and the traced
// runs of Figures 10-11. For each benchmark the problem size is held
// constant while the block size (task granularity) sweeps; performance
// is work units per second and efficiency normalizes each cell by the
// best performance observed across the benchmark's whole panel, exactly
// the metric the paper adopts from Task Bench.
package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// Point is one measured cell of a sweep.
type Point struct {
	Block      int
	Grain      float64 // work units per task (the paper's x axis)
	Tasks      int
	Seconds    float64
	Perf       float64 // work units per second
	Efficiency float64 // percent of the panel's peak performance
}

// Series is one plotted line: a runtime variant across the granularity
// sweep.
type Series struct {
	Variant core.Variant
	Label   string // figure legend name ("Nanos6", "GCC", ...)
	Points  []Point
}

// Panel is one subplot: a benchmark on a machine, all series.
type Panel struct {
	Figure    string
	Benchmark string
	Machine   string
	Workers   int
	Series    []Series
}

// SweepConfig drives one panel measurement.
type SweepConfig struct {
	Figure    string
	Benchmark string
	Machine   platform.Machine
	// WorkerLimit caps simulated cores (0 = full machine).
	WorkerLimit int
	Size        workloads.Size
	Blocks      []int
	Variants    []core.Variant
	Labels      []string // optional legend names matching Variants
	Repeats     int      // timing repetitions; best is kept
	Verify      bool     // verify results after each measured run
}

// RunSweep measures one panel. Each variant gets a fresh runtime; each
// (variant, block) cell is timed Repeats times keeping the best run, the
// paper's standard practice for contended measurements.
func RunSweep(cfg SweepConfig) (Panel, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	workers := cfg.Machine.Workers(cfg.WorkerLimit)
	panel := Panel{
		Figure:    cfg.Figure,
		Benchmark: cfg.Benchmark,
		Machine:   cfg.Machine.Name,
		Workers:   workers,
	}
	for vi, v := range cfg.Variants {
		label := string(v)
		if vi < len(cfg.Labels) && cfg.Labels[vi] != "" {
			label = cfg.Labels[vi]
		}
		rtCfg := core.ConfigFor(v, workers, cfg.Machine.NUMANodes)
		rt := core.New(rtCfg)
		s := Series{Variant: v, Label: label}
		for _, block := range cfg.Blocks {
			w, err := workloads.Build(cfg.Benchmark, cfg.Size, block)
			if err != nil {
				rt.Close()
				return Panel{}, err
			}
			best := 0.0
			var bestSec float64
			for r := 0; r < cfg.Repeats; r++ {
				w.Reset()
				start := time.Now()
				if err := w.Run(rt); err != nil {
					rt.Close()
					return Panel{}, fmt.Errorf("%s/%s block %d: %w",
						cfg.Benchmark, v, block, err)
				}
				sec := time.Since(start).Seconds()
				if sec <= 0 {
					sec = 1e-9
				}
				perf := w.TotalWork() / sec
				if perf > best {
					best = perf
					bestSec = sec
				}
				if cfg.Verify {
					if err := w.Verify(); err != nil {
						rt.Close()
						return Panel{}, fmt.Errorf("%s/%s block %d: %w",
							cfg.Benchmark, v, block, err)
					}
				}
			}
			s.Points = append(s.Points, Point{
				Block:   block,
				Grain:   workloads.Grain(w),
				Tasks:   w.Tasks(),
				Seconds: bestSec,
				Perf:    best,
			})
		}
		rt.Close()
		panel.Series = append(panel.Series, s)
	}
	panel.normalize()
	return panel, nil
}

// normalize computes efficiencies against the panel-wide peak (§6.2:
// "dividing the performance of a specific run by the peak performance
// obtained across all executions").
func (p *Panel) normalize() {
	peak := 0.0
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Perf > peak {
				peak = pt.Perf
			}
		}
	}
	if peak == 0 {
		return
	}
	for si := range p.Series {
		for pi := range p.Series[si].Points {
			pt := &p.Series[si].Points[pi]
			pt.Efficiency = 100 * pt.Perf / peak
		}
	}
}

// Peak returns the panel's peak performance in work units per second.
func (p *Panel) Peak() float64 {
	peak := 0.0
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Perf > peak {
				peak = pt.Perf
			}
		}
	}
	return peak
}

// SeriesByLabel returns the series with the given legend label.
func (p *Panel) SeriesByLabel(label string) (Series, bool) {
	for _, s := range p.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// WriteRows emits the panel in the repository's standard tabular form,
// one row per measured cell.
func (p *Panel) WriteRows(w io.Writer) {
	fmt.Fprintf(w, "# %s | %s on %s (%d workers)\n",
		p.Figure, p.Benchmark, p.Machine, p.Workers)
	fmt.Fprintf(w, "%-28s %10s %9s %10s %12s %10s\n",
		"variant", "block", "tasks", "grain", "time(ms)", "eff(%)")
	for _, s := range p.Series {
		for _, pt := range s.Points {
			fmt.Fprintf(w, "%-28s %10d %9d %10.0f %12.3f %10.1f\n",
				s.Label, pt.Block, pt.Tasks, pt.Grain, pt.Seconds*1e3, pt.Efficiency)
		}
	}
}

// AtFinestGrain returns a series' efficiency at its smallest block.
func (s Series) AtFinestGrain() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	best := s.Points[0]
	for _, pt := range s.Points {
		if pt.Grain < best.Grain {
			best = pt
		}
	}
	return best.Efficiency
}

// AtCoarsestGrain returns a series' efficiency at its largest block.
func (s Series) AtCoarsestGrain() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	best := s.Points[0]
	for _, pt := range s.Points {
		if pt.Grain > best.Grain {
			best = pt
		}
	}
	return best.Efficiency
}
