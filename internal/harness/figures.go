package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// FigureDef declares one of the paper's evaluation figures: four
// benchmark panels on one machine with one set of series.
type FigureDef struct {
	Name       string
	Machine    platform.Machine
	Benchmarks []string
	Variants   []core.Variant
	Labels     []string
}

// Figures returns the definitions of Figures 4-9 exactly as laid out in
// the paper: Figures 4-6 are the per-component ablation on the three
// machines, Figures 7-9 compare against the OpenMP-runtime stand-ins
// (GCC/GOMP → blocking central queue, LLVM/Intel/AOCC → work stealing;
// see DESIGN.md for the substitution rationale).
func Figures() []FigureDef {
	ablation := core.Variants()
	ablationLabels := []string{"optimized", "w/o jemalloc", "w/o wait-free dependencies", "w/o DTLock"}
	return []FigureDef{
		{
			Name: "figure4", Machine: platform.IntelXeon,
			Benchmarks: []string{"lulesh", "dotproduct", "miniamr", "cholesky"},
			Variants:   ablation, Labels: ablationLabels,
		},
		{
			Name: "figure5", Machine: platform.AMDRome,
			Benchmarks: []string{"nbody", "hpccg", "miniamr", "matmul"},
			Variants:   ablation, Labels: ablationLabels,
		},
		{
			Name: "figure6", Machine: platform.Graviton2,
			Benchmarks: []string{"heat", "hpccg", "miniamr", "matmul"},
			Variants:   ablation, Labels: ablationLabels,
		},
		{
			Name: "figure7", Machine: platform.IntelXeon,
			Benchmarks: []string{"heat", "dotproduct", "miniamr", "cholesky"},
			Variants: []core.Variant{core.VariantOptimized, core.VariantGOMPLike,
				core.VariantLLVMLike, core.VariantIntelLike},
			Labels: []string{"Nanos6", "GCC", "LLVM", "Intel"},
		},
		{
			Name: "figure8", Machine: platform.AMDRome,
			Benchmarks: []string{"hpccg", "nbody", "miniamr", "matmul"},
			Variants: []core.Variant{core.VariantIntelLike, core.VariantOptimized,
				core.VariantGOMPLike, core.VariantLLVMLike},
			Labels: []string{"AOCC", "Nanos6", "GCC", "LLVM"},
		},
		{
			Name: "figure9", Machine: platform.Graviton2,
			Benchmarks: []string{"heat", "hpccg", "miniamr", "matmul"},
			Variants: []core.Variant{core.VariantOptimized, core.VariantGOMPLike,
				core.VariantLLVMLike},
			Labels: []string{"Nanos6", "GCC", "LLVM"},
		},
	}
}

// FigureByName returns a figure definition ("figure4".."figure9").
func FigureByName(name string) (FigureDef, bool) {
	for _, f := range Figures() {
		if f.Name == name {
			return f, true
		}
	}
	return FigureDef{}, false
}

// Scale selects problem sizes: Quick for CI-style runs on small hosts,
// Full for the paper-shaped sweep.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// panelShape holds a benchmark's constant problem size and its block
// sweep for a scale.
type panelShape struct {
	size   workloads.Size
	blocks []int
}

// shapes returns per-benchmark sweep shapes. Block sweeps are geometric,
// covering roughly two orders of magnitude of granularity like the
// paper's 2^13..2^30 instruction axis (scaled to this substrate).
func shapes(s Scale) map[string]panelShape {
	if s == Full {
		return map[string]panelShape{
			"dotproduct": {workloads.Size{N: 1 << 22}, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}},
			"heat":       {workloads.Size{N: 1024, Steps: 16}, []int{8, 16, 32, 64, 128, 256}},
			"matmul":     {workloads.Size{N: 512}, []int{8, 16, 32, 64, 128}},
			"cholesky":   {workloads.Size{N: 512}, []int{16, 32, 64, 128}},
			"hpccg":      {workloads.Size{N: 1 << 18, Steps: 30}, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}},
			"nbody":      {workloads.Size{N: 4096, Steps: 4}, []int{32, 64, 128, 256, 512}},
			"lulesh":     {workloads.Size{N: 1 << 19, Steps: 12}, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}},
			"miniamr":    {workloads.Size{N: 1 << 19, Steps: 12}, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}},
		}
	}
	return map[string]panelShape{
		"dotproduct": {workloads.Size{N: 1 << 16}, []int{1 << 7, 1 << 10, 1 << 13}},
		"heat":       {workloads.Size{N: 128, Steps: 4}, []int{8, 32, 64}},
		"matmul":     {workloads.Size{N: 96}, []int{8, 24, 48}},
		"cholesky":   {workloads.Size{N: 96}, []int{12, 24, 48}},
		"hpccg":      {workloads.Size{N: 1 << 13, Steps: 10}, []int{1 << 7, 1 << 9, 1 << 11}},
		"nbody":      {workloads.Size{N: 512, Steps: 2}, []int{16, 64, 128}},
		"lulesh":     {workloads.Size{N: 1 << 14, Steps: 4}, []int{1 << 7, 1 << 9, 1 << 11}},
		"miniamr":    {workloads.Size{N: 1 << 14, Steps: 4}, []int{1 << 7, 1 << 9, 1 << 11}},
	}
}

// RunFigure measures all four panels of a figure at the given scale and
// writes their rows to w.
func RunFigure(def FigureDef, scale Scale, workerLimit, repeats int, verify bool, w io.Writer) ([]Panel, error) {
	sh := shapes(scale)
	var panels []Panel
	for _, bench := range def.Benchmarks {
		shape, ok := sh[bench]
		if !ok {
			return nil, fmt.Errorf("harness: no sweep shape for %q", bench)
		}
		panel, err := RunSweep(SweepConfig{
			Figure:      def.Name,
			Benchmark:   bench,
			Machine:     def.Machine,
			WorkerLimit: workerLimit,
			Size:        shape.size,
			Blocks:      shape.blocks,
			Variants:    def.Variants,
			Labels:      def.Labels,
			Repeats:     repeats,
			Verify:      verify,
		})
		if err != nil {
			return nil, err
		}
		if w != nil {
			panel.WriteRows(w)
			fmt.Fprintln(w)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// TraceResult is the outcome of one traced run (Figures 10-11).
type TraceResult struct {
	Label    string
	Trace    *trace.Trace
	Summary  *trace.Summary
	Timeline string
}

// RunTraced executes the miniAMR benchmark once on a traced runtime of
// the given scheduler configuration, reproducing the Figure 10 trace
// captures (DTLock vs PTLock) and, with noise set, the Figure 11 OS
// noise experiment.
func RunTraced(label string, schedKind core.SchedulerKind, machine platform.Machine,
	workerLimit int, size workloads.Size, block int, noise core.NoiseConfig) (TraceResult, error) {
	cfg := core.ConfigFor(core.VariantOptimized, machine.Workers(workerLimit), machine.NUMANodes)
	cfg.Scheduler = schedKind
	cfg.TraceCapacity = 1 << 18
	cfg.Noise = noise
	rt := core.New(cfg)
	defer rt.Close()
	w, err := workloads.Build("miniamr", size, block)
	if err != nil {
		return TraceResult{}, err
	}
	w.Reset()
	if err := w.Run(rt); err != nil {
		return TraceResult{}, err
	}
	if err := w.Verify(); err != nil {
		return TraceResult{}, err
	}
	tr := rt.Tracer().Snapshot()
	return TraceResult{
		Label:    label,
		Trace:    tr,
		Summary:  trace.Analyze(tr),
		Timeline: trace.Timeline(tr, 100),
	}, nil
}

// Section34Result quantifies the §3.4 microbenchmark claims: scheduling
// operation throughput of the DTLock-based scheduler vs the PTLock-based
// one, and SPSC-buffered insertion vs serialized insertion.
type Section34Result struct {
	DTLockOpsPerSec    float64
	PTLockOpsPerSec    float64
	SchedulingSpeedup  float64
	BufferedAddsPerSec float64
	SerialAddsPerSec   float64
	InsertionSpeedup   float64
}

// RunSection34 measures scheduler operation throughput with empty tasks:
// pure runtime overhead, the quantity the paper's microbenchmark reports
// ("a fourfold speedup on task scheduling using a DTLock compared to a
// PTLock, and a twelvefold speedup compared to serial task insertion").
func RunSection34(workers, tasks int) (Section34Result, error) {
	measure := func(k core.SchedulerKind) (float64, error) {
		cfg := core.Config{Workers: workers, NUMANodes: 2, Scheduler: k}
		rt := core.New(cfg)
		defer rt.Close()
		start := time.Now()
		err := rt.Run(func(c *core.Ctx) {
			for i := 0; i < tasks; i++ {
				c.Spawn(func(*core.Ctx) {})
			}
			c.Taskwait()
		})
		if err != nil {
			return 0, fmt.Errorf("§3.4 run on %v scheduler: %w", k, err)
		}
		return float64(tasks) / time.Since(start).Seconds(), nil
	}
	var r Section34Result
	var err error
	if r.DTLockOpsPerSec, err = measure(core.SchedSyncDTLock); err != nil {
		return r, err
	}
	if r.PTLockOpsPerSec, err = measure(core.SchedCentralPTLock); err != nil {
		return r, err
	}
	r.SchedulingSpeedup = r.DTLockOpsPerSec / r.PTLockOpsPerSec

	// Insertion path: buffered (SPSC per NUMA node) vs fully serialized
	// (every Add through the central lock). The creator-side cost is what
	// the twelvefold claim is about, so measure creation throughput.
	r.BufferedAddsPerSec = r.DTLockOpsPerSec
	if r.SerialAddsPerSec, err = measure(core.SchedBlocking); err != nil {
		return r, err
	}
	r.InsertionSpeedup = r.BufferedAddsPerSec / r.SerialAddsPerSec
	return r, nil
}
