// Package bench holds the tier-2 microbenchmark bodies: the task
// lifecycle hot-path measurements (spawn, chain, fan-out, allocation
// count) that track the per-task constant cost the paper's techniques
// exist to shrink. The bodies live here, outside any _test.go file, so
// both the `go test -bench` wrappers in the repository root and the
// cmd/benchjson trajectory tool (which records BENCH_*.json snapshots
// per PR) run exactly the same code.
package bench

import (
	"testing"

	"repro/internal/core"
)

// Fixed small machine shape so the trajectory numbers are comparable
// across hosts: enough workers for real contention, small enough that
// CI runners are not oversubscribed into noise.
const (
	benchWorkers = 4
	benchNUMA    = 2
	// taskwaitStride bounds the live-task population of open spawn
	// loops; large enough to amortize the taskwait, small enough to keep
	// allocator pools and scheduler queues at steady state.
	taskwaitStride = 1024
)

func newRT() *core.Runtime {
	return core.New(core.ConfigFor(core.VariantOptimized, benchWorkers, benchNUMA))
}

// SpawnOverhead measures bare task creation+completion cost on the
// optimized runtime: no accesses, no dependencies — the per-task
// overhead floor that bounds the fine-granularity cliff of every
// figure.
func SpawnOverhead(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	body := func(*core.Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			c.Spawn(body)
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// SpawnChain measures a 1-deep serialized dependency chain where every
// task carries two accesses (in on one cell, out on the other,
// ping-ponged): each release readies exactly the next task, so the
// spawn→ready→schedule→execute→complete round-trip — and nothing else —
// is on the critical path. This is the benchmark the successor-bypass
// optimization targets.
func SpawnChain(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	var x, y float64
	body := func(*core.Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				c.Spawn(body, core.In(&x), core.Out(&y))
			} else {
				c.Spawn(body, core.In(&y), core.Out(&x))
			}
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// FanOut measures a 64-wide fan-out: one writer followed by 64 readers
// of the same cell, repeated. Readers become ready together, so this
// stresses bulk scheduler insertion and concurrent completion
// accounting (the sharded live counter) rather than the serialized
// chain path.
func FanOut(b *testing.B) {
	const width = 64
	rt := newRT()
	defer rt.Close()
	var x float64
	writer := func(*core.Ctx) { x++ }
	reader := func(*core.Ctx) { _ = x }
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for done := 0; done < b.N; {
			c.Spawn(writer, core.Out(&x))
			done++
			for k := 0; k < width && done < b.N; k++ {
				c.Spawn(reader, core.In(&x))
				done++
			}
			c.Taskwait()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// SpawnAllocs counts heap allocations on the spawn path for tasks at
// the inline-access capacity (4 accesses each, all chained): the
// zero-allocation acceptance benchmark. Anything allocating per task —
// access slices, escaping Ctx, handles — shows up here as allocs/op.
func SpawnAllocs(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	var cells [4]float64
	body := func(*core.Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			c.Spawn(body,
				core.InOut(&cells[0]), core.InOut(&cells[1]),
				core.InOut(&cells[2]), core.InOut(&cells[3]))
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// DependencyChainThroughput measures chained (serialized) task flow
// through a single inout cell: dependency bookkeeping dominates, no
// parallelism available. Kept alongside SpawnChain as the
// single-access variant of the same critical path.
func DependencyChainThroughput(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	var x float64
	body := func(*core.Ctx) { x++ }
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			c.Spawn(body, core.InOut(&x))
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// Tier2 is the benchmark set cmd/benchjson snapshots into BENCH_*.json:
// the perf trajectory future PRs compare against.
var Tier2 = []struct {
	Name string
	F    func(*testing.B)
}{
	{"SpawnOverhead", SpawnOverhead},
	{"SpawnChain", SpawnChain},
	{"FanOut", FanOut},
	{"SpawnAllocs", SpawnAllocs},
	{"DependencyChainThroughput", DependencyChainThroughput},
}
