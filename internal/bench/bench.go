// Package bench holds the tier-2 microbenchmark bodies: the task
// lifecycle hot-path measurements (spawn, chain, fan-out, allocation
// count) that track the per-task constant cost the paper's techniques
// exist to shrink. The bodies live here, outside any _test.go file, so
// both the `go test -bench` wrappers in the repository root and the
// cmd/benchjson trajectory tool (which records BENCH_*.json snapshots
// per PR) run exactly the same code.
package bench

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// Fixed small machine shape so the trajectory numbers are comparable
// across hosts: enough workers for real contention, small enough that
// CI runners are not oversubscribed into noise.
const (
	benchWorkers = 4
	benchNUMA    = 2
	// taskwaitStride bounds the live-task population of open spawn
	// loops; large enough to amortize the taskwait, small enough to keep
	// allocator pools and scheduler queues at steady state.
	taskwaitStride = 1024
)

func newRT() *core.Runtime {
	return core.New(core.ConfigFor(core.VariantOptimized, benchWorkers, benchNUMA))
}

// SpawnOverhead measures bare task creation+completion cost on the
// optimized runtime: no accesses, no dependencies — the per-task
// overhead floor that bounds the fine-granularity cliff of every
// figure.
func SpawnOverhead(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	body := func(*core.Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			c.Spawn(body)
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// SpawnChain measures a 1-deep serialized dependency chain where every
// task carries two accesses (in on one cell, out on the other,
// ping-ponged): each release readies exactly the next task, so the
// spawn→ready→schedule→execute→complete round-trip — and nothing else —
// is on the critical path. This is the benchmark the successor-bypass
// optimization targets.
func SpawnChain(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	var x, y float64
	body := func(*core.Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				c.Spawn(body, core.In(&x), core.Out(&y))
			} else {
				c.Spawn(body, core.In(&y), core.Out(&x))
			}
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// FanOut measures a 64-wide fan-out: one writer followed by 64 readers
// of the same cell, repeated. Readers become ready together, so this
// stresses bulk scheduler insertion and concurrent completion
// accounting (the sharded live counter) rather than the serialized
// chain path.
func FanOut(b *testing.B) {
	const width = 64
	rt := newRT()
	defer rt.Close()
	var x float64
	writer := func(*core.Ctx) { x++ }
	reader := func(*core.Ctx) { _ = x }
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for done := 0; done < b.N; {
			c.Spawn(writer, core.Out(&x))
			done++
			for k := 0; k < width && done < b.N; k++ {
				c.Spawn(reader, core.In(&x))
				done++
			}
			c.Taskwait()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// SpawnAllocs counts heap allocations on the spawn path for tasks at
// the inline-access capacity (4 accesses each, all chained): the
// zero-allocation acceptance benchmark. Anything allocating per task —
// access slices, escaping Ctx, handles — shows up here as allocs/op.
func SpawnAllocs(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	var cells [4]float64
	body := func(*core.Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			c.Spawn(body,
				core.InOut(&cells[0]), core.InOut(&cells[1]),
				core.InOut(&cells[2]), core.InOut(&cells[3]))
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// DependencyChainThroughput measures chained (serialized) task flow
// through a single inout cell: dependency bookkeeping dominates, no
// parallelism available. Kept alongside SpawnChain as the
// single-access variant of the same critical path.
func DependencyChainThroughput(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	var x float64
	body := func(*core.Ctx) { x++ }
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *core.Ctx) {
		for i := 0; i < b.N; i++ {
			c.Spawn(body, core.InOut(&x))
			if i%taskwaitStride == taskwaitStride-1 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// RootShards, when non-zero, overrides Config.RootShards for the
// concurrent-submission benchmarks. cmd/benchjson sets it to 1 to
// record the serialized-registration (regMu-equivalent) baseline the
// sharded root domain is measured against.
var RootShards int

// submitCell pads each submitter's dependency cell onto its own cache
// line so the measured contention is the submission path's, not false
// sharing between the cells themselves.
type submitCell struct {
	v float64
	_ [56]byte
}

// ConcurrentSubmit returns a benchmark of root-submission throughput
// with the given number of concurrently submitting goroutines. Each
// submitter chains root tasks on its own (padded) cell, so submissions
// are independent across submitters: with the sharded root domain they
// register in parallel, while RootShards=1 reproduces the serialized
// baseline where every submitter fights one registration lock. A
// bounded window of outstanding handles keeps the live-task population
// at steady state.
func ConcurrentSubmit(submitters int) func(*testing.B) {
	return func(b *testing.B) {
		// Simulate one core per submitter (plus the workers), exactly as
		// benchWorkers simulates cores: on small hosts GOMAXPROCS=NumCPU
		// would serialize the submitters at the Go scheduler and no
		// registration path could ever be contended, hiding the effect
		// under measurement.
		procs := submitters + benchWorkers
		if procs > 24 {
			procs = 24
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		cfg := core.ConfigFor(core.VariantOptimized, benchWorkers, benchNUMA)
		cfg.RootShards = RootShards
		rt := core.New(cfg)
		defer rt.Close()
		cells := make([]submitCell, submitters)
		fn := func(*core.Ctx) (any, error) { return nil, nil }
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			n := b.N / submitters
			if s < b.N%submitters {
				n++
			}
			wg.Add(1)
			go func(s, n int) {
				defer wg.Done()
				const window = 64
				var hs [window]*core.Handle
				cell := &cells[s].v
				for i := 0; i < n; i++ {
					h := rt.Submit(fn, core.InOut(cell))
					if old := hs[i%window]; old != nil {
						old.Wait(nil)
					}
					hs[i%window] = h
				}
				for _, h := range hs {
					if h != nil {
						h.Wait(nil)
					}
				}
			}(s, n)
		}
		wg.Wait()
	}
}

// Taskloop benchmark shape: the acceptance scenario of the taskloop
// subsystem is a 1e5-iteration dot product at 8 workers, chunked
// work-sharing execution vs. one task per iteration.
const (
	taskloopIters   = 100_000
	taskloopWorkers = 8
)

func newLoopRT() *core.Runtime {
	return core.New(core.ConfigFor(core.VariantOptimized, taskloopWorkers, benchNUMA))
}

func taskloopData() (x, y []float64, want float64) {
	x = make([]float64, taskloopIters)
	y = make([]float64, taskloopIters)
	for i := range x {
		x[i] = float64(1 + i%7)
		y[i] = float64(1 + i%5)
		want += x[i] * y[i]
	}
	return x, y, want
}

// TaskloopDot measures the chunked work-sharing dot product: one loop
// task per op owning all 1e5 iterations, workers claiming chunks from
// the shared span, partials privatized per worker and combined once at
// the loop's close. The per-op constant (handle, reduction group) is a
// handful of allocations; the chunk path itself allocates nothing (see
// TaskloopSteadyState).
func TaskloopDot(b *testing.B) { TaskloopDotWithGrain(0)(b) }

// TaskloopDotWithGrain is TaskloopDot at an explicit grain (0 selects
// the adaptive default) — the grain-ablation benchmarks sweep it so
// the measured loop shape cannot drift from the tier-2 one.
func TaskloopDotWithGrain(grain int) func(*testing.B) {
	return func(b *testing.B) {
		rt := newLoopRT()
		defer rt.Close()
		x, y, want := taskloopData()
		var result float64
		chunk := func(cc *core.Ctx, lo, hi int) {
			acc := cc.ReductionBuffer(&result)
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			acc[0] += s
		}
		root := func(c *core.Ctx) {
			c.Loop(0, taskloopIters, grain, chunk, core.RedSpec(&result, 1, deps.OpSum))
			c.Taskwait()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			result = 0
			if err := rt.Run(root); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if result != want {
			b.Fatalf("taskloop dot product = %v, want %v", result, want)
		}
	}
}

// TaskloopDotPerTask is the baseline TaskloopDot is measured against:
// the same dot product spawning one task per iteration — the
// per-element pattern the taskloop subsystem replaces. The ≥3×
// acceptance criterion compares these two.
func TaskloopDotPerTask(b *testing.B) {
	rt := newLoopRT()
	defer rt.Close()
	x, y, want := taskloopData()
	var result float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result = 0
		err := rt.Run(func(c *core.Ctx) {
			for k := 0; k < taskloopIters; k++ {
				k := k
				c.Spawn(func(cc *core.Ctx) {
					cc.ReductionBuffer(&result)[0] += x[k] * y[k]
				}, core.RedSpec(&result, 1, deps.OpSum))
				if k%taskwaitStride == taskwaitStride-1 {
					c.Taskwait()
				}
			}
			c.Taskwait()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if result != want {
		b.Fatalf("per-task dot product = %v, want %v", result, want)
	}
}

// TaskloopSteadyState measures the steady-state chunk path per
// iteration: one loop of b.N iterations at a fixed grain, so the
// loop-constant costs (submission, recruitment, completion) amortize
// away and allocs/op must integer-divide to zero — the zero-allocation
// acceptance gate of the chunk path.
func TaskloopSteadyState(b *testing.B) {
	rt := newLoopRT()
	defer rt.Close()
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.RunLoop(0, b.N, 256, func(_ *core.Ctx, lo, hi int) {
		sink.Add(int64(hi - lo))
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sink.Load() != int64(b.N) {
		b.Fatalf("loop covered %d of %d iterations", sink.Load(), b.N)
	}
}

// Two-class QoS benchmark shape: the latency-SLO acceptance scenario
// runs the qos workload at 8 workers — interactive requests (b.N of
// them, closed loop) against a sustained batch flood over one shared
// key table — once with class priorities and once priority-blind. The
// per-class latency percentiles ride the benchmark result as custom
// metrics (testing's Extra mechanism), which cmd/benchjson snapshots
// and gates exactly like ns/op; the acceptance comparison is
// ServerQoSBlind's p99-int-ns against ServerQoSPriority's.
const (
	qosWorkers      = 8
	qosKeys         = 32768
	qosBatchClients = 4
)

// ServerQoS returns the two-class server benchmark in either
// scheduling mode. ns/op is wall time per interactive request and is
// dominated by the (fixed-ratio) batch flood, so it doubles as a
// batch-throughput proxy; the headline QoS quantities are the reported
// latency metrics.
func ServerQoS(usePriority bool) func(*testing.B) {
	return func(b *testing.B) {
		rt := core.New(core.ConfigFor(core.VariantOptimized, qosWorkers, benchNUMA))
		defer rt.Close()
		q := workloads.NewQoSServer(qosKeys, b.N, qosBatchClients, usePriority)
		b.ReportAllocs()
		b.ResetTimer()
		if err := q.Run(rt); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := q.Verify(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(q.Interactive.Quantile(0.50)), "p50-int-ns")
		b.ReportMetric(float64(q.Interactive.Quantile(0.95)), "p95-int-ns")
		b.ReportMetric(float64(q.Interactive.Quantile(0.99)), "p99-int-ns")
		b.ReportMetric(float64(q.Batch.Quantile(0.99)), "p99-batch-ns")
		b.ReportMetric(q.BatchNsPerRequest(), "batch-ns")
	}
}

// qosDeadline is the interactive SLO of the deadline-mode QoS
// benchmarks: generous next to a lone request's service time (~2×100µs
// of spin), tight next to the priority-blind queue-drain delay behind
// the batch flood, so the miss rate separates the scheduling modes.
const qosDeadline = 2 * time.Millisecond

// ServerQoSDeadline returns the deadline-mode two-class benchmark:
// every interactive request carries a qosDeadline SLO and completions
// past it count as misses. edf selects the full deadline stack —
// interactive chains at core.MaxPriority with deadline + inheritance
// clauses on a WithEDF runtime — against the priority-blind baseline
// (same deadline accounting, no scheduling hints). The headline metric
// is deadline-miss-rate, which cmd/benchjson gates cross-benchmark:
// the EDF run's rate must stay strictly below the blind run's, at a
// bounded batch-ns cost.
func ServerQoSDeadline(edf bool) func(*testing.B) {
	return func(b *testing.B) {
		cfg := core.ConfigFor(core.VariantOptimized, qosWorkers, benchNUMA)
		cfg.EDF = edf
		rt := core.New(cfg)
		defer rt.Close()
		q := workloads.NewQoSServer(qosKeys, b.N, qosBatchClients, edf)
		q.SetDeadline(qosDeadline)
		b.ReportAllocs()
		b.ResetTimer()
		if err := q.Run(rt); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := q.Verify(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(q.InteractiveMissRate(), "deadline-miss-rate")
		b.ReportMetric(float64(q.Interactive.Quantile(0.99)), "p99-int-ns")
		b.ReportMetric(q.BatchNsPerRequest(), "batch-ns")
	}
}

// LocalityPriority benchmark shape: the NUMA-domain affinity
// acceptance scenario — four producers, each flooding two-task chains
// over a private key slab with an interactive priority mix, at 8
// workers sharded into 1 (Single) or 2 (Multi) domains. The headline
// metric is affinity-retention: the fraction of executed tasks that
// ran on their home domain, read from the runtime's per-domain
// Executed/ExecutedHome counters (Runtime.Stats). The single-domain
// run reports 1.0 by definition (nothing to cross) and anchors the
// p99 comparison: cmd/benchjson's locality gate requires the
// multi-domain run to keep retention >= 0.90 and its interactive p99
// within 1.25x of the single-domain run's.
const (
	locWorkers   = 8
	locProducers = 4
	locKeysPer   = 4096
)

// LocalityPriority returns the affinity benchmark at the given domain
// count.
func LocalityPriority(domains int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := core.ConfigFor(core.VariantOptimized, locWorkers, benchNUMA)
		cfg.Domains = domains
		rt := core.New(cfg)
		defer rt.Close()
		w := workloads.NewLocalityMix(locProducers, locKeysPer, b.N)
		before := rt.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		if err := w.Run(rt); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := w.Verify(); err != nil {
			b.Fatal(err)
		}
		retention := 1.0
		if rt.Domains() > 1 {
			after := rt.Stats()
			var exec, home uint64
			for i := range after.Domains {
				exec += after.Domains[i].Executed - before.Domains[i].Executed
				home += after.Domains[i].ExecutedHome - before.Domains[i].ExecutedHome
			}
			if exec > 0 {
				retention = float64(home) / float64(exec)
			}
		}
		b.ReportMetric(retention, "affinity-retention")
		b.ReportMetric(float64(w.Interactive.Quantile(0.99)), "p99-int-ns")
	}
}

// Echo benchmark shape: 8 workers against clients×window = 1024
// potential in-flight request graphs, so the events mode's concurrency
// is bounded by the client windows while the blocking baseline is
// bounded by the workers. The simulated backend round trip is long
// relative to per-task overhead, making the inflight-per-worker metric
// robust: the blocking mode pins it at exactly 1.0 (a waiting request
// is a sleeping worker), so the events/blocking ratio measures how
// many parked graphs each worker sustains.
const (
	echoWorkers = 8
	echoKeys    = 4096
	echoClients = 4
	echoWindow  = 256
)

// EchoBackendLatency is the simulated backend round trip of the echo
// benchmarks; cmd/benchjson's -echo-latency flag overrides it.
var EchoBackendLatency = 5 * time.Millisecond

// Echo returns the RPC-proxy benchmark in events or worker-blocking
// mode. ns/op is wall time per request; the headline quantities are
// inflight-per-worker (Little's-law mean request graphs concurrently
// waiting on the backend, per worker — the capacity the events
// subsystem buys) and p99-echo-ns (per-request latency from issue to
// reply completion — what holding workers costs the tail when requests
// queue behind sleeping workers).
func Echo(blocking bool) func(*testing.B) {
	return func(b *testing.B) {
		rt := core.New(core.ConfigFor(core.VariantOptimized, echoWorkers, benchNUMA))
		defer rt.Close()
		e := workloads.NewEcho(echoKeys, echoClients, b.N, echoWindow, EchoBackendLatency, blocking)
		b.ReportAllocs()
		b.ResetTimer()
		if err := e.Run(rt); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := e.Verify(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(e.InflightPerWorker(), "inflight-per-worker")
		b.ReportMetric(float64(e.Latency.Quantile(0.99)), "p99-echo-ns")
	}
}

// Compiled-graph serving shape: the symphony-style fan-in DAG of the
// acceptance scenario — three sources feeding two mid-tier joins, a
// fan-in quote and a sink — served request-by-request. Node results
// are small ints (< 256), which Go's runtime boxes without allocating,
// so allocs/op isolates the serving machinery itself. graphServeWant
// is the sink value every request must produce.
const graphServeWant = 39

func graphServeTemplate() *repro.Graph {
	return repro.NewGraph().
		Add("auth", nil, func(*repro.Ctx, map[string]any) (any, error) { return 7, nil }).
		Add("user", nil, func(*repro.Ctx, map[string]any) (any, error) { return 21, nil }).
		Add("inv", nil, func(*repro.Ctx, map[string]any) (any, error) { return 13, nil }).
		Add("price", []string{"user", "inv"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return (d["user"].(int) * d["inv"].(int)) & 0xff, nil
		}).
		Add("promo", []string{"auth", "user"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return (d["auth"].(int) + d["user"].(int)) & 0xff, nil
		}).
		Add("quote", []string{"price", "promo"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["price"].(int) ^ d["promo"].(int), nil
		}).
		Add("render", []string{"quote"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return (d["quote"].(int) * 3) & 0xff, nil
		})
}

// GraphServeCompiled measures the compiled serving fast path: the DAG
// is compiled once, then each op is one CompiledGraph.Do — a pooled
// frame stamped, seven tasks spawned over pre-resolved sentinel access
// sets, the result read by index, the frame released. The headline
// quantities are req/s and the 0 allocs/op steady state the perf gate
// enforces (the allocs-from-0 rule applies).
func GraphServeCompiled(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	cg, err := graphServeTemplate().Compile(rt)
	if err != nil {
		b.Fatal(err)
	}
	render, ok := cg.NodeIndex("render")
	if !ok {
		b.Fatal("no render node")
	}
	ctx := context.Background()
	// One warm-up request seeds the frame pool so frame construction is
	// off the measured path (as in steady-state serving).
	if e, err := cg.Do(ctx); err != nil {
		b.Fatal(err)
	} else {
		e.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := cg.Do(ctx)
		if err != nil {
			b.Fatal(err)
		}
		v, verr := e.ValueAt(render)
		if verr != nil {
			b.Fatal(verr)
		}
		if v.(int) != graphServeWant {
			b.Fatalf("render = %v, want %v", v, graphServeWant)
		}
		e.Release()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// GraphServeInterpreted is the baseline GraphServeCompiled is measured
// against: the same DAG served through the seed interpreted path. The
// seed Graph was a one-shot builder ("build, Run once, discard"), so
// its serving loop pays the full per-request cost: build the graph,
// then RunInterpreted — name resolution, cycle check, per-node
// closures, futures and the result map — every op.
func GraphServeInterpreted(b *testing.B) {
	rt := newRT()
	defer rt.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := graphServeTemplate().RunInterpreted(ctx, rt)
		if err != nil {
			b.Fatal(err)
		}
		v, verr := repro.Value[int](res, "render")
		if verr != nil {
			b.Fatal(verr)
		}
		if v != graphServeWant {
			b.Fatalf("render = %v, want %v", v, graphServeWant)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// IdleBurn shape: the settle gives the elastic pool time to descend
// the spin→park ladder before a window opens; the window is long
// relative to timer/GC noise so the millicore readings are stable.
const (
	idleBurnSettle = 30 * time.Millisecond
	idleBurnWindow = 120 * time.Millisecond
)

// idleWindow sleeps one idle window and returns the process CPU burned
// across it, as millicores (CPU-time/wall-time × 1000; 1000 = one core
// fully busy). ok is false when the host cannot report process CPU
// time, in which case the IdleBurn CPU gate stands down.
func idleWindow() (mcores float64, ok bool) {
	start, ok1 := platform.ProcessCPUTime()
	time.Sleep(idleBurnWindow)
	end, ok2 := platform.ProcessCPUTime()
	if !ok1 || !ok2 {
		return 0, false
	}
	return float64(end-start) / float64(idleBurnWindow) * 1000, true
}

// IdleBurn measures what the worker pool costs while there is nothing
// to do — the quantity the elastic park/wake ladder exists to shrink.
// Wall clock cannot see it (a parked and a spinning pool idle for the
// same duration), so each op is one idle window over which the
// process's CPU time is differenced. The spin baseline (IdleSpin=-1,
// the pre-elastic behaviour) is measured once before the timer on an
// identically shaped pool; cmd/benchjson's idleBurnCheck enforces that
// the parked pool burns at most 10% of it. parked-workers records how
// many workers actually reached the parked state.
func IdleBurn(b *testing.B) {
	spinCfg := core.ConfigFor(core.VariantOptimized, benchWorkers, benchNUMA)
	spinCfg.IdleSpin = -1
	rtSpin := core.New(spinCfg)
	if err := rtSpin.Run(func(*core.Ctx) {}); err != nil {
		rtSpin.Close()
		b.Fatal(err)
	}
	time.Sleep(idleBurnSettle)
	spin, spinOK := idleWindow()
	rtSpin.Close()

	rt := newRT()
	defer rt.Close()
	if err := rt.Run(func(*core.Ctx) {}); err != nil {
		b.Fatal(err)
	}
	time.Sleep(idleBurnSettle)
	b.ReportAllocs()
	b.ResetTimer()
	var elastic float64
	elasticOK := true
	parked := 0
	for i := 0; i < b.N; i++ {
		m, ok := idleWindow()
		elastic += m
		elasticOK = elasticOK && ok
		if p := rt.Stats().Parked; p > parked {
			parked = p
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(parked), "parked-workers")
	if spinOK && elasticOK {
		b.ReportMetric(elastic/float64(b.N), "idle-mcores-elastic")
		b.ReportMetric(spin, "idle-mcores-spin")
	}
}

// echoOpenMean is the mean inter-arrival time of the open-loop echo
// benchmark: 50µs (20k req/s offered) is comfortably inside the events
// mode's capacity at 8 workers, so the measured p99 reflects queueing
// under a realistic Poisson arrival process rather than saturation.
const echoOpenMean = 50 * time.Microsecond

// EchoOpenLoop is the echo workload under open-loop Poisson arrivals
// (workloads.Arrivals): clients issue on a fixed schedule regardless
// of completions, so the reported p99-open-ns is coordinated-omission
// free — a stalled server accrues waiting time instead of silently
// slowing the offered load. The metric rides the -ns convention and is
// gated by cmd/benchjson under the -latency-threshold rules.
func EchoOpenLoop(b *testing.B) {
	rt := core.New(core.ConfigFor(core.VariantOptimized, echoWorkers, benchNUMA))
	defer rt.Close()
	e := workloads.NewEcho(echoKeys, echoClients, b.N, echoWindow, EchoBackendLatency, false)
	e.SetArrivals(workloads.PoissonArrivals(b.N, echoOpenMean, 1))
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(rt); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := e.Verify(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(e.Latency.Quantile(0.50)), "p50-open-ns")
	b.ReportMetric(float64(e.Latency.Quantile(0.99)), "p99-open-ns")
}

// Tier2 is the benchmark set cmd/benchjson snapshots into BENCH_*.json:
// the perf trajectory future PRs compare against. It is the single
// source of truth for the tier-2 names — the go test wrappers
// (BenchmarkTier2 at the repository root) and the CI perf gate iterate
// this slice rather than duplicating the name list.
var Tier2 = []struct {
	Name string
	F    func(*testing.B)
	// DynamicAllocs marks open-loop benchmarks whose per-op allocation
	// count scales with how much background traffic the host drains
	// during one op (the stop-controlled QoS flood), not with the code
	// path; the allocs/op gate skips them because their ratio is
	// host-shape-dependent, exactly like wall clock.
	DynamicAllocs bool
	// Scenario marks closed/open-loop serving scenarios whose ns/op is
	// the wall clock of a whole traffic window under host scheduling —
	// a queueing outcome, not a code-path cost. Their run-to-run spread
	// is tail-latency-class (several x between consecutive runs on a
	// loaded host), so benchjson folds them across -count by median
	// instead of best-of (a lucky fast mode must not become the
	// baseline) and gates their ns/op at the wider -latency-threshold,
	// like the p99 metrics they report.
	Scenario bool
}{
	{Name: "SpawnOverhead", F: SpawnOverhead},
	{Name: "SpawnChain", F: SpawnChain},
	{Name: "FanOut", F: FanOut},
	{Name: "SpawnAllocs", F: SpawnAllocs},
	{Name: "DependencyChainThroughput", F: DependencyChainThroughput},
	{Name: "ConcurrentSubmit-1submitters", F: ConcurrentSubmit(1)},
	{Name: "ConcurrentSubmit-4submitters", F: ConcurrentSubmit(4)},
	{Name: "ConcurrentSubmit-16submitters", F: ConcurrentSubmit(16)},
	{Name: "ConcurrentSubmit-64submitters", F: ConcurrentSubmit(64)},
	{Name: "TaskloopDot", F: TaskloopDot},
	{Name: "TaskloopDotPerTask", F: TaskloopDotPerTask},
	{Name: "TaskloopSteadyState", F: TaskloopSteadyState},
	{Name: "ServerQoSPriority", F: ServerQoS(true), DynamicAllocs: true, Scenario: true},
	{Name: "ServerQoSBlind", F: ServerQoS(false), DynamicAllocs: true, Scenario: true},
	{Name: "ServerQoSDeadlineEDF", F: ServerQoSDeadline(true), DynamicAllocs: true, Scenario: true},
	{Name: "ServerQoSDeadlineBlind", F: ServerQoSDeadline(false), DynamicAllocs: true, Scenario: true},
	// The locality pair is deliberately NOT marked Scenario: it is a
	// closed-loop saturated flood (per-op cost is throughput-stable),
	// and its gated metrics are a same-run ratio — best-of folding is
	// symmetric across the pair and suppresses the median's tail-class
	// run-to-run spread that would make the 1.25x ratio a coin flip.
	{Name: "LocalityPrioritySingle", F: LocalityPriority(1), DynamicAllocs: true},
	{Name: "LocalityPriorityMulti", F: LocalityPriority(2), DynamicAllocs: true},
	{Name: "EchoEvents", F: Echo(false), DynamicAllocs: true, Scenario: true},
	{Name: "EchoBlocking", F: Echo(true), DynamicAllocs: true, Scenario: true},
	{Name: "EchoOpenLoop", F: EchoOpenLoop, DynamicAllocs: true, Scenario: true},
	{Name: "GraphServeCompiled", F: GraphServeCompiled},
	{Name: "GraphServeInterpreted", F: GraphServeInterpreted},
	{Name: "IdleBurn", F: IdleBurn, DynamicAllocs: true},
}

// Names returns the tier-2 benchmark names in snapshot order.
func Names() []string {
	names := make([]string, len(Tier2))
	for i, bm := range Tier2 {
		names[i] = bm.Name
	}
	return names
}

// ByName returns the tier-2 benchmark body with the given name.
func ByName(name string) (func(*testing.B), bool) {
	for _, bm := range Tier2 {
		if bm.Name == name {
			return bm.F, true
		}
	}
	return nil, false
}

// DynamicAllocsByName reports whether the named benchmark's allocs/op
// is host-dependent and must not be ratio-gated (see Tier2).
func DynamicAllocsByName(name string) bool {
	for _, bm := range Tier2 {
		if bm.Name == name {
			return bm.DynamicAllocs
		}
	}
	return false
}

// ScenarioByName reports whether the named benchmark is a serving
// scenario whose ns/op is tail-latency-class wall clock: median-folded
// across -count and gated at the latency threshold (see Tier2).
func ScenarioByName(name string) bool {
	for _, bm := range Tier2 {
		if bm.Name == name {
			return bm.Scenario
		}
	}
	return false
}
