// Package counter provides a cache-line-sharded counter for hot-path
// accounting. A single shared atomic that every worker increments on
// every task create/complete turns into a cache-line ping-pong under
// fine task granularity — exactly the class of runtime-internal
// overhead the paper's techniques exist to remove. Sharded splits the
// count across per-worker cache lines so the common operations (Add on
// the caller's own shard) never contend; reading the total (Sum) walks
// all shards and is reserved for cold paths: diagnostics, quiescence
// checks, shutdown.
package counter

import "sync/atomic"

// shard pads one counter onto its own cache line so neighbouring
// shards never false-share.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// Sharded is a counter distributed over per-worker shards.
//
// Consistency model: Add is atomic per shard, so Sum is the sum of
// per-shard snapshots taken at different instants — it is *eventually
// exact*: while adders are active, Sum may transiently miss in-flight
// deltas or even dip below a concurrent true value, but once the
// adders quiesce (no Add running or in flight), Sum returns the exact
// total of all completed Adds. Callers that need an exact read (the
// worker-stop check, LiveTasks assertions in tests) therefore only
// consult Sum at quiescence points, or poll it until it settles.
type Sharded struct {
	shards []shard
}

// NewSharded returns a counter with n shards (one per concurrent
// caller; the runtime uses workers+1, the last shard belonging to the
// external submitter thread).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	return &Sharded{shards: make([]shard, n)}
}

// Add applies delta to the caller's shard. The shard index must be the
// caller's own worker index so concurrent callers never share a cache
// line; any index in range is correct, just slower when shared.
func (c *Sharded) Add(shard int, delta int64) {
	c.shards[shard].v.Add(delta)
}

// Sum returns the total across all shards (see the consistency note on
// Sharded).
func (c *Sharded) Sum() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}
