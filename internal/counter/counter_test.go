package counter

import (
	"sync"
	"testing"
	"unsafe"
)

// TestShardPadding pins the anti-false-sharing layout: one shard per
// 64-byte cache line.
func TestShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(shard{}); s != 64 {
		t.Fatalf("shard size = %d, want 64", s)
	}
}

func TestSumAtQuiescence(t *testing.T) {
	c := NewSharded(4)
	c.Add(0, 5)
	c.Add(3, -2)
	c.Add(1, 7)
	if got := c.Sum(); got != 10 {
		t.Fatalf("Sum = %d, want 10", got)
	}
}

// TestConcurrentAddSum hammers every shard from its own goroutine with
// a mix of increments and decrements while a reader polls Sum, then
// checks the exact total at quiescence. Run under -race this also
// verifies Add/Sum need no external synchronization.
func TestConcurrentAddSum(t *testing.T) {
	const (
		shards = 8
		perG   = 100000
	)
	c := NewSharded(shards)
	var wg sync.WaitGroup
	for g := 0; g < shards; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(g, 3)
				c.Add(g, -2)
			}
		}(g)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Sum() // transient value; must only be race-free
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got, want := c.Sum(), int64(shards*perG); got != want {
		t.Fatalf("Sum at quiescence = %d, want %d", got, want)
	}
}

func TestNewShardedClampsToOne(t *testing.T) {
	c := NewSharded(0)
	c.Add(0, 1)
	if got := c.Sum(); got != 1 {
		t.Fatalf("Sum = %d, want 1", got)
	}
}
