package counter

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram(1)
	for v := int64(0); v < histSubBuckets; v++ {
		h.Record(0, v)
	}
	// With one sample per value 0..7, the q-quantile upper bound is the
	// value itself: small buckets are exact.
	for v := int64(0); v < histSubBuckets; v++ {
		q := (float64(v) + 1) / float64(histSubBuckets)
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, v)
		}
	}
	if h.Count() != histSubBuckets {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramIndexMonotoneAndBounded(t *testing.T) {
	// histIndex must be monotone in v, in range, and bucketMax must be
	// an upper bound within 12.5% relative error.
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 + 999} {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= HistBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		up := bucketMax(idx)
		if up < v {
			t.Fatalf("bucketMax(%d) = %d below sample %d", idx, up, v)
		}
		if v >= histSubBuckets && float64(up-v) > 0.125*float64(v) {
			t.Fatalf("bucketMax(%d) = %d overstates %d by more than 12.5%%", idx, up, v)
		}
	}
}

// TestHistogramBucketRoundTrip pins the top-octave overflow fix by
// walking the full exponent range, every bucket the array holds:
// bucketMax must never wrap into the sign bit (the old 1<<exp at
// exp=63 went negative), must be monotone non-decreasing, and must
// round-trip through histIndex for every bucket a non-negative int64
// can actually reach. The buckets above histIndex(MaxInt64) — the
// spare top octave that pads the array to whole cache lines — all
// clamp to MaxInt64.
func TestHistogramBucketRoundTrip(t *testing.T) {
	maxIdx := histIndex(math.MaxInt64)
	if maxIdx < 0 || maxIdx >= HistBuckets {
		t.Fatalf("histIndex(MaxInt64) = %d out of range", maxIdx)
	}
	prev := int64(-1)
	for idx := 0; idx < HistBuckets; idx++ {
		up := bucketMax(idx)
		if up < 0 {
			t.Fatalf("bucketMax(%d) = %d: sign-bit overflow", idx, up)
		}
		if up < prev {
			t.Fatalf("bucketMax not monotone at %d: %d < %d", idx, up, prev)
		}
		prev = up
		if idx <= maxIdx {
			if got := histIndex(up); got != idx {
				t.Fatalf("round-trip broken: histIndex(bucketMax(%d)=%d) = %d", idx, up, got)
			}
			if idx < maxIdx {
				// The bucket boundary is tight: the next representable
				// value belongs to the next bucket.
				if got := histIndex(up + 1); got != idx+1 {
					t.Fatalf("boundary loose at %d: histIndex(%d) = %d, want %d", idx, up+1, got, idx+1)
				}
			}
		} else if up != math.MaxInt64 {
			t.Fatalf("spare top bucket %d = %d, want MaxInt64 clamp", idx, up)
		}
	}
}

// TestHistogramExtremeSampleStaysPositive: one astronomically large
// sample must never drive the merged views negative.
func TestHistogramExtremeSampleStaysPositive(t *testing.T) {
	h := NewHistogram(1)
	h.Record(0, math.MaxInt64)
	h.Record(0, 1)
	if q := h.Quantile(1); q < 0 {
		t.Fatalf("Quantile(1) = %d, negative", q)
	}
	if m := h.Mean(); m < 0 {
		t.Fatalf("Mean() = %v, negative", m)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(3)
	r := rand.New(rand.NewSource(42))
	samples := make([]int64, 0, 30000)
	for i := 0; i < 30000; i++ {
		v := int64(r.ExpFloat64() * 50000) // latency-shaped distribution
		samples = append(samples, v)
		h.Record(i%3, v) // spread across shards; merge must be exact
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		// Exact quantile by sorting a copy.
		sorted := append([]int64(nil), samples...)
		for i := range sorted {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		rank := int(q*float64(len(sorted)) + 0.5)
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		exact := sorted[rank]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("Quantile(%v) = %d below exact %d", q, got, exact)
		}
		if float64(got-exact) > 0.13*float64(exact)+float64(histSubBuckets) {
			t.Fatalf("Quantile(%v) = %d, exact %d: error beyond bucket width", q, got, exact)
		}
	}
}

func TestHistogramRecordAllocsAndClamp(t *testing.T) {
	h := NewHistogram(2)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(1, 123456)
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
	h.Record(0, -5) // clamps, must not panic
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("negative sample not clamped to 0: %d", got)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	const recorders = 4
	const per = 5000
	h := NewHistogram(recorders)
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(g, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != recorders*per {
		t.Fatalf("Count = %d, want %d", h.Count(), recorders*per)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
}
