package counter

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-bucket log-scale latency histogram, the
// recording side of the runtime's tail-latency measurements. Like
// Sharded it splits its state across per-recorder shards so the hot
// operation (Record on the caller's own shard) never contends — a
// shard is a whole number of cache lines, so neighbouring shards never
// false-share — and the merged view (Count, Quantile) is a cold-path
// walk that is exact once recorders quiesce.
//
// Buckets are logarithmic with histSubBuckets linear sub-buckets per
// octave: values below histSubBuckets are exact, larger values land in
// a bucket whose width is 1/histSubBuckets of their magnitude, so any
// reported quantile overstates the true sample by at most 12.5%
// (1/2^histSubBits). The bucket count is fixed at compile time and the
// index is pure bit arithmetic — Record allocates nothing and performs
// exactly one atomic add, which is what lets a latency-SLO benchmark
// record every request on its hot path.
const (
	// histSubBits selects the sub-bucket resolution: 2^histSubBits
	// linear buckets per power of two.
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits

	// HistBuckets is the total bucket count: one exact bucket per value
	// below histSubBuckets, then histSubBuckets buckets per octave up
	// to the full int64 range. 8·HistBuckets bytes is a multiple of the
	// cache-line size, which is what keeps shards line-disjoint.
	HistBuckets = (64 - histSubBits + 1) << histSubBits
)

// histShard is one recorder's bucket array.
type histShard struct {
	buckets [HistBuckets]atomic.Int64
}

// Histogram distributes bucket counts over per-recorder shards.
type Histogram struct {
	shards []histShard
}

// NewHistogram returns a histogram with one shard per recorder.
// Recorders pass their own index to Record; any index in range is
// correct, just slower when shared.
func NewHistogram(recorders int) *Histogram {
	if recorders < 1 {
		recorders = 1
	}
	return &Histogram{shards: make([]histShard, recorders)}
}

// Recorders returns the shard count the histogram was built for.
func (h *Histogram) Recorders() int { return len(h.shards) }

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	return ((exp - histSubBits + 1) << histSubBits) |
		int((uint64(v)>>uint(exp-histSubBits))&(histSubBuckets-1))
}

// bucketMax returns the largest value mapping to bucket idx — the
// conservative (upper-bound) representative Quantile reports. The top
// octave clamps to math.MaxInt64: the bucket array is sized to a whole
// number of cache lines, so its last block's nominal range starts at
// 2^63 and the unclamped 1<<exp wrapped into the sign bit, making any
// walk that reaches those buckets (Quantile's final fallback, a merged
// Mean) report negative latencies.
func bucketMax(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	block := idx >> histSubBits
	sub := idx & (histSubBuckets - 1)
	exp := uint(block + histSubBits - 1)
	if exp >= 63 {
		return math.MaxInt64
	}
	width := int64(1) << (exp - histSubBits)
	return int64(1)<<exp + int64(sub+1)*width - 1
}

// Record adds one sample to the recorder's shard. Negative samples
// (clock skew) clamp to zero. The sample path is allocation-free.
func (h *Histogram) Record(recorder int, v int64) {
	if v < 0 {
		v = 0
	}
	h.shards[recorder].buckets[histIndex(v)].Add(1)
}

// Count returns the total number of recorded samples (exact at
// quiescence, like Sharded.Sum).
func (h *Histogram) Count() int64 {
	var n int64
	for s := range h.shards {
		for b := range h.shards[s].buckets {
			n += h.shards[s].buckets[b].Load()
		}
	}
	return n
}

// Quantile returns an upper bound on the q-quantile sample (q clamped
// to [0,1]): the maximum value of the bucket holding the sample of
// that rank in the merged histogram. It returns 0 when no samples have
// been recorded. Like Count it is a cold-path merge, exact at
// quiescence.
func (h *Histogram) Quantile(q float64) int64 {
	var merged [HistBuckets]int64
	var total int64
	for s := range h.shards {
		for b := range h.shards[s].buckets {
			c := h.shards[s].buckets[b].Load()
			merged[b] += c
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for b := range merged {
		cum += merged[b]
		if cum >= rank {
			return bucketMax(b)
		}
	}
	return bucketMax(HistBuckets - 1)
}

// Mean returns the mean of all recorded samples, each represented by
// its bucket's upper bound — the same conservative bias direction as
// Quantile, so a reported mean overstates the true one by at most
// 12.5%. It returns 0 when no samples have been recorded; like Count
// it is a cold-path merge, exact at quiescence.
func (h *Histogram) Mean() float64 {
	var sum float64
	var total int64
	for s := range h.shards {
		for b := range h.shards[s].buckets {
			if c := h.shards[s].buckets[b].Load(); c != 0 {
				sum += float64(c) * float64(bucketMax(b))
				total += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// Reset zeroes every bucket. It must not run concurrently with Record.
func (h *Histogram) Reset() {
	for s := range h.shards {
		for b := range h.shards[s].buckets {
			h.shards[s].buckets[b].Store(0)
		}
	}
}
