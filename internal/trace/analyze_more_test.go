package trace

import (
	"strings"
	"testing"
)

func TestSummaryStringRendersRows(t *testing.T) {
	tr := New(2, 64)
	tr.EmitTS(0, KTaskStart, 0, 0)
	tr.EmitTS(0, KTaskEnd, 0, 1000)
	tr.EmitTS(1, KServe, 0, 500)
	s := Analyze(tr.Snapshot())
	out := s.String()
	if !strings.Contains(out, "starvation") || !strings.Contains(out, "core") {
		t.Fatalf("summary header missing:\n%s", out)
	}
	// Both active workers must appear as rows.
	if strings.Count(out, "\n") < 4 {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestStarvationAllIdle(t *testing.T) {
	tr := New(2, 16)
	// Only point events, no intervals: everything counts as idle.
	tr.EmitTS(0, KServe, 1, 0)
	tr.EmitTS(0, KServe, 1, 1000)
	s := Analyze(tr.Snapshot())
	if s.StarvationPct() != 100 {
		t.Fatalf("starvation = %v, want 100", s.StarvationPct())
	}
}

func TestStarvationZeroWhenFullyBusy(t *testing.T) {
	tr := New(0, 16) // a single emitter slot
	tr.EmitTS(0, KTaskStart, 0, 0)
	tr.EmitTS(0, KTaskEnd, 0, 1000)
	s := Analyze(tr.Snapshot())
	if s.StarvationPct() != 0 {
		t.Fatalf("starvation = %v, want 0", s.StarvationPct())
	}
}

func TestAnalyzeNestedIntervals(t *testing.T) {
	// taskwait inside a task: the outer interval owns the whole span,
	// nested open/close must not double count.
	tr := New(1, 64)
	tr.EmitTS(0, KTaskStart, 0, 0)
	tr.EmitTS(0, KTaskwaitStart, 0, 100)
	tr.EmitTS(0, KTaskwaitEnd, 0, 400)
	tr.EmitTS(0, KTaskEnd, 0, 1000)
	s := Analyze(tr.Snapshot())
	w := s.Workers[0]
	if w.TaskTime+w.RuntimeTime != 1000 {
		t.Fatalf("accounted %d ns, want 1000", w.TaskTime+w.RuntimeTime)
	}
}

func TestDepPointEventsChargeRuntime(t *testing.T) {
	tr := New(1, 16)
	tr.EmitTS(0, KDepRegister, 250, 0)
	tr.EmitTS(0, KDepUnregister, 150, 500)
	s := Analyze(tr.Snapshot())
	if s.Workers[0].RuntimeTime != 400 {
		t.Fatalf("RuntimeTime = %d, want 400", s.Workers[0].RuntimeTime)
	}
}

func TestEmptyTraceTimeline(t *testing.T) {
	tr := New(1, 4)
	if out := Timeline(tr.Snapshot(), 10); !strings.Contains(out, "empty") {
		t.Fatalf("empty trace not reported: %q", out)
	}
}

func TestTimelineWidthClamp(t *testing.T) {
	tr := New(1, 16)
	tr.EmitTS(0, KTaskStart, 0, 0)
	tr.EmitTS(0, KTaskEnd, 0, 100)
	out := Timeline(tr.Snapshot(), 0) // 0 selects the default width
	if !strings.Contains(out, "#") {
		t.Fatal("default width render failed")
	}
}
