// Package trace is the lightweight instrumentation backend of paper §5:
// per-core buffers written without locks by the owning worker, a compact
// binary format inspired by the Common Trace Format, and analysis views
// that reproduce the paper's Figure 10 (scheduler lock comparison) and
// Figure 11 (OS noise) timelines.
//
// Differences from the paper's backend, by necessity of the substrate:
// kernel events are not read from perf_event_open but injected by the
// runtime's OS-noise simulator (see core.Config.Noise), and sub-buffers
// are retained in memory until Flush instead of being streamed to tmpfs
// (the analysis is in-process, so the I/O path adds nothing).
package trace

import (
	"fmt"
	"time"
)

// Kind identifies the event type.
type Kind uint8

// Event kinds. Start/End pairs bracket intervals; the analyzer derives
// per-worker time breakdowns from them.
const (
	KTaskCreate Kind = iota + 1
	KTaskStart
	KTaskEnd
	KSchedEnter // worker entered the scheduler (runtime time)
	KSchedLeave
	KServe // DTLock owner served a task to worker Arg
	KDrain // DTLock owner moved Arg tasks from SPSC buffers
	KIdleStart
	KIdleEnd
	KDepRegister
	KDepUnregister
	KTaskwaitStart
	KTaskwaitEnd
	KInterrupt  // simulated kernel interrupt of Arg nanoseconds
	KTaskCancel // task drained without executing (scope cancelled)
	KEventHold  // body returned with external events pending; release deferred
	KEventFire  // final event decrement ran the deferred release
	kindMax
)

var kindNames = [...]string{
	KTaskCreate: "task-create", KTaskStart: "task-start", KTaskEnd: "task-end",
	KSchedEnter: "sched-enter", KSchedLeave: "sched-leave", KServe: "serve",
	KDrain: "drain", KIdleStart: "idle-start", KIdleEnd: "idle-end",
	KDepRegister: "dep-register", KDepUnregister: "dep-unregister",
	KTaskwaitStart: "taskwait-start", KTaskwaitEnd: "taskwait-end",
	KInterrupt: "interrupt", KTaskCancel: "task-cancel",
	KEventHold: "event-hold", KEventFire: "event-fire",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record: a nanosecond timestamp relative to tracer
// start, the emitting worker, the kind, and one argument.
type Event struct {
	TS     int64
	Arg    uint64
	Worker int32
	Kind   Kind
}

// coreBuf is one worker's event buffer. Only the owning worker appends,
// so no synchronization is needed; padding keeps neighbours off the line.
type coreBuf struct {
	events []Event
	drops  int
	_      [40]byte
}

// Tracer collects events into per-core buffers. A nil *Tracer is valid
// and disabled: every Emit on it is a no-op, which keeps the untraced
// fast path to a single pointer test (the paper's "minimum overhead"
// requirement).
type Tracer struct {
	start time.Time
	cores []coreBuf
	cap   int
}

// New returns a tracer for workers+1 emitters with the given per-core
// event capacity (0 selects 1<<16). Events past the capacity are counted
// as drops rather than grown, bounding memory like the paper's circular
// sub-buffers.
func New(workers, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	t := &Tracer{start: time.Now(), cores: make([]coreBuf, workers+1), cap: capacity}
	return t
}

// Now returns the current trace timestamp in nanoseconds.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// Emit records one event on the worker's private buffer.
func (t *Tracer) Emit(worker int, k Kind, arg uint64) {
	if t == nil {
		return
	}
	c := &t.cores[worker]
	if len(c.events) >= t.cap {
		c.drops++
		return
	}
	c.events = append(c.events, Event{TS: t.Now(), Arg: arg, Worker: int32(worker), Kind: k})
}

// EmitTS records an event with an explicit timestamp (used by the OS
// noise injector to place the start of an interrupt interval).
func (t *Tracer) EmitTS(worker int, k Kind, arg uint64, ts int64) {
	if t == nil {
		return
	}
	c := &t.cores[worker]
	if len(c.events) >= t.cap {
		c.drops++
		return
	}
	c.events = append(c.events, Event{TS: ts, Arg: arg, Worker: int32(worker), Kind: k})
}

// Workers returns the number of emitter slots.
func (t *Tracer) Workers() int { return len(t.cores) }

// Drops returns the total number of events dropped to the capacity bound.
func (t *Tracer) Drops() int {
	n := 0
	for i := range t.cores {
		n += t.cores[i].drops
	}
	return n
}

// Snapshot returns the collected trace for analysis. The tracer must be
// quiescent (no concurrent Emit).
func (t *Tracer) Snapshot() *Trace {
	tr := &Trace{PerCore: make([][]Event, len(t.cores))}
	for i := range t.cores {
		tr.PerCore[i] = append([]Event(nil), t.cores[i].events...)
	}
	return tr
}

// Reset discards collected events and restarts the clock.
func (t *Tracer) Reset() {
	for i := range t.cores {
		t.cores[i].events = t.cores[i].events[:0]
		t.cores[i].drops = 0
	}
	t.start = time.Now()
}

// Trace is an immutable collection of per-core event streams.
type Trace struct {
	PerCore [][]Event
}

// Span returns the first and last timestamp across all cores.
func (tr *Trace) Span() (lo, hi int64) {
	first := true
	for _, evs := range tr.PerCore {
		for _, e := range evs {
			if first || e.TS < lo {
				lo = e.TS
			}
			if first || e.TS > hi {
				hi = e.TS
			}
			first = false
		}
	}
	return lo, hi
}
