package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, KTaskStart, 0) // must not panic
	tr.EmitTS(0, KTaskEnd, 0, 5)
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now() != 0")
	}
}

func TestEmitAndSnapshot(t *testing.T) {
	tr := New(2, 16)
	tr.Emit(0, KTaskStart, 1)
	tr.Emit(0, KTaskEnd, 1)
	tr.Emit(1, KServe, 0)
	snap := tr.Snapshot()
	if len(snap.PerCore) != 3 {
		t.Fatalf("PerCore = %d, want 3 (workers+1)", len(snap.PerCore))
	}
	if len(snap.PerCore[0]) != 2 || len(snap.PerCore[1]) != 1 {
		t.Fatalf("event counts wrong: %d %d", len(snap.PerCore[0]), len(snap.PerCore[1]))
	}
	if snap.PerCore[0][0].Kind != KTaskStart {
		t.Fatal("first event kind wrong")
	}
}

func TestCapacityDrops(t *testing.T) {
	tr := New(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(0, KTaskCreate, uint64(i))
	}
	if got := len(tr.Snapshot().PerCore[0]); got != 4 {
		t.Fatalf("kept %d events, want 4", got)
	}
	if tr.Drops() != 6 {
		t.Fatalf("drops = %d, want 6", tr.Drops())
	}
}

func TestRoundTrip(t *testing.T) {
	tr := New(3, 64)
	tr.EmitTS(0, KTaskStart, 7, 100)
	tr.EmitTS(0, KTaskEnd, 7, 200)
	tr.EmitTS(2, KInterrupt, 5000, 150)
	snap := tr.Snapshot()
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PerCore) != len(snap.PerCore) {
		t.Fatal("core count changed in round trip")
	}
	for c := range snap.PerCore {
		if len(back.PerCore[c]) != len(snap.PerCore[c]) {
			t.Fatalf("core %d count changed", c)
		}
		for i := range snap.PerCore[c] {
			if back.PerCore[c][i] != snap.PerCore[c][i] {
				t.Fatalf("core %d event %d: %+v != %+v", c, i,
					back.PerCore[c][i], snap.PerCore[c][i])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	f := func(tss []int64, kinds []uint8) bool {
		tr := New(1, 1<<14)
		n := len(tss)
		if len(kinds) < n {
			n = len(kinds)
		}
		for i := 0; i < n; i++ {
			k := Kind(kinds[i]%uint8(kindMax-1)) + 1
			tr.EmitTS(0, k, uint64(i), tss[i])
		}
		snap := tr.Snapshot()
		var buf bytes.Buffer
		if snap.Write(&buf) != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		for c := range snap.PerCore {
			for i := range snap.PerCore[c] {
				if back.PerCore[c][i] != snap.PerCore[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	tr := New(2, 64)
	// Worker 0: task from 0 to 1000, runtime 1000..1300, idle afterwards.
	tr.EmitTS(0, KTaskStart, 0, 0)
	tr.EmitTS(0, KTaskEnd, 0, 1000)
	tr.EmitTS(0, KSchedEnter, 0, 1000)
	tr.EmitTS(0, KSchedLeave, 0, 1300)
	// Worker 1: serve + interrupt; spans set overall range to 2000.
	tr.EmitTS(1, KServe, 0, 500)
	tr.EmitTS(1, KInterrupt, 400, 1600)
	tr.EmitTS(1, KSchedEnter, 0, 1900)
	tr.EmitTS(1, KSchedLeave, 0, 2000)
	s := Analyze(tr.Snapshot())
	w0 := s.Workers[0]
	if w0.TaskTime != 1000 || w0.RuntimeTime != 300 || w0.TaskCount != 1 {
		t.Fatalf("worker0 breakdown: %+v", w0)
	}
	if w0.IdleTime != 2000-1300 {
		t.Fatalf("worker0 idle = %d", w0.IdleTime)
	}
	w1 := s.Workers[1]
	if w1.Serves != 1 || w1.Interrupts != 1 || w1.InterruptNS != 400 {
		t.Fatalf("worker1 stats: %+v", w1)
	}
	if s.Workers[0].ServedTo != 1 {
		t.Fatal("ServedTo not aggregated")
	}
	if s.Span != 2000 {
		t.Fatalf("span = %d", s.Span)
	}
}

func TestTimelineRender(t *testing.T) {
	tr := New(1, 64)
	tr.EmitTS(0, KTaskStart, 0, 0)
	tr.EmitTS(0, KTaskEnd, 0, 500)
	tr.EmitTS(0, KInterrupt, 100, 800)
	out := Timeline(tr.Snapshot(), 40)
	if !strings.Contains(out, "#") || !strings.Contains(out, "!") {
		t.Fatalf("timeline missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows (worker 0 + external slot)
		t.Fatalf("timeline rows = %d:\n%s", len(lines), out)
	}
}

func TestServeGaps(t *testing.T) {
	tr := New(1, 64)
	for _, ts := range []int64{100, 250, 400} {
		tr.EmitTS(0, KServe, 1, ts)
	}
	gaps := ServeGaps(tr.Snapshot())
	if len(gaps) != 2 || gaps[0] != 150 || gaps[1] != 150 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestKindString(t *testing.T) {
	if KTaskStart.String() != "task-start" {
		t.Fatal("kind name wrong")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Fatal("unknown kind not reported numerically")
	}
}

func TestReset(t *testing.T) {
	tr := New(1, 8)
	tr.Emit(0, KTaskCreate, 0)
	tr.Reset()
	if n := len(tr.Snapshot().PerCore[0]); n != 0 {
		t.Fatalf("events after reset: %d", n)
	}
}
