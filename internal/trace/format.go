package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary stream format, CTF-inspired: a fixed header followed by one
// stream per core, each a count-prefixed sequence of fixed-size records.
// All integers are little-endian.
//
//	header : magic "NTF1" | uint32 coreCount
//	stream : uint32 eventCount | eventCount * record
//	record : int64 ts | uint64 arg | int32 worker | uint8 kind | 3 pad
const magic = "NTF1"

const recordSize = 8 + 8 + 4 + 1 + 3

// Write serializes the trace.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tr.PerCore))); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, evs := range tr.PerCore {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(evs))); err != nil {
			return err
		}
		for _, e := range evs {
			binary.LittleEndian.PutUint64(rec[0:], uint64(e.TS))
			binary.LittleEndian.PutUint64(rec[8:], e.Arg)
			binary.LittleEndian.PutUint32(rec[16:], uint32(e.Worker))
			rec[20] = byte(e.Kind)
			rec[21], rec[22], rec[23] = 0, 0, 0
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a trace previously serialized with Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(hdr[:]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	var cores uint32
	if err := binary.Read(br, binary.LittleEndian, &cores); err != nil {
		return nil, err
	}
	if cores > 1<<16 {
		return nil, fmt.Errorf("trace: implausible core count %d", cores)
	}
	tr := &Trace{PerCore: make([][]Event, cores)}
	var rec [recordSize]byte
	for c := range tr.PerCore {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		evs := make([]Event, n)
		for i := range evs {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: core %d event %d: %w", c, i, err)
			}
			evs[i] = Event{
				TS:     int64(binary.LittleEndian.Uint64(rec[0:])),
				Arg:    binary.LittleEndian.Uint64(rec[8:]),
				Worker: int32(binary.LittleEndian.Uint32(rec[16:])),
				Kind:   Kind(rec[20]),
			}
			if evs[i].Kind == 0 || evs[i].Kind >= kindMax {
				return nil, fmt.Errorf("trace: invalid kind %d", rec[20])
			}
		}
		tr.PerCore[c] = evs
	}
	return tr, nil
}
