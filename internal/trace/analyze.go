package trace

import (
	"fmt"
	"sort"
	"strings"
)

// WorkerStats is the per-worker time breakdown derived from a trace.
type WorkerStats struct {
	TaskTime     int64 // ns spent inside task bodies
	RuntimeTime  int64 // ns spent inside the scheduler and dep system
	IdleTime     int64 // ns spent idle (no interval open)
	TaskCount    int
	Serves       int // tasks this worker served to others as DTLock owner
	ServedTo     int // (aggregated) times this worker received a served task
	Drains       int // SPSC drain operations
	DrainedTasks int
	Interrupts   int
	InterruptNS  int64
}

// Summary aggregates a trace into per-worker and total statistics.
type Summary struct {
	Workers []WorkerStats
	Span    int64 // trace duration ns
}

// Analyze derives interval statistics from the event streams. Intervals
// are reconstructed per worker from Start/End pairs; anything not covered
// by a task, scheduler, dependency, or taskwait interval counts as idle.
func Analyze(tr *Trace) *Summary {
	lo, hi := tr.Span()
	s := &Summary{Workers: make([]WorkerStats, len(tr.PerCore)), Span: hi - lo}
	for c, evs := range tr.PerCore {
		ws := &s.Workers[c]
		var busy int64 // total time covered by any open interval
		var openTS int64
		depth := 0
		openKind := Kind(0)
		openInterval := func(k Kind, ts int64) {
			if depth == 0 {
				openTS = ts
				openKind = k
			}
			depth++
		}
		closeInterval := func(ts int64, charge *int64) {
			if depth == 0 {
				return
			}
			depth--
			if depth == 0 {
				d := ts - openTS
				busy += d
				*charge += d
				_ = openKind
			}
		}
		for _, e := range evs {
			switch e.Kind {
			case KTaskStart:
				openInterval(e.Kind, e.TS)
				ws.TaskCount++
			case KTaskEnd:
				closeInterval(e.TS, &ws.TaskTime)
			case KSchedEnter, KTaskwaitStart:
				openInterval(e.Kind, e.TS)
			case KSchedLeave, KTaskwaitEnd:
				closeInterval(e.TS, &ws.RuntimeTime)
			case KDepRegister, KDepUnregister:
				// Point events carrying their duration in Arg.
				ws.RuntimeTime += int64(e.Arg)
			case KServe:
				ws.Serves++
				if int(e.Arg) < len(s.Workers) {
					s.Workers[e.Arg].ServedTo++
				}
			case KDrain:
				ws.Drains++
				ws.DrainedTasks += int(e.Arg)
			case KInterrupt:
				ws.Interrupts++
				ws.InterruptNS += int64(e.Arg)
			}
		}
		ws.IdleTime = s.Span - busy
		if ws.IdleTime < 0 {
			ws.IdleTime = 0
		}
	}
	return s
}

// Totals sums the per-worker statistics.
func (s *Summary) Totals() WorkerStats {
	var t WorkerStats
	for _, w := range s.Workers {
		t.TaskTime += w.TaskTime
		t.RuntimeTime += w.RuntimeTime
		t.IdleTime += w.IdleTime
		t.TaskCount += w.TaskCount
		t.Serves += w.Serves
		t.ServedTo += w.ServedTo
		t.Drains += w.Drains
		t.DrainedTasks += w.DrainedTasks
		t.Interrupts += w.Interrupts
		t.InterruptNS += w.InterruptNS
	}
	return t
}

// StarvationPct returns the fraction of total worker time spent idle, in
// percent: the "most cores starve (in khaki green)" measure of Fig. 10.
func (s *Summary) StarvationPct() float64 {
	t := s.Totals()
	total := t.TaskTime + t.RuntimeTime + t.IdleTime
	if total == 0 {
		return 0
	}
	return 100 * float64(t.IdleTime) / float64(total)
}

// String renders a compact human-readable table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span %.3f ms, starvation %.1f%%\n", float64(s.Span)/1e6, s.StarvationPct())
	fmt.Fprintf(&b, "%6s %10s %10s %10s %7s %7s %7s\n",
		"core", "task(ms)", "rt(ms)", "idle(ms)", "ntask", "serves", "intr")
	for c, w := range s.Workers {
		if w.TaskCount == 0 && w.Serves == 0 && w.TaskTime == 0 && w.RuntimeTime == 0 {
			continue
		}
		fmt.Fprintf(&b, "%6d %10.3f %10.3f %10.3f %7d %7d %7d\n",
			c, float64(w.TaskTime)/1e6, float64(w.RuntimeTime)/1e6,
			float64(w.IdleTime)/1e6, w.TaskCount, w.Serves, w.Interrupts)
	}
	return b.String()
}

// Timeline renders an ASCII view in the spirit of Figures 10-11: one row
// per core, time bucketed into width columns, each cell showing the
// dominant activity: '#' task, '.' runtime, 'S' serving, '!' interrupt,
// ' ' idle.
func Timeline(tr *Trace, width int) string {
	if width <= 0 {
		width = 100
	}
	lo, hi := tr.Span()
	if hi <= lo {
		return "(empty trace)\n"
	}
	bucket := func(ts int64) int {
		b := int((ts - lo) * int64(width) / (hi - lo + 1))
		if b >= width {
			b = width - 1
		}
		return b
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d cores, %.3f ms, %d cols (# task, . runtime, S serve, ! interrupt)\n",
		len(tr.PerCore), float64(hi-lo)/1e6, width)
	for c, evs := range tr.PerCore {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		fill := func(from, to int64, ch byte, override bool) {
			for i := bucket(from); i <= bucket(to); i++ {
				if override || row[i] == ' ' {
					row[i] = ch
				}
			}
		}
		var taskStart, rtStart int64 = -1, -1
		for _, e := range evs {
			switch e.Kind {
			case KTaskStart:
				taskStart = e.TS
			case KTaskEnd:
				if taskStart >= 0 {
					fill(taskStart, e.TS, '#', true)
					taskStart = -1
				}
			case KSchedEnter, KTaskwaitStart:
				if rtStart < 0 {
					rtStart = e.TS
				}
			case KSchedLeave, KTaskwaitEnd:
				if rtStart >= 0 {
					fill(rtStart, e.TS, '.', false)
					rtStart = -1
				}
			case KDepRegister, KDepUnregister:
				if int64(e.Arg) > 0 {
					fill(e.TS, e.TS+int64(e.Arg), '.', false)
				}
			case KServe:
				row[bucket(e.TS)] = 'S'
			case KInterrupt:
				fill(e.TS, e.TS+int64(e.Arg), '!', true)
			}
		}
		fmt.Fprintf(&b, "%3d |%s|\n", c, row)
	}
	return b.String()
}

// ServeGaps returns the sorted intervals between consecutive KServe
// events of the DTLock owner(s); Figure 11 reads the change in this
// pattern (regular vs irregular serving) around an interrupt.
func ServeGaps(tr *Trace) []int64 {
	var ts []int64
	for _, evs := range tr.PerCore {
		for _, e := range evs {
			if e.Kind == KServe {
				ts = append(ts, e.TS)
			}
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	gaps := make([]int64, 0, len(ts))
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i]-ts[i-1])
	}
	return gaps
}
