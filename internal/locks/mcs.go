package locks

import (
	"sync"
	"sync/atomic"
)

// MCSNode is one waiter's queue entry for the MCS lock. Each thread spins
// on its own node, giving the same local-spinning property as the PTLock
// without a fixed-size array.
type MCSNode struct {
	next   atomic.Pointer[MCSNode]
	locked atomic.Bool
	_      [40]byte
}

// MCSLock is the classic queue lock of Mellor-Crummey & Scott (1991),
// referenced by the paper as the complex design that PTLock matches in
// performance (§3.2). Acquire/Release take an explicit node; the Locker
// adapter below manages nodes from a pool for interface-compatible use.
type MCSLock struct {
	tail atomic.Pointer[MCSNode]
}

// Acquire appends n to the queue and waits until n is at the head.
func (l *MCSLock) Acquire(n *MCSNode) {
	n.next.Store(nil)
	n.locked.Store(true)
	prev := l.tail.Swap(n)
	if prev == nil {
		return
	}
	prev.next.Store(n)
	for i := 0; n.locked.Load(); i++ {
		Spin(i)
	}
}

// Release hands the lock to n's successor, waiting briefly for a late
// enqueuer if the tail has already moved past n.
func (l *MCSLock) Release(n *MCSNode) {
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			Spin(i)
		}
	}
	next.locked.Store(false)
}

// TryAcquire acquires the lock with node n only if the queue is empty.
func (l *MCSLock) TryAcquire(n *MCSNode) bool {
	n.next.Store(nil)
	n.locked.Store(false)
	return l.tail.CompareAndSwap(nil, n)
}

// MCSLocker adapts MCSLock to the Locker interface by drawing queue nodes
// from a pool and remembering the owner's node across Lock/Unlock.
type MCSLocker struct {
	l     MCSLock
	pool  sync.Pool
	owner atomic.Pointer[MCSNode]
}

// NewMCSLocker returns an MCS lock usable through the Locker interface.
func NewMCSLocker() *MCSLocker {
	lk := &MCSLocker{}
	lk.pool.New = func() any { return new(MCSNode) }
	return lk
}

// Lock acquires the lock.
func (lk *MCSLocker) Lock() {
	n := lk.pool.Get().(*MCSNode)
	lk.l.Acquire(n)
	lk.owner.Store(n)
}

// Unlock releases the lock and recycles the owner's node.
func (lk *MCSLocker) Unlock() {
	n := lk.owner.Load()
	lk.owner.Store(nil)
	lk.l.Release(n)
	lk.pool.Put(n)
}

var _ Locker = (*MCSLocker)(nil)
