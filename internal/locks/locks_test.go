package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// exerciseMutualExclusion hammers a lock from p goroutines, each
// performing iters critical sections over a shared non-atomic counter.
// Any mutual exclusion violation is detected as a lost update.
func exerciseMutualExclusion(t *testing.T, l Locker, p, iters int) {
	t.Helper()
	var shared int64
	var wg sync.WaitGroup
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				shared++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := int64(p * iters); shared != want {
		t.Fatalf("lost updates: got %d want %d", shared, want)
	}
}

func TestTicketLockMutualExclusion(t *testing.T) {
	exerciseMutualExclusion(t, new(TicketLock), 8, 400)
}

func TestPTLockMutualExclusion(t *testing.T) {
	exerciseMutualExclusion(t, NewPTLock(8), 8, 400)
}

func TestPTLockMutualExclusionSmallArray(t *testing.T) {
	// Correctness must hold even when the array is smaller than the
	// thread count (threads then share waiting slots).
	exerciseMutualExclusion(t, NewPTLock(2), 8, 400)
}

func TestTWALockMutualExclusion(t *testing.T) {
	exerciseMutualExclusion(t, NewTWALock(), 8, 400)
}

func TestMCSLockMutualExclusion(t *testing.T) {
	exerciseMutualExclusion(t, NewMCSLocker(), 8, 400)
}

func TestDTLockPlainMutualExclusion(t *testing.T) {
	exerciseMutualExclusion(t, NewDTLock[int](8), 8, 400)
}

func TestTicketLockTryLock(t *testing.T) {
	l := new(TicketLock)
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestPTLockTryLock(t *testing.T) {
	l := NewPTLock(4)
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
	// Interleave with plain Lock.
	l.Lock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded while Lock held")
	}
	l.Unlock()
}

func TestTWALockTryLock(t *testing.T) {
	l := NewTWALock()
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
}

func TestPTLockFIFOOrder(t *testing.T) {
	// With a single contender at a time the order of ticket grants must
	// be the order of acquisition attempts. We serialize attempts with a
	// side channel and check tickets observed in the critical section.
	l := NewPTLock(16)
	var order []int
	var mu sync.Mutex
	start := make(chan int)
	done := make(chan struct{})
	const n = 8
	for g := 0; g < n; g++ {
		go func() {
			for id := range start {
				l.Lock()
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				l.Unlock()
				done <- struct{}{}
			}
		}()
	}
	for i := 0; i < n; i++ {
		start <- i
		<-done
	}
	close(start)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order=%v", order)
		}
	}
}

func TestDTLockDelegationDelivery(t *testing.T) {
	// One owner thread serves values to n waiting threads; each waiter
	// must receive exactly the value assigned to its id.
	const n = 4
	l := NewDTLock[int](n + 1)
	ownerID := uint64(n)

	// The owner takes the lock first.
	var item int
	if !l.LockOrDelegate(ownerID, &item) {
		t.Fatal("first LockOrDelegate did not acquire")
	}

	var wg sync.WaitGroup
	results := make([]int, n)
	gotLock := make([]bool, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var v int
			if l.LockOrDelegate(uint64(id), &v) {
				gotLock[id] = true
				l.Unlock()
				return
			}
			results[id] = v
		}(g)
	}

	// Serve every waiter with 100+id. Wait for all of them to register.
	served := 0
	for served < n {
		if l.Empty() {
			runtime.Gosched()
			continue
		}
		id := l.Front()
		l.SetItem(id, 100+int(id))
		l.PopFront()
		served++
	}
	l.Unlock()
	wg.Wait()

	for id := 0; id < n; id++ {
		if gotLock[id] {
			t.Fatalf("waiter %d acquired the lock instead of being served", id)
		}
		if results[id] != 100+id {
			t.Fatalf("waiter %d got %d want %d", id, results[id], 100+id)
		}
	}
}

func TestDTLockUnservedWaiterAcquires(t *testing.T) {
	// If the owner releases without serving, the waiter must acquire the
	// lock itself (the delegation is only an offer).
	l := NewDTLock[int](2)
	var item int
	if !l.LockOrDelegate(0, &item) {
		t.Fatal("owner did not acquire")
	}
	acquired := make(chan bool, 1)
	go func() {
		var v int
		got := l.LockOrDelegate(1, &v)
		if got {
			l.Unlock()
		}
		acquired <- got
	}()
	// Wait until the waiter registers, then release without serving.
	for i := 0; l.Empty(); i++ {
		Spin(i)
	}
	l.Unlock()
	if !<-acquired {
		t.Fatal("unserved waiter did not acquire the lock")
	}
}

func TestDTLockEmptyFront(t *testing.T) {
	l := NewDTLock[int](4)
	var item int
	if !l.LockOrDelegate(2, &item) {
		t.Fatal("owner did not acquire")
	}
	if !l.Empty() {
		t.Fatal("fresh lock reports waiters")
	}
	registered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		var v int
		close(registered)
		if l.LockOrDelegate(3, &v) {
			l.Unlock()
		}
		close(release)
	}()
	<-registered
	for i := 0; l.Empty(); i++ {
		Spin(i)
	}
	if got := l.Front(); got != 3 {
		t.Fatalf("Front() = %d, want 3", got)
	}
	l.Unlock()
	<-release
}

func TestDTLockStressServeAndLock(t *testing.T) {
	// Mixed workload: some goroutines delegate, one periodically serves,
	// all updates to the shared counter must be accounted for. This
	// mirrors the SyncScheduler usage where served items and self-service
	// interleave arbitrarily.
	const n = 8
	const iters = 150
	l := NewDTLock[int](n)
	var produced atomic.Int64
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var v int
				if l.LockOrDelegate(id, &v) {
					// Owner: serve whoever is waiting one item each.
					for !l.Empty() {
						wid := l.Front()
						l.SetItem(wid, 1)
						produced.Add(1)
						l.PopFront()
					}
					l.Unlock()
				} else {
					consumed.Add(int64(v))
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if produced.Load() != consumed.Load() {
		t.Fatalf("served %d items but %d consumed", produced.Load(), consumed.Load())
	}
}

func TestMCSTryAcquire(t *testing.T) {
	var l MCSLock
	a, b := new(MCSNode), new(MCSNode)
	if !l.TryAcquire(a) {
		t.Fatal("TryAcquire on empty queue failed")
	}
	if l.TryAcquire(b) {
		t.Fatal("TryAcquire on held lock succeeded")
	}
	l.Release(a)
	if !l.TryAcquire(b) {
		t.Fatal("TryAcquire after release failed")
	}
	l.Release(b)
}

// TestQuickLocksSerializeHistories: property — for any small schedule of
// increments split across goroutines, every lock yields the full sum
// (no lost update), for every lock implementation.
func TestQuickLocksSerializeHistories(t *testing.T) {
	f := func(split [4]uint8) bool {
		impls := []Locker{
			new(TicketLock), NewPTLock(4), NewTWALock(),
			NewMCSLocker(), NewDTLock[int](4),
		}
		for _, l := range impls {
			var counter int64
			var wg sync.WaitGroup
			total := 0
			for _, c := range split {
				iters := int(c % 64)
				total += iters
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}(iters)
			}
			wg.Wait()
			if counter != int64(total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPTLockWraparound(t *testing.T) {
	// Many more acquisitions than array slots must wrap the virtual
	// queue correctly.
	l := NewPTLock(2)
	for i := 0; i < 1000; i++ {
		l.Lock()
		l.Unlock()
	}
	if !l.TryLock() {
		t.Fatal("lock not free after wraparound cycles")
	}
	l.Unlock()
}
