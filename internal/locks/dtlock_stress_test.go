package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDTLockServeStressBalance is the regression test for the unlock
// ordering bug: PTLock.Unlock must advance tail before publishing the
// grant, or a freshly admitted owner can observe the stale tail,
// re-grant consumed tickets, serve its own log entry, and melt the
// virtual queue. The invariant checked here held the bug red-handed:
// every delegated return corresponds to exactly one PopFront, so the
// two counters must match when the lock drains.
func TestDTLockServeStressBalance(t *testing.T) {
	const p = 8
	d := 300 * time.Millisecond
	if testing.Short() {
		d = 50 * time.Millisecond
	}
	l := NewDTLock[int](p)
	var stop atomic.Bool
	var pops, delegs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for !stop.Load() {
				var v int
				if l.LockOrDelegate(id, &v) {
					for !l.Empty() {
						w := l.Front()
						if w >= uint64(p) {
							stop.Store(true)
							t.Errorf("corrupt Front: %d (queue melted)", w)
							l.Unlock()
							return
						}
						l.SetItem(w, int(l.tail.Load()))
						l.PopFront()
						pops.Add(1)
					}
					l.Unlock()
				} else {
					delegs.Add(1)
					// The served item is the waiter's own ticket number;
					// anything else is a cross-delivered result.
					if v == 0 {
						stop.Store(true)
						t.Error("delegated result was never set")
						return
					}
				}
			}
		}(uint64(g))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if pops.Load() != delegs.Load() {
		t.Fatalf("pops=%d delegs=%d: ghost serves (unlock ordering bug)",
			pops.Load(), delegs.Load())
	}
}

// TestPTLockUnlockOrderTailFirst pins the store order directly: after an
// Unlock, the tail must already be advanced when the grant becomes
// visible. A freshly admitted owner reads tail immediately; it must
// never see the pre-release value.
func TestPTLockUnlockOrderTailFirst(t *testing.T) {
	l := NewPTLock(4)
	for i := 0; i < 10000; i++ {
		l.Lock()
		// Simulate the admitted-owner read: inside the critical section
		// tail must equal our ticket + 1.
		g := l.tail.Load()
		h := l.head.Load()
		if g != h {
			t.Fatalf("iteration %d: tail %d != head %d inside critical section", i, g, h)
		}
		l.Unlock()
	}
}
