package locks

import "sync/atomic"

// TicketLock is the classic fair FIFO ticket lock (Reed & Kanodia, 1979).
// Every waiter spins on the single grant word, which is exactly the cache
// coherence problem the Partitioned Ticket Lock solves: each release
// invalidates the line in every waiting core. It is included both as a
// baseline for the lock microbenchmarks (paper §3.2) and as the building
// block for the TWA lock.
type TicketLock struct {
	next  atomic.Uint64
	_     [56]byte // keep next and grant on distinct cache lines
	grant atomic.Uint64
	_     [56]byte
}

// Lock acquires the lock, spinning until this caller's ticket is granted.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	for i := 0; l.grant.Load() != t; i++ {
		Spin(i)
	}
}

// Unlock releases the lock, granting the next ticket.
func (l *TicketLock) Unlock() {
	l.grant.Store(l.grant.Load() + 1)
}

// TryLock acquires the lock only if it is free. It preserves fairness for
// queued waiters: it succeeds only when no ticket is outstanding.
func (l *TicketLock) TryLock() bool {
	g := l.grant.Load()
	return l.next.CompareAndSwap(g, g+1)
}

var (
	_ Locker    = (*TicketLock)(nil)
	_ TryLocker = (*TicketLock)(nil)
)
