package locks

import "sync/atomic"

// DTLock is the Delegation Ticket Lock (paper §3.3, Listing 4). It
// extends the Partitioned Ticket Lock with fine-grained, dynamic
// delegation of operations: a thread calling LockOrDelegate either
// acquires the lock or leaves a request that the current owner may fulfil
// on its behalf, delivering the result directly to the waiting thread.
//
// Compared to classic delegation (ffwd-style) no dedicated server core is
// required, and delegated operations combine freely with plain
// Lock/Unlock/TryLock calls: if the owner releases the lock without
// serving a pending request, the requesting thread simply acquires the
// lock and performs the operation itself.
//
// Two arrays extend the PTLock. The log queue registers waiting threads:
// the slot for ticket t holds t+id, so the owner recovers the waiter's id
// by subtracting the ticket. The ready queue carries delegated results:
// entry id holds the item and the ticket it answers, which doubles as the
// "result is valid" mark because tickets are globally unique.
//
// At most Size() threads may use LockOrDelegate concurrently, and each
// must pass a distinct id in [0, Size()).
type DTLock[T any] struct {
	*PTLock
	logq  []paddedUint64
	ready []readySlot[T]
}

// readySlot carries one delegated result, padded to avoid false sharing
// between adjacent waiters' results.
type readySlot[T any] struct {
	ticket atomic.Uint64
	item   T
	_      [40]byte
}

// NewDTLock returns a Delegation Ticket Lock sized for `size` threads
// with ids 0..size-1.
func NewDTLock[T any](size int) *DTLock[T] {
	return &DTLock[T]{
		PTLock: NewPTLock(size),
		logq:   make([]paddedUint64, size),
		ready:  make([]readySlot[T], size),
	}
}

// LockOrDelegate either acquires the lock (returns true) or blocks until
// the owner delivers a delegated result into *item (returns false). The
// id identifies the calling thread and indexes the ready queue.
func (l *DTLock[T]) LockOrDelegate(id uint64, item *T) bool {
	ticket := l.getTicket()
	l.logq[ticket%l.size].v.Store(ticket + id)
	l.waitTurn(ticket)
	if l.ready[id].ticket.Load() == ticket {
		// The previous owner answered this exact ticket via SetItem and
		// released us through PopFront.
		*item = l.ready[id].item
		return false
	}
	return true
}

// Empty reports whether no thread is waiting to be served. Only the lock
// owner may call it. The check is intrinsically racy (a waiter may
// register immediately after) but harmless: a missed waiter is granted
// the lock on Unlock and serves itself.
func (l *DTLock[T]) Empty() bool {
	t := l.tail.Load()
	return l.logq[t%l.size].v.Load() < t
}

// Front returns the id of the first waiting thread. Only the lock owner
// may call it, and only after Empty() returned false.
func (l *DTLock[T]) Front() uint64 {
	t := l.tail.Load()
	return l.logq[t%l.size].v.Load() - t
}

// SetItem delivers a delegated result to the waiting thread id (which
// must be the current Front()). The ticket written is the waiter's own
// ticket, marking the entry valid exactly once.
func (l *DTLock[T]) SetItem(id uint64, item T) {
	l.ready[id].item = item
	l.ready[id].ticket.Store(l.tail.Load())
}

// PopFront releases the first waiting thread, which will find its result
// in the ready queue (after SetItem) or acquire the lock (without).
// Only the lock owner may call it.
func (l *DTLock[T]) PopFront() {
	l.Unlock()
}
