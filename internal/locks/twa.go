package locks

import "sync/atomic"

// TWALock is a Ticket Lock Augmented with a Waiting array (Dice & Kogan,
// Euro-Par'19), included as the third point of comparison in the paper's
// lock discussion (§3.2): it performs close to PTLock while using less
// memory, because only long-term waiters are diverted to the shared
// waiting array while the immediate successor spins on the grant word.
type TWALock struct {
	next  atomic.Uint64
	_     [56]byte
	grant atomic.Uint64
	_     [56]byte
	wa    []paddedUint64
}

// twaSlots is the size of the shared waiting array. Unlike the PTLock's
// array it may be smaller than the thread count: collisions only cause
// spurious wake-ups, never missed ones, because waiters always re-check
// the grant word.
const twaSlots = 64

// NewTWALock returns a ready-to-use TWA lock.
func NewTWALock() *TWALock {
	return &TWALock{wa: make([]paddedUint64, twaSlots)}
}

// Lock acquires the lock in FIFO ticket order. Waiters at distance
// greater than one from the grant spin on a hashed waiting-array slot and
// migrate to the grant word when they become the immediate successor.
func (l *TWALock) Lock() {
	t := l.next.Add(1) - 1
	slot := &l.wa[t%twaSlots].v
	for i := 0; ; i++ {
		g := l.grant.Load()
		if g == t {
			return
		}
		if t-g == 1 {
			// Immediate successor: spin on the grant word.
			for j := 0; l.grant.Load() != t; j++ {
				Spin(j)
			}
			return
		}
		// Long-term waiter: park on the waiting array until it changes,
		// then re-check the grant distance.
		epoch := slot.Load()
		for j := 0; slot.Load() == epoch && l.grant.Load() != t; j++ {
			Spin(j)
		}
		_ = i
	}
}

// Unlock grants the next ticket and pokes the waiting-array slot of the
// ticket that just became the immediate successor, migrating it to the
// grant word.
func (l *TWALock) Unlock() {
	g := l.grant.Load() + 1
	l.grant.Store(g)
	l.wa[(g+1)%twaSlots].v.Add(1)
}

// TryLock acquires the lock only if it is free.
func (l *TWALock) TryLock() bool {
	g := l.grant.Load()
	return l.next.CompareAndSwap(g, g+1)
}

var (
	_ Locker    = (*TWALock)(nil)
	_ TryLocker = (*TWALock)(nil)
)
