package locks

import (
	"sync"
	"testing"
)

// benchContended runs the classic increment-under-lock benchmark with a
// fixed goroutine count, reporting per-op latency of the full
// lock/increment/unlock cycle.
func benchContended(b *testing.B, l Locker, goroutines int) {
	var counter int64
	var wg sync.WaitGroup
	per := b.N / goroutines
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkTicketLockUncontended(b *testing.B) { benchContended(b, new(TicketLock), 1) }
func BenchmarkTicketLockContended4(b *testing.B)  { benchContended(b, new(TicketLock), 4) }

func BenchmarkPTLockUncontended(b *testing.B) { benchContended(b, NewPTLock(8), 1) }
func BenchmarkPTLockContended4(b *testing.B)  { benchContended(b, NewPTLock(8), 4) }

func BenchmarkTWALockUncontended(b *testing.B) { benchContended(b, NewTWALock(), 1) }
func BenchmarkTWALockContended4(b *testing.B)  { benchContended(b, NewTWALock(), 4) }

func BenchmarkMCSLockUncontended(b *testing.B) { benchContended(b, NewMCSLocker(), 1) }
func BenchmarkMCSLockContended4(b *testing.B)  { benchContended(b, NewMCSLocker(), 4) }

func BenchmarkDTLockPlainUncontended(b *testing.B) { benchContended(b, NewDTLock[int](8), 1) }
func BenchmarkDTLockPlainContended4(b *testing.B)  { benchContended(b, NewDTLock[int](8), 4) }

func BenchmarkMutexContended4(b *testing.B) { benchContended(b, &sync.Mutex{}, 4) }

// BenchmarkDTLockDelegation measures the full delegation round trip:
// waiters delegate, the owner serves.
func BenchmarkDTLockDelegation(b *testing.B) {
	const p = 4
	l := NewDTLock[int](p)
	var wg sync.WaitGroup
	per := b.N / p
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var v int
				if l.LockOrDelegate(id, &v) {
					for !l.Empty() {
						w := l.Front()
						l.SetItem(w, 1)
						l.PopFront()
					}
					l.Unlock()
				}
			}
		}(uint64(g))
	}
	wg.Wait()
}
