package locks

// FlatCombiner implements the paper's stated future work (§8): extending
// the Delegation Ticket Lock interface to support flat combining
// (Hendler et al., SPAA'10). Threads publish operation requests and
// either acquire the lock or have the current owner execute their
// operation for them; the owner combines every pending request in one
// critical section, so a single cache-hot thread applies a batch of
// operations to the protected structure.
//
// Compared with the DTLock's item delegation (owner hands *results* to
// waiters), flat combining delegates *operations*: the request array is
// the DTLock's ready queue run in reverse.
type FlatCombiner[Req, Resp any] struct {
	lock *DTLock[Resp]
	reqs []reqSlot[Req]
}

type reqSlot[Req any] struct {
	v Req
	_ [48]byte
}

// NewFlatCombiner returns a combiner for up to size threads with ids
// 0..size-1.
func NewFlatCombiner[Req, Resp any](size int) *FlatCombiner[Req, Resp] {
	return &FlatCombiner[Req, Resp]{
		lock: NewDTLock[Resp](size),
		reqs: make([]reqSlot[Req], size),
	}
}

// Do executes apply(req) under the combiner's mutual exclusion and
// returns its response. The calling thread either becomes the combiner
// (executing its own and every waiting thread's request) or has its
// request executed by the current combiner. apply must only touch state
// protected by this combiner.
//
// The request slot is published before the ticket is drawn inside
// LockOrDelegate, and the owner only reads slot w after observing the
// waiter's log entry, so the request is always visible to its executor.
func (fc *FlatCombiner[Req, Resp]) Do(id uint64, req Req, apply func(Req) Resp) Resp {
	fc.reqs[id].v = req
	var resp Resp
	if !fc.lock.LockOrDelegate(id, &resp) {
		return resp // combined by the previous owner
	}
	resp = apply(req)
	for !fc.lock.Empty() {
		w := fc.lock.Front()
		fc.lock.SetItem(w, apply(fc.reqs[w].v))
		fc.lock.PopFront()
	}
	fc.lock.Unlock()
	return resp
}

// Size returns the thread capacity.
func (fc *FlatCombiner[Req, Resp]) Size() int { return len(fc.reqs) }
