// Package locks implements the synchronization primitives used by the
// task-based runtime reproduced from "Advanced Synchronization Techniques
// for Task-based Runtime Systems" (PPoPP '21): classic Ticket Locks,
// Partitioned Ticket Locks (paper Listing 3), Ticket Locks Augmented with
// a Waiting array (TWA), MCS queue locks, and the paper's novel Delegation
// Ticket Lock (paper Listing 4).
//
// All spin loops in this package yield to the Go scheduler after a bounded
// busy-spin budget. The paper pins one kernel thread per core and spins
// natively; under the Go runtime an unbounded spin can starve the very
// goroutine that would release the lock whenever workers outnumber
// GOMAXPROCS, so the yield keeps oversubscribed configurations live while
// preserving the contention behaviour for the common 1:1 case.
package locks

import "runtime"

// spinBudget is the number of busy iterations a waiter performs before it
// starts yielding to the Go scheduler. The value is deliberately small:
// it is enough to catch a fast hand-off without burning a time slice.
const spinBudget = 128

// singleProc records whether the process runs on a single scheduler
// thread, in which case busy-waiting can never observe progress (the
// thread that would release the lock cannot run) and waiters yield
// immediately. Captured once at init: changing GOMAXPROCS mid-run only
// costs some spinning, never correctness.
var singleProc = runtime.GOMAXPROCS(0) == 1

// Spin performs one iteration of a bounded busy-wait. The caller passes
// its local iteration count; Spin busy-loops for the first spinBudget
// iterations and yields afterwards. Typical use:
//
//	for i := 0; !cond(); i++ { locks.Spin(i) }
func Spin(i int) {
	if !singleProc && i < spinBudget {
		_ = procYield()
		return
	}
	runtime.Gosched()
}

// procYield executes a short platform pause. Without access to the PAUSE
// instruction from pure Go we approximate it with a non-inlinable call:
// the call overhead itself (a couple of nanoseconds) plays the role of
// the pause, without generating any shared-memory traffic.
//
//go:noinline
func procYield() uint64 {
	var sink uint64
	for i := uint64(0); i < 4; i++ {
		sink += i
	}
	return sink
}

// Locker is the minimal mutual exclusion interface shared by every lock in
// this package, compatible with sync.Locker.
type Locker interface {
	Lock()
	Unlock()
}

// TryLocker extends Locker with a non-blocking acquisition attempt.
type TryLocker interface {
	Locker
	TryLock() bool
}
