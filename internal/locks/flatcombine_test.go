package locks

import (
	"sync"
	"testing"
)

func TestFlatCombinerSerializesOperations(t *testing.T) {
	// A shared non-atomic counter: every Do must apply exactly once
	// under mutual exclusion.
	const threads = 8
	const iters = 400
	fc := NewFlatCombiner[int, int](threads)
	var counter int
	var wg sync.WaitGroup
	results := make([]int, threads)
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sum := 0
			for i := 0; i < iters; i++ {
				sum += fc.Do(uint64(id), 1, func(d int) int {
					counter += d
					return counter
				})
			}
			results[id] = sum
		}(g)
	}
	wg.Wait()
	if counter != threads*iters {
		t.Fatalf("counter = %d, want %d (lost operations)", counter, threads*iters)
	}
	// Every response was a distinct intermediate counter value, so the
	// sum of all responses is the sum 1..threads*iters.
	total := 0
	for _, r := range results {
		total += r
	}
	n := threads * iters
	if total != n*(n+1)/2 {
		t.Fatalf("response sum = %d, want %d (responses not linearizable)", total, n*(n+1)/2)
	}
}

func TestFlatCombinerRequestValuesRouted(t *testing.T) {
	// Each thread submits distinct request payloads; the response must
	// correspond to its own request even when combined by another owner.
	const threads = 6
	fc := NewFlatCombiner[int, int](threads)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				want := id*1000 + i
				got := fc.Do(uint64(id), want, func(r int) int { return r * 2 })
				if got != want*2 {
					t.Errorf("thread %d: Do(%d) = %d, want %d", id, want, got, want*2)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFlatCombinerSingleThread(t *testing.T) {
	fc := NewFlatCombiner[string, int](2)
	if fc.Size() != 2 {
		t.Fatal("size wrong")
	}
	n := 0
	for i := 0; i < 10; i++ {
		n = fc.Do(0, "x", func(string) int { n++; return n })
	}
	if n != 10 {
		t.Fatalf("n = %d", n)
	}
}

func BenchmarkFlatCombinerVsMutex(b *testing.B) {
	const threads = 4
	b.Run("flatcombiner", func(b *testing.B) {
		fc := NewFlatCombiner[int, int](threads)
		var counter int
		var wg sync.WaitGroup
		per := b.N / threads
		b.ResetTimer()
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					fc.Do(id, 1, func(d int) int { counter += d; return counter })
				}
			}(uint64(g))
		}
		wg.Wait()
	})
	b.Run("mutex", func(b *testing.B) {
		var mu sync.Mutex
		var counter int
		var wg sync.WaitGroup
		per := b.N / threads
		b.ResetTimer()
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					mu.Lock()
					counter++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	})
}
