package locks

import "sync/atomic"

// paddedUint64 is an atomic 64-bit word padded to a full cache line so
// that adjacent waiting slots never share a line (the whole point of the
// partitioned waiting queue, paper §3.2).
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// PTLock is a Partitioned Ticket Lock (Dice, SPAA'11; paper Listing 3).
//
// The wait queue is a circular array of padded slots representing an
// infinite virtual waiting queue: a thread with ticket t busy-waits on
// slot t%size until the slot value reaches t. With at least as many slots
// as CPUs every waiter spins on a private cache line, so a release
// invalidates exactly one waiter's line instead of all of them.
//
// Invariants (following the paper's initialization head=size,
// tail=size+1, waitq[0]=size):
//
//   - tickets are handed out by fetch-and-add on head;
//   - ticket t may enter once waitq[t%size] >= t;
//   - tail-1 is the most recently granted ticket, so the lock is free
//     exactly when head == tail-1.
type PTLock struct {
	size uint64
	head atomic.Uint64
	_    [56]byte
	// tail is written only by the lock owner but read by TryLock and by
	// the DTLock service operations, hence atomic.
	tail atomic.Uint64
	_    [56]byte
	wait []paddedUint64
}

// DefaultPTLockSize is the waiting-array size used when callers do not
// know their thread count; it matches the paper's constant of 64.
const DefaultPTLockSize = 64

// NewPTLock returns a PTLock whose waiting array has at least size slots.
// size must be at least the maximum number of threads that contend on the
// lock for the single-slot-per-waiter property to hold; correctness is
// preserved for any positive size.
func NewPTLock(size int) *PTLock {
	if size < 1 {
		size = 1
	}
	l := &PTLock{size: uint64(size), wait: make([]paddedUint64, size)}
	l.head.Store(l.size)
	l.tail.Store(l.size + 1)
	l.wait[0].v.Store(l.size) // pre-grant the first ticket (== size)
	return l
}

// Size returns the capacity of the waiting array.
func (l *PTLock) Size() int { return int(l.size) }

// getTicket draws the next ticket.
func (l *PTLock) getTicket() uint64 { return l.head.Add(1) - 1 }

// waitTurn busy-waits on this ticket's private slot until granted.
func (l *PTLock) waitTurn(ticket uint64) {
	slot := &l.wait[ticket%l.size].v
	for i := 0; slot.Load() < ticket; i++ {
		Spin(i)
	}
}

// Lock acquires the lock in FIFO order.
func (l *PTLock) Lock() {
	l.waitTurn(l.getTicket())
}

// Unlock grants the next ticket in the virtual waiting queue.
//
// The order of the two stores is load-bearing: tail must advance BEFORE
// the grant is published. The thread admitted by the grant may run its
// own Unlock (or the DTLock service operations, which read tail)
// immediately; if the grant were visible first, that thread could read
// the pre-advance tail, re-grant consumed tickets and stall the virtual
// queue. (The paper's Listing 3 writes `_waitq[idx] = _tail++`, leaving
// this ordering to the elided memory-order annotations.)
func (l *PTLock) Unlock() {
	t := l.tail.Load()
	l.tail.Store(t + 1)
	l.wait[t%l.size].v.Store(t)
}

// TryLock acquires the lock only if it is currently free. The lock is
// free exactly when the next ticket to be drawn (head) is the most
// recently granted one (tail-1); claiming that ticket by CAS therefore
// acquires without waiting.
func (l *PTLock) TryLock() bool {
	g := l.tail.Load() - 1
	return l.head.CompareAndSwap(g, g+1)
}

var (
	_ Locker    = (*PTLock)(nil)
	_ TryLocker = (*PTLock)(nil)
)
