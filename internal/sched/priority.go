package sched

// Priority scheduling is exactly the kind of policy the paper's
// centralized design exists to make cheap to add ("adding new
// scheduling policies should be easy", §3.2): because every
// synchronized scheduler wraps one unsynchronized Policy, a QoS
// dimension is a policy wrapper, not a rework of the scheduler's
// synchronization. The Priority policy below slots under Sync, Central
// and Blocking unchanged; only the work-stealing baseline — whose
// per-worker deques bypass the Policy abstraction — needs its own
// (weaker) treatment, see worksteal.go.

// PriorityLevels is the number of scheduling priority levels. Level 0
// is the default (batch) class; level PriorityLevels-1 is the most
// urgent. The level count is deliberately small and fixed: levels are
// scanned on every pop, and a QoS split needs classes, not a total
// order.
const PriorityLevels = 4

// courtesyInterval bounds priority starvation: after this many
// consecutive pops were served over a waiting lower level, the next pop
// is granted to a waiting lower level instead of the highest. The
// courtesy rotates across the waiting levels (see scanState.courtesy),
// so *every* level's wait is bounded — a task at the front of its
// level is served within at most (PriorityLevels-1)·(courtesyInterval+1)
// pops no matter which mix of other levels stays saturated. Sustained
// high-priority load slows lower classes down; it cannot park any of
// them forever.
const courtesyInterval = 16

// scanState is the bounded-levels pop discipline, shared by the
// Priority policy and the work-stealing deques (one per deque): the
// elevated fast-path count, the starvation counter and the rotating
// courtesy cursor. It is unsynchronized — the owner (scheduler lock or
// deque mutex) serializes access.
type scanState struct {
	// elevated counts tasks queued above level 0; while it is zero
	// every operation short-circuits to level 0, so runs that never set
	// a priority pay one predictable branch.
	elevated int
	// starved counts consecutive pops that were served from a level
	// above some non-empty lower level; reaching courtesyInterval
	// grants a waiting lower level the next slot.
	starved int
	// courtesy is the rotation cursor of the courtesy slot: the scan
	// for a waiting lower level starts here and the cursor advances
	// past the served level, so repeated courtesies cycle through every
	// waiting level instead of always favouring the lowest (which
	// would starve the middle levels — served neither by the
	// highest-first scan nor by a lowest-first courtesy).
	courtesy int
}

// levelAccessor abstracts one ordered set of PriorityLevels lanes: the
// Priority policy's per-level inner policies, or one work-stealing
// deque's lanes from either end.
type levelAccessor[T any] interface {
	// length reports how many tasks level l holds.
	length(l int) int
	// take removes one task from level l.
	take(l int) (T, bool)
}

// popLevels runs one pop of the bounded-levels discipline over a's
// lanes: highest non-empty level first, except that every
// courtesyInterval-th pop that would starve a waiting lower level
// serves the rotation's next waiting level below the highest instead.
func popLevels[T any, A levelAccessor[T]](s *scanState, a A) (T, bool) {
	var zero T
	if s.elevated == 0 {
		// No elevated tasks anywhere: the priority dimension is inert
		// and level 0 behaves exactly like the bare inner lane.
		return a.take(0)
	}
	if s.starved >= courtesyInterval {
		hi := PriorityLevels - 1
		for hi >= 0 && a.length(hi) == 0 {
			hi--
		}
		for off := 0; hi > 0 && off < PriorityLevels; off++ {
			l := (s.courtesy + off) % PriorityLevels
			if l >= hi {
				// The courtesy slot is for levels the normal scan would
				// starve; the top level needs no courtesy.
				continue
			}
			t, ok := a.take(l)
			if !ok {
				continue
			}
			s.courtesy = (l + 1) % PriorityLevels
			s.starved = 0
			if l > 0 {
				s.elevated--
			}
			return t, true
		}
		// No waiting lower level after all: fall through to the normal
		// scan (starved stays armed for the next pop).
	}
	for l := PriorityLevels - 1; l >= 0; l-- {
		t, ok := a.take(l)
		if !ok {
			continue
		}
		if l > 0 {
			s.elevated--
			if lowerWaiting(a, l) {
				s.starved++
			} else {
				s.starved = 0
			}
		} else {
			s.starved = 0
		}
		return t, true
	}
	return zero, false
}

// lowerWaiting reports whether any level below l holds a task — the
// condition under which serving level l counts toward starvation.
func lowerWaiting[T any, A levelAccessor[T]](a A, l int) bool {
	for i := 0; i < l; i++ {
		if a.length(i) > 0 {
			return true
		}
	}
	return false
}

// ClampPriority maps an arbitrary requested priority onto the bounded
// level range.
func ClampPriority(pri int) int {
	if pri < 0 {
		return 0
	}
	if pri >= PriorityLevels {
		return PriorityLevels - 1
	}
	return pri
}

// PriorityAware is an optional Policy extension mirroring
// LocalityAware: a policy that understands per-task priorities accepts
// them through PushPri. Callers that hold richer information (the
// Priority wrapper's own Push uses its extractor; the runtime could
// push with an explicit level) route through it.
type PriorityAware[T any] interface {
	Policy[T]
	// PushPri inserts a task at the given priority level (clamped to
	// [0, PriorityLevels)).
	PushPri(t T, pri int)
}

// Priority is the bounded-levels priority policy: one inner policy per
// level, popped through the shared scanState discipline (highest level
// first, rotating anti-starvation courtesy slot). It composes with the
// existing policies rather than replacing them — each level is its own
// FIFO/LIFO/Locality instance, so within a level the configured
// policy's order (and NUMA affinity) is preserved.
//
// Like every Policy it is unsynchronized: the wrapping scheduler
// serializes all calls, so the scan counters are plain ints.
type Priority[T any] struct {
	levels [PriorityLevels]Policy[T]
	local  [PriorityLevels]LocalityAware[T] // levels[i], if NUMA-aware

	priOf func(T) int
	scan  scanState
}

// prioLanes adapts the per-level inner policies to the shared pop
// discipline. It is a value type so popLevels sees it without
// allocation.
type prioLanes[T any] struct {
	p      *Priority[T]
	worker int
}

func (a prioLanes[T]) length(l int) int     { return a.p.levels[l].Len() }
func (a prioLanes[T]) take(l int) (T, bool) { return a.p.levels[l].Pop(a.worker) }

// NewPriority builds a priority policy whose levels are created by mk
// and whose per-task level is read by priOf (clamped). mk is invoked
// once per level.
func NewPriority[T any](mk func() Policy[T], priOf func(T) int) *Priority[T] {
	return NewPriorityLevels(func(int) Policy[T] { return mk() }, priOf)
}

// NewPriorityLevels is NewPriority with a per-level constructor: mk
// receives the level index, so different levels can run different
// orderings (the deadline-aware mode mounts an EDF heap as the top
// level while the batch levels keep the configured inner policy).
func NewPriorityLevels[T any](mk func(level int) Policy[T], priOf func(T) int) *Priority[T] {
	p := &Priority[T]{priOf: priOf}
	for i := range p.levels {
		p.levels[i] = mk(i)
		p.local[i], _ = p.levels[i].(LocalityAware[T])
	}
	return p
}

// Push implements Policy: the task's level comes from the extractor.
func (p *Priority[T]) Push(t T) { p.PushPri(t, p.priOf(t)) }

// PushPri implements PriorityAware.
func (p *Priority[T]) PushPri(t T, pri int) {
	pri = ClampPriority(pri)
	if pri > 0 {
		p.scan.elevated++
	}
	p.levels[pri].Push(t)
}

// PushLocal implements LocalityAware by forwarding the NUMA node to the
// task's level; levels whose inner policy has no locality support fall
// back to a plain Push.
func (p *Priority[T]) PushLocal(t T, node int) {
	pri := ClampPriority(p.priOf(t))
	if pri > 0 {
		p.scan.elevated++
	}
	if l := p.local[pri]; l != nil {
		l.PushLocal(t, node)
		return
	}
	p.levels[pri].Push(t)
}

// Pop implements Policy via the shared bounded-levels discipline.
func (p *Priority[T]) Pop(worker int) (T, bool) {
	return popLevels[T](&p.scan, prioLanes[T]{p: p, worker: worker})
}

// Len implements Policy.
func (p *Priority[T]) Len() int {
	n := 0
	for i := range p.levels {
		n += p.levels[i].Len()
	}
	return n
}

var (
	_ PriorityAware[*int] = (*Priority[*int])(nil)
	_ LocalityAware[*int] = (*Priority[*int])(nil)
)
