package sched

import "sync/atomic"

// WorkShare is the chunk-aware hand-off lane for work-sharing loop
// tasks: a small fixed array of single-task slots that sits beside the
// regular scheduler. When a worker executing a taskloop publishes a
// steal descriptor (an entry point into the loop's remaining iteration
// span), it lands here instead of behind the policy queue, and idle
// workers poll these slots before asking the scheduler proper — so a
// loop recruits helpers in one CAS instead of a full
// insert→delegate→serve round-trip, and single-task scheduling traffic
// never queues behind loop recruitment.
//
// The structure is deliberately lossy: Offer fails when every slot is
// occupied and the caller falls back to the regular scheduler, so a
// slot is a fast path, never a correctness requirement. Slots are
// cache-line padded; both operations are wait-free in the number of
// slots.
type WorkShare[T any] struct {
	slots []shareSlot[T]
}

type shareSlot[T any] struct {
	p atomic.Pointer[T]
	_ [56]byte
}

// NewWorkShare returns a hand-off lane with n slots (minimum 1).
func NewWorkShare[T any](n int) *WorkShare[T] {
	if n < 1 {
		n = 1
	}
	return &WorkShare[T]{slots: make([]shareSlot[T], n)}
}

// Offer publishes t into a free slot. It returns false when every slot
// is occupied; the caller then routes t through the regular scheduler.
func (ws *WorkShare[T]) Offer(t *T) bool {
	for i := range ws.slots {
		s := &ws.slots[i]
		if s.p.Load() == nil && s.p.CompareAndSwap(nil, t) {
			return true
		}
	}
	return false
}

// Take removes and returns a published task, or nil when all slots are
// empty. start spreads concurrent takers across the slots (workers pass
// their own index); any int is accepted — the offset is reduced through
// uint arithmetic, which cannot go negative (negating math.MinInt
// would).
func (ws *WorkShare[T]) Take(start int) *T {
	n := len(ws.slots)
	off := int(uint(start) % uint(n))
	for i := 0; i < n; i++ {
		s := &ws.slots[(off+i)%n]
		if p := s.p.Load(); p != nil && s.p.CompareAndSwap(p, nil) {
			return p
		}
	}
	return nil
}

// Any reports whether at least one slot currently holds a task. It is
// the elastic pool's pre-park recheck for the hand-off lane: a plain
// load sweep, so a worker that published itself as parked before
// calling Any cannot miss an Offer that completed before its producer
// looked for parked workers.
func (ws *WorkShare[T]) Any() bool {
	for i := range ws.slots {
		if ws.slots[i].p.Load() != nil {
			return true
		}
	}
	return false
}
