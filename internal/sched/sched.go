// Package sched implements the task scheduling system of paper §3 and
// the baseline designs it is evaluated against:
//
//   - Sync: the paper's synchronized scheduler (Listing 5) combining
//     per-NUMA SPSC buffer queues with the Delegation Ticket Lock, so the
//     task-creating core never contends with idle workers ("w/ DTLock").
//   - Central: a centralized scheduler behind a plain Partitioned Ticket
//     Lock (the "w/o DTLock" ablation variant).
//   - Blocking: a mutex+condvar central queue in the style of GOMP.
//   - WorkStealing: per-worker deques with random stealing in the style
//     of the LLVM OpenMP runtime.
//
// Schedulers are generic over the task type so the package has no
// dependency on the runtime core.
package sched

// Scheduler dispatches ready tasks to workers. T is a pointer-like
// comparable type whose zero value means "no task".
//
// Add may be called by any worker (and by one external submitter using
// index workers). Get is called by worker goroutines with their own
// index. Get returns the zero value when no task is available; it must
// not block indefinitely once Stop has been called.
type Scheduler[T comparable] interface {
	Add(t T, worker int)
	Get(worker int) T
	// TryGet is a non-blocking Get: it returns immediately with the zero
	// value when no task is available. Identical to Get for the
	// non-blocking schedulers; used by taskwait, which must keep polling
	// its own completion condition while helping execute tasks.
	TryGet(worker int) T
	Stop()
	Name() string
}

// Policy is an *unsynchronized* ready-task container wrapped by the
// synchronized schedulers; it implements the scheduling policy proper
// (paper: "the SyncScheduler is a wrapper of the unsynchronized
// scheduler, which implements the actual scheduling policy").
type Policy[T any] interface {
	Push(t T)
	Pop(worker int) (T, bool)
	Len() int
}

// FIFO is a growable ring-buffer queue: tasks run in creation order,
// the default Nanos6 policy.
type FIFO[T any] struct {
	buf        []T
	head, tail int // tail == next write; count tracks occupancy
	count      int
}

// NewFIFO returns a FIFO policy with a small initial capacity.
func NewFIFO[T any]() *FIFO[T] { return &FIFO[T]{buf: make([]T, 64)} }

// Push implements Policy.
func (q *FIFO[T]) Push(t T) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = t
	q.tail = (q.tail + 1) % len(q.buf)
	q.count++
}

// Pop implements Policy.
func (q *FIFO[T]) Pop(int) (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	t := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return t, true
}

// Len implements Policy.
func (q *FIFO[T]) Len() int { return q.count }

func (q *FIFO[T]) grow() {
	nb := make([]T, len(q.buf)*2)
	n := copy(nb, q.buf[q.head:])
	copy(nb[n:], q.buf[:q.head])
	q.buf = nb
	q.head = 0
	q.tail = q.count
}

// LIFO is a stack policy: most recently readied task first, which favours
// cache locality for deep dependency chains.
type LIFO[T any] struct {
	buf []T
}

// NewLIFO returns an empty LIFO policy.
func NewLIFO[T any]() *LIFO[T] { return &LIFO[T]{} }

// Push implements Policy.
func (q *LIFO[T]) Push(t T) { q.buf = append(q.buf, t) }

// Pop implements Policy.
func (q *LIFO[T]) Pop(int) (T, bool) {
	var zero T
	if len(q.buf) == 0 {
		return zero, false
	}
	t := q.buf[len(q.buf)-1]
	q.buf[len(q.buf)-1] = zero
	q.buf = q.buf[:len(q.buf)-1]
	return t, true
}

// Len implements Policy.
func (q *LIFO[T]) Len() int { return len(q.buf) }
