package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func allSchedulers(workers int) map[string]Scheduler[*int] {
	return map[string]Scheduler[*int]{
		"sync":     NewSync[*int](NewFIFO[*int](), workers, 1, 2, 64, Hooks{}),
		"central":  NewCentral[*int](NewFIFO[*int](), workers),
		"blocking": NewBlocking[*int](NewFIFO[*int]()),
		"worksteal": NewWorkStealing[*int](
			workers, nil, nil),
	}
}

func TestAddGetSingleThread(t *testing.T) {
	for name, s := range allSchedulers(2) {
		vals := []int{1, 2, 3}
		for i := range vals {
			s.Add(&vals[i], 0)
		}
		got := map[int]bool{}
		for i := 0; i < 3; i++ {
			p := s.Get(0)
			if p == nil {
				t.Fatalf("%s: Get returned nil with tasks queued", name)
			}
			got[*p] = true
		}
		// TryGet: Get on the blocking scheduler would (correctly) block
		// until Stop when the queue is empty.
		if s.TryGet(0) != nil {
			t.Fatalf("%s: TryGet returned task from empty scheduler", name)
		}
		if !got[1] || !got[2] || !got[3] {
			t.Fatalf("%s: missing tasks: %v", name, got)
		}
		s.Stop()
	}
}

func TestFIFOOrderCentral(t *testing.T) {
	// The central and sync schedulers preserve FIFO policy order when a
	// single worker drives them.
	for _, name := range []string{"sync", "central"} {
		s := allSchedulers(1)[name]
		vals := make([]int, 10)
		for i := range vals {
			vals[i] = i
			s.Add(&vals[i], 0)
		}
		for i := 0; i < 10; i++ {
			p := s.Get(0)
			if p == nil || *p != i {
				t.Fatalf("%s: position %d got %v", name, i, p)
			}
		}
		s.Stop()
	}
}

func TestAllTasksDeliveredConcurrently(t *testing.T) {
	// One producer, several consumers: every task is delivered exactly
	// once, for every scheduler design.
	const total = 3000
	const consumers = 4
	for name, s := range allSchedulers(consumers) {
		var delivered atomic.Int64
		var sum atomic.Int64
		vals := make([]int, total)
		var wg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for delivered.Load() < total {
					p := s.Get(id)
					if p == nil {
						runtime.Gosched()
						continue
					}
					delivered.Add(1)
					sum.Add(int64(*p))
				}
			}(c)
		}
		for i := 0; i < total; i++ {
			vals[i] = i
			s.Add(&vals[i], consumers) // external submitter slot
		}
		// Wake any consumer sleeping in a blocking Get once the last task
		// has been handed out, so the goroutines can observe completion.
		for delivered.Load() < total {
			runtime.Gosched()
		}
		s.Stop()
		wg.Wait()
		want := int64(total * (total - 1) / 2)
		if sum.Load() != want {
			t.Fatalf("%s: task sum %d, want %d (lost or duplicated)", name, sum.Load(), want)
		}
	}
}

func TestBlockingWakesOnAdd(t *testing.T) {
	s := NewBlocking[*int](NewFIFO[*int]())
	got := make(chan int, 1)
	go func() {
		p := s.Get(0)
		if p != nil {
			got <- *p
		} else {
			got <- -1
		}
	}()
	v := 42
	s.Add(&v, 1)
	if r := <-got; r != 42 {
		t.Fatalf("blocked Get returned %d", r)
	}
	s.Stop()
}

func TestBlockingStopUnblocks(t *testing.T) {
	s := NewBlocking[*int](NewFIFO[*int]())
	done := make(chan struct{})
	go func() {
		if p := s.Get(0); p != nil {
			t.Errorf("Get returned a task from an empty stopped scheduler")
		}
		close(done)
	}()
	s.Stop()
	<-done
}

func TestWorkStealingStealsFromCreator(t *testing.T) {
	s := NewWorkStealing[*int](2, nil, nil)
	vals := []int{1, 2, 3, 4}
	for i := range vals {
		s.Add(&vals[i], 0) // all on worker 0's deque
	}
	// Worker 1 must be able to steal all of them.
	for i := 0; i < 4; i++ {
		if s.Get(1) == nil {
			t.Fatalf("steal %d failed", i)
		}
	}
	if s.Get(1) != nil {
		t.Fatal("stole more tasks than added")
	}
}

func TestWorkStealingOwnerLIFOThiefFIFO(t *testing.T) {
	s := NewWorkStealing[*int](2, nil, nil)
	vals := []int{10, 20, 30}
	for i := range vals {
		s.Add(&vals[i], 0)
	}
	if p := s.Get(0); *p != 30 {
		t.Fatalf("owner pop got %d, want 30 (LIFO)", *p)
	}
	if p := s.Get(1); *p != 10 {
		t.Fatalf("thief steal got %d, want 10 (FIFO)", *p)
	}
}

func TestSyncServeHookFires(t *testing.T) {
	// When one worker owns the DTLock and another delegates, the owner
	// must serve it and report through the hook.
	var serves atomic.Int64
	s := NewSync[*int](NewFIFO[*int](), 2, 1, 1, 16, Hooks{
		OnServe: func(owner, served int) { serves.Add(1) },
	})
	const total = 500
	vals := make([]int, total)
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for delivered.Load() < total {
				if p := s.Get(id); p != nil {
					delivered.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	for i := 0; i < total; i++ {
		s.Add(&vals[i], 2)
	}
	wg.Wait()
	// Serving is opportunistic; with two competing workers over 500
	// tasks at least one delegation is all but certain, but do not make
	// the test flaky: only check non-negative bookkeeping.
	if serves.Load() < 0 {
		t.Fatal("negative serve count")
	}
}

func TestSyncSPSCOverflowFallback(t *testing.T) {
	// The SPSC buffer is tiny; Add must still never lose tasks (the
	// producer drains through TryLock when the buffer is full).
	s := NewSync[*int](NewFIFO[*int](), 1, 1, 1, 2, Hooks{})
	const total = 300
	vals := make([]int, total)
	done := make(chan struct{})
	var got atomic.Int64
	go func() {
		defer close(done)
		for got.Load() < total {
			if p := s.Get(0); p != nil {
				got.Add(1)
			} else {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < total; i++ {
		s.Add(&vals[i], 1)
	}
	<-done
}

func TestQuickFIFOPolicy(t *testing.T) {
	// Property: the FIFO policy dequeues exactly what was enqueued, in
	// order, across arbitrary push/pop interleavings (exercises grow()).
	f := func(ops []uint8) bool {
		q := NewFIFO[*int]()
		var pushed, popped int
		backing := make([]int, 2048)
		for _, op := range ops {
			k := int(op % 16)
			for i := 0; i < k && pushed < len(backing); i++ {
				backing[pushed] = pushed
				q.Push(&backing[pushed])
				pushed++
			}
			for i := 0; i < k/2; i++ {
				if p, ok := q.Pop(0); ok {
					if *p != popped {
						return false
					}
					popped++
				}
			}
		}
		for {
			p, ok := q.Pop(0)
			if !ok {
				break
			}
			if *p != popped {
				return false
			}
			popped++
		}
		return pushed == popped && q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLIFOPolicy(t *testing.T) {
	q := NewLIFO[*int]()
	vals := []int{1, 2, 3}
	for i := range vals {
		q.Push(&vals[i])
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for want := 3; want >= 1; want-- {
		p, ok := q.Pop(0)
		if !ok || *p != want {
			t.Fatalf("Pop = %v,%v want %d", p, ok, want)
		}
	}
	if _, ok := q.Pop(0); ok {
		t.Fatal("Pop from empty LIFO succeeded")
	}
}
