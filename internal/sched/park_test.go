package sched

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitParked blocks until at least n workers are visibly parked.
func waitParked(t *testing.T, p *Parker, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.Parked() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers parked", p.Parked(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestParkerWakeOne: a parked worker is released by exactly one wake.
func TestParkerWakeOne(t *testing.T) {
	p := NewParker(2, 1, nil)
	done := make(chan struct{})
	go func() {
		p.Park(0, func() bool { return false })
		close(done)
	}()
	// Wait until the worker is visibly parked, then wake it.
	waitParked(t, p, 1)
	p.WakeOne(0, 1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked worker never woke")
	}
	if got := p.Parked(); got != 0 {
		t.Fatalf("Parked() = %d after wake, want 0", got)
	}
	if p.Parks() != 1 || p.Wakes() != 1 {
		t.Fatalf("parks/wakes = %d/%d, want 1/1", p.Parks(), p.Wakes())
	}
}

// TestParkerRecheckCancels: a recheck that reports work cancels the
// park without blocking and without counting a park.
func TestParkerRecheckCancels(t *testing.T) {
	p := NewParker(1, 1, nil)
	done := make(chan struct{})
	go func() {
		p.Park(0, func() bool { return true })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Park with positive recheck blocked")
	}
	if p.Parked() != 0 || p.Parks() != 0 {
		t.Fatalf("cancelled park left state: parked=%d parks=%d", p.Parked(), p.Parks())
	}
}

// TestParkerWakeAll releases every parked worker at once.
func TestParkerWakeAll(t *testing.T) {
	const n = 8
	p := NewParker(n, 1, nil)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p.Park(id, func() bool { return false })
		}(id)
	}
	waitParked(t, p, n)
	p.WakeAll()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WakeAll left workers parked")
	}
}

// TestParkerDomainWake: a home-domain wake prefers the domain's own
// parked worker; with the home domain empty the wake falls through to a
// remote domain's parked worker.
func TestParkerDomainWake(t *testing.T) {
	// Workers 0,1 -> domain 0; workers 2,3 -> domain 1 (contiguous, as
	// the runtime's slot→domain formula produces).
	domOf := func(id int) int { return id / 2 }
	p := NewParker(4, 2, domOf)
	woke := make(chan int, 4)
	park := func(id int) {
		go func() {
			p.Park(id, func() bool { return false })
			woke <- id
		}()
	}
	park(1)
	park(2)
	waitParked(t, p, 2)
	if p.ParkedIn(0) != 1 || p.ParkedIn(1) != 1 {
		t.Fatalf("ParkedIn = %d/%d, want 1/1", p.ParkedIn(0), p.ParkedIn(1))
	}
	// Domain 1's wake must claim its own worker 2, not domain 0's.
	p.WakeOne(1, 1)
	if id := <-woke; id != 2 {
		t.Fatalf("home wake released worker %d, want 2", id)
	}
	// Domain 1 now has nobody parked: its next wake must fall through to
	// domain 0's worker 1.
	p.WakeOne(1, 1)
	if id := <-woke; id != 1 {
		t.Fatalf("cross-domain wake released worker %d, want 1", id)
	}
	if p.Parked() != 0 {
		t.Fatalf("Parked() = %d, want 0", p.Parked())
	}
	if p.WakesIn(1) != 1 || p.WakesIn(0) != 1 {
		t.Fatalf("WakesIn = %d/%d, want 1/1", p.WakesIn(0), p.WakesIn(1))
	}
}

// TestParkerWakeThrottle: once the woken hint covers the pending count,
// further WakeOne calls are no-ops; a larger pending count or a
// throttle-disabled call (pending < 0) still wakes. The test marks
// slots parked directly (white-box) so no goroutine consumes tokens
// between assertions — every step is deterministic.
func TestParkerWakeThrottle(t *testing.T) {
	p := NewParker(3, 1, nil)
	for i := range p.slots {
		p.slots[i].state.Store(WorkerParked)
		p.nparked.Add(1)
		p.doms[0].nparked.Add(1)
	}
	p.WakeOne(0, 1) // claims one worker: woken 0 -> 1
	if p.Woken(0) != 1 || p.Wakes() != 1 {
		t.Fatalf("after first wake: woken=%d wakes=%d, want 1/1", p.Woken(0), p.Wakes())
	}
	p.WakeOne(0, 1) // woken(1) covers pending(1): throttled no-op
	if p.Woken(0) != 1 || p.Wakes() != 1 || p.Parked() != 2 {
		t.Fatalf("throttled wake acted: woken=%d wakes=%d parked=%d",
			p.Woken(0), p.Wakes(), p.Parked())
	}
	p.WakeOne(0, -1) // throttle disabled: must claim another
	if p.Wakes() != 2 {
		t.Fatalf("pending<0 wake throttled: wakes=%d, want 2", p.Wakes())
	}
	p.WakeOne(0, 3) // pending(3) > woken(2): claims the last worker
	if p.Wakes() != 3 || p.Parked() != 0 {
		t.Fatalf("uncovered wake throttled: wakes=%d parked=%d", p.Wakes(), p.Parked())
	}
	p.WakeOne(0, 100) // nobody parked: fast-path no-op, must not panic
}

// TestParkerLostWakeupHammer drives the full check-then-park protocol
// under contention: workers consume from a shared counter, parking when
// it is empty; producers increment it and call WakeOne, exactly the
// runtime's enqueue edge. Every produced item must be consumed — a
// single lost wakeup strands items with every worker asleep and the
// test times out.
func TestParkerLostWakeupHammer(t *testing.T) {
	const workers = 4
	items := 20_000
	if testing.Short() {
		items = 4_000
	}
	if os.Getenv("REPRO_STRESS_ELASTIC") == "on" {
		items *= 5
	}
	p := NewParker(workers, 1, nil)
	var queue, consumed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				if v := queue.Load(); v > 0 && queue.CompareAndSwap(v, v-1) {
					consumed.Add(1)
					continue
				}
				if stop.Load() {
					return
				}
				p.Park(id, func() bool { return queue.Load() > 0 || stop.Load() })
			}
		}(id)
	}
	const producers = 2
	var pwg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		pwg.Add(1)
		go func(pr int) {
			defer pwg.Done()
			n := items / producers
			if pr == 0 {
				n += items % producers
			}
			for i := 0; i < n; i++ {
				pending := queue.Add(1)
				p.WakeOne(0, pending)
				if i%512 == 511 {
					// A breather lets workers drain and park, so the next
					// burst races the park edge rather than a warm loop.
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(pr)
	}
	pwg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for consumed.Load() < int64(items) {
		if time.Now().After(deadline) {
			t.Fatalf("lost wakeup: consumed %d of %d items (parked=%d, queue=%d)",
				consumed.Load(), items, p.Parked(), queue.Load())
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	p.WakeAll()
	wg.Wait()
	if queue.Load() != 0 {
		t.Fatalf("queue = %d after drain, want 0", queue.Load())
	}
}
