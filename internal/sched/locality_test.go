package sched

import "testing"

func TestLocalityPrefersHomeNode(t *testing.T) {
	// 4 workers over 2 nodes: workers 0,1 -> node 0; workers 2,3(,4) -> node 1.
	l := NewLocality[*int](4, 2)
	a, b := 1, 2
	l.PushLocal(&a, 0)
	l.PushLocal(&b, 1)
	if got, _ := l.Pop(3); got != &b {
		t.Fatalf("worker 3 popped %v, want its node-1 task", got)
	}
	if got, _ := l.Pop(0); got != &a {
		t.Fatalf("worker 0 popped %v, want its node-0 task", got)
	}
}

func TestLocalityStealsAcrossNodes(t *testing.T) {
	l := NewLocality[*int](4, 2)
	a := 1
	l.PushLocal(&a, 0)
	// Worker on node 1 must still find the node-0 task (work conservation).
	if got, _ := l.Pop(3); got != &a {
		t.Fatal("cross-node steal failed")
	}
	if _, ok := l.Pop(0); ok {
		t.Fatal("popped a task twice")
	}
}

func TestLocalityOverflowForUnhintedTasks(t *testing.T) {
	l := NewLocality[*int](2, 2)
	a, b := 1, 2
	l.Push(&a)          // no hint
	l.PushLocal(&b, 99) // invalid hint -> overflow
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if p, _ := l.Pop(0); p == nil {
		t.Fatal("overflow task not delivered")
	}
	if p, _ := l.Pop(1); p == nil {
		t.Fatal("second overflow task not delivered")
	}
}

func TestSyncSchedulerUsesLocalityPolicy(t *testing.T) {
	// End to end: tasks added via node-1 workers drain into node 1's
	// locality queue and are preferred by node-1 consumers.
	pol := NewLocality[*int](4, 2)
	s := NewSync[*int](Policy[*int](pol), 4, 1, 2, 64, Hooks{})
	vals := make([]int, 4)
	s.Add(&vals[0], 0) // node 0 producer
	s.Add(&vals[1], 3) // node 1 producer
	// Worker 3 (node 1) asks: the drain routes by insertion queue, so it
	// should receive the node-1 task first.
	got := s.Get(3)
	if got != &vals[1] {
		t.Fatalf("node-1 worker got %v, want node-1 task", got)
	}
	if s.Get(0) != &vals[0] {
		t.Fatal("remaining task lost")
	}
	s.Stop()
}
