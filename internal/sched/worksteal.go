package sched

import (
	"math/rand"
	"sync"
)

// WorkStealing is an LLVM-OpenMP-style scheduler: one double-ended task
// queue per worker, each protected by its own mutex (as in LLVM's
// runtime, which uses locked bounded deques rather than lock-free ones).
// Owners push and pop at the tail; thieves steal from the head of a
// random victim.
//
// The paper's observation (§3, §7) is that this design degrades to the
// global-lock behaviour under the single-creator pattern: every consumer
// ends up stealing from the creator's one deque, and that deque's lock
// becomes the scheduler bottleneck.
//
// Priority support is deliberately *weaker* here than in the
// policy-wrapping schedulers, and that asymmetry is the point of
// keeping this baseline around: each deque orders its own tasks by
// level (owner pops and thieves steal the highest level first, with
// the same courtesy-slot starvation bound as the Priority policy), but
// victims are still chosen at random, without comparing priorities
// across deques — a thief happily takes a level-0 task from one victim
// while a level-3 task waits in another. Retrofitting global priority
// order onto a hierarchy of deques is exactly the "rework" the paper's
// centralized design argues against; see DESIGN.md ("Priority
// scheduling and QoS").
//
// Deadline awareness carries the same per-deque caveat: with a
// deadline extractor each deque's top lane is its own EDF heap (owner
// and thieves both pop its earliest deadline — there is no "tail end"
// of a heap), but deadlines are never compared across deques, so a
// thief may take a later-deadline task from one victim while an
// earlier one waits in another. EDF order is per-deque, not global.
type WorkStealing[T comparable] struct {
	queues []wsDeque[T]
	priOf  func(T) int
}

// wsLane is one priority level of one deque.
type wsLane[T comparable] struct {
	dq   []T
	head int
}

type wsDeque[T comparable] struct {
	mu    sync.Mutex
	lanes [PriorityLevels]wsLane[T]
	// edf, when non-nil, replaces the top lane with a per-deque EDF
	// heap (deadline-aware mode); lanes[PriorityLevels-1] then stays
	// empty.
	edf *EDF[T]
	// scan is the shared bounded-levels pop discipline (see
	// sched.scanState): per-deque elevated fast path, starvation
	// counter and rotating courtesy cursor.
	scan scanState
	_    [32]byte
}

// dequeLanes adapts one deque's lanes — from the owner (tail) or thief
// (head) end — to the shared pop discipline. Caller holds the deque's
// mutex.
type dequeLanes[T comparable] struct {
	q        *wsDeque[T]
	fromTail bool
}

func (a dequeLanes[T]) length(l int) int {
	if l == PriorityLevels-1 && a.q.edf != nil {
		return a.q.edf.Len()
	}
	return len(a.q.lanes[l].dq) - a.q.lanes[l].head
}

func (a dequeLanes[T]) take(l int) (T, bool) {
	if l == PriorityLevels-1 && a.q.edf != nil {
		// Both ends pop the heap root: a heap has no meaningful tail,
		// so owner and thief alike take the earliest deadline.
		return a.q.edf.Pop(0)
	}
	if a.fromTail {
		return a.q.lanes[l].popTail()
	}
	return a.q.lanes[l].popHead()
}

// popTail removes from the owner end of one lane. Caller holds mu.
func (q *wsLane[T]) popTail() (T, bool) {
	var zero T
	if len(q.dq) <= q.head {
		return zero, false
	}
	n := len(q.dq) - 1
	t := q.dq[n]
	q.dq[n] = zero
	q.dq = q.dq[:n]
	if q.head == n {
		q.dq = q.dq[:0]
		q.head = 0
	}
	return t, true
}

// popHead removes from the thief end of one lane. Caller holds mu.
func (q *wsLane[T]) popHead() (T, bool) {
	var zero T
	if len(q.dq) <= q.head {
		return zero, false
	}
	t := q.dq[q.head]
	q.dq[q.head] = zero
	q.head++
	if q.head == len(q.dq) {
		q.dq = q.dq[:0]
		q.head = 0
	} else if q.head > 256 && q.head*2 > len(q.dq) {
		n := copy(q.dq, q.dq[q.head:])
		clear(q.dq[n:])
		q.dq = q.dq[:n]
		q.head = 0
	}
	return t, true
}

// pop removes one task from the deque under the shared bounded-levels
// discipline, from the tail (owner) or head (thief) end. Caller holds
// mu.
func (q *wsDeque[T]) pop(fromTail bool) (T, bool) {
	return popLevels[T](&q.scan, dequeLanes[T]{q: q, fromTail: fromTail})
}

// NewWorkStealing builds a work-stealing scheduler with workers+1
// deques: one per worker thread plus the external-submitter deques
// (the runtime passes workers + submitter slots - 1; every deque has
// its own mutex, so any slot may Add concurrently). priOf reads a
// task's priority level; nil treats every task as level 0. dlOf, when
// non-nil, reads a task's absolute deadline and turns each deque's top
// lane into a per-deque EDF heap (see the type comment for the weaker
// cross-deque guarantee).
func NewWorkStealing[T comparable](workers int, priOf func(T) int, dlOf func(T) int64) *WorkStealing[T] {
	s := &WorkStealing[T]{queues: make([]wsDeque[T], workers+1), priOf: priOf}
	if dlOf != nil {
		for i := range s.queues {
			s.queues[i].edf = NewEDF(dlOf)
		}
	}
	return s
}

// Name implements Scheduler.
func (s *WorkStealing[T]) Name() string { return "work-stealing" }

// Add pushes the task onto the producing worker's own deque, into the
// lane of the task's priority level (the per-deque EDF heap for the
// top level in deadline-aware mode).
func (s *WorkStealing[T]) Add(t T, worker int) {
	pri := 0
	if s.priOf != nil {
		pri = ClampPriority(s.priOf(t))
	}
	q := &s.queues[worker]
	q.mu.Lock()
	if pri == PriorityLevels-1 && q.edf != nil {
		q.edf.Push(t)
	} else {
		q.lanes[pri].dq = append(q.lanes[pri].dq, t)
	}
	if pri > 0 {
		q.scan.elevated++
	}
	q.mu.Unlock()
}

// Get pops from the worker's own deque tail, falling back to stealing
// from the head of the other deques in randomized order.
func (s *WorkStealing[T]) Get(worker int) T {
	var zero T
	q := &s.queues[worker]
	q.mu.Lock()
	if t, ok := q.pop(true); ok {
		q.mu.Unlock()
		return t
	}
	q.mu.Unlock()

	n := len(s.queues)
	start := rand.Intn(n)
	for i := 0; i < n; i++ {
		v := &s.queues[(start+i)%n]
		if v == q {
			continue
		}
		v.mu.Lock()
		if t, ok := v.pop(false); ok {
			v.mu.Unlock()
			return t
		}
		v.mu.Unlock()
	}
	return zero
}

// TryGet implements Scheduler.
func (s *WorkStealing[T]) TryGet(worker int) T { return s.Get(worker) }

// Stop implements Scheduler.
func (s *WorkStealing[T]) Stop() {}

var _ Scheduler[*int] = (*WorkStealing[*int])(nil)
