package sched

import (
	"math/rand"
	"sync"
)

// WorkStealing is an LLVM-OpenMP-style scheduler: one double-ended task
// queue per worker, each protected by its own mutex (as in LLVM's
// runtime, which uses locked bounded deques rather than lock-free ones).
// Owners push and pop at the tail; thieves steal from the head of a
// random victim.
//
// The paper's observation (§3, §7) is that this design degrades to the
// global-lock behaviour under the single-creator pattern: every consumer
// ends up stealing from the creator's one deque, and that deque's lock
// becomes the scheduler bottleneck.
type WorkStealing[T comparable] struct {
	queues []wsDeque[T]
}

type wsDeque[T comparable] struct {
	mu   sync.Mutex
	dq   []T
	head int
	_    [24]byte
}

// popTail removes from the owner end. Caller holds mu.
func (q *wsDeque[T]) popTail() (T, bool) {
	var zero T
	if len(q.dq) <= q.head {
		return zero, false
	}
	n := len(q.dq) - 1
	t := q.dq[n]
	q.dq[n] = zero
	q.dq = q.dq[:n]
	if q.head == n {
		q.dq = q.dq[:0]
		q.head = 0
	}
	return t, true
}

// popHead removes from the thief end. Caller holds mu.
func (q *wsDeque[T]) popHead() (T, bool) {
	var zero T
	if len(q.dq) <= q.head {
		return zero, false
	}
	t := q.dq[q.head]
	q.dq[q.head] = zero
	q.head++
	if q.head == len(q.dq) {
		q.dq = q.dq[:0]
		q.head = 0
	} else if q.head > 256 && q.head*2 > len(q.dq) {
		n := copy(q.dq, q.dq[q.head:])
		clear(q.dq[n:])
		q.dq = q.dq[:n]
		q.head = 0
	}
	return t, true
}

// NewWorkStealing builds a work-stealing scheduler with workers+1
// deques: one per worker thread plus the external-submitter deques
// (the runtime passes workers + submitter slots - 1; every deque has
// its own mutex, so any slot may Add concurrently).
func NewWorkStealing[T comparable](workers int) *WorkStealing[T] {
	return &WorkStealing[T]{queues: make([]wsDeque[T], workers+1)}
}

// Name implements Scheduler.
func (s *WorkStealing[T]) Name() string { return "work-stealing" }

// Add pushes the task onto the producing worker's own deque.
func (s *WorkStealing[T]) Add(t T, worker int) {
	q := &s.queues[worker]
	q.mu.Lock()
	q.dq = append(q.dq, t)
	q.mu.Unlock()
}

// Get pops from the worker's own deque tail, falling back to stealing
// from the head of the other deques in randomized order.
func (s *WorkStealing[T]) Get(worker int) T {
	var zero T
	q := &s.queues[worker]
	q.mu.Lock()
	if t, ok := q.popTail(); ok {
		q.mu.Unlock()
		return t
	}
	q.mu.Unlock()

	n := len(s.queues)
	start := rand.Intn(n)
	for i := 0; i < n; i++ {
		v := &s.queues[(start+i)%n]
		if v == q {
			continue
		}
		v.mu.Lock()
		if t, ok := v.popHead(); ok {
			v.mu.Unlock()
			return t
		}
		v.mu.Unlock()
	}
	return zero
}

// TryGet implements Scheduler.
func (s *WorkStealing[T]) TryGet(worker int) T { return s.Get(worker) }

// Stop implements Scheduler.
func (s *WorkStealing[T]) Stop() {}

var _ Scheduler[*int] = (*WorkStealing[*int])(nil)
