package sched

import "testing"

// priOfInt reads the priority level a test encoded in the value's tens
// digit: value = pri*100 + seq.
func priOfInt(p *int) int { return *p / 100 }

func TestPriorityPopsHighestFirst(t *testing.T) {
	p := NewPriority[*int](func() Policy[*int] { return NewFIFO[*int]() }, priOfInt)
	vals := []int{1, 301, 102, 203, 4, 305}
	for i := range vals {
		p.Push(&vals[i])
	}
	want := []int{301, 305, 203, 102, 1, 4}
	for i, w := range want {
		got, ok := p.Pop(0)
		if !ok || *got != w {
			t.Fatalf("pop %d = %v,%v want %d", i, got, ok, w)
		}
	}
	if _, ok := p.Pop(0); ok {
		t.Fatal("pop from empty priority policy succeeded")
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after drain", p.Len())
	}
}

func TestPriorityFIFOWithinLevel(t *testing.T) {
	p := NewPriority[*int](func() Policy[*int] { return NewFIFO[*int]() }, priOfInt)
	vals := []int{201, 202, 203}
	for i := range vals {
		p.Push(&vals[i])
	}
	for want := 201; want <= 203; want++ {
		got, ok := p.Pop(0)
		if !ok || *got != want {
			t.Fatalf("within-level order broken: got %v want %d", got, want)
		}
	}
}

func TestPriorityClamping(t *testing.T) {
	if ClampPriority(-3) != 0 {
		t.Fatal("negative priority not clamped to 0")
	}
	if ClampPriority(99) != PriorityLevels-1 {
		t.Fatal("oversized priority not clamped to the top level")
	}
	p := NewPriority[*int](func() Policy[*int] { return NewFIFO[*int]() }, priOfInt)
	v := 0
	p.PushPri(&v, 99) // must not panic, lands on the top level
	got, ok := p.Pop(0)
	if !ok || got != &v {
		t.Fatal("clamped push lost the task")
	}
}

// TestPriorityCourtesySlot pins the anti-starvation bound: with level 3
// never emptying, a level-0 task must still be served within
// courtesyInterval+1 pops.
func TestPriorityCourtesySlot(t *testing.T) {
	p := NewPriority[*int](func() Policy[*int] { return NewFIFO[*int]() }, priOfInt)
	batch := 1
	p.Push(&batch)
	hi := make([]int, 4*courtesyInterval)
	for i := range hi {
		hi[i] = 300 + i%10
	}
	next := 0
	push := func() { p.Push(&hi[next]); next++ }
	for i := 0; i < courtesyInterval; i++ {
		push()
	}
	for i := 0; ; i++ {
		if i > courtesyInterval+1 {
			t.Fatalf("batch task not served within %d pops", courtesyInterval+1)
		}
		got, ok := p.Pop(0)
		if !ok {
			t.Fatal("pop failed with tasks queued")
		}
		if got == &batch {
			break
		}
		push() // keep the high level non-empty: sustained interactive load
	}
}

// TestPriorityCourtesyServesMidLevels pins the rotation of the
// courtesy slot: with level 3 under sustained load AND a standing
// level-0 backlog, a level-2 task must still be served within the
// rotation bound — a courtesy that always favoured the lowest
// non-empty level would starve the middle levels forever.
func TestPriorityCourtesyServesMidLevels(t *testing.T) {
	p := NewPriority[*int](func() Policy[*int] { return NewFIFO[*int]() }, priOfInt)
	mid := 201
	p.Push(&mid)
	low := make([]int, 0, 4096)
	hi := make([]int, 0, 4096)
	refill := func() {
		// Keep both the top level and level 0 non-empty at all times.
		for p.levels[3].Len() < 2 {
			hi = append(hi, 300)
			p.Push(&hi[len(hi)-1])
		}
		for p.levels[0].Len() < 2 {
			low = append(low, 0)
			p.Push(&low[len(low)-1])
		}
	}
	refill()
	bound := (PriorityLevels - 1) * (courtesyInterval + 1) * 2
	for i := 0; ; i++ {
		if i > bound {
			t.Fatalf("level-2 task not served within %d pops under level-3 load + level-0 backlog", bound)
		}
		got, ok := p.Pop(0)
		if !ok {
			t.Fatal("pop failed with tasks queued")
		}
		if got == &mid {
			break
		}
		refill()
	}
}

// TestPriorityLocalityComposition routes PushLocal through to per-level
// Locality policies: a high-priority remote task still beats a local
// low-priority one, while same-level tasks keep NUMA affinity.
func TestPriorityLocalityComposition(t *testing.T) {
	p := NewPriority[*int](func() Policy[*int] { return Policy[*int](NewLocality[*int](4, 2)) }, priOfInt)
	// Two level-0 tasks on nodes 0 and 1, one level-2 task on node 1.
	n0, n1, hi := 1, 2, 201
	p.PushLocal(&n0, 0)
	p.PushLocal(&n1, 1)
	p.PushLocal(&hi, 1)
	// Worker 0 (node 0): the elevated task wins despite being remote.
	if got, ok := p.Pop(0); !ok || got != &hi {
		t.Fatalf("pop = %v, want the elevated task", got)
	}
	// Then affinity: worker 0 prefers its own node's task.
	if got, ok := p.Pop(0); !ok || got != &n0 {
		t.Fatalf("pop = %v, want the node-0 task", got)
	}
	if got, ok := p.Pop(0); !ok || got != &n1 {
		t.Fatalf("pop = %v, want the node-1 task", got)
	}
}

// TestPrioritySyncSchedulerOrder drives the Priority policy through the
// synchronized scheduler: a later-added high-priority task is delivered
// before earlier low-priority ones once the buffers drain.
func TestPrioritySyncSchedulerOrder(t *testing.T) {
	pol := NewPriority[*int](func() Policy[*int] { return NewFIFO[*int]() }, priOfInt)
	s := NewSync[*int](Policy[*int](pol), 1, 1, 1, 64, Hooks{})
	vals := []int{1, 2, 3, 301}
	for i := range vals {
		s.Add(&vals[i], 0)
	}
	if got := s.Get(0); got == nil || *got != 301 {
		t.Fatalf("first Get = %v, want the priority task", got)
	}
	for want := 1; want <= 3; want++ {
		if got := s.Get(0); got == nil || *got != want {
			t.Fatalf("Get = %v, want %d", got, want)
		}
	}
	s.Stop()
}

// TestWorkStealingPriorityPerDeque pins the work-stealing design's
// per-deque ordering: within one deque both the owner and a thief see
// the highest level first, but a thief stealing from a random victim
// may still bypass a higher-priority task on another deque (the
// documented weaker ordering — not asserted here, by construction it
// is a non-guarantee).
func TestWorkStealingPriorityPerDeque(t *testing.T) {
	s := NewWorkStealing[*int](2, priOfInt, nil)
	vals := []int{1, 302, 103, 4}
	for i := range vals {
		s.Add(&vals[i], 0)
	}
	// Owner: highest level first, LIFO within a level.
	if got := s.Get(0); got == nil || *got != 302 {
		t.Fatalf("owner pop = %v, want 302", got)
	}
	// Thief: highest remaining level first, FIFO within a level.
	if got := s.Get(1); got == nil || *got != 103 {
		t.Fatalf("thief steal = %v, want 103", got)
	}
	if got := s.Get(1); got == nil || *got != 1 {
		t.Fatalf("thief steal = %v, want 1 (FIFO at level 0)", got)
	}
	if got := s.Get(0); got == nil || *got != 4 {
		t.Fatalf("owner pop = %v, want 4", got)
	}
}

// TestWorkStealingCourtesySlot: the per-deque starvation bound holds
// for the work-stealing lanes too.
func TestWorkStealingCourtesySlot(t *testing.T) {
	s := NewWorkStealing[*int](1, priOfInt, nil)
	batch := 1
	s.Add(&batch, 0)
	hi := make([]int, 4*courtesyInterval)
	for i := range hi {
		hi[i] = 300 + i%10
	}
	next := 0
	for i := 0; i < courtesyInterval; i++ {
		s.Add(&hi[next], 0)
		next++
	}
	for i := 0; ; i++ {
		if i > courtesyInterval+1 {
			t.Fatalf("batch task not served within %d pops", courtesyInterval+1)
		}
		got := s.Get(0)
		if got == nil {
			t.Fatal("Get failed with tasks queued")
		}
		if got == &batch {
			break
		}
		s.Add(&hi[next], 0)
		next++
	}
}
