package sched

import "sync/atomic"

// Worker idle states, as published in each worker's parking state word.
// Only the owning worker moves itself between Running and Spinning, and
// only the owner enters Parked; leaving Parked is a CAS race between
// the owner (cancelling its own park after the pre-sleep recheck) and a
// waker claiming it, so a wake token is produced exactly once per park.
const (
	// WorkerRunning: executing tasks (or between Get attempts that are
	// finding work).
	WorkerRunning int32 = iota
	// WorkerSpinning: in the bounded idle spin phase of the park ladder,
	// still polling the scheduler.
	WorkerSpinning
	// WorkerParked: registered for sleep; the worker either cancels
	// (recheck found work) or blocks on its wake channel until a
	// producer claims it.
	WorkerParked
)

// parkSlot is one worker's parking state: the state word and the cap-1
// wake channel the worker sleeps on, padded so neighbouring workers'
// park/wake traffic never false-shares.
type parkSlot struct {
	state atomic.Int32
	wake  chan struct{}
	_     [48]byte
}

// domainPark is one runtime domain's shard of the parking state: its
// own parked count (the producer fast path for home wakes), the
// woken-but-not-yet-polling hint that throttles redundant wake scans
// under bursts, the cumulative park/wake diagnostics, and the
// contiguous worker-index range the domain owns. Padded so
// neighbouring domains' park/wake traffic never false-shares.
type domainPark struct {
	nparked atomic.Int64
	// woken counts wake tokens delivered to this domain's workers that
	// have not yet been consumed-and-acted-on: the waker raises it when
	// it commits a token, the woken worker lowers it as it leaves Park,
	// strictly before its next scheduler poll. While woken covers the
	// domain's pending count, a producer's WakeOne is a no-op — the
	// workers already on their way are guaranteed to observe that
	// pending work (see WakeOne for the ordering argument), so further
	// scans are redundant.
	woken atomic.Int64
	parks atomic.Uint64
	wakes atomic.Uint64
	lo    int
	hi    int
	_     [8]byte
}

// Parker is the elastic pool's park/wake mechanism: per-worker parking
// channels behind padded state words, with parked counts (one global,
// one per runtime domain) so the producer-side fast path (nobody
// parked, nobody to wake) is a single atomic load. It follows the
// check-then-park pattern of gvisor's sleep/seqcount machinery:
//
//   - A worker publishes itself as parked (state word + parked counts),
//     then re-checks for work; only if the recheck still sees nothing
//     does it block on its channel.
//   - A producer makes work visible first, then reads the parked count
//     and claims at most one parked worker (CAS on its state word), and
//     the claim winner alone sends the wake token.
//
// Both publications are sequentially consistent atomics, so the classic
// lost-wakeup interleaving cannot happen: either the worker's recheck
// observes the produced work, or the producer's parked-count read
// observes the parked worker — never neither. A worker whose recheck
// finds work cancels its own park with the same CAS; losing that race
// means a producer already committed a token, which the worker then
// consumes so the channel is empty for the next cycle.
//
// The domain dimension shards this protocol: each domain's producers
// wake that domain's parked workers first (its own nparked fast path),
// falling back to any other domain's parked worker only when the home
// domain has none awake to offer — the cross-domain wake that lets the
// work-shedding protocol drain an overloaded domain with another
// domain's idle workers.
type Parker struct {
	// nparked is the global producer fast path: wakers (and WakeAll)
	// bail on a single load when no worker is parked anywhere. Padded
	// on both sides — it is written on every park/wake edge and read on
	// every enqueue.
	_       [64]byte
	nparked atomic.Int64
	_       [56]byte

	doms  []domainPark
	dom   []int32 // worker id -> domain
	slots []parkSlot
}

// NewParker returns a parker for n workers partitioned into domains by
// domOf (nil, or domains <= 1, collapses to a single domain). Workers
// of one domain must occupy a contiguous index range — the runtime's
// slot→domain formula (core/topology.go) guarantees it — so a domain's
// wake scan touches only its own slots.
func NewParker(n, domains int, domOf func(id int) int) *Parker {
	if n < 1 {
		n = 1
	}
	if domains < 1 {
		domains = 1
	}
	p := &Parker{
		slots: make([]parkSlot, n),
		doms:  make([]domainPark, domains),
		dom:   make([]int32, n),
	}
	for i := range p.slots {
		p.slots[i].wake = make(chan struct{}, 1)
	}
	for d := range p.doms {
		p.doms[d].lo = n // empty until a worker claims the range
	}
	for i := 0; i < n; i++ {
		d := 0
		if domOf != nil && domains > 1 {
			d = domOf(i)
		}
		p.dom[i] = int32(d)
		if i < p.doms[d].lo {
			p.doms[d].lo = i
		}
		if i+1 > p.doms[d].hi {
			p.doms[d].hi = i + 1
		}
	}
	return p
}

// MarkSpinning publishes worker id as idle-spinning (diagnostics only;
// not part of the wake protocol). Must only be called by the owning
// worker, and never while parked.
func (p *Parker) MarkSpinning(id int) { p.slots[id].state.Store(WorkerSpinning) }

// MarkRunning publishes worker id as running again. Must only be called
// by the owning worker, and never while parked.
func (p *Parker) MarkRunning(id int) { p.slots[id].state.Store(WorkerRunning) }

// Park blocks worker id until a producer wakes it. Before sleeping it
// calls recheck exactly once, after the worker is already visible as
// parked; if recheck reports work, the park is cancelled and Park
// returns immediately (consuming a racing producer's wake token if one
// was committed). recheck must be cheap and must observe everything a
// producer publishes before calling WakeOne — that ordering is the
// whole lost-wakeup argument. On return the worker's state is Running.
//
// Every consumed wake token lowers the domain's woken hint on the way
// out, strictly before the caller's next scheduler poll: that ordering
// is what lets WakeOne trust the hint (see there).
func (p *Parker) Park(id int, recheck func() bool) {
	s := &p.slots[id]
	d := &p.doms[p.dom[id]]
	s.state.Store(WorkerParked)
	p.nparked.Add(1)
	d.nparked.Add(1)
	if recheck() {
		// Work raced in (or was already there): cancel the park. Losing
		// the CAS means a waker claimed this worker concurrently and its
		// token is (or is about to be) in the channel; consume it so the
		// next park cannot wake spuriously.
		if s.state.CompareAndSwap(WorkerParked, WorkerRunning) {
			p.nparked.Add(-1)
			d.nparked.Add(-1)
			return
		}
		<-s.wake
		d.woken.Add(-1)
		return
	}
	d.parks.Add(1)
	<-s.wake
	d.woken.Add(-1)
}

// WakeOne wakes at most one parked worker on behalf of domain d's work.
// Callers must publish the work (queue insertion, counter increment)
// before calling, so a worker concurrently executing its pre-sleep
// recheck cannot miss both the work and the wake. When no worker is
// parked anywhere this is a single atomic load.
//
// pending is the caller's current count of queued-but-unclaimed work in
// domain d; when the domain's woken hint already covers it, the call is
// a no-op — the wake-throttle that keeps burst producers from issuing
// one redundant claim scan per enqueue. The throttle cannot strand
// work: the caller raised pending before reading the hint, and a woken
// worker lowers the hint only on its way back to polling, so at the
// moment the producer observes woken >= pending every counted worker
// still has a full poll (and, failing that, a pre-park recheck of the
// pending count) ahead of it. pending < 0 disables the throttle — used
// by producers whose work lives outside the pending count (the
// taskloop work-share lane).
//
// Domain d's own parked workers are claimed first; when d has none,
// any other domain's parked worker is claimed instead (it will find
// its home queue empty and reach d's backlog through the bounded
// work-shedding protocol).
func (p *Parker) WakeOne(d int, pending int64) {
	if p.nparked.Load() == 0 {
		return
	}
	dp := &p.doms[d]
	if pending >= 0 && dp.woken.Load() >= pending {
		return
	}
	if dp.nparked.Load() > 0 && p.wakeIn(dp) {
		return
	}
	if len(p.doms) == 1 {
		return
	}
	for e := range p.doms {
		ep := &p.doms[e]
		if ep != dp && ep.nparked.Load() > 0 && p.wakeIn(ep) {
			return
		}
	}
}

// wakeIn claims and wakes one parked worker of ep's range, reporting
// whether a token was committed.
func (p *Parker) wakeIn(ep *domainPark) bool {
	for i := ep.lo; i < ep.hi; i++ {
		s := &p.slots[i]
		if s.state.Load() == WorkerParked && s.state.CompareAndSwap(WorkerParked, WorkerRunning) {
			p.nparked.Add(-1)
			ep.nparked.Add(-1)
			ep.woken.Add(1)
			ep.wakes.Add(1)
			s.wake <- struct{}{}
			return true
		}
	}
	return false
}

// WakeAll wakes every currently parked worker (shutdown, exit cascade).
func (p *Parker) WakeAll() {
	if p.nparked.Load() == 0 {
		return
	}
	for i := range p.slots {
		s := &p.slots[i]
		if s.state.Load() == WorkerParked && s.state.CompareAndSwap(WorkerParked, WorkerRunning) {
			ep := &p.doms[p.dom[i]]
			p.nparked.Add(-1)
			ep.nparked.Add(-1)
			ep.woken.Add(1)
			ep.wakes.Add(1)
			s.wake <- struct{}{}
		}
	}
}

// Parked returns the number of currently parked workers.
func (p *Parker) Parked() int { return int(p.nparked.Load()) }

// ParkedIn returns the number of currently parked workers of domain d.
func (p *Parker) ParkedIn(d int) int { return int(p.doms[d].nparked.Load()) }

// Woken returns domain d's woken-but-not-yet-polling hint (racy
// diagnostics, like Parked).
func (p *Parker) Woken(d int) int { return int(p.doms[d].woken.Load()) }

// Spinning returns the number of workers currently in the idle spin
// phase (diagnostics; a racy snapshot like Parked).
func (p *Parker) Spinning() int {
	n := 0
	for i := range p.slots {
		if p.slots[i].state.Load() == WorkerSpinning {
			n++
		}
	}
	return n
}

// Parks returns the cumulative number of blocking parks.
func (p *Parker) Parks() uint64 {
	var n uint64
	for d := range p.doms {
		n += p.doms[d].parks.Load()
	}
	return n
}

// Wakes returns the cumulative number of wake tokens delivered.
func (p *Parker) Wakes() uint64 {
	var n uint64
	for d := range p.doms {
		n += p.doms[d].wakes.Load()
	}
	return n
}

// ParksIn and WakesIn are the per-domain cumulative diagnostics.
func (p *Parker) ParksIn(d int) uint64 { return p.doms[d].parks.Load() }

// WakesIn returns domain d's cumulative delivered wake tokens.
func (p *Parker) WakesIn(d int) uint64 { return p.doms[d].wakes.Load() }

// Domains returns the domain count the parker was built with.
func (p *Parker) Domains() int { return len(p.doms) }
