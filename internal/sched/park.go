package sched

import "sync/atomic"

// Worker idle states, as published in each worker's parking state word.
// Only the owning worker moves itself between Running and Spinning, and
// only the owner enters Parked; leaving Parked is a CAS race between
// the owner (cancelling its own park after the pre-sleep recheck) and a
// waker claiming it, so a wake token is produced exactly once per park.
const (
	// WorkerRunning: executing tasks (or between Get attempts that are
	// finding work).
	WorkerRunning int32 = iota
	// WorkerSpinning: in the bounded idle spin phase of the park ladder,
	// still polling the scheduler.
	WorkerSpinning
	// WorkerParked: registered for sleep; the worker either cancels
	// (recheck found work) or blocks on its wake channel until a
	// producer claims it.
	WorkerParked
)

// parkSlot is one worker's parking state: the state word and the cap-1
// wake channel the worker sleeps on, padded so neighbouring workers'
// park/wake traffic never false-shares.
type parkSlot struct {
	state atomic.Int32
	wake  chan struct{}
	_     [48]byte
}

// Parker is the elastic pool's park/wake mechanism: per-worker parking
// channels behind padded state words, with a shared parked count so the
// producer-side fast path (nobody parked, nobody to wake) is a single
// atomic load. It follows the check-then-park pattern of gvisor's
// sleep/seqcount machinery:
//
//   - A worker publishes itself as parked (state word + parked count),
//     then re-checks for work; only if the recheck still sees nothing
//     does it block on its channel.
//   - A producer makes work visible first, then reads the parked count
//     and claims at most one parked worker (CAS on its state word), and
//     the claim winner alone sends the wake token.
//
// Both publications are sequentially consistent atomics, so the classic
// lost-wakeup interleaving cannot happen: either the worker's recheck
// observes the produced work, or the producer's parked-count read
// observes the parked worker — never neither. A worker whose recheck
// finds work cancels its own park with the same CAS; losing that race
// means a producer already committed a token, which the worker then
// consumes so the channel is empty for the next cycle.
type Parker struct {
	// nparked is the producer fast path: wakers bail on a single load
	// when no worker is parked. Padded on both sides — it is written on
	// every park/wake edge and read on every enqueue.
	_       [64]byte
	nparked atomic.Int64
	_       [56]byte

	// parks and wakes are cumulative diagnostics (Runtime.Stats): parks
	// counts actual blocking parks (cancelled parks excluded), wakes
	// counts delivered wake tokens. Cold counters, written only on
	// park/wake edges.
	parks atomic.Uint64
	wakes atomic.Uint64

	slots []parkSlot
}

// NewParker returns a parker for n workers, all initially running.
func NewParker(n int) *Parker {
	if n < 1 {
		n = 1
	}
	p := &Parker{slots: make([]parkSlot, n)}
	for i := range p.slots {
		p.slots[i].wake = make(chan struct{}, 1)
	}
	return p
}

// MarkSpinning publishes worker id as idle-spinning (diagnostics only;
// not part of the wake protocol). Must only be called by the owning
// worker, and never while parked.
func (p *Parker) MarkSpinning(id int) { p.slots[id].state.Store(WorkerSpinning) }

// MarkRunning publishes worker id as running again. Must only be called
// by the owning worker, and never while parked.
func (p *Parker) MarkRunning(id int) { p.slots[id].state.Store(WorkerRunning) }

// Park blocks worker id until a producer wakes it. Before sleeping it
// calls recheck exactly once, after the worker is already visible as
// parked; if recheck reports work, the park is cancelled and Park
// returns immediately (consuming a racing producer's wake token if one
// was committed). recheck must be cheap and must observe everything a
// producer publishes before calling WakeOne — that ordering is the
// whole lost-wakeup argument. On return the worker's state is Running.
func (p *Parker) Park(id int, recheck func() bool) {
	s := &p.slots[id]
	s.state.Store(WorkerParked)
	p.nparked.Add(1)
	if recheck() {
		// Work raced in (or was already there): cancel the park. Losing
		// the CAS means a waker claimed this worker concurrently and its
		// token is (or is about to be) in the channel; consume it so the
		// next park cannot wake spuriously.
		if s.state.CompareAndSwap(WorkerParked, WorkerRunning) {
			p.nparked.Add(-1)
			return
		}
		<-s.wake
		return
	}
	p.parks.Add(1)
	<-s.wake
}

// WakeOne wakes at most one parked worker. Callers must publish the
// work (queue insertion, counter increment) before calling, so a worker
// concurrently executing its pre-sleep recheck cannot miss both the
// work and the wake. When no worker is parked this is a single atomic
// load.
func (p *Parker) WakeOne() {
	if p.nparked.Load() == 0 {
		return
	}
	for i := range p.slots {
		s := &p.slots[i]
		if s.state.Load() == WorkerParked && s.state.CompareAndSwap(WorkerParked, WorkerRunning) {
			p.nparked.Add(-1)
			p.wakes.Add(1)
			s.wake <- struct{}{}
			return
		}
	}
}

// WakeAll wakes every currently parked worker (shutdown, exit cascade).
func (p *Parker) WakeAll() {
	if p.nparked.Load() == 0 {
		return
	}
	for i := range p.slots {
		s := &p.slots[i]
		if s.state.Load() == WorkerParked && s.state.CompareAndSwap(WorkerParked, WorkerRunning) {
			p.nparked.Add(-1)
			p.wakes.Add(1)
			s.wake <- struct{}{}
		}
	}
}

// Parked returns the number of currently parked workers.
func (p *Parker) Parked() int { return int(p.nparked.Load()) }

// Spinning returns the number of workers currently in the idle spin
// phase (diagnostics; a racy snapshot like Parked).
func (p *Parker) Spinning() int {
	n := 0
	for i := range p.slots {
		if p.slots[i].state.Load() == WorkerSpinning {
			n++
		}
	}
	return n
}

// Parks returns the cumulative number of blocking parks.
func (p *Parker) Parks() uint64 { return p.parks.Load() }

// Wakes returns the cumulative number of wake tokens delivered.
func (p *Parker) Wakes() uint64 { return p.wakes.Load() }
