package sched

// LocalityAware is an optional Policy extension: the synchronized
// scheduler's drain loop knows which NUMA node's insertion queue each
// task came from and passes it along, letting the policy keep tasks on
// the socket that produced them. This is exactly the kind of scheduling
// policy the paper argues the centralized design makes easy to add
// ("adding new scheduling policies should be easy", §3.2) compared to
// reworking a hierarchy of work-stealing deques.
type LocalityAware[T any] interface {
	Policy[T]
	// PushLocal inserts a task produced on the given NUMA node.
	PushLocal(t T, node int)
}

// Locality is a NUMA-affine policy: one FIFO per node plus an overflow
// queue. Workers prefer their own node's queue, then the overflow, then
// other nodes in order — work conservation is preserved, affinity is
// best-effort.
type Locality[T any] struct {
	queues   []*FIFO[T]
	overflow *FIFO[T]
	nodeOf   []int
}

// NewLocality builds a locality policy for workers+1 consumers spread
// over nodes NUMA nodes (the same worker->node mapping the Sync
// scheduler uses for its insertion queues).
func NewLocality[T any](workers, nodes int) *Locality[T] {
	if nodes < 1 {
		nodes = 1
	}
	l := &Locality[T]{
		queues:   make([]*FIFO[T], nodes),
		overflow: NewFIFO[T](),
		nodeOf:   make([]int, workers+1),
	}
	for i := range l.queues {
		l.queues[i] = NewFIFO[T]()
	}
	for w := 0; w <= workers; w++ {
		l.nodeOf[w] = w * nodes / (workers + 1)
	}
	return l
}

// Push implements Policy: tasks without locality information go to the
// overflow queue, consumable by anyone.
func (l *Locality[T]) Push(t T) { l.overflow.Push(t) }

// PushLocal implements LocalityAware.
func (l *Locality[T]) PushLocal(t T, node int) {
	if node < 0 || node >= len(l.queues) {
		l.overflow.Push(t)
		return
	}
	l.queues[node].Push(t)
}

// Pop implements Policy: own node first, then overflow, then the other
// nodes (nearest-index order as a proxy for socket distance).
func (l *Locality[T]) Pop(worker int) (T, bool) {
	home := 0
	if worker >= 0 && worker < len(l.nodeOf) {
		home = l.nodeOf[worker]
	}
	if t, ok := l.queues[home].Pop(worker); ok {
		return t, true
	}
	if t, ok := l.overflow.Pop(worker); ok {
		return t, true
	}
	for d := 1; d < len(l.queues); d++ {
		for _, n := range []int{home + d, home - d} {
			if n >= 0 && n < len(l.queues) {
				if t, ok := l.queues[n].Pop(worker); ok {
					return t, true
				}
			}
		}
	}
	var zero T
	return zero, false
}

// Len implements Policy.
func (l *Locality[T]) Len() int {
	n := l.overflow.Len()
	for _, q := range l.queues {
		n += q.Len()
	}
	return n
}

var _ LocalityAware[*int] = (*Locality[*int])(nil)
