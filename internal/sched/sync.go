package sched

import (
	"repro/internal/locks"
	"repro/internal/spsc"
)

// Hooks lets the runtime observe scheduler-internal events for the
// instrumentation backend (Figures 10-11: serve arrows, drain phases).
type Hooks struct {
	// OnServe fires when the lock owner hands a task to a waiting worker
	// through the delegation path.
	OnServe func(owner, served int)
	// OnDrain fires after the owner moves n tasks from the SPSC buffer
	// queues into the unsynchronized scheduler.
	OnDrain func(owner, n int)
}

// addQueue is one producer-side buffer: a bounded wait-free SPSC queue
// whose producer end is shared by the workers of one NUMA node under a
// PTLock (paper §3.1: "we use one SPSC queue and lock per NUMA node").
type addQueue[T comparable] struct {
	mu *locks.PTLock
	q  *spsc.Queue[T]
	_  [48]byte
}

// Sync is the paper's synchronized scheduler (Listing 5). Ready tasks are
// buffered into SPSC queues so insertion never contends with the workers
// asking for tasks; whichever worker owns the Delegation Ticket Lock
// drains the buffers into the actual scheduling policy and serves tasks
// directly to the workers waiting on the lock.
type Sync[T comparable] struct {
	lock   *locks.DTLock[T]
	inner  Policy[T]
	local  LocalityAware[T] // inner, if it understands locality
	queues []addQueue[T]
	qOf    []int // worker -> add-queue index
	hooks  Hooks
}

// NewSync builds a synchronized scheduler for `workers` worker threads
// plus `submitters` external submitter slots (indices workers..
// workers+submitters-1), spread over numaNodes add-queues of spscCap
// entries each, wrapping the given policy. Add accepts any slot index
// (the per-queue PTLock makes the SPSC producer side multi-caller
// safe), while Get is only ever called by real workers. Worker indices
// keep the same worker→node mapping as the Locality policy; the extra
// submitter slots round-robin over the nodes so external insertion
// load spreads without disturbing the workers' NUMA structure.
func NewSync[T comparable](inner Policy[T], workers, submitters, numaNodes, spscCap int, hooks Hooks) *Sync[T] {
	if numaNodes < 1 {
		numaNodes = 1
	}
	if spscCap < 2 {
		spscCap = 256
	}
	if submitters < 1 {
		submitters = 1
	}
	total := workers + submitters
	s := &Sync[T]{
		lock:   locks.NewDTLock[T](total),
		inner:  inner,
		queues: make([]addQueue[T], numaNodes),
		qOf:    make([]int, total),
		hooks:  hooks,
	}
	for i := range s.queues {
		s.queues[i] = addQueue[T]{mu: locks.NewPTLock(total), q: spsc.New[T](spscCap)}
	}
	// Workers (and the first submitter slot, the historical "external"
	// index) use the Locality-compatible mapping; further slots rotate.
	for w := 0; w <= workers; w++ {
		s.qOf[w] = w * numaNodes / (workers + 1)
	}
	for w := workers + 1; w < total; w++ {
		s.qOf[w] = (w - workers - 1) % numaNodes
	}
	s.local, _ = inner.(LocalityAware[T])
	return s
}

// Name implements Scheduler.
func (s *Sync[T]) Name() string { return "sync-dtlock" }

// Add inserts a ready task (Listing 5 addReadyTask): push into the local
// NUMA node's SPSC buffer; if it is full, opportunistically become the
// scheduler owner to drain it, then retry.
func (s *Sync[T]) Add(t T, worker int) {
	aq := &s.queues[s.qOf[worker]]
	for i := 0; ; i++ {
		aq.mu.Lock()
		ok := aq.q.Push(t)
		aq.mu.Unlock()
		if ok {
			return
		}
		if s.lock.TryLock() {
			s.processReadyTasks(worker)
			s.lock.Unlock()
		}
		locks.Spin(i)
	}
}

// processReadyTasks drains every SPSC buffer into the unsynchronized
// policy. Only the DTLock owner may call it (single consumer).
func (s *Sync[T]) processReadyTasks(owner int) {
	n := 0
	for i := range s.queues {
		if s.local != nil {
			node := i
			n += s.queues[i].q.ConsumeAll(func(t T) { s.local.PushLocal(t, node) })
		} else {
			n += s.queues[i].q.ConsumeAll(s.inner.Push)
		}
	}
	if n > 0 && s.hooks.OnDrain != nil {
		s.hooks.OnDrain(owner, n)
	}
}

// Get returns a ready task or the zero value (Listing 5 getReadyTask).
// If another worker owns the DTLock the call delegates: the owner either
// serves this worker a task directly or releases the lock, in which case
// the worker acquires it and serves itself (and the others).
func (s *Sync[T]) Get(worker int) T {
	var task T
	if !s.lock.LockOrDelegate(uint64(worker), &task) {
		return task // served by the previous owner
	}
	s.processReadyTasks(worker)
	for !s.lock.Empty() {
		waiting := s.lock.Front()
		t, ok := s.inner.Pop(int(waiting))
		if !ok {
			break
		}
		s.lock.SetItem(waiting, t)
		s.lock.PopFront()
		if s.hooks.OnServe != nil {
			s.hooks.OnServe(worker, int(waiting))
		}
	}
	task, _ = s.inner.Pop(worker)
	s.lock.Unlock()
	return task
}

// TryGet implements Scheduler; Get already returns without waiting for
// tasks (delegated waits are bounded by the lock hand-off).
func (s *Sync[T]) TryGet(worker int) T { return s.Get(worker) }

// Stop implements Scheduler; the Sync scheduler's Get never blocks, so
// nothing needs waking.
func (s *Sync[T]) Stop() {}

var _ Scheduler[*int] = (*Sync[*int])(nil)
