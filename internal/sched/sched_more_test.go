package sched

import (
	"sync/atomic"
	"testing"
)

func TestTryGetNonBlocking(t *testing.T) {
	for name, s := range allSchedulers(2) {
		if got := s.TryGet(0); got != nil {
			t.Fatalf("%s: TryGet on empty scheduler returned a task", name)
		}
		v := 7
		s.Add(&v, 0)
		if got := s.TryGet(0); got == nil || *got != 7 {
			t.Fatalf("%s: TryGet missed the queued task", name)
		}
		s.Stop()
	}
}

func TestSyncDrainHookCountsTasks(t *testing.T) {
	var drained atomic.Int64
	s := NewSync[*int](NewFIFO[*int](), 2, 1, 1, 64, Hooks{
		OnDrain: func(owner, n int) { drained.Add(int64(n)) },
	})
	vals := make([]int, 10)
	for i := range vals {
		s.Add(&vals[i], 0)
	}
	for i := 0; i < 10; i++ {
		if s.Get(0) == nil {
			t.Fatal("task lost")
		}
	}
	if drained.Load() != 10 {
		t.Fatalf("drain hook counted %d, want 10", drained.Load())
	}
}

func TestSchedulerNames(t *testing.T) {
	want := map[string]string{
		"sync": "sync-dtlock", "central": "central-ptlock",
		"blocking": "blocking-central", "worksteal": "work-stealing",
	}
	for key, s := range allSchedulers(1) {
		if s.Name() != want[key] {
			t.Fatalf("%s: Name() = %q", key, s.Name())
		}
		s.Stop()
	}
}

func TestWorkStealingCompaction(t *testing.T) {
	// Stealing from the head many times exercises the compaction path.
	s := NewWorkStealing[*int](1, nil, nil)
	vals := make([]int, 2000)
	for i := range vals {
		s.Add(&vals[i], 0)
	}
	for i := 0; i < 2000; i++ {
		if s.Get(1) == nil { // worker 1 always steals from worker 0
			t.Fatalf("steal %d failed", i)
		}
	}
	if s.Get(1) != nil {
		t.Fatal("extra task after drain")
	}
}

func TestFIFOGrowPreservesOrderAcrossWrap(t *testing.T) {
	q := NewFIFO[*int]()
	backing := make([]int, 300)
	// Interleave to move head off zero, then force growth.
	for i := 0; i < 40; i++ {
		backing[i] = i
		q.Push(&backing[i])
	}
	for i := 0; i < 30; i++ {
		q.Pop(0)
	}
	for i := 40; i < 300; i++ {
		backing[i] = i
		q.Push(&backing[i])
	}
	for want := 30; want < 300; want++ {
		p, ok := q.Pop(0)
		if !ok || *p != want {
			t.Fatalf("got %v want %d", p, want)
		}
	}
}
