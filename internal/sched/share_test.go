package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkShareOfferTake(t *testing.T) {
	ws := NewWorkShare[int](2)
	a, b, c := 1, 2, 3
	if !ws.Offer(&a) || !ws.Offer(&b) {
		t.Fatal("offers into free slots failed")
	}
	if ws.Offer(&c) {
		t.Fatal("offer succeeded with every slot occupied")
	}
	got := map[*int]bool{ws.Take(0): true, ws.Take(1): true}
	if !got[&a] || !got[&b] {
		t.Fatalf("takes returned %v, want the two offered tasks", got)
	}
	if ws.Take(0) != nil {
		t.Fatal("take from empty lane returned a task")
	}
	if !ws.Offer(&c) {
		t.Fatal("offer after drain failed")
	}
	if ws.Take(5) != &c {
		t.Fatal("take with spread start missed the occupied slot")
	}
}

// TestWorkShareTakeExtremeStart pins the hardening fix for negative
// start indices: -math.MinInt is still math.MinInt (negative), so the
// old negate-then-mod normalization produced a negative slot index and
// panicked. Any int must be a usable spread offset.
func TestWorkShareTakeExtremeStart(t *testing.T) {
	for _, slots := range []int{1, 3, 16} {
		ws := NewWorkShare[int](slots)
		for _, start := range []int{math.MinInt, math.MinInt + 1, -1, 0, 1, math.MaxInt} {
			v := start & 0xff
			if !ws.Offer(&v) {
				t.Fatalf("offer into empty %d-slot lane failed", slots)
			}
			if got := ws.Take(start); got != &v {
				t.Fatalf("Take(%d) on %d slots = %v, want the offered task", start, slots, got)
			}
		}
	}
}

func TestWorkShareAny(t *testing.T) {
	ws := NewWorkShare[int](2)
	if ws.Any() {
		t.Fatal("Any() on empty lane = true")
	}
	v := 1
	ws.Offer(&v)
	if !ws.Any() {
		t.Fatal("Any() with an occupied slot = false")
	}
	ws.Take(0)
	if ws.Any() {
		t.Fatal("Any() after drain = true")
	}
}

func TestWorkShareMinimumOneSlot(t *testing.T) {
	ws := NewWorkShare[int](0)
	v := 7
	if !ws.Offer(&v) {
		t.Fatal("zero-slot request must still yield a usable lane")
	}
	if ws.Take(0) != &v {
		t.Fatal("take missed the single slot")
	}
}

// TestWorkShareConcurrentExactlyOnce hammers one lane from offering and
// taking goroutines: every offered task must be taken exactly once.
func TestWorkShareConcurrentExactlyOnce(t *testing.T) {
	const (
		offerers = 4
		takers   = 4
		perG     = 2000
	)
	ws := NewWorkShare[int](takers)
	taken := make([]atomic.Int32, offerers*perG)
	var pending atomic.Int64
	pending.Store(offerers * perG)

	var wg sync.WaitGroup
	for g := 0; g < offerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := g*perG + i
				for !ws.Offer(&v) {
					// Lane full: a real caller would fall back to the
					// scheduler; here, wait for the takers.
					runtime.Gosched()
				}
			}
		}(g)
	}
	for g := 0; g < takers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for pending.Load() > 0 {
				if p := ws.Take(g); p != nil {
					taken[*p].Add(1)
					pending.Add(-1)
					continue
				}
				runtime.Gosched()
			}
		}(g)
	}
	wg.Wait()
	for i := range taken {
		if n := taken[i].Load(); n != 1 {
			t.Fatalf("task %d taken %d times, want exactly once", i, n)
		}
	}
}
