package sched

import "math"

// EDF is an earliest-deadline-first policy: a binary min-heap keyed by
// the task's absolute deadline, with insertion order as the tie-break
// so equal-deadline tasks (and the deadline-less, which sort last) pop
// in FIFO order. It exists for the deadline-aware serving mode: the
// runtime mounts it as the top lane of the Priority policy (via
// NewPriorityLevels), so the interactive class pops by urgency while
// the batch classes keep the configured FIFO/LIFO/Locality order.
//
// A zero deadline means "no deadline" and sorts after every real one
// (an explicit math.MaxInt64 behaves the same way). Like every Policy
// it is unsynchronized — the wrapping scheduler serializes all calls.
type EDF[T any] struct {
	h    []edfItem[T]
	dlOf func(T) int64
	seq  uint64
}

type edfItem[T any] struct {
	t   T
	dl  int64
	seq uint64
}

// NewEDF builds an EDF policy whose per-task absolute deadline is read
// by dlOf; a zero deadline sorts last (FIFO among the deadline-less).
func NewEDF[T any](dlOf func(T) int64) *EDF[T] {
	return &EDF[T]{dlOf: dlOf}
}

func (a edfItem[T]) before(b edfItem[T]) bool {
	return a.dl < b.dl || (a.dl == b.dl && a.seq < b.seq)
}

// Push implements Policy.
func (q *EDF[T]) Push(t T) {
	dl := q.dlOf(t)
	if dl == 0 {
		dl = math.MaxInt64
	}
	q.h = append(q.h, edfItem[T]{t: t, dl: dl, seq: q.seq})
	q.seq++
	// Sift up.
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.h[i].before(q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

// Pop implements Policy: the earliest-deadline task, insertion order
// breaking ties.
func (q *EDF[T]) Pop(int) (T, bool) {
	var zero T
	n := len(q.h)
	if n == 0 {
		return zero, false
	}
	t := q.h[0].t
	q.h[0] = q.h[n-1]
	q.h[n-1] = edfItem[T]{}
	q.h = q.h[:n-1]
	// Sift down.
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.h[l].before(q.h[min]) {
			min = l
		}
		if r < n && q.h[r].before(q.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
	return t, true
}

// Len implements Policy.
func (q *EDF[T]) Len() int { return len(q.h) }

var _ Policy[*int] = (*EDF[*int])(nil)
