package sched

import (
	"sync"

	"repro/internal/locks"
)

// Central is the "w/o DTLock" ablation variant: a centralized scheduler
// whose policy is protected by a plain Partitioned Ticket Lock. Both
// insertion and retrieval take the same lock, so under fine-grained tasks
// the creating core fights every idle worker for it — the behaviour the
// Figure 10 PTLock trace exhibits.
type Central[T comparable] struct {
	mu    *locks.PTLock
	inner Policy[T]
}

// NewCentral builds the PTLock-protected centralized scheduler.
func NewCentral[T comparable](inner Policy[T], workers int) *Central[T] {
	return &Central[T]{mu: locks.NewPTLock(workers + 1), inner: inner}
}

// Name implements Scheduler.
func (s *Central[T]) Name() string { return "central-ptlock" }

// Add implements Scheduler.
func (s *Central[T]) Add(t T, worker int) {
	s.mu.Lock()
	s.inner.Push(t)
	s.mu.Unlock()
}

// Get implements Scheduler.
func (s *Central[T]) Get(worker int) T {
	s.mu.Lock()
	t, _ := s.inner.Pop(worker)
	s.mu.Unlock()
	return t
}

// TryGet implements Scheduler.
func (s *Central[T]) TryGet(worker int) T { return s.Get(worker) }

// Stop implements Scheduler.
func (s *Central[T]) Stop() {}

// Blocking is a GOMP-style central queue: a mutex-protected policy where
// idle workers block on a condition variable after a short spin. Waking
// sleepers charges the task creator with system calls, the cost the paper
// calls out when arguing against the spin-then-block design (§3).
type Blocking[T comparable] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	inner   Policy[T]
	stopped bool
}

// NewBlocking builds the mutex+condvar scheduler.
func NewBlocking[T comparable](inner Policy[T]) *Blocking[T] {
	s := &Blocking[T]{inner: inner}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Name implements Scheduler.
func (s *Blocking[T]) Name() string { return "blocking-central" }

// Add implements Scheduler.
func (s *Blocking[T]) Add(t T, worker int) {
	s.mu.Lock()
	s.inner.Push(t)
	s.mu.Unlock()
	s.cond.Signal()
}

// Get implements Scheduler. It blocks until a task arrives or Stop is
// called; a short spin precedes the sleep to catch fast producers.
func (s *Blocking[T]) Get(worker int) T {
	var zero T
	// Spin phase: cheap retries before paying for the sleep.
	for i := 0; i < 64; i++ {
		s.mu.Lock()
		if t, ok := s.inner.Pop(worker); ok {
			s.mu.Unlock()
			return t
		}
		if s.stopped {
			s.mu.Unlock()
			return zero
		}
		s.mu.Unlock()
		locks.Spin(i)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t, ok := s.inner.Pop(worker); ok {
			return t
		}
		if s.stopped {
			return zero
		}
		s.cond.Wait()
	}
}

// TryGet implements Scheduler: a single non-blocking pop.
func (s *Blocking[T]) TryGet(worker int) T {
	s.mu.Lock()
	t, _ := s.inner.Pop(worker)
	s.mu.Unlock()
	return t
}

// Stop wakes every blocked worker; subsequent Gets on an empty queue
// return the zero value.
func (s *Blocking[T]) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

var (
	_ Scheduler[*int] = (*Central[*int])(nil)
	_ Scheduler[*int] = (*Blocking[*int])(nil)
)
