package repro_test

// Ablation benchmarks for the individual design choices inside the
// optimized runtime, beyond the paper's figure-level variants:
//
//   - the number of SPSC insertion queues (one global vs one per NUMA
//     node vs one per worker; paper §3.1 chooses per-NUMA),
//   - the allocator refill batch (jemalloc tcache-fill analog),
//   - FIFO vs LIFO unsynchronized policy under a dependency-heavy load,
//   - the taskloop grain (chunk size) against the adaptive default.

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workloads"
)

// runTaskStorm drives the miniAMR-like insertion pattern: one creator,
// many short tasks.
func runTaskStorm(b *testing.B, cfg core.Config, tasks int) {
	rt := core.New(cfg)
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Run(func(c *core.Ctx) {
			for k := 0; k < tasks; k++ {
				c.Spawn(func(*core.Ctx) {})
			}
			c.Taskwait()
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(tasks), "tasks/op")
}

func BenchmarkAblationSPSCQueues(b *testing.B) {
	const workers = 8
	for _, numa := range []int{1, 2, workers} {
		b.Run(fmt.Sprintf("queues=%d", numa), func(b *testing.B) {
			cfg := core.ConfigFor(core.VariantOptimized, workers, numa)
			runTaskStorm(b, cfg, 5000)
		})
	}
}

func BenchmarkAblationSPSCCapacity(b *testing.B) {
	const workers = 8
	for _, cap := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			cfg := core.ConfigFor(core.VariantOptimized, workers, 2)
			cfg.SPSCCap = cap
			runTaskStorm(b, cfg, 5000)
		})
	}
}

func BenchmarkAblationAllocatorBatch(b *testing.B) {
	type big struct{ pad [256]byte }
	for _, batch := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			p := alloc.NewPooled[big](4, batch)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					o := p.Get(0)
					p.Put(0, o)
				}
			})
		})
	}
}

func BenchmarkAblationPolicyFIFOvsLIFO(b *testing.B) {
	for _, pol := range []struct {
		name string
		kind core.PolicyKind
	}{{"fifo", core.PolicyFIFO}, {"lifo", core.PolicyLIFO}} {
		b.Run(pol.name, func(b *testing.B) {
			cfg := core.ConfigFor(core.VariantOptimized, 8, 2)
			cfg.Policy = pol.kind
			rt := core.New(cfg)
			defer rt.Close()
			w := workloads.NewCholesky(96, 24)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				w.Run(rt)
			}
		})
	}
}

// BenchmarkAblationTaskloopGrain sweeps the work-sharing loop's chunk
// size on the tier-2 dot-product shape (bench.TaskloopDotWithGrain, so
// the measured loop cannot drift from the gated one): tiny grains
// expose the per-chunk claim cost, huge grains starve the late
// joiners, and grain=0 is the adaptive default the runtime picks.
func BenchmarkAblationTaskloopGrain(b *testing.B) {
	for _, grain := range []int{16, 256, 4096, 0} {
		name := fmt.Sprintf("grain=%d", grain)
		if grain == 0 {
			name = "grain=adaptive"
		}
		b.Run(name, bench.TaskloopDotWithGrain(grain))
	}
}

// BenchmarkAblationPinning measures the OS-thread pinning substitution.
func BenchmarkAblationPinning(b *testing.B) {
	for _, pin := range []bool{true, false} {
		b.Run(fmt.Sprintf("pin=%v", pin), func(b *testing.B) {
			cfg := core.ConfigFor(core.VariantOptimized, 8, 2)
			cfg.PinWorkers = pin
			runTaskStorm(b, cfg, 5000)
		})
	}
}
