// Package repro is a from-scratch Go implementation of the task-based
// runtime system described in "Advanced Synchronization Techniques for
// Task-based Runtime Systems" (Álvarez, Sala, Maroñas, Roca, Beltran;
// PPoPP 2021): an OmpSs-2/Nanos6-style data-flow runtime with a
// wait-free dependency system, a delegation-based synchronized scheduler
// built on the novel Delegation Ticket Lock, a scalable pooled task
// allocator, and a lightweight CTF-inspired instrumentation backend.
//
// This package is the public API façade; the implementation lives in the
// internal packages (see DESIGN.md for the full inventory).
//
// Quick start:
//
//	rt := repro.New(repro.Config{Workers: 8})
//	defer rt.Close()
//
//	var x float64
//	rt.Run(func(c *repro.Ctx) {
//		c.Spawn(func(*repro.Ctx) { x = 21 }, repro.Out(&x))
//		c.Spawn(func(*repro.Ctx) { x *= 2 }, repro.InOut(&x))
//		c.Taskwait()
//	})
//	// x == 42, with the two tasks ordered by their data dependency.
package repro

import (
	"repro/internal/core"
	"repro/internal/deps"
)

// Core types re-exported from the runtime core.
type (
	// Runtime is a running task-runtime instance; see core.Runtime.
	Runtime = core.Runtime
	// Config selects workers, scheduler, dependency system, allocator,
	// tracing and noise injection; see core.Config.
	Config = core.Config
	// Ctx is the execution context passed to every task body.
	Ctx = core.Ctx
	// Variant names a preset runtime configuration from the paper's
	// evaluation ("optimized", "w/o DTLock", ...).
	Variant = core.Variant
	// AccessSpec declares one data access of a task.
	AccessSpec = deps.AccessSpec
	// NoiseConfig configures simulated OS noise (Figure 11).
	NoiseConfig = core.NoiseConfig
)

// New builds and starts a runtime; the caller must Close it.
func New(cfg Config) *Runtime { return core.New(cfg) }

// NewVariant builds a runtime from one of the paper's preset variants.
func NewVariant(v Variant, workers, numaNodes int) *Runtime {
	return core.New(core.ConfigFor(v, workers, numaNodes))
}

// Access declaration helpers (OmpSs-2 clause equivalents).
var (
	// RedSum declares a float64 sum reduction over n elements at p
	// (OmpSs-2 "reduction(+: ...)").
	RedSum = func(p *float64, n int) AccessSpec { return core.RedSpec(p, n, deps.OpSum) }
	// RedMax declares a max reduction.
	RedMax = func(p *float64, n int) AccessSpec { return core.RedSpec(p, n, deps.OpMax) }
	// RedMin declares a min reduction.
	RedMin = func(p *float64, n int) AccessSpec { return core.RedSpec(p, n, deps.OpMin) }
)

// In declares a read access on p ("in(p)").
func In[T any](p *T) AccessSpec { return core.In(p) }

// Out declares a write access on p ("out(p)").
func Out[T any](p *T) AccessSpec { return core.Out(p) }

// InOut declares a read-write access on p ("inout(p)").
func InOut[T any](p *T) AccessSpec { return core.InOut(p) }

// Commutative declares a commutative access on p ("commutative(p)").
func Commutative[T any](p *T) AccessSpec { return core.Commutative(p) }

// WeakIn declares a weak read access ("weakin(p)"): it never delays the
// task but anchors its children's dependencies on p.
func WeakIn[T any](p *T) AccessSpec { return core.WeakIn(p) }

// WeakInOut declares a weak read-write access ("weakinout(p)").
func WeakInOut[T any](p *T) AccessSpec { return core.WeakInOut(p) }

// Scheduler, dependency-system, allocator and policy selectors.
const (
	SchedSyncDTLock    = core.SchedSyncDTLock
	SchedCentralPTLock = core.SchedCentralPTLock
	SchedBlocking      = core.SchedBlocking
	SchedWorkStealing  = core.SchedWorkStealing

	DepsWaitFree = core.DepsWaitFree
	DepsLocked   = core.DepsLocked

	AllocPooled = core.AllocPooled
	AllocSerial = core.AllocSerial

	PolicyFIFO     = core.PolicyFIFO
	PolicyLIFO     = core.PolicyLIFO
	PolicyLocality = core.PolicyLocality
)

// Evaluation variant presets (paper §6).
const (
	VariantOptimized      = core.VariantOptimized
	VariantNoJemalloc     = core.VariantNoJemalloc
	VariantNoWaitFreeDeps = core.VariantNoWaitFreeDeps
	VariantNoDTLock       = core.VariantNoDTLock
	VariantGOMPLike       = core.VariantGOMPLike
	VariantLLVMLike       = core.VariantLLVMLike
	VariantIntelLike      = core.VariantIntelLike
)
