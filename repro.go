// Package repro is a from-scratch Go implementation of the task-based
// runtime system described in "Advanced Synchronization Techniques for
// Task-based Runtime Systems" (Álvarez, Sala, Maroñas, Roca, Beltran;
// PPoPP 2021): an OmpSs-2/Nanos6-style data-flow runtime with a
// wait-free dependency system, a delegation-based synchronized scheduler
// built on the novel Delegation Ticket Lock, a scalable pooled task
// allocator, and a lightweight CTF-inspired instrumentation backend.
//
// This package is the public API façade; the implementation lives in the
// internal packages (see DESIGN.md for the full inventory).
//
// # Quick start
//
// A runtime is built with functional options and closed when done.
// Tasks are ordered purely by their declared data accesses:
//
//	rt := repro.New(repro.WithWorkers(8))
//	defer rt.Close()
//
//	var x float64
//	err := rt.Run(func(c *repro.Ctx) {
//		c.Spawn(func(*repro.Ctx) { x = 21 }, repro.Out(&x))
//		c.Spawn(func(*repro.Ctx) { x *= 2 }, repro.InOut(&x))
//		c.Taskwait()
//	})
//	// err == nil and x == 42, with the two tasks ordered by their
//	// data dependency.
//
// # Results, errors, cancellation
//
// Task bodies can return typed results and errors. Submit runs a root
// task asynchronously and returns a Future; Go spawns a future-backed
// child from inside a task body:
//
//	f := repro.Submit(rt, func(c *repro.Ctx) (float64, error) {
//		return math.Sqrt(2), nil
//	})
//	v, err := f.Wait(ctx)
//
// A body panic is recovered into a *PanicError. Errors propagate to the
// submission root (Run's return value, Future.Wait) under the runtime's
// ErrorPolicy: FailFast (default) cancels the submission's remaining
// unstarted tasks, CollectAll runs everything and joins the errors.
// RunCtx and SubmitCtx honor context cancellation and deadlines: tasks
// that have not started when the context fires are drained without
// executing, while the dependency graph and task accounting unwind
// normally.
//
// # Work-sharing loops
//
// Loop-heavy kernels use ForEach and ForReduce instead of spawning one
// task per element: the loop is a single logical task (taskloop) whose
// iteration range is claimed in chunks by however many workers are
// idle. Its dependencies are declared once for the whole range
// (WithAccesses), it completes only when every chunk has drained, and
// reductions privatize one accumulator per worker, combined once at the
// end:
//
//	repro.ForEach(rt, 0, len(img), func(c *repro.Ctx, lo, hi int) {
//		for i := lo; i < hi; i++ { img[i] = blur(img, i) }
//	}, repro.WithGrain(1024))
//
//	sum, err := repro.ForReduce(rt, 0, n, 0.0,
//		func(a, b float64) float64 { return a + b },
//		func(c *repro.Ctx, lo, hi int, acc *float64) {
//			for i := lo; i < hi; i++ { *acc += x[i] * y[i] }
//		})
//
// Inside a task body, Ctx.Loop spawns a loop as a child task (waited on
// by Taskwait like any other child); Graph.AddLoop places a loop
// between named graph nodes.
//
// # External events (async completion)
//
// A task waiting on I/O should not hold a worker. The events API (the
// OmpSs-2 external-events construct) lets a body register out-of-band
// completions and return immediately; the task's dependency release,
// successors, and Future all wait for the last completion, fired from
// any goroutine:
//
//	f := repro.Submit(rt, repro.WithEvents(func(c *repro.Ctx, ev *repro.EventCounter) (int, error) {
//		ev.Add(1)
//		go func() { resp = callBackend(req); ev.Done() }()
//		return 0, nil // worker freed here; f resolves at Done
//	}), repro.Out(&resp))
//
// Ctx.After / Ctx.AfterFunc schedule completions on a shared timer
// wheel (a worker-free sleep), Ctx.Await and the typed Await join on a
// future while helping with other ready tasks, and Runtime.Drain
// seals new submissions and waits for all in-flight work — including
// event-parked tasks — before Close.
//
// # Priorities
//
// Latency-sensitive work can jump ahead of batch work with a priority
// clause in the access list — WithPriority(n) on Submit, Go, Spawn, a
// loop's WithAccesses, or Graph.SetPriority for named tasks. Priority
// orders *ready* tasks only: data dependencies always win, children
// inherit their parent's level, and a bounded courtesy slot keeps
// sustained high-priority load from starving the batch class. See
// DESIGN.md ("Priority scheduling and QoS") for the per-scheduler
// ordering guarantees.
//
// # Deadlines and priority inheritance
//
// Two clauses refine the priority dimension for serving workloads. On
// a runtime built with WithEDF, WithDeadline(d) stamps the task (and
// its children) with an absolute deadline, and the top priority level
// pops earliest-deadline-first instead of FIFO — so under a backlog
// the requests closest to missing their SLO run first.
// WithInheritance closes the priority-inversion window: when an
// elevated task registers behind unfinished lower-priority
// predecessors, those predecessors are promoted (transitively) to its
// level, re-ranked in the scheduler ahead of mid-priority work:
//
//	dl := repro.WithDeadline(2 * time.Millisecond)
//	f := repro.Submit(rt, stage1, repro.InOut(&row), dl,
//		repro.WithPriority(repro.MaxPriority), repro.WithInheritance())
//
// See DESIGN.md ("Deadline scheduling and priority inheritance") for
// the ordering invariants and the promotion protocol.
//
// For named-DAG workloads, the Graph builder offers a declarative layer
// on top of the same dependency engine:
//
//	g := repro.NewGraph().
//		Add("a", nil, func(c *repro.Ctx, deps map[string]any) (any, error) { return 2.0, nil }).
//		Add("b", []string{"a"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
//			return deps["a"].(float64) * 21, nil
//		})
//	res, err := g.Run(ctx, rt)
//	// res["b"].Value == 42.0
//
// # Serving: compiled graph templates
//
// A serving loop runs the same DAG for every request; re-validating it
// per request is pure overhead. Compile freezes the graph once into an
// immutable template and Do stamps out one execution per request from
// pooled frames — a steady-state request allocates nothing, and one
// template serves any number of concurrent Do callers:
//
//	cg, err := g.Compile(rt)         // validate + freeze once
//	bi, _ := cg.NodeIndex("b")       // resolve names off the hot path
//	for {                            // per request, typically per client goroutine
//		e, err := cg.DoTimeout(ctx, 5*time.Millisecond)
//		if err == nil {
//			v, _ := e.ValueAt(bi)    // string-free result access
//			serve(v)
//		}
//		e.Release()                  // frame back to the pool
//	}
//
// DoTimeout cancels the request on the runtime's timer wheel —
// not-yet-started nodes drain with ErrTaskSkipped wrapping
// context.DeadlineExceeded — and still waits for the full drain, so
// the frame is always quiescent when it returns. MarkPure memoizes a
// node whose result depends only on its (pure) dependencies, with
// CompiledGraph.Invalidate dropping all memoized results; compiling
// with WithNodeStats hangs a zero-allocation latency histogram off
// every node (CompiledGraph.NodeLatency). See DESIGN.md ("Compiled
// graph templates") for the join-counter execution scheme and the
// inline-serving slots that let the submitting goroutine run its own
// request.
package repro

import (
	"time"

	"repro/internal/core"
	"repro/internal/deps"
)

// Core types re-exported from the runtime core.
type (
	// Runtime is a running task-runtime instance; see core.Runtime.
	Runtime = core.Runtime
	// Config selects workers, scheduler, dependency system, allocator,
	// error policy, tracing and noise injection; see core.Config. Most
	// callers build it through New's functional options.
	Config = core.Config
	// Ctx is the execution context passed to every task body.
	Ctx = core.Ctx
	// Variant names a preset runtime configuration from the paper's
	// evaluation ("optimized", "w/o DTLock", ...).
	Variant = core.Variant
	// AccessSpec declares one data access of a task.
	AccessSpec = deps.AccessSpec
	// NoiseConfig configures simulated OS noise (Figure 11).
	NoiseConfig = core.NoiseConfig
	// ErrorPolicy selects fail-fast vs collect-all error propagation.
	ErrorPolicy = core.ErrorPolicy
	// PanicError wraps a panic recovered from a task body.
	PanicError = core.PanicError
	// SchedulerKind selects a scheduler design.
	SchedulerKind = core.SchedulerKind
	// DepsKind selects a dependency-system implementation.
	DepsKind = core.DepsKind
	// AllocKind selects the task-memory allocator.
	AllocKind = core.AllocKind
	// PolicyKind selects the unsynchronized scheduling policy.
	PolicyKind = core.PolicyKind
	// Stats is a runtime snapshot (Runtime.Stats): pool-wide parked and
	// spinning worker counts plus cumulative park/wake counters, with a
	// per-NUMA-domain breakdown in Domains.
	Stats = core.Stats
	// DomainStats is one NUMA domain's slice of a Stats snapshot:
	// workers, park/wake counters, pending work and the work-shedding
	// and affinity-retention counters.
	DomainStats = core.DomainStats
)

// ErrTaskSkipped marks tasks drained without executing because their
// submission scope was cancelled; see core.ErrTaskSkipped.
var ErrTaskSkipped = core.ErrTaskSkipped

// VariantOptions returns the functional options defining one of the
// paper's preset variants — the scheduler/deps/allocator/policy
// selection only, with pool shape left to the caller. It panics on an
// unknown variant, like core.ConfigFor.
func VariantOptions(v Variant) []Option {
	switch v {
	case VariantOptimized:
		// Sync scheduler + wait-free deps + pooled allocator: all
		// defaults.
		return nil
	case VariantNoJemalloc:
		return []Option{WithAlloc(AllocSerial)}
	case VariantNoWaitFreeDeps:
		return []Option{WithDeps(DepsLocked)}
	case VariantNoDTLock:
		return []Option{WithScheduler(SchedCentralPTLock)}
	case VariantGOMPLike:
		return []Option{WithScheduler(SchedBlocking), WithDeps(DepsLocked), WithAlloc(AllocSerial)}
	case VariantLLVMLike:
		return []Option{WithScheduler(SchedWorkStealing), WithDeps(DepsLocked)}
	case VariantIntelLike:
		return []Option{WithScheduler(SchedWorkStealing), WithDeps(DepsLocked), WithPolicy(PolicyLIFO)}
	default:
		panic("repro: unknown variant " + string(v))
	}
}

// NewVariant builds a runtime from one of the paper's preset variants:
// VariantOptions for the design axes, WithTopology for the pool shape
// (workers total, numaNodes SPSC insertion queues, pinned workers —
// one domain, as in the paper's evaluation).
func NewVariant(v Variant, workers, numaNodes int) *Runtime {
	opts := append(VariantOptions(v), WithTopology(Topology{
		WorkersPerDomain: workers,
		NUMANodes:        numaNodes,
		PinWorkers:       true,
	}))
	return New(opts...)
}

// Access declaration helpers (OmpSs-2 clause equivalents).
var (
	// RedSum declares a float64 sum reduction over n elements at p
	// (OmpSs-2 "reduction(+: ...)").
	RedSum = func(p *float64, n int) AccessSpec { return core.RedSpec(p, n, deps.OpSum) }
	// RedMax declares a max reduction.
	RedMax = func(p *float64, n int) AccessSpec { return core.RedSpec(p, n, deps.OpMax) }
	// RedMin declares a min reduction.
	RedMin = func(p *float64, n int) AccessSpec { return core.RedSpec(p, n, deps.OpMin) }
)

// In declares a read access on p ("in(p)").
func In[T any](p *T) AccessSpec { return core.In(p) }

// Out declares a write access on p ("out(p)").
func Out[T any](p *T) AccessSpec { return core.Out(p) }

// InOut declares a read-write access on p ("inout(p)").
func InOut[T any](p *T) AccessSpec { return core.InOut(p) }

// Commutative declares a commutative access on p ("commutative(p)").
func Commutative[T any](p *T) AccessSpec { return core.Commutative(p) }

// WeakIn declares a weak read access ("weakin(p)"): it never delays the
// task but anchors its children's dependencies on p.
func WeakIn[T any](p *T) AccessSpec { return core.WeakIn(p) }

// WeakInOut declares a weak read-write access ("weakinout(p)").
func WeakInOut[T any](p *T) AccessSpec { return core.WeakInOut(p) }

// MaxPriority is the highest scheduling priority level (level 0 is the
// default); WithPriority clamps to [0, MaxPriority].
const MaxPriority = core.MaxPriority

// WithPriority declares the task's scheduling priority level, as a
// pseudo access riding in the access list of Go, Submit, Spawn or a
// loop's WithAccesses (the OmpSs-2 priority clause). It declares no
// data dependency: among *ready* tasks, higher levels are scheduled
// first — a priority never overtakes a data dependency, and sustained
// high-priority load cannot starve level 0 indefinitely (the scheduler
// grants the lowest waiting level a bounded courtesy slot). Children
// inherit the spawning task's level unless they carry their own
// clause; taskloop chunks run at their loop's level. Graph nodes take
// theirs through Graph.SetPriority.
//
//	f := repro.Submit(rt, handle, repro.InOut(&row), repro.WithPriority(repro.MaxPriority))
//	err := repro.ForEach(rt, 0, n, body, repro.WithAccesses(repro.WithPriority(1)))
func WithPriority(n int) AccessSpec { return core.Priority(n) }

// WithDeadline declares the task's scheduling deadline, d from now, as
// a pseudo access riding in the access list like WithPriority. The
// deadline is resolved to an absolute instant on the runtime's
// monotonic clock (NowNS) at clause construction, so every task of one
// request can share a single clause value. Deadlines order ready tasks
// *within the top priority level* on runtimes built with WithEDF:
// earlier deadlines run first, deadline-less tasks last. A deadline is
// advisory — it never overtakes a data dependency and nothing is
// cancelled when it passes (pair with DoTimeout/RunCtx for hard
// cutoffs); bodies can compare Ctx.Deadline against NowNS to shed late
// work. Children inherit the deadline unless they carry their own
// clause; Graph nodes take theirs through Graph.SetDeadline.
//
//	f := repro.Submit(rt, handle, repro.InOut(&row),
//		repro.WithPriority(repro.MaxPriority), repro.WithDeadline(2*time.Millisecond))
func WithDeadline(d time.Duration) AccessSpec {
	return core.Deadline(core.NowNS() + d.Nanoseconds())
}

// WithDeadlineAt is WithDeadline with an absolute deadline on the
// runtime's monotonic clock (nanoseconds, as returned by NowNS): use
// it to stamp one shared deadline on tasks created at different times,
// for example the stages of a request pipeline.
func WithDeadlineAt(absNS int64) AccessSpec { return core.Deadline(absNS) }

// WithInheritance declares the task a priority-inheritance donor: when
// it registers, any not-yet-satisfied predecessor task it depends on
// is promoted — transitively — to this task's effective priority
// level, so a low-priority task holding a dependency of
// high-priority work is re-ranked ahead of mid-priority work instead
// of starving behind it (the classic priority-inversion window).
// Promotion re-ranks tasks already waiting in the scheduler; a
// predecessor that is already executing keeps its worker. It pairs
// with WithPriority:
//
//	f := repro.Submit(rt, handle, repro.In(&row),
//		repro.WithPriority(repro.MaxPriority), repro.WithInheritance())
func WithInheritance() AccessSpec { return core.Inherit() }

// NowNS returns the current time on the runtime's monotonic deadline
// clock (nanoseconds since process start): the clock WithDeadlineAt
// and Ctx.Deadline values live on.
func NowNS() int64 { return core.NowNS() }

// Scheduler, dependency-system, allocator and policy selectors.
const (
	SchedSyncDTLock    = core.SchedSyncDTLock
	SchedCentralPTLock = core.SchedCentralPTLock
	SchedBlocking      = core.SchedBlocking
	SchedWorkStealing  = core.SchedWorkStealing

	DepsWaitFree = core.DepsWaitFree
	DepsLocked   = core.DepsLocked

	AllocPooled = core.AllocPooled
	AllocSerial = core.AllocSerial

	PolicyFIFO     = core.PolicyFIFO
	PolicyLIFO     = core.PolicyLIFO
	PolicyLocality = core.PolicyLocality
)

// Error-propagation policies (see ErrorPolicy).
const (
	FailFast   = core.FailFast
	CollectAll = core.CollectAll
)

// Evaluation variant presets (paper §6).
const (
	VariantOptimized      = core.VariantOptimized
	VariantNoJemalloc     = core.VariantNoJemalloc
	VariantNoWaitFreeDeps = core.VariantNoWaitFreeDeps
	VariantNoDTLock       = core.VariantNoDTLock
	VariantGOMPLike       = core.VariantGOMPLike
	VariantLLVMLike       = core.VariantLLVMLike
	VariantIntelLike      = core.VariantIntelLike
)
