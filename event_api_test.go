package repro

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestWithEventsFutureResolvesAtDone checks the façade wiring: the
// adapted body returns immediately, the Future stays unresolved until
// the external completion fires from a plain goroutine, and the value
// captured at body return is delivered.
func TestWithEventsFutureResolvesAtDone(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Close()
	fire := make(chan struct{})
	var bodyDone atomic.Bool
	f := Submit(rt, WithEvents(func(c *Ctx, ev *EventCounter) (int, error) {
		ev.Add(1)
		go func() {
			<-fire
			ev.Done()
		}()
		bodyDone.Store(true)
		return 42, nil
	}))
	// The body has returned but the future must not resolve yet.
	deadline := time.Now().Add(5 * time.Second)
	for !bodyDone.Load() {
		if time.Now().After(deadline) {
			t.Fatal("body never ran")
		}
	}
	select {
	case <-f.Done():
		t.Fatal("future resolved before the event fired")
	case <-time.After(20 * time.Millisecond):
	}
	close(fire)
	v, err := f.Wait(nil)
	if err != nil || v != 42 {
		t.Fatalf("Wait = (%v, %v), want (42, nil)", v, err)
	}
}

// TestTypedAwaitJoinsEventedFuture checks Await from inside a task
// body: the awaiting task helps with other work while the awaited
// task is parked on a timer, and gets the typed result.
func TestTypedAwaitJoinsEventedFuture(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Close()
	backend := Submit(rt, func(c *Ctx) (string, error) {
		c.After(2 * time.Millisecond)
		return "reply", nil
	})
	var v string
	var aerr error
	if err := rt.Run(func(c *Ctx) {
		v, aerr = Await(c, backend)
	}); err != nil {
		t.Fatal(err)
	}
	if aerr != nil || v != "reply" {
		t.Fatalf("Await = (%q, %v), want (\"reply\", nil)", v, aerr)
	}
}

// TestDrainSealsFacadeSubmissions checks the re-exported sentinel: a
// drained runtime bounces façade submissions with ErrRuntimeDraining.
func TestDrainSealsFacadeSubmissions(t *testing.T) {
	rt := New(WithWorkers(2), WithEventSlots(2), WithEventTick(time.Millisecond))
	defer rt.Close()
	f := Submit(rt, WithEvents(func(c *Ctx, ev *EventCounter) (int, error) {
		c.After(3 * time.Millisecond)
		return 7, nil
	}))
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if v, err := f.Wait(nil); err != nil || v != 7 {
		t.Fatalf("pre-drain future = (%v, %v), want (7, nil)", v, err)
	}
	if _, err := Submit(rt, func(*Ctx) (int, error) { return 0, nil }).Wait(nil); !errors.Is(err, ErrRuntimeDraining) {
		t.Fatalf("post-drain Submit error = %v, want ErrRuntimeDraining", err)
	}
}
