package repro

import (
	"context"

	"repro/internal/core"
)

// Future is the typed completion handle of a submitted task: it
// delivers the task's result and error once the task has *fully*
// completed — body finished, every descendant complete, and every
// external event registered through Ctx.Events drained. Futures are
// created by Submit (root tasks) and Go (child tasks).
type Future[T any] struct{ h *core.Handle }

// Done returns a channel closed at the task's full completion.
func (f *Future[T]) Done() <-chan struct{} { return f.h.Done() }

// Wait blocks until the task fully completes or ctx is cancelled. It
// returns the task's value, or the task's error — a body error, a
// *PanicError for a recovered panic, or an error matching
// ErrTaskSkipped when the task was drained by a cancelled scope. A nil
// ctx waits unconditionally. If ctx is cancelled before the task
// completes, Wait returns the cancellation cause; the task itself keeps
// running (cancel the submission context to stop it).
func (f *Future[T]) Wait(ctx context.Context) (T, error) {
	v, err := f.h.Wait(ctx)
	if err != nil || v == nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Submit submits a root task whose body returns (T, error) and returns
// its Future without waiting. Submissions participate in root-level
// dependency chains exactly like Run roots: matching accesses order
// them against other Submit and Run roots.
func Submit[T any](rt *Runtime, fn func(*Ctx) (T, error), accs ...AccessSpec) *Future[T] {
	return SubmitCtx(context.Background(), rt, fn, accs...)
}

// SubmitCtx is Submit honoring a caller context: if ctx is cancelled
// before the task starts, the task is drained without executing and the
// Future reports the cause.
func SubmitCtx[T any](ctx context.Context, rt *Runtime, fn func(*Ctx) (T, error), accs ...AccessSpec) *Future[T] {
	h := rt.SubmitCtx(ctx, func(c *Ctx) (any, error) { return fn(c) }, accs...)
	return &Future[T]{h: h}
}

// Go spawns a future-backed child task from inside a task body (it may
// only be called with the spawning task's own Ctx, like Ctx.Spawn). The
// child shares the parent's submission scope: its error propagates to
// the root (cancelling unstarted scope tasks under FailFast) in
// addition to being delivered through the Future.
func Go[T any](c *Ctx, fn func(*Ctx) (T, error), accs ...AccessSpec) *Future[T] {
	h := c.GoFn(func(cc *Ctx) (any, error) { return fn(cc) }, accs...)
	return &Future[T]{h: h}
}

// GoErr spawns an error-only child task: Go for bodies with no result.
func GoErr(c *Ctx, fn func(*Ctx) error, accs ...AccessSpec) *Future[struct{}] {
	h := c.GoFn(func(cc *Ctx) (any, error) { return nil, fn(cc) }, accs...)
	return &Future[struct{}]{h: h}
}
