package repro_test

import (
	"sync/atomic"
	"testing"

	"repro"
)

// TestWithPriorityOrdersReadyTasks pins the façade-level contract on a
// single worker: while the worker is busy, a batch of level-0 roots
// and one MaxPriority root are queued; the priority root must run
// before every queued batch root.
func TestWithPriorityOrdersReadyTasks(t *testing.T) {
	rt := repro.New(repro.WithWorkers(1))
	defer rt.Close()

	release := make(chan struct{})
	gate := repro.Submit(rt, func(*repro.Ctx) (int, error) {
		<-release
		return 0, nil
	})

	var order []string
	var mu atomic.Int32
	record := func(s string) func(*repro.Ctx) (int, error) {
		return func(*repro.Ctx) (int, error) {
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, s)
			mu.Store(0)
			return 0, nil
		}
	}
	var futs []*repro.Future[int]
	for i := 0; i < 3; i++ {
		futs = append(futs, repro.Submit(rt, record("batch")))
	}
	futs = append(futs, repro.Submit(rt, record("interactive"), repro.WithPriority(repro.MaxPriority)))
	close(release)
	for _, f := range futs {
		if _, err := f.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gate.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if order[0] != "interactive" {
		t.Fatalf("first completed task = %q, want the priority task (order %v)", order[0], order)
	}
}

// TestPriorityInheritance: children run at the spawning task's level
// unless they carry their own clause, observable through Ctx.Priority.
func TestPriorityInheritance(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()
	var child, override atomic.Int32
	err := rt.Run(func(c *repro.Ctx) {
		c.Spawn(func(cc *repro.Ctx) { child.Store(int32(cc.Priority())) })
		c.Spawn(func(cc *repro.Ctx) { override.Store(int32(cc.Priority())) }, repro.WithPriority(1))
		c.Taskwait()
	}, repro.WithPriority(2))
	if err != nil {
		t.Fatal(err)
	}
	if child.Load() != 2 {
		t.Fatalf("child priority = %d, want inherited 2", child.Load())
	}
	if override.Load() != 1 {
		t.Fatalf("override priority = %d, want 1", override.Load())
	}
}

// TestWithPriorityClamps: out-of-range levels clamp instead of
// panicking or leaking levels beyond the bounded range.
func TestWithPriorityClamps(t *testing.T) {
	rt := repro.New(repro.WithWorkers(1))
	defer rt.Close()
	for _, n := range []int{-5, repro.MaxPriority + 7} {
		got := -1
		err := rt.Run(func(c *repro.Ctx) { got = c.Priority() }, repro.WithPriority(n))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if n > 0 {
			want = repro.MaxPriority
		}
		if got != want {
			t.Fatalf("WithPriority(%d): level %d, want %d", n, got, want)
		}
	}
}

// TestGraphSetPriority: the named-graph layer threads node priorities
// through to the underlying tasks, and unknown names are construction
// errors.
func TestGraphSetPriority(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	var lvl atomic.Int32
	g := repro.NewGraph().
		Add("a", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			lvl.Store(int32(c.Priority()))
			return 1, nil
		}).
		Add("b", []string{"a"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return deps["a"].(int) + 1, nil
		}).
		SetPriority("a", 3)
	res, err := g.Run(nil, rt)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := repro.Value[int](res, "b"); err != nil || v != 2 {
		t.Fatalf("b = %v, %v", v, err)
	}
	if lvl.Load() != 3 {
		t.Fatalf("node priority = %d, want 3", lvl.Load())
	}

	if _, err := repro.NewGraph().SetPriority("nope", 1).Run(nil, rt); err == nil {
		t.Fatal("SetPriority on unknown task did not error")
	}
}

// TestForEachPriorityViaAccesses: a loop takes its level through
// WithAccesses, and every chunk runs at it.
func TestForEachPriorityViaAccesses(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()
	var bad atomic.Int32
	err := repro.ForEach(rt, 0, 1000, func(c *repro.Ctx, lo, hi int) {
		if c.Priority() != 2 {
			bad.Store(1)
		}
	}, repro.WithGrain(64), repro.WithAccesses(repro.WithPriority(2)))
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatal("a chunk ran at the wrong priority level")
	}
}
