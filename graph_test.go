package repro_test

import (
	"context"
	"errors"
	"testing"

	"repro"
)

func TestGraphValues(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	g := repro.NewGraph().
		Add("a", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return 2, nil
		}).
		Add("b", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return 3, nil
		}).
		Add("mul", []string{"a", "b"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return deps["a"].(int) * deps["b"].(int), nil
		}).
		Add("add", []string{"mul", "a"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return deps["mul"].(int) + deps["a"].(int), nil
		})
	res, err := g.Run(context.Background(), rt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, err := repro.Value[int](res, "add")
	if err != nil || v != 8 {
		t.Fatalf("add = %v, %v; want 8, nil", v, err)
	}
	if _, err := repro.Value[string](res, "add"); err == nil {
		t.Fatal("Value with wrong type must error")
	}
	if _, err := repro.Value[int](res, "nope"); err == nil {
		t.Fatal("Value of unknown task must error")
	}
}

// TestGraphErrorPropagation: a failing task skips its transitive
// dependents; with CollectAll, independent branches still run and the
// dependents' errors wrap the dependency's.
func TestGraphErrorPropagation(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4), repro.WithErrorPolicy(repro.CollectAll))
	defer rt.Close()

	boom := errors.New("boom")
	branchRan := false
	depRan := false
	g := repro.NewGraph().
		Add("bad", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return nil, boom
		}).
		Add("branch", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			branchRan = true
			return "ok", nil
		}).
		Add("dep", []string{"bad"}, func(c *repro.Ctx, _ map[string]any) (any, error) {
			depRan = true
			return nil, nil
		}).
		Add("dep2", []string{"dep", "branch"}, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return nil, nil
		})
	res, err := g.Run(context.Background(), rt)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if !branchRan {
		t.Fatal("independent branch did not run under CollectAll")
	}
	if depRan {
		t.Fatal("dependent of failed task ran")
	}
	for _, name := range []string{"dep", "dep2"} {
		if !errors.Is(res[name].Err, boom) {
			t.Fatalf("%s error = %v, does not wrap cause", name, res[name].Err)
		}
	}
	if res["branch"].Err != nil || res["branch"].Value != "ok" {
		t.Fatalf("branch = %+v, want ok", res["branch"])
	}
}

// TestGraphFailFastDrain: under the default policy a failure drains
// unstarted graph tasks; every result carries an error explaining why.
func TestGraphFailFastDrain(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	boom := errors.New("boom")
	g := repro.NewGraph().
		Add("bad", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return nil, boom
		}).
		Add("dep", []string{"bad"}, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return nil, nil
		})
	res, err := g.Run(context.Background(), rt)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if !errors.Is(res["dep"].Err, boom) {
		t.Fatalf("dep error = %v, does not wrap cause", res["dep"].Err)
	}
	if rt.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d, want 0", rt.LiveTasks())
	}
}

// TestGraphPanicContainment: a panicking GraphFunc is contained as a
// *PanicError and propagates like any failure.
func TestGraphPanicContainment(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	g := repro.NewGraph().
		Add("boom", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			panic("graph-kaboom")
		}).
		Add("dep", []string{"boom"}, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return nil, nil
		})
	res, err := g.Run(context.Background(), rt)
	var pe *repro.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run error = %v, want *PanicError", err)
	}
	if !errors.As(res["dep"].Err, &pe) {
		t.Fatalf("dep error = %v, want to wrap *PanicError", res["dep"].Err)
	}
}

// TestGraphValidation covers the construction failure modes.
func TestGraphValidation(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()
	ctx := context.Background()
	nop := func(c *repro.Ctx, _ map[string]any) (any, error) { return nil, nil }

	if _, err := repro.NewGraph().Add("a", nil, nop).Add("a", nil, nop).Run(ctx, rt); err == nil {
		t.Fatal("duplicate task name must error")
	}
	if _, err := repro.NewGraph().Add("a", []string{"ghost"}, nop).Run(ctx, rt); err == nil {
		t.Fatal("unknown dependency must error")
	}
	if _, err := repro.NewGraph().Add("a", []string{"a"}, nop).Run(ctx, rt); err == nil {
		t.Fatal("self dependency must error")
	}
	g := repro.NewGraph().
		Add("a", []string{"c"}, nop).
		Add("b", []string{"a"}, nop).
		Add("c", []string{"b"}, nop)
	if _, err := g.Run(ctx, rt); err == nil {
		t.Fatal("cycle must error")
	}
}

// TestGraphCancellation: cancelling the context drains the whole graph.
func TestGraphCancellation(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	g := repro.NewGraph().
		Add("a", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			ran = true
			return nil, nil
		})
	res, err := g.Run(ctx, rt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("graph task ran under a cancelled context")
	}
	if !errors.Is(res["a"].Err, repro.ErrTaskSkipped) {
		t.Fatalf("a error = %v, want ErrTaskSkipped", res["a"].Err)
	}
}
