package repro_test

import (
	"testing"

	"repro"
)

// TestPublicAPIQuickstart exercises the façade exactly as the README's
// quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	var x float64
	rt.Run(func(c *repro.Ctx) {
		c.Spawn(func(*repro.Ctx) { x = 21 }, repro.Out(&x))
		c.Spawn(func(*repro.Ctx) { x *= 2 }, repro.InOut(&x))
		c.Taskwait()
	})
	if x != 42 {
		t.Fatalf("x = %v, want 42", x)
	}
}

func TestPublicAPIReductions(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	var sum, mx float64
	mx = -1e300
	rt.Run(func(c *repro.Ctx) {
		for i := 1; i <= 10; i++ {
			i := i
			c.Spawn(func(cc *repro.Ctx) {
				cc.ReductionBuffer(&sum)[0] += float64(i)
			}, repro.RedSum(&sum, 1))
			c.Spawn(func(cc *repro.Ctx) {
				buf := cc.ReductionBuffer(&mx)
				if float64(i) > buf[0] {
					buf[0] = float64(i)
				}
			}, repro.RedMax(&mx, 1))
		}
		c.Taskwait()
	})
	if sum != 55 || mx != 10 {
		t.Fatalf("sum=%v max=%v, want 55, 10", sum, mx)
	}
}

func TestPublicAPIVariants(t *testing.T) {
	for _, v := range []repro.Variant{
		repro.VariantOptimized, repro.VariantNoDTLock,
		repro.VariantNoWaitFreeDeps, repro.VariantNoJemalloc,
		repro.VariantGOMPLike, repro.VariantLLVMLike,
	} {
		rt := repro.NewVariant(v, 2, 1)
		var ran bool
		rt.Run(func(c *repro.Ctx) {
			c.Spawn(func(*repro.Ctx) { ran = true })
			c.Taskwait()
		})
		rt.Close()
		if !ran {
			t.Fatalf("%s: task did not run", v)
		}
	}
}

func TestPublicAPICommutative(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	var token float64
	var counter int64 // unsynchronized; commutative access must protect it
	rt.Run(func(c *repro.Ctx) {
		for i := 0; i < 64; i++ {
			c.Spawn(func(*repro.Ctx) { counter++ }, repro.Commutative(&token))
		}
		c.Taskwait()
	})
	if counter != 64 {
		t.Fatalf("counter = %d, want 64", counter)
	}
}
