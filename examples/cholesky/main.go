// Cholesky: the paper's canonical irregular task DAG. A tiled Cholesky
// factorization is expressed with four kernels whose ordering emerges
// entirely from tile accesses (potrf → trsm → syrk/gemm), then verified
// against the original matrix.
//
// Run with -n and -block to feel the granularity trade-off the paper
// studies: small tiles expose parallelism but stress the runtime, large
// tiles starve the workers.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro"
	"repro/internal/workloads"
)

func main() {
	n := flag.Int("n", 384, "matrix dimension")
	block := flag.Int("block", 32, "tile dimension (task granularity)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker threads")
	flag.Parse()

	rt := repro.New(repro.WithWorkers(*workers), repro.WithNUMANodes(2))
	defer rt.Close()

	w := workloads.NewCholesky(*n, *block)
	w.Reset()
	start := time.Now()
	if err := w.Run(rt); err != nil {
		fmt.Println("FAILED:", err)
		return
	}
	elapsed := time.Since(start)

	if err := w.Verify(); err != nil {
		fmt.Println("FAILED:", err)
		return
	}
	gflops := w.TotalWork() * 2 / elapsed.Seconds() / 1e9
	fmt.Printf("cholesky %dx%d, tiles %dx%d: %d tasks in %v (%.2f GFLOP/s), verified\n",
		*n, *n, *block, *block, w.Tasks(), elapsed.Round(time.Microsecond), gflops)
}
