// AMR: adaptive block refinement with weak accesses — the OmpSs-2
// nesting pattern the paper's dependency model exists for (§2.1). A
// coordinator task per block declares weakinout: it never blocks, but
// the strong child tasks it spawns (one per refined sub-block) inherit
// its chain position, so neighbouring blocks' tasks in the next sweep
// wait for exactly the children that touch their halo.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro"
)

func main() {
	nBlocks := flag.Int("blocks", 32, "number of mesh blocks")
	blockSize := flag.Int("bs", 1024, "cells per block")
	steps := flag.Int("steps", 6, "refinement sweeps")
	workers := flag.Int("workers", runtime.NumCPU(), "worker threads")
	flag.Parse()

	rt := repro.New(repro.WithWorkers(*workers))
	defer rt.Close()

	cells := make([]float64, *nBlocks**blockSize)
	for i := range cells {
		cells[i] = float64(i%97) / 97
	}
	rep := func(b int) *float64 { return &cells[b**blockSize] }

	smooth := func(lo, hi int) {
		prev := cells[lo]
		for i := lo + 1; i < hi-1; i++ {
			cur := cells[i]
			cells[i] = 0.25*prev + 0.5*cur + 0.25*cells[i+1]
			prev = cur
		}
	}

	err := rt.Run(func(c *repro.Ctx) {
		for s := 0; s < *steps; s++ {
			for b := 0; b < *nBlocks; b++ {
				s, b := s, b
				lo, hi := b**blockSize, (b+1)**blockSize
				refined := (s+b)%2 == 0
				specs := []repro.AccessSpec{repro.WeakInOut(rep(b))}
				if b > 0 {
					specs = append(specs, repro.In(rep(b-1)))
				}
				c.Spawn(func(cc *repro.Ctx) {
					if !refined {
						// Coarse block: do the work inline. (A weak
						// access permits touching the data as long as a
						// strong child covers it — here we keep it
						// simple and only the children write.)
						cc.Spawn(func(*repro.Ctx) { smooth(lo, hi) },
							repro.InOut(rep(b)))
						return
					}
					// Refined: four strong children sharing the block's
					// chain position through the weak parent.
					quarter := (hi - lo) / 4
					for q := 0; q < 4; q++ {
						qlo := lo + q*quarter
						qhi := qlo + quarter
						first := q == 0
						cc.Spawn(func(*repro.Ctx) { smooth(qlo, qhi) },
							func() repro.AccessSpec {
								if first {
									return repro.InOut(rep(b))
								}
								return repro.InOut(&cells[qlo])
							}())
					}
				}, specs...)
			}
		}
		c.Taskwait()
	})
	if err != nil {
		fmt.Println("FAILED:", err)
		return
	}

	sum := 0.0
	for _, v := range cells {
		sum += v
	}
	fmt.Printf("amr: %d blocks × %d cells, %d sweeps -> checksum %.6f\n",
		*nBlocks, *blockSize, *steps, sum)
	fmt.Println("weak parents coordinated", *nBlocks**steps, "block sweeps without ever blocking a worker")
}
