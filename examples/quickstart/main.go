// Quickstart: the data-flow execution model in a dozen lines. Three
// tasks chained purely by their declared accesses compute (x+1)*2 and
// read the result — no explicit synchronization anywhere.
package main

import (
	"fmt"
	"runtime"

	"repro"
)

func main() {
	rt := repro.New(repro.Config{Workers: runtime.NumCPU()})
	defer rt.Close()

	var x float64
	rt.Run(func(c *repro.Ctx) {
		// Producer: out(x).
		c.Spawn(func(*repro.Ctx) { x = 1 }, repro.Out(&x))
		// Transformer: inout(x) — waits for the producer.
		c.Spawn(func(*repro.Ctx) { x = (x + 1) * 2 }, repro.InOut(&x))
		// Consumer: in(x) — waits for the transformer.
		c.Spawn(func(*repro.Ctx) { fmt.Println("result:", x) }, repro.In(&x))
		c.Taskwait()
	})

	// Reductions: many tasks concurrently accumulate into privatized
	// buffers; the combined sum lands in `sum` when the domain closes.
	var sum float64
	rt.Run(func(c *repro.Ctx) {
		for i := 1; i <= 100; i++ {
			i := i
			c.Spawn(func(cc *repro.Ctx) {
				cc.ReductionBuffer(&sum)[0] += float64(i)
			}, repro.RedSum(&sum, 1))
		}
		c.Taskwait()
	})
	fmt.Println("sum 1..100 =", sum) // 5050
}
