// Quickstart: the data-flow execution model in a few dozen lines.
// Three tasks chained purely by their declared accesses compute
// (x+1)*2, a typed Future carries a result out of a root task, and a
// reduction accumulates across a hundred concurrent tasks — no
// explicit synchronization anywhere.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	rt := repro.New(repro.WithWorkers(runtime.NumCPU()))
	defer rt.Close()

	// Data-flow ordering: producer -> transformer -> consumer, chained
	// by their accesses on x. Run returns the submission's error (nil
	// here; a body panic or a Go/GoErr task error would surface).
	var x float64
	err := rt.Run(func(c *repro.Ctx) {
		// Producer: out(x).
		c.Spawn(func(*repro.Ctx) { x = 1 }, repro.Out(&x))
		// Transformer: inout(x) — waits for the producer.
		c.Spawn(func(*repro.Ctx) { x = (x + 1) * 2 }, repro.InOut(&x))
		// Consumer: in(x) — waits for the transformer.
		c.Spawn(func(*repro.Ctx) { fmt.Println("result:", x) }, repro.In(&x))
		c.Taskwait()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Typed futures: a root task returns a value; nested Go tasks
	// return theirs through futures consumed inside the body.
	f := repro.Submit(rt, func(c *repro.Ctx) (float64, error) {
		squares := make([]*repro.Future[float64], 0, 10)
		for i := 1; i <= 10; i++ {
			squares = append(squares, repro.Go(c, func(*repro.Ctx) (float64, error) {
				return float64(i * i), nil
			}))
		}
		c.Taskwait()
		total := 0.0
		for _, sq := range squares {
			v, err := sq.Wait(nil)
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	})
	total, err := f.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum of squares 1..10 =", total) // 385

	// Reductions: many tasks concurrently accumulate into privatized
	// buffers; the combined sum lands in `sum` when the domain closes.
	var sum float64
	rt.Run(func(c *repro.Ctx) {
		for i := 1; i <= 100; i++ {
			i := i
			c.Spawn(func(cc *repro.Ctx) {
				cc.ReductionBuffer(&sum)[0] += float64(i)
			}, repro.RedSum(&sum, 1))
		}
		c.Taskwait()
	})
	fmt.Println("sum 1..100 =", sum) // 5050
}
