// Pipeline: a streaming analytics pipeline built on the public API —
// the kind of irregular, multi-stage workload the paper's introduction
// motivates. Batches of samples flow through parse → filter → aggregate
// stages; stage tasks for different batches overlap, while per-batch
// ordering and a final commutative merge into shared statistics are
// enforced purely by data accesses.
package main

import (
	"fmt"
	"math"
	"runtime"

	"repro"
)

const (
	batches   = 64
	batchSize = 4096
)

func main() {
	rt := repro.New(repro.WithWorkers(runtime.NumCPU()))
	defer rt.Close()

	raw := make([][]float64, batches)    // stage 0 output
	parsed := make([][]float64, batches) // stage 1 output
	var statsSum, statsMax float64       // shared, commutatively merged
	statsMax = math.Inf(-1)
	var token float64 // commutative dependency handle for the stats

	err := rt.Run(func(c *repro.Ctx) {
		for b := 0; b < batches; b++ {
			b := b
			// Stage 1: produce a batch.
			c.Spawn(func(*repro.Ctx) {
				data := make([]float64, batchSize)
				for i := range data {
					data[i] = math.Sin(float64(b*batchSize+i) / 100)
				}
				raw[b] = data
			}, repro.Out(&raw[b]))

			// Stage 2: filter it (waits for stage 1 of the same batch
			// only; other batches proceed independently).
			c.Spawn(func(*repro.Ctx) {
				out := make([]float64, 0, batchSize)
				for _, v := range raw[b] {
					if v > 0 {
						out = append(out, v*v)
					}
				}
				parsed[b] = out
			}, repro.In(&raw[b]), repro.Out(&parsed[b]))

			// Stage 3: merge into the shared stats under a commutative
			// access — mutual exclusion, any order.
			c.Spawn(func(*repro.Ctx) {
				for _, v := range parsed[b] {
					statsSum += v
					if v > statsMax {
						statsMax = v
					}
				}
			}, repro.In(&parsed[b]), repro.Commutative(&token))
		}
		c.Taskwait()
	})
	if err != nil {
		fmt.Println("FAILED:", err)
		return
	}

	fmt.Printf("pipeline: %d batches × %d samples -> sum %.3f, max %.6f\n",
		batches, batchSize, statsSum, statsMax)

	// Serial check.
	var wantSum, wantMax float64
	wantMax = math.Inf(-1)
	for b := 0; b < batches; b++ {
		for i := 0; i < batchSize; i++ {
			v := math.Sin(float64(b*batchSize+i) / 100)
			if v > 0 {
				v *= v
				wantSum += v
				if v > wantMax {
					wantMax = v
				}
			}
		}
	}
	if math.Abs(wantSum-statsSum) > 1e-6*math.Abs(wantSum) || wantMax != statsMax {
		fmt.Printf("MISMATCH: want sum %.3f max %.6f\n", wantSum, wantMax)
		return
	}
	fmt.Println("verified against serial pipeline")
}
