// Graph: the declarative named-task layer over the dependency engine.
// A small analytics DAG — two independent loaders feeding a join, a
// model stage, and a report — runs with typed results; then the same
// graph runs with an injected failure under both error policies:
// fail-fast drains everything that hasn't started, while collect-all
// keeps independent branches running and skips only the failure's
// transitive dependents.
package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro"
)

func buildGraph(failLoad bool) *repro.Graph {
	return repro.NewGraph().
		Add("load-users", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			if failLoad {
				return nil, errors.New("users shard offline")
			}
			return []string{"ada", "grace", "edsger"}, nil
		}).
		Add("load-events", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return map[string]int{"ada": 3, "grace": 5, "edsger": 2}, nil
		}).
		Add("join", []string{"load-users", "load-events"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			users := deps["load-users"].([]string)
			events := deps["load-events"].(map[string]int)
			total := 0
			for _, u := range users {
				total += events[u]
			}
			return total, nil
		}).
		Add("model", []string{"join"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return float64(deps["join"].(int)) / 3, nil
		}).
		Add("report", []string{"model", "load-events"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return fmt.Sprintf("mean events/user: %.2f", deps["model"].(float64)), nil
		})
}

func main() {
	rt := repro.New(repro.WithWorkers(runtime.NumCPU()))
	defer rt.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Happy path: every task runs, results are typed out by name.
	res, err := buildGraph(false).Run(ctx, rt)
	if err != nil {
		fmt.Println("unexpected error:", err)
		return
	}
	report, _ := repro.Value[string](res, "report")
	fmt.Println("ok:", report)

	// Failure path, fail-fast (the default): "load-users" fails, the
	// submission is cancelled, and every task that had not started —
	// dependents and independent branches alike — is drained.
	res, err = buildGraph(true).Run(ctx, rt)
	fmt.Println("\nfailing loader, fail-fast:")
	printResults(res, err)

	// Failure path, collect-all: independent branches still run; only
	// the failure's transitive dependents are skipped, each with an
	// error wrapping its dependency's.
	ca := repro.New(
		repro.WithWorkers(runtime.NumCPU()),
		repro.WithErrorPolicy(repro.CollectAll),
	)
	defer ca.Close()
	res, err = buildGraph(true).Run(ctx, ca)
	fmt.Println("\nfailing loader, collect-all:")
	printResults(res, err)
}

func printResults(res map[string]repro.Result, err error) {
	fmt.Println("  run error:", err)
	for _, name := range []string{"load-users", "load-events", "join", "model", "report"} {
		r := res[name]
		if r.Err != nil {
			fmt.Printf("  %-12s skipped/failed: %v\n", name, r.Err)
		} else {
			fmt.Printf("  %-12s ok: %v\n", name, r.Value)
		}
	}
}
