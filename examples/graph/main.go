// Graph: the declarative named-task layer over the dependency engine.
// A small analytics DAG — two independent loaders feeding a join, a
// model stage, and a report — runs with typed results; then the same
// graph runs with an injected failure under both error policies:
// fail-fast drains everything that hasn't started, while collect-all
// keeps independent branches running and skips only the failure's
// transitive dependents. Finally the same DAG becomes a serving
// template: compiled once with per-node latency stats, memoizing the
// pure loaders, and instantiated per request by concurrent clients.
package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro"
)

func buildGraph(failLoad bool) *repro.Graph {
	return repro.NewGraph().
		Add("load-users", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			if failLoad {
				return nil, errors.New("users shard offline")
			}
			return []string{"ada", "grace", "edsger"}, nil
		}).
		Add("load-events", nil, func(c *repro.Ctx, _ map[string]any) (any, error) {
			return map[string]int{"ada": 3, "grace": 5, "edsger": 2}, nil
		}).
		Add("join", []string{"load-users", "load-events"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			users := deps["load-users"].([]string)
			events := deps["load-events"].(map[string]int)
			total := 0
			for _, u := range users {
				total += events[u]
			}
			return total, nil
		}).
		Add("model", []string{"join"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return float64(deps["join"].(int)) / 3, nil
		}).
		Add("report", []string{"model", "load-events"}, func(c *repro.Ctx, deps map[string]any) (any, error) {
			return fmt.Sprintf("mean events/user: %.2f", deps["model"].(float64)), nil
		})
}

func main() {
	rt := repro.New(repro.WithWorkers(runtime.NumCPU()))
	defer rt.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Happy path: every task runs, results are typed out by name.
	res, err := buildGraph(false).Run(ctx, rt)
	if err != nil {
		fmt.Println("unexpected error:", err)
		return
	}
	report, _ := repro.Value[string](res, "report")
	fmt.Println("ok:", report)

	// Failure path, fail-fast (the default): "load-users" fails, the
	// submission is cancelled, and every task that had not started —
	// dependents and independent branches alike — is drained.
	res, err = buildGraph(true).Run(ctx, rt)
	fmt.Println("\nfailing loader, fail-fast:")
	printResults(res, err)

	// Failure path, collect-all: independent branches still run; only
	// the failure's transitive dependents are skipped, each with an
	// error wrapping its dependency's.
	ca := repro.New(
		repro.WithWorkers(runtime.NumCPU()),
		repro.WithErrorPolicy(repro.CollectAll),
	)
	defer ca.Close()
	res, err = buildGraph(true).Run(ctx, ca)
	fmt.Println("\nfailing loader, collect-all:")
	printResults(res, err)

	serveCompiled(ctx, rt)
}

// serveCompiled is the serving fast path: validate, cycle-check and
// freeze the DAG once (Compile), then instantiate it per request from
// pooled frames (Do) — here from several concurrent clients sharing one
// template. The loaders are marked pure, so after the first request
// they are memoized and every later request skips straight to the
// join; WithNodeStats hangs a per-node latency histogram off the
// template.
func serveCompiled(ctx context.Context, rt *repro.Runtime) {
	g := buildGraph(false).
		MarkPure("load-users").
		MarkPure("load-events")
	cg, err := g.Compile(rt, repro.WithNodeStats(nil))
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	reportIdx, _ := cg.NodeIndex("report") // string-free result access

	const clients, requests = 4, 2000
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < requests/clients; r++ {
				e, err := cg.Do(ctx)
				if err != nil {
					fmt.Println("request failed:", err)
					e.Release()
					return
				}
				if _, err := e.ValueAt(reportIdx); err != nil {
					fmt.Println("report missing:", err)
				}
				e.Release() // frame back to the pool
			}
		}()
	}
	wg.Wait()

	fmt.Printf("\nserved %d requests through the compiled template:\n", requests)
	for _, name := range []string{"load-users", "join", "model", "report"} {
		h := cg.NodeLatency(name)
		fmt.Printf("  %-12s %6d samples  p50 %6dns  p99 %6dns  mean %6.0fns\n",
			name, h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Mean())
	}
	fmt.Println("  (load-users ran once: memoized hits record 0ns)")
}

func printResults(res map[string]repro.Result, err error) {
	fmt.Println("  run error:", err)
	for _, name := range []string{"load-users", "load-events", "join", "model", "report"} {
		r := res[name]
		if r.Err != nil {
			fmt.Printf("  %-12s skipped/failed: %v\n", name, r.Err)
		} else {
			fmt.Printf("  %-12s ok: %v\n", name, r.Value)
		}
	}
}
