// Heatmap: the Gauss-Seidel heat solver with the wavefront dependency
// pattern, plus a live look at the instrumentation backend: the run is
// traced and rendered as the ASCII timeline of paper Figures 10-11.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	n := flag.Int("n", 256, "grid side")
	block := flag.Int("block", 32, "tile side")
	steps := flag.Int("steps", 8, "Gauss-Seidel sweeps")
	workers := flag.Int("workers", runtime.NumCPU(), "worker threads")
	flag.Parse()

	rt := repro.New(
		repro.WithWorkers(*workers),
		repro.WithNUMANodes(2),
		repro.WithTracing(1<<16),
	)
	defer rt.Close()

	w := workloads.NewHeat(*n, *block, *steps)
	w.Reset()
	if err := w.Run(rt); err != nil {
		fmt.Println("FAILED:", err)
		return
	}
	if err := w.Verify(); err != nil {
		fmt.Println("FAILED:", err)
		return
	}

	tr := rt.Tracer().Snapshot()
	sum := trace.Analyze(tr)
	fmt.Printf("heat %dx%d, %d sweeps, tiles %dx%d: %d tasks, verified\n\n",
		*n, *n, *steps, *block, *block, w.Tasks())
	fmt.Print(sum.String())
	fmt.Println()
	fmt.Print(trace.Timeline(tr, 96))
}
