// Command taskloop demonstrates the work-sharing loop API: ForEach for
// chunked parallel iteration, ForReduce for typed privatized
// reductions, WithGrain/WithAccesses tuning, and a Graph loop node.
package main

import (
	"context"
	"fmt"
	"math"

	"repro"
)

func main() {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	// ForEach: one logical loop task over [0, n), executed in chunks by
	// however many workers are idle. The call returns when every chunk
	// has completed.
	const n = 1 << 20
	data := make([]float64, n)
	if err := repro.ForEach(rt, 0, n, func(_ *repro.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = math.Sqrt(float64(i))
		}
	}); err != nil {
		panic(err)
	}
	fmt.Printf("ForEach:   data[%d] = %.3f\n", n-1, data[n-1])

	// ForReduce: each worker accumulates into a private slot (no atomics
	// anywhere on the hot path); the partials are combined once, after
	// the last chunk. The identity must be neutral for the combine.
	sum, err := repro.ForReduce(rt, 0, n, 0.0,
		func(a, b float64) float64 { return a + b },
		func(_ *repro.Ctx, lo, hi int, acc *float64) {
			for i := lo; i < hi; i++ {
				*acc += data[i]
			}
		},
		repro.WithGrain(4096))
	if err != nil {
		panic(err)
	}
	fmt.Printf("ForReduce: sum = %.3f\n", sum)

	// Typed accumulators work too: find the argmax without any shared
	// state between workers.
	type peak struct {
		v   float64
		idx int
	}
	top, err := repro.ForReduce(rt, 0, n, peak{v: math.Inf(-1), idx: -1},
		func(a, b peak) peak {
			if b.v > a.v {
				return b
			}
			return a
		},
		func(_ *repro.Ctx, lo, hi int, acc *peak) {
			for i := lo; i < hi; i++ {
				if v := data[i] * float64(i%17); v > acc.v {
					*acc = peak{v: v, idx: i}
				}
			}
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("argmax:    data[%d]*w = %.3f\n", top.idx, top.v)

	// Loops compose with the dependency system: WithAccesses orders the
	// whole loop — one logical task — against other tasks, and
	// Graph.AddLoop drops a loop between named graph nodes.
	hist := make([]float64, 64)
	res, err := repro.NewGraph().
		Add("clear", nil, func(*repro.Ctx, map[string]any) (any, error) {
			clear(hist)
			return nil, nil
		}).
		AddLoop("scale", []string{"clear"}, 0, n, func(_ *repro.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] *= 0.5
			}
		}).
		Add("checksum", []string{"scale"}, func(*repro.Ctx, map[string]any) (any, error) {
			s := 0.0
			for _, v := range data {
				s += v
			}
			return s, nil
		}).
		Run(context.Background(), rt)
	if err != nil {
		panic(err)
	}
	half, _ := repro.Value[float64](res, "checksum")
	fmt.Printf("graph:     halved sum = %.3f (×2 = %.3f)\n", half, 2*half)
}
