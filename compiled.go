package repro

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counter"
)

// Histogram is the runtime's zero-allocation log-scale latency
// histogram (Record is one atomic add; Quantile/Mean/Count are
// cold-path merges). CompiledGraph.NodeLatency returns one per node
// when the template was compiled with WithNodeStats.
type Histogram = counter.Histogram

// CompiledGraph is the compile-once / instantiate-per-request form of a
// Graph: Compile validates, cycle-checks and topologically freezes the
// DAG into an immutable index-based node table, and Do stamps one
// execution per request from pooled frames — result slots, task shells
// from the runtime's allocator and a recycled error scope — so a
// steady-state request allocates nothing. A template is immutable and
// safe for concurrent Do from any number of goroutines; it is bound to
// the runtime it was compiled for.
//
// Where the interpreted path re-derives the name-level ordering per
// request through the address-matched dependency system (one sentinel
// byte per node, In/Out access chains), Compile resolves those edges
// once: each node carries its successor indices, and a frame holds one
// join counter per node, reset per request. A node's task spawns with
// no accesses at all — the cheapest path through the runtime — and its
// completion decrements each successor's counter, spawning the ones
// that reach zero. The differential test against the interpreted path
// pins the equivalence. Fan-in/fan-out width does not affect the
// zero-allocation property.
type CompiledGraph struct {
	rt    *Runtime
	nodes []cnode
	index map[string]int // name → topological index; off the hot path

	// roots are the in-degree-zero node indices the request's root task
	// spawns; everything else is spawned by its last-completing
	// dependency. spec, when non-nil, carries one explicit priority
	// clause per node: spawns inherit the spawning task's priority, so
	// a template with any elevated node pins every node's level
	// explicitly (shared read-only slices, passed to Spawn verbatim).
	// When any node has a deadline (hasDL), each spec additionally
	// carries a deadline clause at index 1 — but deadlines are absolute
	// per request, so frames then use a private mutable copy of spec,
	// restamped in begin (the template's slices stay read-only).
	roots []int32
	spec  [][]AccessSpec
	hasDL bool

	// frames pools per-request execution state; see GraphExec.
	frames sync.Pool

	// memoVer is the memoization epoch: a memo entry is valid only if
	// stamped with the current version, and Invalidate bumps it. memo
	// has one slot per node, used only by effectively-pure nodes.
	memoVer atomic.Uint64
	memo    []atomic.Pointer[memoEntry]

	// stats/statsOn/hists implement WithNodeStats; hists has one
	// per-worker-sharded histogram per node.
	stats   func(NodeStat)
	statsOn bool
	hists   []*Histogram
}

// cnode is one frozen node: everything Do needs, resolved to
// topological indices at compile time — no string maps on the hot path.
type cnode struct {
	name  string
	fn    GraphFunc
	deps  []int32 // topological indices of dependencies (the join count)
	succs []int32 // topological indices of dependents
	pri   int
	dl    time.Duration // request-relative deadline; 0 = none
	pure  bool          // MarkPure and every transitive dependency pure
}

// memoEntry is one memoized pure-node result, valid while ver matches
// the template's memoVer.
type memoEntry struct {
	ver uint64
	val any
}

// Compile freezes the graph into a CompiledGraph bound to rt,
// reporting construction errors (duplicate names, unknown or self
// dependencies, cycles) exactly as Run does. The template snapshots
// the builder: later Graph mutations do not affect it. An option-free
// compile is cached on the Graph (and invalidated by mutation), so
// repeated Compile/Run calls share one template and frame pool;
// compiles with options always build a fresh template.
func (g *Graph) Compile(rt *Runtime, opts ...CompileOption) (*CompiledGraph, error) {
	if len(opts) == 0 && g.compiled != nil && g.compiled.rt == rt {
		return g.compiled, nil
	}
	order, err := g.validate()
	if err != nil {
		return nil, err
	}
	cg := &CompiledGraph{rt: rt, index: make(map[string]int, len(order))}
	for i, n := range order {
		cg.index[n.name] = i
	}
	cg.nodes = make([]cnode, len(order))
	elevated := false
	for i, n := range order {
		cn := &cg.nodes[i]
		cn.name = n.name
		cn.fn = n.fn
		cn.pri = n.pri
		cn.dl = n.dl
		elevated = elevated || n.pri != 0
		cg.hasDL = cg.hasDL || n.dl != 0
		cn.deps = make([]int32, len(n.deps))
		// Dependencies precede dependents in topological order, so
		// their effective purity (and this node's successor edges)
		// resolve in one pass.
		pure := n.pure
		for j, d := range n.deps {
			di := cg.index[d]
			cn.deps[j] = int32(di)
			cg.nodes[di].succs = append(cg.nodes[di].succs, int32(i))
			pure = pure && cg.nodes[di].pure
		}
		cn.pure = pure
		if len(n.deps) == 0 {
			cg.roots = append(cg.roots, int32(i))
		}
	}
	if elevated || cg.hasDL {
		cg.spec = make([][]AccessSpec, len(order))
		for i := range cg.nodes {
			cg.spec[i] = []AccessSpec{WithPriority(cg.nodes[i].pri)}
			if cg.hasDL {
				// Index 1 is the deadline clause by convention; Len 0
				// means "no deadline" and is only overwritten — per
				// request, on the frame's private copy — for nodes with
				// a relative deadline (begin).
				cg.spec[i] = append(cg.spec[i], WithDeadlineAt(0))
			}
		}
	}
	cg.memo = make([]atomic.Pointer[memoEntry], len(order))
	for _, o := range opts {
		o(cg)
	}
	if cg.statsOn {
		cg.hists = make([]*Histogram, len(order))
		for i := range cg.hists {
			// Sized by the full thread-index space, not the worker
			// count: node bodies execute on inline-serving submitter
			// slots too (Runtime.Slots).
			cg.hists[i] = counter.NewHistogram(rt.Slots())
		}
	}
	cg.frames.New = func() any { return cg.newFrame() }
	if len(opts) == 0 {
		g.compiled = cg
	}
	return cg, nil
}

// Len returns the node count.
func (cg *CompiledGraph) Len() int { return len(cg.nodes) }

// NodeIndex resolves a task name to its topological node index, for
// string-free result access via GraphExec.ValueAt in serving loops.
func (cg *CompiledGraph) NodeIndex(name string) (int, bool) {
	i, ok := cg.index[name]
	return i, ok
}

// NodeName returns the name of the node at topological index i.
func (cg *CompiledGraph) NodeName(i int) string { return cg.nodes[i].name }

// NodeLatency returns the named node's latency histogram
// (nanoseconds), or nil when the template was compiled without
// WithNodeStats or the name is unknown. Memoized hits record 0.
func (cg *CompiledGraph) NodeLatency(name string) *Histogram {
	if cg.hists == nil {
		return nil
	}
	i, ok := cg.index[name]
	if !ok {
		return nil
	}
	return cg.hists[i]
}

// Invalidate drops every memoized pure-node result: the next request
// recomputes them (and re-memoizes under the new version). Safe to
// call concurrently with Do.
func (cg *CompiledGraph) Invalidate() { cg.memoVer.Add(1) }

// Do executes one request against the template: it instantiates a
// pooled frame, submits the DAG as one root task and blocks until the
// whole request completed, failed, or drained. The returned GraphExec
// holds the per-node results — read them with Value/ValueAt, then
// Release the frame back to the pool. The error is the request's
// aggregate (nil when every node succeeded), also available as
// GraphExec.Err; cancellation and FailFast/CollectAll behave exactly
// as in Graph.Run. Steady-state Do allocates nothing beyond what the
// node bodies themselves allocate.
func (cg *CompiledGraph) Do(ctx context.Context) (*GraphExec, error) {
	return cg.do(ctx, 0)
}

// DoTimeout is Do with a per-request deadline on the runtime's timer
// wheel: if the request has not completed after d, its scope is
// cancelled — not-yet-started nodes drain with ErrTaskSkipped wrapping
// context.DeadlineExceeded — and DoTimeout still waits for the full
// drain before returning, so the frame is quiescent and reusable.
// Nodes whose bodies already started run to completion (poll Ctx.Err
// to stop early). d ≤ 0 means no deadline; a deadline costs one timer
// registration per request on top of Do.
func (cg *CompiledGraph) DoTimeout(ctx context.Context, d time.Duration) (*GraphExec, error) {
	return cg.do(ctx, d)
}

func (cg *CompiledGraph) do(ctx context.Context, d time.Duration) (*GraphExec, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := cg.frames.Get().(*GraphExec)
	e.begin()
	cg.rt.SubmitReq(ctx, e.req, d, e.root)
	e.err = e.req.Wait()
	return e, e.err
}

// GraphExec is one pooled per-request execution frame of a
// CompiledGraph: the per-node result slots of one Do, plus the
// pre-stamped state that makes instantiation allocation-free — join
// counters reset per request, node bodies bound to (frame, index)
// once, and dependency-value maps whose key sets are stable so
// per-request writes never grow them.
//
// A frame is owned by exactly one request at a time: Do hands it out,
// Release returns it to the template's pool. After Release the frame's
// values are invalid and no method may be called until a future Do
// hands it out again. Concurrent Do calls use distinct frames, so the
// counters of in-flight requests never interact.
type GraphExec struct {
	cg  *CompiledGraph
	req *core.Req

	// pending is the per-request join counter of each node, initialized
	// to the dependency count and decremented once per completed
	// dependency; the decrement to zero spawns the node. The atomic
	// read-modify-write chain on a counter is also the happens-before
	// edge that publishes every dependency's result slot to the node's
	// body.
	pending []atomic.Int32
	bodies  []func(*Ctx)
	root    func(*Ctx)
	depm    []map[string]any

	// spec is the frame's private copy of the template's access specs,
	// present only when the template has deadline nodes: deadlines are
	// absolute, so begin restamps each deadline clause to "request start
	// + node offset" here, never on the shared template slices.
	spec [][]AccessSpec

	vals  []any
	errs  []error
	state []uint8

	err error // aggregate of the last Do
}

// Per-node outcome states; nodeNotRun means the node's task was
// drained without executing (valueAt reports the skip).
const (
	nodeNotRun uint8 = iota
	nodeOK
	nodeFailed
)

// newFrame builds one execution frame: the only per-frame allocations
// of the serving path, amortized away by the pool.
func (cg *CompiledGraph) newFrame() *GraphExec {
	n := len(cg.nodes)
	e := &GraphExec{
		cg:      cg,
		req:     core.NewReq(),
		pending: make([]atomic.Int32, n),
		bodies:  make([]func(*Ctx), n),
		depm:    make([]map[string]any, n),
		vals:    make([]any, n),
		errs:    make([]error, n),
		state:   make([]uint8, n),
	}
	if cg.hasDL {
		e.spec = make([][]AccessSpec, n)
		for i := range cg.spec {
			e.spec[i] = append([]AccessSpec(nil), cg.spec[i]...)
		}
	}
	for i := range cg.nodes {
		cn := &cg.nodes[i]
		e.depm[i] = make(map[string]any, len(cn.deps))
		// The body wrapper decrements each successor's join counter
		// after runNode — whatever the node's outcome — and spawns the
		// successors it completes. A drained task never runs its body,
		// so its successors stay unspawned and report the skip.
		e.bodies[i] = func(c *Ctx) {
			e.runNode(c, i)
			for _, s := range cn.succs {
				if e.pending[s].Add(-1) == 0 {
					e.spawnNode(c, int(s))
				}
			}
		}
	}
	e.root = func(c *Ctx) {
		for _, i := range cg.roots {
			e.spawnNode(c, int(i))
		}
		c.Taskwait()
	}
	return e
}

// spawnNode spawns node i's task: access-free, with explicit priority
// (and, on deadline templates, deadline) clauses when the template has
// any elevated or deadlined node (spawns inherit the spawning task's
// level otherwise). The frame's restamped spec wins over the template's.
func (e *GraphExec) spawnNode(c *Ctx, i int) {
	if spec := e.spec; spec != nil {
		c.Spawn(e.bodies[i], spec[i]...)
	} else if spec := e.cg.spec; spec != nil {
		c.Spawn(e.bodies[i], spec[i]...)
	} else {
		c.Spawn(e.bodies[i])
	}
}

// begin readies a pooled frame for the next request. On deadline
// templates it also stamps each deadlined node's absolute deadline as
// "now + offset" into the frame's private spec copy (deadline-less
// nodes keep Len 0 — no deadline — which also clears any deadline the
// spawning task would otherwise pass down).
func (e *GraphExec) begin() {
	clear(e.vals)
	clear(e.errs)
	clear(e.state)
	e.err = nil
	for i := range e.pending {
		e.pending[i].Store(int32(len(e.cg.nodes[i].deps)))
	}
	if e.spec != nil {
		base := core.NowNS()
		for i := range e.cg.nodes {
			if dl := e.cg.nodes[i].dl; dl != 0 {
				e.spec[i][1].Len = int(base + dl.Nanoseconds())
			}
		}
	}
}

// runNode is the per-request body of node i, mirroring the interpreted
// path's semantics: short-circuit on a failed dependency (recorded
// locally only — the originating error already reached the scope),
// contain panics, route failures into the scope via Ctx.Fail.
func (e *GraphExec) runNode(c *Ctx, i int) {
	cg := e.cg
	cn := &cg.nodes[i]
	for _, d := range cn.deps {
		if de := e.errs[d]; de != nil {
			e.errs[i] = fmt.Errorf("repro: dependency %q of task %q: %w",
				cg.nodes[d].name, cn.name, de)
			e.state[i] = nodeFailed
			return
		}
	}
	if cn.pure {
		if m := cg.memo[i].Load(); m != nil && m.ver == cg.memoVer.Load() {
			e.vals[i] = m.val
			e.state[i] = nodeOK
			if cg.statsOn {
				cg.observe(c, i, 0, nil, true)
			}
			return
		}
	}
	m := e.depm[i]
	for _, d := range cn.deps {
		m[cg.nodes[d].name] = e.vals[d]
	}
	var t0 time.Time
	if cg.statsOn {
		t0 = time.Now()
	}
	v, err := runProtected(c, cn.fn, m)
	if cg.statsOn {
		cg.observe(c, i, time.Since(t0), err, false)
	}
	if err != nil {
		e.errs[i] = fmt.Errorf("repro: graph task %q: %w", cn.name, err)
		e.state[i] = nodeFailed
		c.Fail(e.errs[i])
		return
	}
	e.vals[i] = v
	e.state[i] = nodeOK
	if cn.pure {
		// Racing requests may both compute (the fn is pure, so both
		// values agree); the version loaded before the store keeps an
		// Invalidate racing with the computation conservative — a stale
		// version just forces the next request to recompute.
		cg.memo[i].Store(&memoEntry{ver: cg.memoVer.Load(), val: v})
	}
}

// runProtected runs fn with the interpreted path's panic containment,
// so a panicking node fails its request instead of the worker.
func runProtected(c *Ctx, fn GraphFunc, deps map[string]any) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &core.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(c, deps)
}

// observe records one node sample: the per-node histogram, then the
// hook (on the executing worker — keep it cheap and concurrency-safe).
func (cg *CompiledGraph) observe(c *Ctx, i int, d time.Duration, err error, memoized bool) {
	cg.hists[i].Record(c.Worker(), d.Nanoseconds())
	if cg.stats != nil {
		cg.stats(NodeStat{
			Name:     cg.nodes[i].name,
			Index:    i,
			Worker:   c.Worker(),
			Elapsed:  d,
			Err:      err,
			Memoized: memoized,
		})
	}
}

// Err returns the request's aggregate error, as returned by Do.
func (e *GraphExec) Err() error { return e.err }

// Value returns task name's result from this execution: its value, or
// the error that failed or skipped it (semantics identical to the
// Result map of Graph.Run).
func (e *GraphExec) Value(name string) (any, error) {
	i, ok := e.cg.index[name]
	if !ok {
		return nil, fmt.Errorf("repro: graph has no task %q", name)
	}
	return e.valueAt(i)
}

// ValueAt is Value by topological node index (NodeIndex): the
// string-free variant for hot serving loops.
func (e *GraphExec) ValueAt(i int) (any, error) {
	if i < 0 || i >= len(e.vals) {
		return nil, fmt.Errorf("repro: graph node index %d out of range", i)
	}
	return e.valueAt(i)
}

func (e *GraphExec) valueAt(i int) (any, error) {
	switch e.state[i] {
	case nodeOK:
		return e.vals[i], nil
	case nodeFailed:
		return nil, e.errs[i]
	}
	// Never ran: the node's task was drained (cancellation, deadline,
	// or a FailFast failure elsewhere), or the root itself was skipped.
	// The aggregate carries the cause.
	if e.err == nil {
		return nil, core.ErrTaskSkipped
	}
	return nil, fmt.Errorf("%w: %w", core.ErrTaskSkipped, e.err)
}

// Release returns the frame to the template's pool, dropping its
// result references. The execution's values and errors are invalid
// after Release; no method of e may be called again until a future Do
// hands the frame out.
func (e *GraphExec) Release() {
	clear(e.vals)
	clear(e.errs)
	e.err = nil
	e.cg.frames.Put(e)
}
