package repro_test

// The paper's evaluation, one benchmark per figure/table. Each
// Benchmark regenerates the corresponding experiment at quick scale and
// reports the paper's headline quantities as custom metrics:
//
//	BenchmarkFigure4..9        efficiency-vs-granularity panels
//	                           (finest-grain efficiency of the optimized
//	                           series, in %, as eff_fine_opt)
//	BenchmarkFigure10Traces    DTLock vs PTLock starvation percentages
//	BenchmarkFigure11Noise     interrupt count and serve-gap outlier
//	BenchmarkSection34*        DTLock vs PTLock scheduling speedup and
//	                           buffered vs serialized insertion speedup
//
// Absolute numbers depend on the host; the *shape* (who wins, where the
// fine-granularity cliff falls) is the reproduction target. Run
// cmd/repro -scale full for the paper-sized sweeps.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchWorkerLimit keeps simulated machines tractable on small hosts
// while preserving oversubscription-driven contention.
func benchWorkerLimit() int { return platform.DefaultLimit() }

func benchFigure(b *testing.B, name string) {
	def, ok := harness.FigureByName(name)
	if !ok {
		b.Fatalf("unknown figure %s", name)
	}
	for i := 0; i < b.N; i++ {
		panels, err := harness.RunFigure(def, harness.Quick, benchWorkerLimit(), 1, false, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Report the optimized/Nanos6 series' efficiency at the finest
		// granularity of the first panel: the paper's headline cell.
		first := panels[0]
		lead := first.Series[0]
		for _, s := range first.Series {
			if s.Label == "optimized" || s.Label == "Nanos6" {
				lead = s
			}
		}
		b.ReportMetric(lead.AtFinestGrain(), "eff_fine_opt_%")
		b.ReportMetric(lead.AtCoarsestGrain(), "eff_coarse_opt_%")
	}
}

func BenchmarkFigure4AblationXeon(b *testing.B)     { benchFigure(b, "figure4") }
func BenchmarkFigure5AblationRome(b *testing.B)     { benchFigure(b, "figure5") }
func BenchmarkFigure6AblationGraviton(b *testing.B) { benchFigure(b, "figure6") }
func BenchmarkFigure7RuntimesXeon(b *testing.B)     { benchFigure(b, "figure7") }
func BenchmarkFigure8RuntimesRome(b *testing.B)     { benchFigure(b, "figure8") }
func BenchmarkFigure9RuntimesGraviton(b *testing.B) { benchFigure(b, "figure9") }

func BenchmarkFigure10Traces(b *testing.B) {
	machine := platform.Machine{Name: "bench", Cores: benchWorkerLimit(), NUMANodes: 2}
	size := workloads.Size{N: 1 << 13, Steps: 4}
	for i := 0; i < b.N; i++ {
		dt, err := harness.RunTraced("DTLock", core.SchedSyncDTLock, machine, 0,
			size, 1<<7, core.NoiseConfig{})
		if err != nil {
			b.Fatal(err)
		}
		pt, err := harness.RunTraced("PTLock", core.SchedCentralPTLock, machine, 0,
			size, 1<<7, core.NoiseConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dt.Summary.StarvationPct(), "dtlock_starv_%")
		b.ReportMetric(pt.Summary.StarvationPct(), "ptlock_starv_%")
	}
}

func BenchmarkFigure11Noise(b *testing.B) {
	machine := platform.Machine{Name: "bench", Cores: benchWorkerLimit(), NUMANodes: 2}
	size := workloads.Size{N: 1 << 13, Steps: 4}
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTraced("noise", core.SchedSyncDTLock, machine, 0,
			size, 1<<7, core.NoiseConfig{AfterServes: 20, Duration: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		tot := res.Summary.Totals()
		b.ReportMetric(float64(tot.Interrupts), "interrupts")
		gaps := trace.ServeGaps(res.Trace)
		var maxGap float64
		for _, g := range gaps {
			if float64(g) > maxGap {
				maxGap = float64(g)
			}
		}
		b.ReportMetric(maxGap/1e6, "max_serve_gap_ms")
	}
}

func BenchmarkSection34SchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunSection34(benchWorkerLimit(), 20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SchedulingSpeedup, "dtlock_vs_ptlock_x")
		b.ReportMetric(r.InsertionSpeedup, "buffered_vs_serial_x")
		b.ReportMetric(r.DTLockOpsPerSec, "dtlock_tasks/s")
	}
}

// The task-lifecycle hot-path benchmarks (tier-2 set). Bodies live in
// internal/bench so cmd/benchjson snapshots exactly the same code into
// the BENCH_*.json perf trajectory.

// BenchmarkTaskSpawnOverhead measures bare task creation+completion cost
// on the optimized runtime: the per-task overhead floor that bounds the
// fine-granularity cliff of every figure.
func BenchmarkTaskSpawnOverhead(b *testing.B) { bench.SpawnOverhead(b) }

// BenchmarkSpawnChain measures the serialized two-access dependency
// chain: the spawn→ready→schedule→execute→complete round-trip that the
// successor-bypass optimization targets.
func BenchmarkSpawnChain(b *testing.B) { bench.SpawnChain(b) }

// BenchmarkFanOut measures a 64-wide writer→readers fan-out: bulk
// insertion and concurrent completion accounting.
func BenchmarkFanOut(b *testing.B) { bench.FanOut(b) }

// BenchmarkSpawnAllocs counts heap allocations per spawned task at the
// inline-access capacity (4 accesses); the acceptance target is 0.
func BenchmarkSpawnAllocs(b *testing.B) { bench.SpawnAllocs(b) }

// BenchmarkDependencyChainThroughput measures chained (serialized) task
// flow: dependency bookkeeping dominates, no parallelism available.
func BenchmarkDependencyChainThroughput(b *testing.B) { bench.DependencyChainThroughput(b) }

// BenchmarkConcurrentSubmit measures root-submission throughput with
// 1/4/16/64 concurrently submitting goroutines on independent cells:
// the sharded root domain's scaling benchmark (PR 3 acceptance compares
// it against the serialized RootShards=1 baseline; see BENCH_PR3.json).
func BenchmarkConcurrentSubmit(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("%dsubmitters", n), bench.ConcurrentSubmit(n))
	}
}
