package repro_test

// The paper's evaluation, one benchmark per figure/table. Each
// Benchmark regenerates the corresponding experiment at quick scale and
// reports the paper's headline quantities as custom metrics:
//
//	BenchmarkFigure4..9        efficiency-vs-granularity panels
//	                           (finest-grain efficiency of the optimized
//	                           series, in %, as eff_fine_opt)
//	BenchmarkFigure10Traces    DTLock vs PTLock starvation percentages
//	BenchmarkFigure11Noise     interrupt count and serve-gap outlier
//	BenchmarkSection34*        DTLock vs PTLock scheduling speedup and
//	                           buffered vs serialized insertion speedup
//
// Absolute numbers depend on the host; the *shape* (who wins, where the
// fine-granularity cliff falls) is the reproduction target. Run
// cmd/repro -scale full for the paper-sized sweeps.

import (
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchWorkerLimit keeps simulated machines tractable on small hosts
// while preserving oversubscription-driven contention.
func benchWorkerLimit() int { return platform.DefaultLimit() }

func benchFigure(b *testing.B, name string) {
	def, ok := harness.FigureByName(name)
	if !ok {
		b.Fatalf("unknown figure %s", name)
	}
	for i := 0; i < b.N; i++ {
		panels, err := harness.RunFigure(def, harness.Quick, benchWorkerLimit(), 1, false, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Report the optimized/Nanos6 series' efficiency at the finest
		// granularity of the first panel: the paper's headline cell.
		first := panels[0]
		lead := first.Series[0]
		for _, s := range first.Series {
			if s.Label == "optimized" || s.Label == "Nanos6" {
				lead = s
			}
		}
		b.ReportMetric(lead.AtFinestGrain(), "eff_fine_opt_%")
		b.ReportMetric(lead.AtCoarsestGrain(), "eff_coarse_opt_%")
	}
}

func BenchmarkFigure4AblationXeon(b *testing.B)     { benchFigure(b, "figure4") }
func BenchmarkFigure5AblationRome(b *testing.B)     { benchFigure(b, "figure5") }
func BenchmarkFigure6AblationGraviton(b *testing.B) { benchFigure(b, "figure6") }
func BenchmarkFigure7RuntimesXeon(b *testing.B)     { benchFigure(b, "figure7") }
func BenchmarkFigure8RuntimesRome(b *testing.B)     { benchFigure(b, "figure8") }
func BenchmarkFigure9RuntimesGraviton(b *testing.B) { benchFigure(b, "figure9") }

func BenchmarkFigure10Traces(b *testing.B) {
	machine := platform.Machine{Name: "bench", Cores: benchWorkerLimit(), NUMANodes: 2}
	size := workloads.Size{N: 1 << 13, Steps: 4}
	for i := 0; i < b.N; i++ {
		dt, err := harness.RunTraced("DTLock", core.SchedSyncDTLock, machine, 0,
			size, 1<<7, core.NoiseConfig{})
		if err != nil {
			b.Fatal(err)
		}
		pt, err := harness.RunTraced("PTLock", core.SchedCentralPTLock, machine, 0,
			size, 1<<7, core.NoiseConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dt.Summary.StarvationPct(), "dtlock_starv_%")
		b.ReportMetric(pt.Summary.StarvationPct(), "ptlock_starv_%")
	}
}

func BenchmarkFigure11Noise(b *testing.B) {
	machine := platform.Machine{Name: "bench", Cores: benchWorkerLimit(), NUMANodes: 2}
	size := workloads.Size{N: 1 << 13, Steps: 4}
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTraced("noise", core.SchedSyncDTLock, machine, 0,
			size, 1<<7, core.NoiseConfig{AfterServes: 20, Duration: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		tot := res.Summary.Totals()
		b.ReportMetric(float64(tot.Interrupts), "interrupts")
		gaps := trace.ServeGaps(res.Trace)
		var maxGap float64
		for _, g := range gaps {
			if float64(g) > maxGap {
				maxGap = float64(g)
			}
		}
		b.ReportMetric(maxGap/1e6, "max_serve_gap_ms")
	}
}

func BenchmarkSection34SchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunSection34(benchWorkerLimit(), 20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SchedulingSpeedup, "dtlock_vs_ptlock_x")
		b.ReportMetric(r.InsertionSpeedup, "buffered_vs_serial_x")
		b.ReportMetric(r.DTLockOpsPerSec, "dtlock_tasks/s")
	}
}

// BenchmarkTier2 runs the task-lifecycle hot-path set — spawn overhead,
// dependency chains, fan-out, allocation counts, concurrent root
// submission, taskloop work-sharing — as sub-benchmarks. The bodies AND
// the name list live in internal/bench (bench.Tier2), so `go test
// -bench Tier2`, cmd/benchjson's BENCH_*.json snapshots and the CI perf
// gate all iterate exactly the same set; earlier PRs duplicated the
// names here and in the CI grep pattern, and they drifted.
func BenchmarkTier2(b *testing.B) {
	for _, bm := range bench.Tier2 {
		b.Run(bm.Name, bm.F)
	}
}
