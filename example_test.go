package repro_test

import (
	"context"
	"fmt"
	"time"

	"repro"
)

// ExampleGraph_Compile compiles a named-task graph once and serves it
// repeatedly from pooled frames: the steady-state Do/Value/Release
// cycle allocates nothing.
func ExampleGraph_Compile() {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	g := repro.NewGraph().
		Add("fetch", nil, func(*repro.Ctx, map[string]any) (any, error) {
			return 20, nil
		}).
		Add("render", []string{"fetch"}, func(_ *repro.Ctx, deps map[string]any) (any, error) {
			return deps["fetch"].(int)*2 + 2, nil
		})
	cg, err := g.Compile(rt)
	if err != nil {
		panic(err)
	}
	for req := 0; req < 3; req++ {
		e, err := cg.Do(context.Background())
		if err != nil {
			panic(err)
		}
		v, _ := e.Value("render")
		fmt.Println(v)
		e.Release()
	}
	// Output:
	// 42
	// 42
	// 42
}

// ExampleCtx_Await joins a child future from inside a task body. Await
// executes other ready tasks on the worker while it waits, so blocking
// on a future never idles the pool (the typed wrapper repro.Await
// calls Ctx.Await underneath).
func ExampleCtx_Await() {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	err := rt.Run(func(c *repro.Ctx) {
		f := repro.Go(c, func(*repro.Ctx) (string, error) {
			return "hello", nil
		})
		v, err := repro.Await(c, f)
		fmt.Println(v, err)
	})
	if err != nil {
		panic(err)
	}
	// Output: hello <nil>
}

// ExampleWithPriority shows the priority clause ordering ready tasks:
// with the runtime's only worker held busy, a later MaxPriority
// submission overtakes an earlier default-priority one.
func ExampleWithPriority() {
	rt := repro.New(repro.WithWorkers(1))
	defer rt.Close()

	// Hold the only worker so the submissions below queue together.
	running, release := make(chan struct{}), make(chan struct{})
	gate := repro.Submit(rt, func(*repro.Ctx) (int, error) {
		close(running)
		<-release
		return 0, nil
	})
	<-running

	say := func(s string) func(*repro.Ctx) (string, error) {
		return func(*repro.Ctx) (string, error) { fmt.Println(s); return s, nil }
	}
	batch := repro.Submit(rt, say("batch"))
	interactive := repro.Submit(rt, say("interactive"),
		repro.WithPriority(repro.MaxPriority))
	close(release)
	interactive.Wait(nil)
	batch.Wait(nil)
	gate.Wait(nil)
	// Output:
	// interactive
	// batch
}

// ExampleWithDeadline shows earliest-deadline-first ordering on a
// WithEDF runtime: among queued tasks of the top priority level, the
// one whose deadline expires sooner runs first regardless of
// submission order.
func ExampleWithDeadline() {
	rt := repro.New(repro.WithWorkers(1), repro.WithEDF())
	defer rt.Close()

	running, release := make(chan struct{}), make(chan struct{})
	gate := repro.Submit(rt, func(*repro.Ctx) (int, error) {
		close(running)
		<-release
		return 0, nil
	})
	<-running

	say := func(s string) func(*repro.Ctx) (string, error) {
		return func(*repro.Ctx) (string, error) { fmt.Println(s); return s, nil }
	}
	relaxed := repro.Submit(rt, say("relaxed"),
		repro.WithPriority(repro.MaxPriority), repro.WithDeadline(time.Second))
	urgent := repro.Submit(rt, say("urgent"),
		repro.WithPriority(repro.MaxPriority), repro.WithDeadline(10*time.Millisecond))
	close(release)
	urgent.Wait(nil)
	relaxed.Wait(nil)
	gate.Wait(nil)
	// Output:
	// urgent
	// relaxed
}

// ExampleWithTopology shapes the worker pool topology-first: two
// runtime domains of two workers each, each domain with its own
// scheduler and allocator free lists, exchanging work only through
// the bounded shedding protocol. Stats reports the per-domain
// breakdown alongside the pool-wide totals.
func ExampleWithTopology() {
	rt := repro.New(repro.WithTopology(repro.Topology{
		Domains:          2,
		WorkersPerDomain: 2,
	}))
	defer rt.Close()

	if err := rt.Run(func(c *repro.Ctx) {
		for i := 0; i < 64; i++ {
			c.Spawn(func(*repro.Ctx) {})
		}
		c.Taskwait()
	}); err != nil {
		panic(err)
	}

	s := rt.Stats()
	fmt.Println("workers:", s.Workers)
	for d, ds := range s.Domains {
		fmt.Printf("domain %d: %d workers\n", d, ds.Workers)
	}
	// Output:
	// workers: 4
	// domain 0: 2 workers
	// domain 1: 2 workers
}
