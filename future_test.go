package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// TestFutureValue: a root task returns a value consumed through
// Future.Wait, including a nested Go future consumed inside the body.
func TestFutureValue(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	f := repro.Submit(rt, func(c *repro.Ctx) (int, error) {
		inner := repro.Go(c, func(*repro.Ctx) (int, error) { return 21, nil })
		c.Taskwait()
		v, err := inner.Wait(nil)
		if err != nil {
			return 0, err
		}
		return v * 2, nil
	})
	v, err := f.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if v != 42 {
		t.Fatalf("v = %d, want 42", v)
	}
}

// TestFutureDependencyOrdering: Submit roots with matching accesses are
// ordered like Run roots; the consumer future observes the producer's
// write.
func TestFutureDependencyOrdering(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	var x float64
	repro.Submit(rt, func(*repro.Ctx) (struct{}, error) {
		x = 21
		return struct{}{}, nil
	}, repro.Out(&x))
	f := repro.Submit(rt, func(*repro.Ctx) (float64, error) {
		return x * 2, nil
	}, repro.In(&x))
	v, err := f.Wait(nil)
	if err != nil || v != 42 {
		t.Fatalf("v, err = %v, %v; want 42, nil", v, err)
	}
}

// TestErrorPropagationChain: under the default fail-fast policy, an
// error in the head of a dependency chain drains the dependents without
// executing them, their futures report ErrTaskSkipped wrapping the
// cause, and Run returns the cause.
func TestErrorPropagationChain(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	boom := errors.New("boom")
	var x float64
	var bRan, cRan atomic.Bool
	var fb, fc *repro.Future[struct{}]
	err := rt.Run(func(c *repro.Ctx) {
		repro.GoErr(c, func(*repro.Ctx) error { return boom }, repro.Out(&x))
		fb = repro.GoErr(c, func(*repro.Ctx) error { bRan.Store(true); return nil }, repro.InOut(&x))
		fc = repro.GoErr(c, func(*repro.Ctx) error { cRan.Store(true); return nil }, repro.In(&x))
		c.Taskwait()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if bRan.Load() || cRan.Load() {
		t.Fatalf("dependent bodies ran (b=%v c=%v) despite fail-fast", bRan.Load(), cRan.Load())
	}
	for i, f := range []*repro.Future[struct{}]{fb, fc} {
		_, ferr := f.Wait(nil)
		if !errors.Is(ferr, repro.ErrTaskSkipped) {
			t.Fatalf("dependent %d error = %v, want ErrTaskSkipped", i, ferr)
		}
		if !errors.Is(ferr, boom) {
			t.Fatalf("dependent %d error = %v, does not wrap cause", i, ferr)
		}
	}
	if n := rt.LiveTasks(); n != 0 {
		t.Fatalf("LiveTasks = %d after drain, want 0", n)
	}
}

// TestCollectAllPolicy: with CollectAll every task runs and the root
// joins all the errors.
func TestCollectAllPolicy(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4), repro.WithErrorPolicy(repro.CollectAll))
	defer rt.Close()

	e1, e2 := errors.New("e1"), errors.New("e2")
	var ran atomic.Int64
	err := rt.Run(func(c *repro.Ctx) {
		repro.GoErr(c, func(*repro.Ctx) error { ran.Add(1); return e1 })
		repro.GoErr(c, func(*repro.Ctx) error { ran.Add(1); return e2 })
		repro.GoErr(c, func(*repro.Ctx) error { ran.Add(1); return nil })
		c.Taskwait()
	})
	if ran.Load() != 3 {
		t.Fatalf("ran = %d, want 3 (collect-all must not drain)", ran.Load())
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("Run error = %v, want join of e1 and e2", err)
	}
}

// TestPanicRecovery: a panicking body becomes a *PanicError on its
// future and at the root instead of crashing the worker pool.
func TestPanicRecovery(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	f := repro.Submit(rt, func(*repro.Ctx) (int, error) {
		panic("kaboom")
	})
	_, err := f.Wait(nil)
	var pe *repro.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait error = %v, want *PanicError", err)
	}
	if fmt.Sprint(pe.Value) != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}

	// A panic in a plain Spawn body surfaces through Run's error.
	err = rt.Run(func(c *repro.Ctx) {
		c.Spawn(func(*repro.Ctx) { panic("spawn-kaboom") })
		c.Taskwait()
	})
	if !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "spawn-kaboom" {
		t.Fatalf("Run error = %v, want *PanicError{spawn-kaboom}", err)
	}
	// The runtime stays usable after recovered panics.
	if err := rt.Run(func(c *repro.Ctx) {}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
}

// TestFutureWaitCancelledContext: Wait with an already-cancelled
// context returns the cancellation cause promptly while the task is
// still pending, and the result stays retrievable afterwards.
func TestFutureWaitCancelledContext(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	gate := make(chan struct{})
	f := repro.Submit(rt, func(*repro.Ctx) (int, error) {
		<-gate
		return 7, nil
	})

	cancelled, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("caller gave up")
	cancel(cause)
	if _, err := f.Wait(cancelled); !errors.Is(err, cause) {
		t.Fatalf("Wait(cancelled ctx) = %v, want %v", err, cause)
	}

	close(gate)
	v, err := f.Wait(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("Wait after gate = %v, %v; want 7, nil", v, err)
	}
	// A completed task wins over a cancelled context.
	if v, err := f.Wait(cancelled); err != nil || v != 7 {
		t.Fatalf("Wait(cancelled ctx, done task) = %v, %v; want 7, nil", v, err)
	}
}

// TestRunCtxCancelDrains is the acceptance scenario: a context
// cancellation drains every unstarted task of the submission — their
// bodies never execute, the dependency graph unwinds, RunCtx returns
// the cause, and LiveTasks reaches 0.
func TestRunCtxCancelDrains(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("deadline blown")

	gate := make(chan struct{})
	var executed atomic.Int64
	var head float64
	err := rt.RunCtx(ctx, func(c *repro.Ctx) {
		// Head task holds the chain closed until the gate drops (if a
		// worker picks it up before the cancel; either way no chained
		// task may execute).
		c.Spawn(func(*repro.Ctx) { <-gate }, repro.Out(&head))
		// A long chain behind it: every link is unstarted at cancel
		// time and must drain without executing.
		for i := 0; i < 200; i++ {
			c.Spawn(func(*repro.Ctx) { executed.Add(1) }, repro.InOut(&head))
		}
		cancel(cause)
		close(gate)
		c.Taskwait()
	})
	if !errors.Is(err, cause) {
		t.Fatalf("RunCtx error = %v, want cause %v", err, cause)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("%d chained tasks executed after cancel, want 0", n)
	}
	if n := rt.LiveTasks(); n != 0 {
		t.Fatalf("LiveTasks = %d after drain, want 0", n)
	}
}

// TestRunCtxAlreadyCancelled: a submission under a dead context never
// runs any body, including the root's.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := rt.RunCtx(ctx, func(c *repro.Ctx) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("root body ran under an already-cancelled context")
	}
	if n := rt.LiveTasks(); n != 0 {
		t.Fatalf("LiveTasks = %d, want 0", n)
	}
}

// TestCtxErrPolling: a started body observes the scope cancellation
// through Ctx.Err and can stop early.
func TestCtxErrPolling(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var stopped atomic.Bool
	go func() {
		<-started
		cancel()
	}()
	err := rt.RunCtx(ctx, func(c *repro.Ctx) {
		close(started)
		deadline := time.Now().Add(10 * time.Second)
		for c.Err() == nil {
			if time.Now().After(deadline) {
				return
			}
		}
		stopped.Store(true)
	})
	if !stopped.Load() {
		t.Fatal("body never observed Ctx.Err after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
}

// TestFailFastCancellationRace exercises the fail-fast drain under the
// race detector: many independent tasks while one fails early, run
// repeatedly across runtimes.
func TestFailFastCancellationRace(t *testing.T) {
	boom := errors.New("boom")
	for iter := 0; iter < 8; iter++ {
		rt := repro.New(repro.WithWorkers(4))
		var executed atomic.Int64
		err := rt.Run(func(c *repro.Ctx) {
			repro.GoErr(c, func(*repro.Ctx) error { return boom })
			for i := 0; i < 128; i++ {
				repro.GoErr(c, func(*repro.Ctx) error {
					executed.Add(1)
					return nil
				})
			}
			c.Taskwait()
		})
		if !errors.Is(err, boom) {
			t.Fatalf("iter %d: Run error = %v, want %v", iter, err, boom)
		}
		// Tasks that started before the failure may have run; the rest
		// drained. Both are valid — the invariant is full accounting.
		if n := rt.LiveTasks(); n != 0 {
			t.Fatalf("iter %d: LiveTasks = %d, want 0", iter, n)
		}
		rt.Close()
		_ = executed.Load()
	}
}
