package repro

import (
	"time"

	"repro/internal/core"
)

// Option configures a runtime built with New.
type Option func(*core.Config)

// New builds and starts a runtime from functional options; unset fields
// take the core defaults (workers = NumCPU, one NUMA node, the paper's
// optimized scheduler/deps/allocator, fail-fast errors). The caller
// must Close the runtime.
func New(opts ...Option) *Runtime {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return core.New(cfg)
}

// Topology is the one description of the worker pool's shape: how many
// NUMA runtime domains the runtime is sharded into, how many workers
// each domain owns, whether workers are pinned to OS threads, and how
// aggressively an idle domain may shed work from a loaded one. It is
// applied with WithTopology; the per-dimension options (WithWorkers,
// WithNUMANodes, WithPinnedWorkers) are thin wrappers over it.
//
// Zero fields leave the corresponding configuration untouched, so a
// Topology composes with other options regardless of order.
type Topology struct {
	// Domains is the number of NUMA runtime domains. Each domain owns
	// its own scheduler stack, allocator free lists, pending counters
	// and park/wake state; producers enqueue into their slot's home
	// domain and work crosses domains only through the bounded shedding
	// protocol. 0 selects 1 — the unsharded runtime, with no behavior
	// change against earlier releases. Clamped to the worker count and
	// to 64; the blocking scheduler forces 1.
	Domains int

	// WorkersPerDomain is the number of worker threads per domain: the
	// total pool is max(Domains, 1) * WorkersPerDomain workers, split
	// into contiguous per-domain blocks (see core/topology.go for the
	// partition). 0 leaves the worker count unset (NumCPU total).
	WorkersPerDomain int

	// NUMANodes is the number of SPSC insertion queues of each domain's
	// sync scheduler (§3.1: one queue and lock per NUMA node). It
	// shapes the scheduler *within* a domain — unrelated to Domains,
	// which shards the runtime itself. 0 leaves the default (1).
	NUMANodes int

	// PinWorkers locks each worker goroutine to an OS thread, the
	// closest Go equivalent of the paper's one-thread-per-core binding.
	// false leaves the configuration untouched (it never unpins).
	PinWorkers bool

	// ShedBatch bounds cross-domain work shedding: after two
	// consecutive empty polls of its home domain, a worker may steal at
	// most ShedBatch tasks from one remote domain before it must
	// re-earn the right with another empty-recheck cycle. 0 selects the
	// default (4).
	ShedBatch int
}

// WithTopology shapes the worker pool from a Topology. It is the
// documented way to size and shard the pool; see Topology for the field
// semantics. Only non-zero fields are applied:
//
//	// 2 domains × 4 workers, pinned, default shedding:
//	rt := repro.New(repro.WithTopology(repro.Topology{
//		Domains:          2,
//		WorkersPerDomain: 4,
//		PinWorkers:       true,
//	}))
func WithTopology(t Topology) Option {
	return func(c *core.Config) {
		if t.Domains > 0 {
			c.Domains = t.Domains
		}
		if t.WorkersPerDomain > 0 {
			d := t.Domains
			if d < 1 {
				d = 1
			}
			c.Workers = d * t.WorkersPerDomain
		}
		if t.NUMANodes > 0 {
			c.NUMANodes = t.NUMANodes
		}
		if t.PinWorkers {
			c.PinWorkers = true
		}
		if t.ShedBatch > 0 {
			c.ShedBatch = t.ShedBatch
		}
	}
}

// WithWorkers sets the number of worker threads (simulated cores).
// Equivalent to WithTopology(Topology{WorkersPerDomain: n}) — on a
// single-domain runtime that is the total pool size.
func WithWorkers(n int) Option {
	return WithTopology(Topology{WorkersPerDomain: n})
}

// WithNUMANodes sets the number of SPSC insertion queues of the sync
// scheduler (§3.1: one queue and lock per NUMA node). Equivalent to
// WithTopology(Topology{NUMANodes: n}); note this shapes each domain's
// scheduler, it does not shard the runtime — Topology.Domains does.
func WithNUMANodes(n int) Option {
	return WithTopology(Topology{NUMANodes: n})
}

// WithSPSCCap sets the capacity of each insertion queue.
func WithSPSCCap(n int) Option {
	return func(c *core.Config) { c.SPSCCap = n }
}

// WithRootShards sets the shard count of the root dependency domain:
// concurrent Submit/Run callers whose access addresses hash to
// different shards register in parallel. 0 selects a worker-scaled
// default; 1 fully serializes root registration (the pre-sharding
// behaviour, useful as a contention baseline).
func WithRootShards(n int) Option {
	return func(c *core.Config) { c.RootShards = n }
}

// WithScheduler selects the scheduler design.
func WithScheduler(k SchedulerKind) Option {
	return func(c *core.Config) { c.Scheduler = k }
}

// WithDeps selects the dependency-system implementation.
func WithDeps(k DepsKind) Option {
	return func(c *core.Config) { c.Deps = k }
}

// WithAlloc selects the task-memory allocator.
func WithAlloc(k AllocKind) Option {
	return func(c *core.Config) { c.Alloc = k }
}

// WithPolicy selects the unsynchronized scheduling policy.
func WithPolicy(k PolicyKind) Option {
	return func(c *core.Config) { c.Policy = k }
}

// WithEDF makes the top priority level deadline-aware: among ready
// tasks of the highest class, the one with the earliest absolute
// deadline (WithDeadline) runs first; deadline-less tasks sort last
// and keep FIFO order among themselves. Lower priority levels keep the
// configured policy. With the work-stealing scheduler the ordering is
// per-deque only — a thief never compares deadlines across victims.
func WithEDF() Option {
	return func(c *core.Config) { c.EDF = true }
}

// WithErrorPolicy selects how task errors propagate: FailFast (the
// default) or CollectAll.
func WithErrorPolicy(p ErrorPolicy) Option {
	return func(c *core.Config) { c.OnError = p }
}

// WithPinnedWorkers locks each worker goroutine to an OS thread, the
// closest Go equivalent of the paper's one-thread-per-core binding.
// Equivalent to WithTopology(Topology{PinWorkers: true}).
func WithPinnedWorkers() Option {
	return WithTopology(Topology{PinWorkers: true})
}

// WithMinWorkers keeps the first n workers out of the elastic parking
// ladder: they idle by spin-yielding forever, immune to wake-up
// latency at the cost of idle CPU. 0 (the default) lets every worker
// park; values above the worker count clamp.
func WithMinWorkers(n int) Option {
	return func(c *core.Config) { c.MinWorkers = n }
}

// WithIdleSpin sets the per-worker idle spin budget: how many
// consecutive empty scheduler polls a worker tolerates before parking
// on its wake channel. 0 selects the default (1024); negative disables
// parking entirely — the pure-spin idle behaviour the IdleBurn
// benchmark uses as its baseline.
func WithIdleSpin(n int) Option {
	return func(c *core.Config) { c.IdleSpin = n }
}

// WithEventSlots sets the number of exclusive completer slots external
// event decrements borrow when the final Done arrives from a
// non-worker goroutine. The count bounds completer parallelism, never
// correctness (a decrementer spins until a slot frees); 0 selects the
// default of 4.
func WithEventSlots(n int) Option {
	return func(c *core.Config) { c.EventSlots = n }
}

// WithServeSlots sets the number of exclusive inline-serving slots for
// the compiled-graph fast path (CompiledGraph.Do): when a slot is
// free, the submitting goroutine executes the request's tasks itself
// instead of dispatching through the scheduler and sleeping on the
// completion latch. The count bounds inline parallelism, never
// correctness (excess submitters fall back to the dispatch path); 0
// selects the default of 2, negative disables inline serving.
func WithServeSlots(n int) Option {
	return func(c *core.Config) { c.ServeSlots = n }
}

// WithEventTick sets the resolution of the shared timer wheel behind
// Ctx.After and Ctx.AfterFunc; 0 selects the default of 100µs. Timers
// round up — a completion never fires earlier than its delay.
func WithEventTick(d time.Duration) Option {
	return func(c *core.Config) { c.EventTick = d }
}

// WithTracing enables the instrumentation backend with the given
// per-core event capacity (<= 0 selects the default capacity).
func WithTracing(capacity int) Option {
	return func(c *core.Config) {
		if capacity <= 0 {
			capacity = 1 << 16
		}
		c.TraceCapacity = capacity
	}
}

// WithNoise injects simulated OS noise: after the DTLock owner has
// performed afterServes service operations it stalls for d (Figure 11).
func WithNoise(afterServes int, d time.Duration) Option {
	return func(c *core.Config) {
		c.Noise = core.NoiseConfig{AfterServes: afterServes, Duration: d}
	}
}

// CompileOption configures a Graph.Compile call. Compiling with any
// option always builds a fresh template (option-free compiles are
// cached on the Graph).
type CompileOption func(*CompiledGraph)

// NodeStat is one node execution's latency sample, delivered to the
// WithNodeStats hook synchronously on the executing worker.
type NodeStat struct {
	// Name and Index identify the node (Index is its topological
	// position, as returned by CompiledGraph.NodeIndex).
	Name  string
	Index int
	// Worker is the worker that executed the node's body.
	Worker int
	// Elapsed is the body's run time; 0 for memoized hits.
	Elapsed time.Duration
	// Err is the body's raw error (pre-wrapping), nil on success.
	Err error
	// Memoized marks a pure-node cache hit: the body did not run.
	Memoized bool
}

// WithNodeStats enables per-node latency recording on the compiled
// template: every node execution is timed and recorded into a per-node
// zero-allocation histogram (CompiledGraph.NodeLatency), and hook — if
// non-nil — additionally receives each sample synchronously on the
// executing worker, so it must be cheap and safe for concurrent calls.
// A nil hook records histograms only. The timing itself is off unless
// this option is given, keeping the default hot path clock-free.
func WithNodeStats(hook func(NodeStat)) CompileOption {
	return func(cg *CompiledGraph) {
		cg.statsOn = true
		cg.stats = hook
	}
}

// WithConfig replaces the whole configuration — an escape hatch for
// callers that already hold a core.Config (presets, the harness).
// Options after it still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *core.Config) { *c = cfg }
}
