package repro

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/core"
)

// GraphFunc is the body of one named graph task. It receives the
// results of the tasks it depends on, keyed by name, and returns its
// own result. A dependency that failed never reaches its dependents'
// GraphFunc: the dependent is skipped with an error wrapping the
// dependency's.
type GraphFunc func(c *Ctx, deps map[string]any) (any, error)

// Result is the outcome of one graph task: its value, or the error
// that failed or skipped it.
type Result struct {
	Value any
	Err   error
}

// Value returns the typed result of task name from a Graph.Run result
// map: res["name"].Value asserted to T, or the task's error.
func Value[T any](res map[string]Result, name string) (T, error) {
	var zero T
	r, ok := res[name]
	if !ok {
		return zero, fmt.Errorf("repro: graph has no task %q", name)
	}
	if r.Err != nil {
		return zero, r.Err
	}
	v, ok := r.Value.(T)
	if !ok && r.Value != nil {
		return zero, fmt.Errorf("repro: task %q result is %T, not %T", name, r.Value, zero)
	}
	return v, nil
}

// Graph is a declarative, named-task layer over the runtime's
// dependency engine: tasks are added with explicit dependency names
// (symphony-style) rather than data accesses, and Run executes the
// whole DAG with the usual result/error/cancellation semantics. The
// ordering is enforced by the same dependency system the paper
// describes — each task's name is materialized as an out() access on a
// per-task sentinel, and each dependency as an in() on it.
//
// A Graph is a builder: it is not safe for concurrent mutation, but
// once built it may be Run repeatedly and concurrently (Run stamps
// per-request state from the graph's compiled template; see Compile
// for the serving fast path that amortizes the compilation too).
type Graph struct {
	nodes  []*gnode
	byName map[string]*gnode
	err    error

	// compiled caches the option-free compiled template so repeated
	// legacy Runs reuse one template (and its frame pool); any builder
	// mutation invalidates it.
	compiled *CompiledGraph
}

type gnode struct {
	name string
	deps []string
	fn   GraphFunc
	pri  int
	dl   time.Duration
	pure bool

	// val/err are written once by the node's task body (or its skip
	// path) and read by dependents after the dependency edge's
	// happens-before, and by RunInterpreted after full completion.
	val any
	err error

	fut *Future[any]
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]*gnode)}
}

// Add declares task name depending on the named tasks in deps. Tasks
// may be added in any order; dependencies are resolved at Run. Add
// returns the graph for chaining; construction errors (duplicate
// names) are reported by Run.
func (g *Graph) Add(name string, deps []string, fn GraphFunc) *Graph {
	if g.err != nil {
		return g
	}
	if _, dup := g.byName[name]; dup {
		g.err = fmt.Errorf("repro: duplicate graph task %q", name)
		return g
	}
	n := &gnode{name: name, deps: deps, fn: fn}
	g.byName[name] = n
	g.nodes = append(g.nodes, n)
	g.compiled = nil
	return g
}

// SetPriority assigns a scheduling priority level to an already-added
// task (clamped to [0, MaxPriority] at Run). The node's task — and,
// by inheritance, anything it spawns — runs at that level once its
// dependencies are satisfied; the dependency edges themselves are
// unaffected. Referencing an unknown task is a construction error
// reported by Run.
func (g *Graph) SetPriority(name string, pri int) *Graph {
	if g.err != nil {
		return g
	}
	n, ok := g.byName[name]
	if !ok {
		g.err = fmt.Errorf("repro: SetPriority on unknown graph task %q", name)
		return g
	}
	n.pri = pri
	g.compiled = nil
	return g
}

// SetDeadline assigns a scheduling deadline, relative to the start of
// each Run/Do request, to an already-added task: when the request
// begins, the node's task is stamped with an absolute deadline of
// "request start + d" (WithDeadline semantics — advisory EDF ordering
// within the top priority level on WithEDF runtimes, nothing is
// cancelled when it passes; combine with SetPriority(name,
// MaxPriority) to place the node in the deadline-ordered class).
// Children spawned by the node inherit the deadline. d <= 0 clears it.
// Referencing an unknown task is a construction error reported by Run.
func (g *Graph) SetDeadline(name string, d time.Duration) *Graph {
	if g.err != nil {
		return g
	}
	n, ok := g.byName[name]
	if !ok {
		g.err = fmt.Errorf("repro: SetDeadline on unknown graph task %q", name)
		return g
	}
	if d < 0 {
		d = 0
	}
	n.dl = d
	g.compiled = nil
	return g
}

// MarkPure declares task name pure: its result depends only on its
// dependencies' results, with no per-request side effects or inputs.
// A compiled template memoizes a node's result across requests when
// the node and every task it transitively depends on are pure (an
// impure dependency makes the inputs per-request, so the node
// recomputes); CompiledGraph.Invalidate drops all memoized results.
// The interpreted path ignores purity. Referencing an unknown task is
// a construction error reported by Run/Compile.
func (g *Graph) MarkPure(name string) *Graph {
	if g.err != nil {
		return g
	}
	n, ok := g.byName[name]
	if !ok {
		g.err = fmt.Errorf("repro: MarkPure on unknown graph task %q", name)
		return g
	}
	n.pure = true
	g.compiled = nil
	return g
}

// validate checks referential integrity and acyclicity, returning the
// nodes in a topological order (dependencies before dependents).
func (g *Graph) validate() ([]*gnode, error) {
	if g.err != nil {
		return nil, g.err
	}
	for _, n := range g.nodes {
		for _, d := range n.deps {
			if d == n.name {
				return nil, fmt.Errorf("repro: graph task %q depends on itself", n.name)
			}
			if _, ok := g.byName[d]; !ok {
				return nil, fmt.Errorf("repro: graph task %q depends on unknown task %q", n.name, d)
			}
		}
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(g.nodes))
	order := make([]*gnode, 0, len(g.nodes))
	var visit func(n *gnode, path []string) error
	visit = func(n *gnode, path []string) error {
		switch state[n.name] {
		case visiting:
			return fmt.Errorf("repro: graph cycle: %v", append(path, n.name))
		case done:
			return nil
		}
		state[n.name] = visiting
		for _, d := range n.deps {
			if err := visit(g.byName[d], append(path, n.name)); err != nil {
				return err
			}
		}
		state[n.name] = done
		order = append(order, n)
		return nil
	}
	for _, n := range g.nodes {
		if err := visit(n, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Run executes the graph on rt and blocks until every task has
// completed, failed, or been drained by cancellation. It returns the
// per-task results keyed by name, plus the submission's aggregate
// error (nil when everything succeeded). ctx cancellation and the
// runtime's ErrorPolicy behave exactly as in RunCtx: under FailFast
// the first failure skips every not-yet-started task, with skipped
// dependents reporting an error that wraps their dependency's.
//
// Run routes through the graph's compiled template (cached across
// calls, rebuilt after any builder mutation): the per-call cost is one
// pooled execution frame plus the result map the signature promises,
// not the name resolution, cycle check and per-node closures of the
// interpreted path. Serving loops should hold the template directly —
// Compile once, Do per request — to also skip the map.
func (g *Graph) Run(ctx context.Context, rt *Runtime) (map[string]Result, error) {
	cg, err := g.Compile(rt)
	if err != nil {
		return nil, err
	}
	e, runErr := cg.Do(ctx)
	res := make(map[string]Result, len(cg.nodes))
	for i := range cg.nodes {
		v, verr := e.valueAt(i)
		res[cg.nodes[i].name] = Result{Value: v, Err: verr}
	}
	e.Release()
	return res, runErr
}

// RunInterpreted is the seed interpreted execution path: it re-runs
// name resolution and the cycle check, then registers one closure-built
// task per node, every call. It is retained as the reference
// implementation the compiled path is differentially tested (and
// benchmarked) against; use Run or Compile+Do otherwise. Unlike Run it
// must not execute the same Graph concurrently with itself — per-call
// node state lives on the builder.
func (g *Graph) RunInterpreted(ctx context.Context, rt *Runtime) (map[string]Result, error) {
	order, err := g.validate()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for _, n := range order {
		n.val, n.err, n.fut = nil, nil, nil
	}
	// One sentinel byte per task carries the name-level ordering
	// through the address-based dependency system.
	sentinels := make([]byte, len(order))
	index := make(map[string]int, len(order))
	for i, n := range order {
		index[n.name] = i
	}

	runErr := rt.RunCtx(ctx, func(c *Ctx) {
		// Registration in topological order guarantees each sentinel's
		// out() precedes its dependents' in() in the chain.
		for i, n := range order {
			accs := make([]AccessSpec, 0, len(n.deps)+2)
			for _, d := range n.deps {
				accs = append(accs, In(&sentinels[index[d]]))
			}
			accs = append(accs, Out(&sentinels[i]))
			if n.pri != 0 {
				accs = append(accs, WithPriority(n.pri))
			}
			if n.dl != 0 {
				accs = append(accs, WithDeadline(n.dl))
			}
			n.fut = Go(c, n.task(g), accs...)
		}
		c.Taskwait()
	})

	res := make(map[string]Result, len(order))
	for _, n := range order {
		var v any
		var err error
		switch {
		case n.fut == nil:
			// The spawning root was itself drained (context already
			// cancelled): no task was ever created for this node.
			err = fmt.Errorf("%w: %w", core.ErrTaskSkipped, runErr)
		case n.err != nil:
			// Dependency-failure skips are recorded on the node, not
			// returned to the scope (the originating failure already
			// was).
			v, err = n.val, n.err
		default:
			// All futures are resolved here: RunCtx returns only after
			// the whole submission (including drained tasks) completed.
			v, err = n.fut.Wait(nil)
		}
		res[n.name] = Result{Value: v, Err: err}
	}
	return res, runErr
}

// task builds the runtime body of one graph node: collect dependency
// results, short-circuit on a failed dependency, run the GraphFunc with
// its own panic containment so dependents observe the failure through
// the node state as well as the scope.
func (n *gnode) task(g *Graph) func(*Ctx) (any, error) {
	return func(c *Ctx) (any, error) {
		depvals := make(map[string]any, len(n.deps))
		for _, d := range n.deps {
			dn := g.byName[d]
			if dn.err != nil {
				// The dependency failed (or was itself skipped): skip
				// this task. Recorded locally only — returning it would
				// multiply the originating error in the scope's join.
				n.err = fmt.Errorf("repro: dependency %q of task %q: %w", d, n.name, dn.err)
				return nil, nil
			}
			depvals[d] = dn.val
		}
		v, err := func() (v any, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = &core.PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			return n.fn(c, depvals)
		}()
		n.val = v
		if err != nil {
			n.err = fmt.Errorf("repro: graph task %q: %w", n.name, err)
			return nil, n.err
		}
		return v, nil
	}
}
