package repro_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/workloads"
)

func TestCompiledBasic(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	g := repro.NewGraph().
		Add("a", nil, func(*repro.Ctx, map[string]any) (any, error) { return 2, nil }).
		Add("b", nil, func(*repro.Ctx, map[string]any) (any, error) { return 3, nil }).
		Add("mul", []string{"a", "b"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["a"].(int) * d["b"].(int), nil
		}).
		Add("add", []string{"mul", "a"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["mul"].(int) + d["a"].(int), nil
		})
	cg, err := g.Compile(rt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cg.Len() != 4 {
		t.Fatalf("Len = %d, want 4", cg.Len())
	}
	ai, ok := cg.NodeIndex("add")
	if !ok {
		t.Fatal("NodeIndex(add) not found")
	}
	if name := cg.NodeName(ai); name != "add" {
		t.Fatalf("NodeName(%d) = %q, want add", ai, name)
	}
	if _, ok := cg.NodeIndex("nope"); ok {
		t.Fatal("NodeIndex(nope) must not resolve")
	}
	// Many sequential requests through the pooled frames.
	for i := 0; i < 100; i++ {
		e, err := cg.Do(context.Background())
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if v, err := e.ValueAt(ai); err != nil || v.(int) != 8 {
			t.Fatalf("Do %d: add = %v, %v; want 8, nil", i, v, err)
		}
		if v, err := e.Value("mul"); err != nil || v.(int) != 6 {
			t.Fatalf("Do %d: mul = %v, %v; want 6, nil", i, v, err)
		}
		if _, err := e.Value("nope"); err == nil {
			t.Fatal("Value of unknown task must error")
		}
		if _, err := e.ValueAt(99); err == nil {
			t.Fatal("ValueAt out of range must error")
		}
		e.Release()
	}
}

// randomGraph builds a DAG of n nodes where node i depends on a random
// subset of earlier nodes and computes a deterministic integer from its
// dependencies; node failAt (if >= 0) fails instead. It returns the
// graph and the expected value of every node (in index order) when
// nothing fails.
func randomGraph(rnd *rand.Rand, n, failAt int) (*repro.Graph, []int) {
	g := repro.NewGraph()
	deps := make([][]int, n)
	want := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rnd.Intn(100) < 35 {
				deps[i] = append(deps[i], j)
			}
		}
		want[i] = i*31 + 1
		var names []string
		for _, d := range deps[i] {
			want[i] += 7 * want[d]
			names = append(names, nodeName(d))
		}
		i, fail := i, i == failAt
		g.Add(nodeName(i), names, func(_ *repro.Ctx, d map[string]any) (any, error) {
			if fail {
				return nil, fmt.Errorf("node %d failed", i)
			}
			v := i*31 + 1
			for _, name := range names {
				v += 7 * d[name].(int)
			}
			return v, nil
		})
	}
	return g, want
}

func nodeName(i int) string { return fmt.Sprintf("n%02d", i) }

// TestCompiledDifferentialCollectAll pins CompiledGraph.Do to the seed
// interpreted path over random DAGs under CollectAll, where every node
// deterministically runs or dependency-skips: the per-node values and
// error strings must match exactly.
func TestCompiledDifferentialCollectAll(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4), repro.WithErrorPolicy(repro.CollectAll))
	defer rt.Close()
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rnd.Intn(18)
		failAt := -1
		if trial%3 != 0 {
			failAt = rnd.Intn(n)
		}
		g, _ := randomGraph(rnd, n, failAt)
		ref, refErr := g.RunInterpreted(context.Background(), rt)
		cg, err := g.Compile(rt)
		if err != nil {
			t.Fatalf("trial %d: Compile: %v", trial, err)
		}
		e, doErr := cg.Do(context.Background())
		if (refErr == nil) != (doErr == nil) {
			t.Fatalf("trial %d: aggregate mismatch: interpreted %v, compiled %v", trial, refErr, doErr)
		}
		for i := 0; i < n; i++ {
			name := nodeName(i)
			rv := ref[name]
			cv, cerr := e.Value(name)
			if rv.Value != cv {
				t.Fatalf("trial %d node %s: value %v (interpreted) vs %v (compiled)", trial, name, rv.Value, cv)
			}
			rs, cs := errString(rv.Err), errString(cerr)
			if rs != cs {
				t.Fatalf("trial %d node %s: error %q (interpreted) vs %q (compiled)", trial, name, rs, cs)
			}
		}
		e.Release()
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestCompiledDifferentialFailFast checks the structural contract under
// FailFast over random failing DAGs: the aggregate carries the failure,
// and every node either produced its exact expected value, recorded the
// failure (itself or a dependency chain to it), or was drained and
// reports the skip.
func TestCompiledDifferentialFailFast(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rnd.Intn(16)
		failAt := rnd.Intn(n)
		g, want := randomGraph(rnd, n, failAt)
		cg, err := g.Compile(rt)
		if err != nil {
			t.Fatalf("trial %d: Compile: %v", trial, err)
		}
		e, doErr := cg.Do(context.Background())
		if doErr == nil {
			t.Fatalf("trial %d: aggregate nil despite node %d failing", trial, failAt)
		}
		if !strings.Contains(doErr.Error(), fmt.Sprintf("node %d failed", failAt)) {
			t.Fatalf("trial %d: aggregate %v does not carry node %d's failure", trial, doErr, failAt)
		}
		for i := 0; i < n; i++ {
			v, err := e.Value(nodeName(i))
			switch {
			case err == nil:
				if v.(int) != want[i] {
					t.Fatalf("trial %d node %d: value %v, want %d", trial, i, v, want[i])
				}
			case errors.Is(err, repro.ErrTaskSkipped):
				// Drained before running: fine under FailFast.
			case strings.Contains(err.Error(), "failed"):
				// The failing node, or a dependency chain reaching it.
			default:
				t.Fatalf("trial %d node %d: unexpected error %v", trial, i, err)
			}
		}
		e.Release()
	}
}

// TestCompiledServeStorm drives one shared template from many
// concurrent clients with exact per-request verification: every
// request's unique ticket must flow through the whole fan-in DAG to the
// sink unmixed with any other in-flight frame's.
func TestCompiledServeStorm(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	requests := 4000
	if testing.Short() {
		requests = 800
	}
	gs := workloads.NewGraphServe(12, requests)
	for round := 0; round < 2; round++ {
		gs.Reset()
		if err := gs.Run(rt); err != nil {
			t.Fatalf("round %d: Run: %v", round, err)
		}
		if err := gs.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n := gs.Latency.Count(); n != int64(requests) {
			t.Fatalf("round %d: latency samples = %d, want %d", round, n, requests)
		}
	}
}

func TestCompiledMemo(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()

	var pureRuns, impureRuns, mixRuns atomic.Int64
	g := repro.NewGraph().
		Add("pure", nil, func(*repro.Ctx, map[string]any) (any, error) {
			return int(pureRuns.Add(1)) * 100, nil
		}).
		Add("impure", nil, func(*repro.Ctx, map[string]any) (any, error) {
			return int(impureRuns.Add(1)), nil
		}).
		Add("mix", []string{"impure"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return int(mixRuns.Add(1))*1000 + d["impure"].(int), nil
		}).
		Add("sink", []string{"pure", "mix"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["pure"].(int) + d["mix"].(int), nil
		}).
		MarkPure("pure").
		MarkPure("mix") // impure dependency: must NOT memoize
	cg, err := g.Compile(rt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const rounds = 10
	for i := 1; i <= rounds; i++ {
		e, err := cg.Do(context.Background())
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if v, _ := e.Value("pure"); v.(int) != 100 {
			t.Fatalf("Do %d: pure = %v, want memoized 100", i, v)
		}
		if v, _ := e.Value("sink"); v.(int) != 100+1000*i+i {
			t.Fatalf("Do %d: sink = %v, want %d", i, v, 100+1000*i+i)
		}
		e.Release()
	}
	if got := pureRuns.Load(); got != 1 {
		t.Fatalf("pure ran %d times, want 1 (memoized)", got)
	}
	if got := impureRuns.Load(); got != rounds {
		t.Fatalf("impure ran %d times, want %d", got, rounds)
	}
	if got := mixRuns.Load(); got != rounds {
		t.Fatalf("mix (pure with impure dep) ran %d times, want %d", got, rounds)
	}
	// Invalidate drops the memoized result: the next request recomputes
	// and re-memoizes.
	cg.Invalidate()
	for i := 0; i < 3; i++ {
		e, err := cg.Do(context.Background())
		if err != nil {
			t.Fatalf("Do after Invalidate: %v", err)
		}
		if v, _ := e.Value("pure"); v.(int) != 200 {
			t.Fatalf("pure after Invalidate = %v, want 200", v)
		}
		e.Release()
	}
	if got := pureRuns.Load(); got != 2 {
		t.Fatalf("pure ran %d times after Invalidate, want 2", got)
	}
}

func TestCompiledCancellation(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	var ran atomic.Bool
	g := repro.NewGraph().
		Add("a", nil, func(*repro.Ctx, map[string]any) (any, error) {
			ran.Store(true)
			return 1, nil
		})
	cg, err := g.Compile(rt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, doErr := cg.Do(ctx)
	if !errors.Is(doErr, context.Canceled) {
		t.Fatalf("Do on cancelled ctx = %v, want wrapping context.Canceled", doErr)
	}
	if _, err := e.Value("a"); !errors.Is(err, repro.ErrTaskSkipped) {
		t.Fatalf("Value(a) = %v, want wrapping ErrTaskSkipped", err)
	}
	if ran.Load() {
		t.Fatal("node body ran despite pre-cancelled context")
	}
	e.Release()
	// The template (and the recycled frame) serve normally afterwards.
	e, doErr = cg.Do(context.Background())
	if doErr != nil {
		t.Fatalf("Do after cancelled request: %v", doErr)
	}
	if v, err := e.Value("a"); err != nil || v.(int) != 1 {
		t.Fatalf("a = %v, %v; want 1, nil", v, err)
	}
	e.Release()
}

func TestCompiledDeadline(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	g := repro.NewGraph().
		Add("slow", nil, func(*repro.Ctx, map[string]any) (any, error) {
			time.Sleep(40 * time.Millisecond)
			return 1, nil
		}).
		Add("after", []string{"slow"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["slow"].(int) + 1, nil
		})
	cg, err := g.Compile(rt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e, doErr := cg.DoTimeout(context.Background(), 2*time.Millisecond)
	if !errors.Is(doErr, context.DeadlineExceeded) {
		t.Fatalf("DoTimeout = %v, want wrapping DeadlineExceeded", doErr)
	}
	// The started node ran to completion (DoTimeout waits for the full
	// drain); its dependent was drained and reports the skip.
	if v, err := e.Value("slow"); err != nil || v.(int) != 1 {
		t.Fatalf("slow = %v, %v; want 1, nil (started nodes complete)", v, err)
	}
	if _, err := e.Value("after"); !errors.Is(err, repro.ErrTaskSkipped) {
		t.Fatalf("after = %v, want wrapping ErrTaskSkipped", err)
	}
	e.Release()
	// Deadline generous enough for the whole DAG: completes cleanly, on
	// the same pooled frame.
	e, doErr = cg.DoTimeout(context.Background(), 5*time.Second)
	if doErr != nil {
		t.Fatalf("DoTimeout (generous): %v", doErr)
	}
	if v, err := e.Value("after"); err != nil || v.(int) != 2 {
		t.Fatalf("after = %v, %v; want 2, nil", v, err)
	}
	e.Release()
}

func TestCompiledNodeStats(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	g := repro.NewGraph().
		Add("pure", nil, func(*repro.Ctx, map[string]any) (any, error) { return 5, nil }).
		Add("sink", []string{"pure"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
			return d["pure"].(int) * 2, nil
		}).
		MarkPure("pure")
	var mu sync.Mutex
	var stats []repro.NodeStat
	cg, err := g.Compile(rt, repro.WithNodeStats(func(s repro.NodeStat) {
		mu.Lock()
		stats = append(stats, s)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i := 0; i < 2; i++ {
		e, err := cg.Do(context.Background())
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		e.Release()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stats) != 4 {
		t.Fatalf("got %d samples, want 4 (2 nodes × 2 requests)", len(stats))
	}
	memoized := 0
	for _, s := range stats {
		if s.Err != nil {
			t.Fatalf("sample %q: unexpected error %v", s.Name, s.Err)
		}
		if s.Name != "pure" && s.Name != "sink" {
			t.Fatalf("sample for unknown node %q", s.Name)
		}
		if s.Memoized {
			if s.Name != "pure" {
				t.Fatalf("impure node %q reported memoized", s.Name)
			}
			memoized++
		}
	}
	if memoized != 1 {
		t.Fatalf("memoized samples = %d, want 1 (second request's pure hit)", memoized)
	}
	h := cg.NodeLatency("sink")
	if h == nil {
		t.Fatal("NodeLatency(sink) = nil with stats enabled")
	}
	if n := h.Count(); n != 2 {
		t.Fatalf("sink latency samples = %d, want 2", n)
	}
	if cg.NodeLatency("nope") != nil {
		t.Fatal("NodeLatency of unknown node must be nil")
	}
}

func TestCompiledValidation(t *testing.T) {
	rt := repro.New(repro.WithWorkers(2))
	defer rt.Close()
	ok := func(*repro.Ctx, map[string]any) (any, error) { return nil, nil }
	for name, g := range map[string]*repro.Graph{
		"cycle":       repro.NewGraph().Add("a", []string{"b"}, ok).Add("b", []string{"a"}, ok),
		"unknown dep": repro.NewGraph().Add("a", []string{"ghost"}, ok),
		"duplicate":   repro.NewGraph().Add("a", nil, ok).Add("a", nil, ok),
		"self dep":    repro.NewGraph().Add("a", []string{"a"}, ok),
	} {
		if _, err := g.Compile(rt); err == nil {
			t.Errorf("%s: Compile succeeded, want error", name)
		}
	}
}

func TestGraphRunReusesCompiled(t *testing.T) {
	rt := repro.New(repro.WithWorkers(4))
	defer rt.Close()
	g := repro.NewGraph().
		Add("a", nil, func(*repro.Ctx, map[string]any) (any, error) { return 1, nil })
	cg1, err := g.Compile(rt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cg2, _ := g.Compile(rt); cg2 != cg1 {
		t.Fatal("second option-free Compile must return the cached template")
	}
	// Compiling with options never reuses (or replaces) the cache.
	cgOpt, err := g.Compile(rt, repro.WithNodeStats(func(repro.NodeStat) {}))
	if err != nil {
		t.Fatalf("Compile with options: %v", err)
	}
	if cgOpt == cg1 {
		t.Fatal("Compile with options must build a fresh template")
	}
	if cg3, _ := g.Compile(rt); cg3 != cg1 {
		t.Fatal("option compile must not evict the cached template")
	}
	if _, err := g.Run(context.Background(), rt); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Builder mutation invalidates the cache; the next Run sees it.
	g.Add("b", []string{"a"}, func(_ *repro.Ctx, d map[string]any) (any, error) {
		return d["a"].(int) + 10, nil
	})
	cg4, err := g.Compile(rt)
	if err != nil {
		t.Fatalf("Compile after Add: %v", err)
	}
	if cg4 == cg1 {
		t.Fatal("Compile after mutation must rebuild")
	}
	res, err := g.Run(context.Background(), rt)
	if err != nil {
		t.Fatalf("Run after Add: %v", err)
	}
	if v, err := repro.Value[int](res, "b"); err != nil || v != 11 {
		t.Fatalf("b = %v, %v; want 11, nil", v, err)
	}
	// SetPriority and MarkPure invalidate too.
	g.SetPriority("b", 2)
	if cg5, _ := g.Compile(rt); cg5 == cg4 {
		t.Fatal("Compile after SetPriority must rebuild")
	}
	g.MarkPure("a")
	prev, _ := g.Compile(rt)
	if cg6, _ := g.Compile(rt); cg6 != prev {
		t.Fatal("unmutated graph must keep its cache")
	}
	res, err = g.Run(context.Background(), rt)
	if err != nil {
		t.Fatalf("Run after SetPriority/MarkPure: %v", err)
	}
	if v, err := repro.Value[int](res, "b"); err != nil || v != 11 {
		t.Fatalf("b = %v, %v; want 11, nil", v, err)
	}
}
